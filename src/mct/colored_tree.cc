#include "mct/colored_tree.h"

#include <cassert>

#include "common/strings.h"

namespace mct {

namespace {

// On-disk structural record (one per node per color).
struct DiskStructRecord {
  NodeId node;
  NodeId parent;
  NodeId first_child;
  NodeId last_child;
  NodeId next_sibling;
  NodeId prev_sibling;
  uint64_t start;
  uint64_t end;
  uint32_t level;
  uint32_t pad = 0;
};
static_assert(sizeof(DiskStructRecord) == 48);

}  // namespace

ColoredTree::ColoredTree(ColorId color, StorageEnv* env)
    : color_(color), struct_file_(env->pool(), sizeof(DiskStructRecord)) {}

Status ColoredTree::SetRoot(NodeId node) {
  if (root_ != kInvalidNodeId) {
    return Status::AlreadyExists("colored tree already has a root");
  }
  root_ = node;
  StructNode sn;
  sn.level = 0;
  nodes_.emplace(node, sn);
  MCT_RETURN_IF_ERROR(AppendStructRecord(node));
  labels_dirty_ = true;
  return Status::OK();
}

Status ColoredTree::AppendChild(NodeId parent, NodeId child) {
  return InsertChild(parent, child, kInvalidNodeId);
}

Status ColoredTree::InsertChild(NodeId parent, NodeId child, NodeId before) {
  if (!nodes_.contains(parent)) {
    return Status::NotFound(
        StrFormat("parent node %u is not in colored tree %u", parent, color_));
  }
  if (nodes_.contains(child)) {
    // A node can appear at most once in any colored tree; MCXQuery turns
    // this into its dynamic error (Section 4.2).
    return Status::AlreadyExists(
        StrFormat("node %u already occurs in colored tree %u", child, color_));
  }
  if (before != kInvalidNodeId) {
    auto it = nodes_.find(before);
    if (it == nodes_.end() || it->second.parent != parent) {
      return Status::InvalidArgument("'before' is not a child of 'parent'");
    }
  }
  StructNode sn;
  sn.parent = parent;
  sn.level = nodes_[parent].level + 1;
  nodes_.emplace(child, sn);
  MCT_RETURN_IF_ERROR(LinkChild(parent, child, before));
  MCT_RETURN_IF_ERROR(AppendStructRecord(child));
  if (!labels_dirty_) TryGapLabel(child);
  return Status::OK();
}

Status ColoredTree::LinkChild(NodeId parent, NodeId child, NodeId before) {
  StructNode& p = nodes_[parent];
  StructNode& c = nodes_[child];
  if (before == kInvalidNodeId) {
    c.prev_sibling = p.last_child;
    if (p.last_child != kInvalidNodeId) {
      nodes_[p.last_child].next_sibling = child;
      MCT_RETURN_IF_ERROR(WriteStructRecord(p.last_child));
    } else {
      p.first_child = child;
    }
    p.last_child = child;
  } else {
    StructNode& b = nodes_[before];
    c.next_sibling = before;
    c.prev_sibling = b.prev_sibling;
    if (b.prev_sibling != kInvalidNodeId) {
      nodes_[b.prev_sibling].next_sibling = child;
      MCT_RETURN_IF_ERROR(WriteStructRecord(b.prev_sibling));
    } else {
      p.first_child = child;
    }
    b.prev_sibling = child;
    MCT_RETURN_IF_ERROR(WriteStructRecord(before));
  }
  return WriteStructRecord(parent);
}

void ColoredTree::TryGapLabel(NodeId node) {
  StructNode& c = nodes_[node];
  const StructNode& p = nodes_[c.parent];
  uint64_t lo = (c.prev_sibling != kInvalidNodeId) ? nodes_[c.prev_sibling].end
                                                   : p.start;
  uint64_t hi = (c.next_sibling != kInvalidNodeId)
                    ? nodes_[c.next_sibling].start
                    : p.end;
  if (hi <= lo || hi - lo < 3) {
    labels_dirty_ = true;
    return;
  }
  uint64_t third = (hi - lo) / 3;
  c.start = lo + third;
  c.end = lo + 2 * third;
  Status s = WriteStructRecord(node);
  (void)s;
}

Status ColoredTree::DetachSubtree(NodeId node, std::vector<NodeId>* removed) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return Status::NotFound(
        StrFormat("node %u is not in colored tree %u", node, color_));
  }
  if (node == root_) {
    return Status::InvalidArgument("cannot detach the document root");
  }
  // Unlink from parent / siblings.
  StructNode& c = it->second;
  StructNode& p = nodes_[c.parent];
  if (c.prev_sibling != kInvalidNodeId) {
    nodes_[c.prev_sibling].next_sibling = c.next_sibling;
    MCT_RETURN_IF_ERROR(WriteStructRecord(c.prev_sibling));
  } else {
    p.first_child = c.next_sibling;
  }
  if (c.next_sibling != kInvalidNodeId) {
    nodes_[c.next_sibling].prev_sibling = c.prev_sibling;
    MCT_RETURN_IF_ERROR(WriteStructRecord(c.next_sibling));
  } else {
    p.last_child = c.prev_sibling;
  }
  MCT_RETURN_IF_ERROR(WriteStructRecord(c.parent));
  // Remove the whole subtree from the member map.
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    removed->push_back(n);
    const StructNode& sn = nodes_[n];
    // Tombstone the backing record.
    DiskStructRecord dead{};
    dead.node = kInvalidNodeId;
    MCT_RETURN_IF_ERROR(struct_file_.Write(sn.file_index, &dead));
    for (NodeId ch = sn.first_child; ch != kInvalidNodeId;
         ch = nodes_[ch].next_sibling) {
      stack.push_back(ch);
    }
  }
  for (NodeId n : *removed) nodes_.erase(n);
  // Remaining labels stay mutually consistent after a detach (pre-order
  // event numbers of survivors keep their relative order), so no relabel.
  return Status::OK();
}

NodeId ColoredTree::Parent(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? kInvalidNodeId : it->second.parent;
}

NodeId ColoredTree::FirstChild(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? kInvalidNodeId : it->second.first_child;
}

NodeId ColoredTree::NextSibling(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? kInvalidNodeId : it->second.next_sibling;
}

NodeId ColoredTree::PrevSibling(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? kInvalidNodeId : it->second.prev_sibling;
}

std::vector<NodeId> ColoredTree::Children(NodeId node) const {
  std::vector<NodeId> out;
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  for (NodeId c = it->second.first_child; c != kInvalidNodeId;
       c = nodes_.at(c).next_sibling) {
    out.push_back(c);
  }
  return out;
}

std::vector<NodeId> ColoredTree::PreOrder() const { return PreOrder(root_); }

std::vector<NodeId> ColoredTree::PreOrder(NodeId node) const {
  std::vector<NodeId> out;
  if (!nodes_.contains(node)) return out;
  out.reserve(nodes_.size());
  // Iterative pre-order using first_child / next_sibling.
  NodeId cur = node;
  while (cur != kInvalidNodeId) {
    out.push_back(cur);
    const StructNode& sn = nodes_.at(cur);
    if (sn.first_child != kInvalidNodeId) {
      cur = sn.first_child;
      continue;
    }
    // Climb until a next sibling exists, stopping at the subtree root.
    NodeId climb = cur;
    cur = kInvalidNodeId;
    while (climb != node) {
      const StructNode& csn = nodes_.at(climb);
      if (csn.next_sibling != kInvalidNodeId) {
        cur = csn.next_sibling;
        break;
      }
      climb = csn.parent;
    }
  }
  return out;
}

uint64_t ColoredTree::Start(NodeId node) {
  EnsureLabels();
  return nodes_.at(node).start;
}

uint64_t ColoredTree::End(NodeId node) {
  EnsureLabels();
  return nodes_.at(node).end;
}

uint32_t ColoredTree::Level(NodeId node) {
  EnsureLabels();
  return nodes_.at(node).level;
}

bool ColoredTree::IsAncestor(NodeId anc, NodeId desc) {
  EnsureLabels();
  auto a = nodes_.find(anc);
  auto d = nodes_.find(desc);
  if (a == nodes_.end() || d == nodes_.end()) return false;
  return a->second.start < d->second.start && d->second.end < a->second.end;
}

void ColoredTree::EnsureLabels() {
  if (labels_dirty_) Relabel();
}

void ColoredTree::Relabel() {
  if (root_ == kInvalidNodeId) {
    labels_dirty_ = false;
    return;
  }
  uint64_t event = 0;
  // Iterative DFS with explicit enter/leave events.
  struct Frame {
    NodeId node;
    bool entered;
  };
  std::vector<Frame> stack{{root_, false}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    StructNode& sn = nodes_[f.node];
    if (!f.entered) {
      f.entered = true;
      sn.start = (++event) * kLabelGap;
      sn.level = (sn.parent == kInvalidNodeId)
                     ? 0
                     : nodes_[sn.parent].level + 1;
      // Push children in reverse so the leftmost is processed first.
      std::vector<NodeId> kids;
      for (NodeId c = sn.first_child; c != kInvalidNodeId;
           c = nodes_[c].next_sibling) {
        kids.push_back(c);
      }
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back({*it, false});
      }
    } else {
      sn.end = (++event) * kLabelGap;
      Status s = WriteStructRecord(f.node);
      (void)s;
      stack.pop_back();
    }
  }
  labels_dirty_ = false;
}

Status ColoredTree::WriteStructRecord(NodeId node) {
  const StructNode& sn = nodes_.at(node);
  DiskStructRecord rec{node,
                       sn.parent,
                       sn.first_child,
                       sn.last_child,
                       sn.next_sibling,
                       sn.prev_sibling,
                       sn.start,
                       sn.end,
                       sn.level,
                       0};
  return struct_file_.Write(sn.file_index, &rec);
}

Status ColoredTree::AppendStructRecord(NodeId node) {
  StructNode& sn = nodes_[node];
  DiskStructRecord rec{node,
                       sn.parent,
                       sn.first_child,
                       sn.last_child,
                       sn.next_sibling,
                       sn.prev_sibling,
                       sn.start,
                       sn.end,
                       sn.level,
                       0};
  MCT_ASSIGN_OR_RETURN(sn.file_index, struct_file_.Append(&rec));
  return Status::OK();
}

}  // namespace mct

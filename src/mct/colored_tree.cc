#include "mct/colored_tree.h"

#include <cassert>

#include "common/strings.h"

namespace mct {

namespace {

// On-disk structural record (one per node per color).
struct DiskStructRecord {
  NodeId node;
  NodeId parent;
  NodeId first_child;
  NodeId last_child;
  NodeId next_sibling;
  NodeId prev_sibling;
  uint64_t start;
  uint64_t end;
  uint32_t level;
  uint32_t pad = 0;
};
static_assert(sizeof(DiskStructRecord) == 48);

}  // namespace

ColoredTree::ColoredTree(ColorId color, StorageEnv* env)
    : color_(color),
      struct_file_(
          std::make_shared<RecordFile>(env->pool(), sizeof(DiskStructRecord))) {
}

ColoredTree::ColoredTree(const ColoredTree& o, bool write_through)
    : color_(o.color_),
      root_(o.root_),
      nodes_(o.nodes_),
      struct_file_(o.struct_file_),
      write_through_(write_through),
      labels_dirty_(o.labels_dirty_) {}

Status ColoredTree::SetRoot(NodeId node) {
  if (root_ != kInvalidNodeId) {
    return Status::AlreadyExists("colored tree already has a root");
  }
  root_ = node;
  StructNode& sn = nodes_.Put(node);
  sn.level = 0;
  MCT_RETURN_IF_ERROR(AppendStructRecord(node));
  labels_dirty_ = true;
  return Status::OK();
}

Status ColoredTree::AppendChild(NodeId parent, NodeId child) {
  return InsertChild(parent, child, kInvalidNodeId);
}

Status ColoredTree::InsertChild(NodeId parent, NodeId child, NodeId before) {
  if (!nodes_.Contains(parent)) {
    return Status::NotFound(
        StrFormat("parent node %u is not in colored tree %u", parent, color_));
  }
  if (nodes_.Contains(child)) {
    // A node can appear at most once in any colored tree; MCXQuery turns
    // this into its dynamic error (Section 4.2).
    return Status::AlreadyExists(
        StrFormat("node %u already occurs in colored tree %u", child, color_));
  }
  if (before != kInvalidNodeId) {
    const StructNode* b = nodes_.Find(before);
    if (b == nullptr || b->parent != parent) {
      return Status::InvalidArgument("'before' is not a child of 'parent'");
    }
  }
  uint32_t parent_level = nodes_.At(parent).level;
  StructNode& sn = nodes_.Put(child);
  sn.parent = parent;
  sn.level = parent_level + 1;
  MCT_RETURN_IF_ERROR(LinkChild(parent, child, before));
  MCT_RETURN_IF_ERROR(AppendStructRecord(child));
  if (!labels_dirty_) TryGapLabel(child);
  return Status::OK();
}

Status ColoredTree::LinkChild(NodeId parent, NodeId child, NodeId before) {
  // Mut() may copy the chunk another reference points into, so sibling and
  // parent fields are updated one Mut at a time, never holding two
  // references at once.
  if (before == kInvalidNodeId) {
    NodeId last = nodes_.At(parent).last_child;
    nodes_.Mut(child).prev_sibling = last;
    if (last != kInvalidNodeId) {
      nodes_.Mut(last).next_sibling = child;
      MCT_RETURN_IF_ERROR(WriteStructRecord(last));
    } else {
      nodes_.Mut(parent).first_child = child;
    }
    nodes_.Mut(parent).last_child = child;
  } else {
    NodeId prev = nodes_.At(before).prev_sibling;
    {
      StructNode& c = nodes_.Mut(child);
      c.next_sibling = before;
      c.prev_sibling = prev;
    }
    if (prev != kInvalidNodeId) {
      nodes_.Mut(prev).next_sibling = child;
      MCT_RETURN_IF_ERROR(WriteStructRecord(prev));
    } else {
      nodes_.Mut(parent).first_child = child;
    }
    nodes_.Mut(before).prev_sibling = child;
    MCT_RETURN_IF_ERROR(WriteStructRecord(before));
  }
  return WriteStructRecord(parent);
}

void ColoredTree::TryGapLabel(NodeId node) {
  const StructNode& c = nodes_.At(node);
  const StructNode& p = nodes_.At(c.parent);
  uint64_t lo = (c.prev_sibling != kInvalidNodeId)
                    ? nodes_.At(c.prev_sibling).end
                    : p.start;
  uint64_t hi = (c.next_sibling != kInvalidNodeId)
                    ? nodes_.At(c.next_sibling).start
                    : p.end;
  if (hi <= lo || hi - lo < 3) {
    labels_dirty_ = true;
    return;
  }
  uint64_t third = (hi - lo) / 3;
  {
    StructNode& m = nodes_.Mut(node);
    m.start = lo + third;
    m.end = lo + 2 * third;
  }
  Status s = WriteStructRecord(node);
  (void)s;
}

Status ColoredTree::DetachSubtree(NodeId node, std::vector<NodeId>* removed) {
  const StructNode* it = nodes_.Find(node);
  if (it == nullptr) {
    return Status::NotFound(
        StrFormat("node %u is not in colored tree %u", node, color_));
  }
  if (node == root_) {
    return Status::InvalidArgument("cannot detach the document root");
  }
  // Unlink from parent / siblings (values copied out first; Mut may move
  // the chunk the last reference pointed into).
  NodeId parent = it->parent;
  NodeId prev = it->prev_sibling;
  NodeId next = it->next_sibling;
  if (prev != kInvalidNodeId) {
    nodes_.Mut(prev).next_sibling = next;
    MCT_RETURN_IF_ERROR(WriteStructRecord(prev));
  } else {
    nodes_.Mut(parent).first_child = next;
  }
  if (next != kInvalidNodeId) {
    nodes_.Mut(next).prev_sibling = prev;
    MCT_RETURN_IF_ERROR(WriteStructRecord(next));
  } else {
    nodes_.Mut(parent).last_child = prev;
  }
  MCT_RETURN_IF_ERROR(WriteStructRecord(parent));
  // Remove the whole subtree from the member set.
  std::vector<NodeId> stack{node};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    removed->push_back(n);
    const StructNode& sn = nodes_.At(n);
    if (write_through_) {
      // Tombstone the backing record.
      DiskStructRecord dead{};
      dead.node = kInvalidNodeId;
      MCT_RETURN_IF_ERROR(struct_file_->Write(sn.file_index, &dead));
    }
    for (NodeId ch = sn.first_child; ch != kInvalidNodeId;
         ch = nodes_.At(ch).next_sibling) {
      stack.push_back(ch);
    }
  }
  for (NodeId n : *removed) nodes_.Erase(n);
  // Remaining labels stay mutually consistent after a detach (pre-order
  // event numbers of survivors keep their relative order), so no relabel.
  return Status::OK();
}

NodeId ColoredTree::Parent(NodeId node) const {
  const StructNode* sn = nodes_.Find(node);
  return sn == nullptr ? kInvalidNodeId : sn->parent;
}

NodeId ColoredTree::FirstChild(NodeId node) const {
  const StructNode* sn = nodes_.Find(node);
  return sn == nullptr ? kInvalidNodeId : sn->first_child;
}

NodeId ColoredTree::NextSibling(NodeId node) const {
  const StructNode* sn = nodes_.Find(node);
  return sn == nullptr ? kInvalidNodeId : sn->next_sibling;
}

NodeId ColoredTree::PrevSibling(NodeId node) const {
  const StructNode* sn = nodes_.Find(node);
  return sn == nullptr ? kInvalidNodeId : sn->prev_sibling;
}

std::vector<NodeId> ColoredTree::Children(NodeId node) const {
  std::vector<NodeId> out;
  const StructNode* sn = nodes_.Find(node);
  if (sn == nullptr) return out;
  for (NodeId c = sn->first_child; c != kInvalidNodeId;
       c = nodes_.At(c).next_sibling) {
    out.push_back(c);
  }
  return out;
}

std::vector<NodeId> ColoredTree::PreOrder() const { return PreOrder(root_); }

std::vector<NodeId> ColoredTree::PreOrder(NodeId node) const {
  std::vector<NodeId> out;
  if (!nodes_.Contains(node)) return out;
  out.reserve(nodes_.count());
  // Iterative pre-order using first_child / next_sibling.
  NodeId cur = node;
  while (cur != kInvalidNodeId) {
    out.push_back(cur);
    const StructNode& sn = nodes_.At(cur);
    if (sn.first_child != kInvalidNodeId) {
      cur = sn.first_child;
      continue;
    }
    // Climb until a next sibling exists, stopping at the subtree root.
    NodeId climb = cur;
    cur = kInvalidNodeId;
    while (climb != node) {
      const StructNode& csn = nodes_.At(climb);
      if (csn.next_sibling != kInvalidNodeId) {
        cur = csn.next_sibling;
        break;
      }
      climb = csn.parent;
    }
  }
  return out;
}

uint64_t ColoredTree::Start(NodeId node) {
  EnsureLabels();
  return nodes_.At(node).start;
}

uint64_t ColoredTree::End(NodeId node) {
  EnsureLabels();
  return nodes_.At(node).end;
}

uint32_t ColoredTree::Level(NodeId node) {
  EnsureLabels();
  return nodes_.At(node).level;
}

bool ColoredTree::IsAncestor(NodeId anc, NodeId desc) {
  EnsureLabels();
  const StructNode* a = nodes_.Find(anc);
  const StructNode* d = nodes_.Find(desc);
  if (a == nullptr || d == nullptr) return false;
  return a->start < d->start && d->end < a->end;
}

void ColoredTree::EnsureLabels() {
  if (labels_dirty_) Relabel();
}

void ColoredTree::Relabel() {
  if (root_ == kInvalidNodeId) {
    labels_dirty_ = false;
    return;
  }
  uint64_t event = 0;
  // Iterative DFS with explicit enter/leave events.
  struct Frame {
    NodeId node;
    bool entered;
  };
  std::vector<Frame> stack{{root_, false}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (!f.entered) {
      f.entered = true;
      NodeId parent = nodes_.At(f.node).parent;
      uint32_t level =
          (parent == kInvalidNodeId) ? 0 : nodes_.At(parent).level + 1;
      StructNode& sn = nodes_.Mut(f.node);
      sn.start = (++event) * kLabelGap;
      sn.level = level;
      // Push children in reverse so the leftmost is processed first.
      std::vector<NodeId> kids;
      for (NodeId c = sn.first_child; c != kInvalidNodeId;
           c = nodes_.At(c).next_sibling) {
        kids.push_back(c);
      }
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back({*it, false});
      }
    } else {
      nodes_.Mut(f.node).end = (++event) * kLabelGap;
      Status s = WriteStructRecord(f.node);
      (void)s;
      stack.pop_back();
    }
  }
  labels_dirty_ = false;
}

Status ColoredTree::WriteStructRecord(NodeId node) {
  if (!write_through_) return Status::OK();
  const StructNode& sn = nodes_.At(node);
  DiskStructRecord rec{node,
                       sn.parent,
                       sn.first_child,
                       sn.last_child,
                       sn.next_sibling,
                       sn.prev_sibling,
                       sn.start,
                       sn.end,
                       sn.level,
                       0};
  if (sn.file_index >= struct_file_->num_records()) return Status::OK();
  return struct_file_->Write(sn.file_index, &rec);
}

Status ColoredTree::AppendStructRecord(NodeId node) {
  if (!write_through_) return Status::OK();
  const StructNode& sn = nodes_.At(node);
  DiskStructRecord rec{node,
                       sn.parent,
                       sn.first_child,
                       sn.last_child,
                       sn.next_sibling,
                       sn.prev_sibling,
                       sn.start,
                       sn.end,
                       sn.level,
                       0};
  MCT_ASSIGN_OR_RETURN(uint64_t idx, struct_file_->Append(&rec));
  nodes_.Mut(node).file_index = idx;
  return Status::OK();
}

}  // namespace mct

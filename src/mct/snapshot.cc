#include "mct/snapshot.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace mct {

namespace {

constexpr char kMagic[8] = {'M', 'C', 'T', 'S', 'N', 'A', 'P', '2'};
constexpr char kMagicV1[8] = {'M', 'C', 'T', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kFormatVersion = 2;

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Raw(const void* p, size_t n) {
    out_->append(static_cast<const char*>(p), n);
  }

 private:
  std::string* out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  Result<uint8_t> U8() {
    uint8_t v = 0;
    MCT_RETURN_IF_ERROR(Raw(&v, 1));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v = 0;
    MCT_RETURN_IF_ERROR(Raw(&v, 4));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v = 0;
    MCT_RETURN_IF_ERROR(Raw(&v, 8));
    return v;
  }
  Result<std::string> Str() {
    MCT_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (len > (1u << 28)) return Status::Corruption("snapshot string too big");
    if (data_.size() - off_ < len) {
      return Status::Corruption("truncated snapshot");
    }
    std::string s(data_.substr(off_, len));
    off_ += len;
    return s;
  }
  size_t remaining() const { return data_.size() - off_; }

 private:
  Status Raw(void* p, size_t n) {
    if (data_.size() - off_ < n) {
      return Status::Corruption("truncated snapshot");
    }
    std::memcpy(p, data_.data() + off_, n);
    off_ += n;
    return Status::OK();
  }
  std::string_view data_;
  size_t off_ = 0;
};

/// Serializes header (sans magic/version/lsn) + body into `out`.
void SerializeBody(MctDatabase& db, std::string* out) {
  Writer w(out);
  w.U32(static_cast<uint32_t>(db.num_colors()));
  for (ColorId c = 0; c < db.num_colors(); ++c) w.Str(db.ColorName(c));

  // Live nodes (every element reachable in some color), dense re-ids.
  std::unordered_map<NodeId, uint32_t> dense;
  std::vector<NodeId> live;
  for (ColorId c = 0; c < db.num_colors(); ++c) {
    for (NodeId n : db.tree(c)->PreOrder()) {
      if (n == db.document()) continue;
      if (dense.emplace(n, static_cast<uint32_t>(live.size())).second) {
        live.push_back(n);
      }
    }
  }
  w.U32(static_cast<uint32_t>(live.size()));
  for (NodeId n : live) {
    w.U8(static_cast<uint8_t>(db.Kind(n)));
    w.Str(db.Tag(n));
    w.U8(db.store().HasContent(n) ? 1 : 0);
    if (db.store().HasContent(n)) w.Str(db.Content(n));
    const auto& attrs = db.Attrs(n);
    w.U32(static_cast<uint32_t>(attrs.size()));
    for (const NodeAttr& a : attrs) {
      w.Str(db.store().names().Name(a.name));
      w.Str(a.value);
    }
  }
  // Per color, edges in pre-order (parent id 0xFFFFFFFF = document).
  for (ColorId c = 0; c < db.num_colors(); ++c) {
    const ColoredTree* t = db.tree(c);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (NodeId n : t->PreOrder()) {
      if (n == db.document()) continue;
      NodeId p = t->Parent(n);
      uint32_t pd = (p == db.document()) ? 0xFFFFFFFFu : dense.at(p);
      edges.emplace_back(pd, dense.at(n));
    }
    w.U64(edges.size());
    for (const auto& [p, ch] : edges) {
      w.U32(p);
      w.U32(ch);
    }
  }
}

Result<std::unique_ptr<MctDatabase>> DeserializeBody(std::string_view body) {
  Reader r(body);
  auto db = std::make_unique<MctDatabase>();
  MCT_ASSIGN_OR_RETURN(uint32_t ncolors, r.U32());
  if (ncolors > kMaxColors) return Status::Corruption("bad color count");
  for (uint32_t i = 0; i < ncolors; ++i) {
    MCT_ASSIGN_OR_RETURN(std::string name, r.Str());
    MCT_RETURN_IF_ERROR(db->RegisterColor(name).status());
  }
  MCT_ASSIGN_OR_RETURN(uint32_t nnodes, r.U32());
  // Bound the count before the pre-allocation below: a bit-flipped header
  // must produce Corruption, not a multi-gigabyte allocation.
  if (nnodes > (1u << 27)) return Status::Corruption("bad node count");
  std::vector<NodeId> nodes(nnodes, kInvalidNodeId);
  for (uint32_t i = 0; i < nnodes; ++i) {
    MCT_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    MCT_ASSIGN_OR_RETURN(std::string tag, r.Str());
    if (kind != static_cast<uint8_t>(xml::NodeKind::kElement)) {
      return Status::Corruption("snapshot holds a non-element node");
    }
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateFreeElement(tag));
    nodes[i] = n;
    MCT_ASSIGN_OR_RETURN(uint8_t has_content, r.U8());
    if (has_content != 0) {
      MCT_ASSIGN_OR_RETURN(std::string content, r.Str());
      MCT_RETURN_IF_ERROR(db->SetContent(n, content));
    }
    MCT_ASSIGN_OR_RETURN(uint32_t nattrs, r.U32());
    for (uint32_t a = 0; a < nattrs; ++a) {
      MCT_ASSIGN_OR_RETURN(std::string name, r.Str());
      MCT_ASSIGN_OR_RETURN(std::string value, r.Str());
      MCT_RETURN_IF_ERROR(db->SetAttr(n, name, value));
    }
  }
  for (ColorId c = 0; c < ncolors; ++c) {
    MCT_ASSIGN_OR_RETURN(uint64_t nedges, r.U64());
    for (uint64_t e = 0; e < nedges; ++e) {
      MCT_ASSIGN_OR_RETURN(uint32_t pd, r.U32());
      MCT_ASSIGN_OR_RETURN(uint32_t cd, r.U32());
      if (cd >= nnodes || (pd != 0xFFFFFFFFu && pd >= nnodes)) {
        return Status::Corruption("snapshot edge out of range");
      }
      NodeId parent = (pd == 0xFFFFFFFFu) ? db->document() : nodes[pd];
      MCT_RETURN_IF_ERROR(db->AddNodeColor(nodes[cd], c, parent));
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption("snapshot has trailing bytes");
  }
  return db;
}

/// Directory part of `path` ("." when bare).
std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

}  // namespace

Status SaveSnapshot(MctDatabase& db, const std::string& path, FileEnv* env,
                    uint64_t last_lsn) {
  if (env == nullptr) env = FileEnv::Default();
  std::string image;
  image.append(kMagic, sizeof(kMagic));
  {
    Writer w(&image);
    w.U32(kFormatVersion);
    w.U64(last_lsn);
  }
  SerializeBody(db, &image);
  uint32_t crc = Crc32c(image);
  image.append(reinterpret_cast<const char*>(&crc), 4);

  // Temp write + fsync + rename + dir fsync: a crash leaves either the old
  // complete snapshot or the new one, never a torn file under `path`.
  const std::string tmp = path + ".tmp";
  {
    MCT_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(tmp, true));
    MCT_RETURN_IF_ERROR(file->Append(image));
    MCT_RETURN_IF_ERROR(file->Sync());
    MCT_RETURN_IF_ERROR(file->Close());
  }
  MCT_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  MCT_RETURN_IF_ERROR(env->SyncDir(DirOf(path)));
  MetricsRegistry::Global().counter("mct.checkpoint.writes")->Inc();
  MetricsRegistry::Global().counter("mct.checkpoint.bytes")->Inc(image.size());
  return Status::OK();
}

Result<std::unique_ptr<MctDatabase>> OpenSnapshot(const std::string& path,
                                                  FileEnv* env,
                                                  uint64_t* last_lsn) {
  if (env == nullptr) env = FileEnv::Default();
  auto read = env->ReadFileToString(path);
  if (!read.ok()) {
    if (read.status().IsNotFound()) {
      return Status::IOError("cannot open " + path);
    }
    return read.status();
  }
  const std::string& data = *read;
  if (data.size() >= sizeof(kMagicV1) &&
      std::memcmp(data.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    return Status::Corruption(path +
                              " is a legacy v1 snapshot without a checksum; "
                              "re-save it with this build");
  }
  // magic + version + lsn + crc is the smallest possible image.
  if (data.size() < sizeof(kMagic) + 4 + 8 + 4 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + " is not an MCT snapshot");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  if (Crc32c(data.data(), data.size() - 4) != stored_crc) {
    MetricsRegistry::Global().counter("mct.snapshot.crc_failures")->Inc();
    return Status::Corruption(path + " failed checksum verification");
  }
  Reader header(std::string_view(data).substr(sizeof(kMagic)));
  MCT_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kFormatVersion) {
    return Status::Corruption(
        StrFormat("unsupported snapshot format version %u", version));
  }
  MCT_ASSIGN_OR_RETURN(uint64_t lsn, header.U64());
  if (last_lsn != nullptr) *last_lsn = lsn;
  std::string_view body(data.data() + sizeof(kMagic) + 4 + 8,
                        data.size() - sizeof(kMagic) - 4 - 8 - 4);
  return DeserializeBody(body);
}

}  // namespace mct

#include "mct/snapshot.h"

#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace mct {

namespace {

constexpr char kMagic[8] = {'M', 'C', 'T', 'S', 'N', 'A', 'P', '1'};

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  bool ok() const { return ok_; }

 private:
  void Raw(const void* p, size_t n) {
    if (ok_ && std::fwrite(p, 1, n, f_) != n) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}
  Result<uint8_t> U8() {
    uint8_t v;
    MCT_RETURN_IF_ERROR(Raw(&v, 1));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v;
    MCT_RETURN_IF_ERROR(Raw(&v, 4));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v;
    MCT_RETURN_IF_ERROR(Raw(&v, 8));
    return v;
  }
  Result<std::string> Str() {
    MCT_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (len > (1u << 28)) return Status::Corruption("snapshot string too big");
    std::string s(len, '\0');
    MCT_RETURN_IF_ERROR(Raw(s.data(), len));
    return s;
  }

 private:
  Status Raw(void* p, size_t n) {
    if (std::fread(p, 1, n, f_) != n) {
      return Status::Corruption("truncated snapshot");
    }
    return Status::OK();
  }
  std::FILE* f_;
};

}  // namespace

Status SaveSnapshot(MctDatabase& db, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  Writer w(f);
  std::fwrite(kMagic, 1, 8, f);
  w.U32(static_cast<uint32_t>(db.num_colors()));
  for (ColorId c = 0; c < db.num_colors(); ++c) w.Str(db.ColorName(c));

  // Live nodes (every element reachable in some color), dense re-ids.
  std::unordered_map<NodeId, uint32_t> dense;
  std::vector<NodeId> live;
  for (ColorId c = 0; c < db.num_colors(); ++c) {
    for (NodeId n : db.tree(c)->PreOrder()) {
      if (n == db.document()) continue;
      if (dense.emplace(n, static_cast<uint32_t>(live.size())).second) {
        live.push_back(n);
      }
    }
  }
  w.U32(static_cast<uint32_t>(live.size()));
  for (NodeId n : live) {
    w.U8(static_cast<uint8_t>(db.Kind(n)));
    w.Str(db.Tag(n));
    w.U8(db.store().HasContent(n) ? 1 : 0);
    if (db.store().HasContent(n)) w.Str(db.Content(n));
    const auto& attrs = db.Attrs(n);
    w.U32(static_cast<uint32_t>(attrs.size()));
    for (const NodeAttr& a : attrs) {
      w.Str(db.store().names().Name(a.name));
      w.Str(a.value);
    }
  }
  // Per color, edges in pre-order (parent id 0xFFFFFFFF = document).
  for (ColorId c = 0; c < db.num_colors(); ++c) {
    const ColoredTree* t = db.tree(c);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (NodeId n : t->PreOrder()) {
      if (n == db.document()) continue;
      NodeId p = t->Parent(n);
      uint32_t pd = (p == db.document()) ? 0xFFFFFFFFu : dense.at(p);
      edges.emplace_back(pd, dense.at(n));
    }
    w.U64(edges.size());
    for (const auto& [p, ch] : edges) {
      w.U32(p);
      w.U32(ch);
    }
  }
  bool ok = w.ok();
  if (std::fclose(f) != 0) ok = false;
  return ok ? Status::OK() : Status::IOError("short write to " + path);
}

Result<std::unique_ptr<MctDatabase>> OpenSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};
  char magic[8];
  if (std::fread(magic, 1, 8, f) != 8 ||
      std::memcmp(magic, kMagic, 8) != 0) {
    return Status::Corruption(path + " is not an MCT snapshot");
  }
  Reader r(f);
  auto db = std::make_unique<MctDatabase>();
  MCT_ASSIGN_OR_RETURN(uint32_t ncolors, r.U32());
  if (ncolors > kMaxColors) return Status::Corruption("bad color count");
  for (uint32_t i = 0; i < ncolors; ++i) {
    MCT_ASSIGN_OR_RETURN(std::string name, r.Str());
    MCT_RETURN_IF_ERROR(db->RegisterColor(name).status());
  }
  MCT_ASSIGN_OR_RETURN(uint32_t nnodes, r.U32());
  // Bound the count before the pre-allocation below: a bit-flipped header
  // must produce Corruption, not a multi-gigabyte allocation.
  if (nnodes > (1u << 27)) return Status::Corruption("bad node count");
  std::vector<NodeId> nodes(nnodes, kInvalidNodeId);
  for (uint32_t i = 0; i < nnodes; ++i) {
    MCT_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    MCT_ASSIGN_OR_RETURN(std::string tag, r.Str());
    if (kind != static_cast<uint8_t>(xml::NodeKind::kElement)) {
      return Status::Corruption("snapshot holds a non-element node");
    }
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateFreeElement(tag));
    nodes[i] = n;
    MCT_ASSIGN_OR_RETURN(uint8_t has_content, r.U8());
    if (has_content != 0) {
      MCT_ASSIGN_OR_RETURN(std::string content, r.Str());
      MCT_RETURN_IF_ERROR(db->SetContent(n, content));
    }
    MCT_ASSIGN_OR_RETURN(uint32_t nattrs, r.U32());
    for (uint32_t a = 0; a < nattrs; ++a) {
      MCT_ASSIGN_OR_RETURN(std::string name, r.Str());
      MCT_ASSIGN_OR_RETURN(std::string value, r.Str());
      MCT_RETURN_IF_ERROR(db->SetAttr(n, name, value));
    }
  }
  for (ColorId c = 0; c < ncolors; ++c) {
    MCT_ASSIGN_OR_RETURN(uint64_t nedges, r.U64());
    for (uint64_t e = 0; e < nedges; ++e) {
      MCT_ASSIGN_OR_RETURN(uint32_t pd, r.U32());
      MCT_ASSIGN_OR_RETURN(uint32_t cd, r.U32());
      if (cd >= nnodes || (pd != 0xFFFFFFFFu && pd >= nnodes)) {
        return Status::Corruption("snapshot edge out of range");
      }
      NodeId parent = (pd == 0xFFFFFFFFu) ? db->document() : nodes[pd];
      MCT_RETURN_IF_ERROR(db->AddNodeColor(nodes[cd], c, parent));
    }
  }
  return db;
}

}  // namespace mct

#include "mct/shard.h"

namespace mct {

void ShardMap::BuildColor(std::vector<uint64_t>* out, uint64_t n, uint64_t lo,
                          uint64_t hi) {
  if (hi <= lo) hi = lo + 1;  // degenerate tree: all shards but 0 empty
  const uint64_t span = hi - lo;
  out->resize(n + 1);
  for (uint64_t s = 0; s <= n; ++s) {
    // lo + span*s/n without overflow: span < 2^63 in practice (labels are
    // event counts * 2^16), but split the multiply anyway.
    (*out)[s] = lo + (span / n) * s + (span % n) * s / n;
  }
  // Guarantee exact cover regardless of rounding.
  (*out)[0] = lo;
  (*out)[n] = hi;
}

}  // namespace mct

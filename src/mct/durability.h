// Crash-safe durability: checkpoints + WAL replay.
//
// A durable database directory holds
//   checkpoint-<seq>.snap   checksummed full snapshots (mct/snapshot.h),
//                           each stamped with the last WAL LSN it covers
//   wal.log                 redo log of update statements (storage/wal.h)
//
// Invariants recovery relies on:
//  * checkpoints are written to a temp file, fsynced, renamed — so every
//    checkpoint-*.snap is either completely valid or detectably corrupt;
//  * WAL records are CRC'd and LSN-ordered — the log is valid up to a
//    well-defined prefix, and anything past it is a torn tail to truncate;
//  * a record with lsn <= the checkpoint's stamp is already reflected in
//    the checkpoint, so replay filters by LSN and is idempotent no matter
//    where between "checkpoint renamed" and "WAL reset" a crash landed.
//
// RecoverDatabase therefore converges: open the newest checkpoint that
// verifies, replay the WAL tail above its stamp, truncate any torn final
// record. Re-running it is a no-op, and a crash at any single point leaves
// the store recoverable to either the pre-update or post-update state.

#ifndef COLORFUL_XML_MCT_DURABILITY_H_
#define COLORFUL_XML_MCT_DURABILITY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "mct/database.h"
#include "mcx/evaluator.h"
#include "storage/file_env.h"
#include "storage/wal.h"

namespace mct {

struct RecoveredDatabase {
  std::unique_ptr<MctDatabase> db;
  /// LSN stamp of the checkpoint recovery started from (0 = none).
  uint64_t checkpoint_lsn = 0;
  /// First LSN the reopened WAL should assign.
  uint64_t next_lsn = 1;
  uint64_t replayed_records = 0;
  bool wal_tail_truncated = false;
};

/// Rebuilds the database state of `dir`: newest valid checkpoint + WAL tail
/// replay (see file header). Corrupt newer checkpoints fall back to older
/// ones; checkpoints present but none valid, an unrecognizable WAL, or a
/// replay failure are Corruption. An empty/missing dir recovers to an empty
/// database. `env` null uses the real filesystem.
/// Path of the write-ahead log inside a database directory (shared by
/// DurableSession and the serving layer's ColorServer).
std::string WalFilePath(const std::string& dir);

Result<RecoveredDatabase> RecoverDatabase(const std::string& dir,
                                          FileEnv* env = nullptr);

/// Atomically writes a new checkpoint of `db` covering WAL records up to
/// and including `last_lsn`, then prunes older checkpoints and stray temp
/// files. The WAL itself is not touched (callers reset it separately; a
/// crash in between is covered by LSN filtering).
Status CheckpointDatabase(MctDatabase& db, const std::string& dir,
                          uint64_t last_lsn, FileEnv* env = nullptr);

/// Process-wide writer exclusivity: at most one writer-capable handle
/// (DurableSession, or the serving layer's ColorServer) may have a given
/// (env, dir) open at a time. A second Acquire returns AlreadyExists until
/// the first lock is destroyed — turning the old "one writer session per
/// dir" comment into an enforced invariant instead of a latent assumption.
/// Keyed by env identity so independent in-memory FaultInjectionEnvs never
/// conflict. Move-only RAII.
class DirLock {
 public:
  static Result<DirLock> Acquire(FileEnv* env, const std::string& dir);

  DirLock() = default;
  DirLock(DirLock&& o) noexcept : env_(o.env_), dir_(std::move(o.dir_)) {
    o.env_ = nullptr;
  }
  DirLock& operator=(DirLock&& o) noexcept {
    if (this != &o) {
      Release();
      env_ = o.env_;
      dir_ = std::move(o.dir_);
      o.env_ = nullptr;
    }
    return *this;
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;
  ~DirLock() { Release(); }

  bool held() const { return env_ != nullptr; }

 private:
  DirLock(FileEnv* env, std::string dir) : env_(env), dir_(std::move(dir)) {}
  void Release();

  FileEnv* env_ = nullptr;
  std::string dir_;
};

/// One durably-persisted database: recovery on open, WAL-logged updates,
/// explicit checkpoints. Not thread-safe; holds the dir's writer lock for
/// its lifetime (a concurrent Open of the same (env, dir) fails with
/// AlreadyExists).
class DurableSession {
 public:
  /// Opens `dir` (creating it if missing), recovering existing state.
  static Result<std::unique_ptr<DurableSession>> Open(const std::string& dir,
                                                      FileEnv* env = nullptr);

  /// Replaces the current database with `db` and checkpoints immediately —
  /// the bootstrap step for data built out-of-band (XML load, fixtures),
  /// which bypasses the statement log.
  Status Bootstrap(std::unique_ptr<MctDatabase> db);

  /// Runs one statement; updates are WAL-logged and fsynced before this
  /// returns (set `sync_each` false to batch and call Sync() yourself).
  Result<mcx::QueryResult> Run(std::string_view text, ColorId default_color = 0,
                               bool sync_each = true);

  /// Fsyncs any batched WAL records (group commit boundary).
  Status Sync() { return wal_->Sync(); }

  /// Writes a checkpoint covering everything logged so far and resets the
  /// WAL. After this, recovery no longer needs the old log records.
  Status Checkpoint();

  MctDatabase* db() { return db_.get(); }
  uint64_t next_lsn() const { return wal_->next_lsn(); }
  const std::string& dir() const { return dir_; }

 private:
  DurableSession(std::string dir, FileEnv* env) : dir_(std::move(dir)), env_(env) {}

  std::string dir_;
  FileEnv* env_;
  DirLock lock_;
  std::unique_ptr<MctDatabase> db_;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_DURABILITY_H_

// Integrity validation: checks every invariant Definition 3.1/3.2 imposes
// on a live MctDatabase, plus the physical-layer invariants (color bitmask
// vs. tree membership, index/store agreement, interval-label consistency).
// Used by tests after mutation sequences and available to applications as a
// consistency check (fsck for MCT databases).

#ifndef COLORFUL_XML_MCT_VALIDATE_H_
#define COLORFUL_XML_MCT_VALIDATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mct/database.h"

namespace mct {

struct ValidationReport {
  /// Human-readable invariant violations; empty means consistent.
  std::vector<std::string> violations;
  uint64_t nodes_checked = 0;
  uint64_t edges_checked = 0;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

/// Validates the database. Invariants checked:
///  1. every colored tree is a rooted tree at the shared document node:
///     acyclic parent chains, consistent parent/first-child/sibling links;
///  2. node color bitmask == the set of trees containing the node
///     (Definition 3.2), and the document carries every color;
///  3. interval labels nest strictly (child inside parent, siblings
///     disjoint and ordered) and levels increment by one;
///  4. the tag index returns exactly the elements of each (color, tag);
///  5. content and attribute index probes find every stored value;
///  6. dead nodes are members of no tree.
ValidationReport ValidateDatabase(MctDatabase& db);

}  // namespace mct

#endif  // COLORFUL_XML_MCT_VALIDATE_H_

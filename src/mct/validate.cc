#include "mct/validate.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "common/strings.h"

namespace mct {

std::string ValidationReport::ToString() const {
  if (ok()) {
    return StrFormat("consistent (%llu nodes, %llu edges checked)",
                     static_cast<unsigned long long>(nodes_checked),
                     static_cast<unsigned long long>(edges_checked));
  }
  std::string out = StrFormat("%zu violation(s):\n", violations.size());
  for (const std::string& v : violations) {
    out += "  - " + v + "\n";
  }
  return out;
}

ValidationReport ValidateDatabase(MctDatabase& db) {
  ValidationReport report;
  auto fail = [&](std::string msg) {
    if (report.violations.size() < 50) {  // cap noise
      report.violations.push_back(std::move(msg));
    }
  };

  const NodeId doc = db.document();
  const size_t ncolors = db.num_colors();

  // Per-color structural invariants; collect per-node memberships.
  std::map<NodeId, ColorSet> membership;
  for (ColorId c = 0; c < ncolors; ++c) {
    ColoredTree* t = db.tree(c);
    const std::string& cname = db.ColorName(c);
    if (t->root() != doc) {
      fail("tree '" + cname + "' is not rooted at the document node");
      continue;
    }
    t->EnsureLabels();
    std::vector<NodeId> order = t->PreOrder();
    if (order.size() != t->size()) {
      fail(StrFormat("tree '%s': %zu of %zu nodes unreachable from the root",
                     cname.c_str(), t->size() - order.size(), t->size()));
    }
    std::unordered_set<NodeId> seen;
    for (NodeId n : order) {
      if (!seen.insert(n).second) {
        fail(StrFormat("tree '%s': node %u reached twice (cycle)",
                       cname.c_str(), n));
        break;
      }
      membership[n].Add(c);
      ++report.nodes_checked;
      NodeId prev = kInvalidNodeId;
      uint64_t prev_end = t->Start(n);
      for (NodeId k : t->Children(n)) {
        ++report.edges_checked;
        if (t->Parent(k) != n) {
          fail(StrFormat("tree '%s': child %u of %u has parent %u",
                         cname.c_str(), k, n, t->Parent(k)));
        }
        if (t->PrevSibling(k) != prev) {
          fail(StrFormat("tree '%s': sibling links of %u inconsistent",
                         cname.c_str(), k));
        }
        // Labels: strict nesting inside the parent, ordered and disjoint
        // across siblings, level increments.
        if (!(t->Start(k) > t->Start(n) && t->End(k) < t->End(n))) {
          fail(StrFormat("tree '%s': label of %u not nested in parent %u",
                         cname.c_str(), k, n));
        }
        if (t->Start(k) <= prev_end) {
          fail(StrFormat("tree '%s': label of %u overlaps its left sibling",
                         cname.c_str(), k));
        }
        if (t->Start(k) >= t->End(k)) {
          fail(StrFormat("tree '%s': degenerate interval on %u",
                         cname.c_str(), k));
        }
        if (t->Level(k) != t->Level(n) + 1) {
          fail(StrFormat("tree '%s': level of %u is not parent level + 1",
                         cname.c_str(), k));
        }
        prev = k;
        prev_end = t->End(k);
      }
    }
  }

  // Color bitmask agreement (Definition 3.2) and liveness.
  for (const auto& [n, colors] : membership) {
    if (!(db.Colors(n) == colors)) {
      fail(StrFormat(
          "node %u bitmask %llx disagrees with tree membership %llx", n,
          static_cast<unsigned long long>(db.Colors(n).mask()),
          static_cast<unsigned long long>(colors.mask())));
    }
    if (!db.store().Exists(n)) {
      fail(StrFormat("node %u is in a tree but marked dead", n));
    }
  }
  if (db.Colors(doc).count() != static_cast<int>(ncolors)) {
    fail("document node does not carry every color");
  }

  // Index agreement: the tag index returns exactly the member elements per
  // (color, tag); content/attr probes find their values.
  for (ColorId c = 0; c < ncolors; ++c) {
    ColoredTree* t = db.tree(c);
    std::map<std::string, std::set<NodeId>> by_tag;
    for (NodeId n : t->PreOrder()) {
      if (n == doc || db.Kind(n) != xml::NodeKind::kElement) continue;
      by_tag[db.Tag(n)].insert(n);
    }
    for (const auto& [tag, expect] : by_tag) {
      auto got_v = db.TagScan(c, tag);
      std::set<NodeId> got(got_v.begin(), got_v.end());
      if (got != expect) {
        fail(StrFormat("tag index for (%s, %s): %zu entries vs %zu members",
                       db.ColorName(c).c_str(), tag.c_str(), got.size(),
                       expect.size()));
      }
    }
  }
  for (const auto& [n, colors] : membership) {
    (void)colors;
    if (db.Kind(n) != xml::NodeKind::kElement) continue;
    if (db.store().HasContent(n)) {
      auto hits = db.ContentLookup(db.Tag(n), db.Content(n));
      if (std::find(hits.begin(), hits.end(), n) == hits.end()) {
        fail(StrFormat("content index misses node %u", n));
      }
    }
    for (const NodeAttr& a : db.Attrs(n)) {
      auto hits = db.AttrLookup(db.store().names().Name(a.name), a.value);
      if (std::find(hits.begin(), hits.end(), n) == hits.end()) {
        fail(StrFormat("attribute index misses node %u", n));
      }
    }
  }
  return report;
}

}  // namespace mct

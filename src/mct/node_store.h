// NodeStore: the shared node set N of an MCT database (Definition 3.2).
//
// Follows the Timber decomposition the paper implements on (Section 6.2):
// an element's *content* and *attributes* are stored exactly once, no matter
// how many colors the element has; per-color *structural* records live in
// ColoredTree. The resident image is a write-through cache of the backing
// record files, whose page counts provide the exact storage accounting of
// Table 1.
//
// MVCC (DESIGN.md §14): the resident image lives in a CowChunkVector so a
// snapshot version clones in O(nodes / 64) pointer copies and shares every
// chunk a later commit does not touch. The backing files are shared across
// the whole version lineage and written only by instances with
// write_through enabled — the single committer chain. Detached clones
// (reader snapshots, trial statement sandboxes) never touch the files, so
// any number of them may exist concurrently.

#ifndef COLORFUL_XML_MCT_NODE_STORE_H_
#define COLORFUL_XML_MCT_NODE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cow.h"
#include "common/result.h"
#include "mct/color.h"
#include "storage/record_file.h"
#include "storage/slotted_file.h"
#include "storage/storage_env.h"
#include "xml/dom.h"
#include "xml/name_pool.h"

namespace mct {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFFu;

/// One attribute of an element (stored once per node, like content).
struct NodeAttr {
  NameId name;
  std::string value;
};

class NodeStore {
 public:
  explicit NodeStore(StorageEnv* env);

  /// COW clone: shares every node chunk, the name pool, and the backing
  /// files with `o`. When `write_through` is false the clone is detached —
  /// no mutation ever reaches the backing files.
  NodeStore(const NodeStore& o, bool write_through);

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  /// Creates a node of `kind` named `name` (tag for elements, target for
  /// PIs; ignored for document/text/comment nodes).
  Result<NodeId> CreateNode(xml::NodeKind kind, std::string_view name);

  size_t size() const { return nodes_.count(); }
  bool Exists(NodeId n) const {
    const Node* node = nodes_.Find(n);
    return node != nullptr && !node->dead;
  }

  xml::NodeKind Kind(NodeId n) const { return nodes_.At(n).kind; }
  NameId Name(NodeId n) const { return nodes_.At(n).name; }
  const std::string& NameString(NodeId n) const {
    return names_->Name(nodes_.At(n).name);
  }

  /// dm:colors accessor (paper Section 3.2): the colors of a node.
  ColorSet Colors(NodeId n) const { return nodes_.At(n).colors; }
  void AddColor(NodeId n, ColorId c);
  void RemoveColor(NodeId n, ColorId c);

  /// The node's own text content ("" when none). An element's *string
  /// value* additionally concatenates descendants and is color dependent;
  /// that lives on MctDatabase.
  const std::string& Content(NodeId n) const { return nodes_.At(n).content; }
  bool HasContent(NodeId n) const { return nodes_.At(n).has_content; }
  Status SetContent(NodeId n, std::string_view text);

  /// Attribute access. Attribute "nodes" carry all the colors of their
  /// owning element (Definition 3.2), so they are stored as unsharded
  /// per-node payload.
  const std::vector<NodeAttr>& Attrs(NodeId n) const {
    return nodes_.At(n).attrs;
  }
  const std::string* FindAttr(NodeId n, std::string_view name) const;
  Status SetAttr(NodeId n, std::string_view name, std::string_view value);

  /// Marks a node dead (detached from every colored tree and dropped).
  void MarkDead(NodeId n) { nodes_.Mut(n).dead = true; }

  /// Interning mutates the pool, so it privatizes a shared one first.
  NamePool* mutable_names() { return OwnNames(); }
  const NamePool& names() const { return *names_; }

  /// Counts for Table 1.
  uint64_t num_elements() const { return num_elements_; }
  uint64_t num_attrs() const { return num_attrs_; }
  uint64_t num_content_nodes() const { return num_content_; }

  /// Bytes in the backing node / content / attribute files.
  uint64_t FileBytes() const {
    return backing_->node_file.SizeBytes() +
           backing_->content_file.SizeBytes() +
           backing_->attr_file.SizeBytes() +
           backing_->attr_value_file.SizeBytes();
  }

  /// COW chunks resident in this version (for the leak test baseline).
  size_t ResidentChunks() const { return nodes_.num_chunks(); }

 private:
  // Backing-file image of the fixed-size part of a node.
  struct DiskNodeRecord {
    uint8_t kind;
    uint8_t has_content;
    NameId name;
    uint64_t colors;
    SlotId content_slot;
  };

  struct Node {
    xml::NodeKind kind = xml::NodeKind::kElement;
    NameId name = kInvalidNameId;
    ColorSet colors;
    bool has_content = false;
    bool dead = false;
    std::string content;
    SlotId content_slot = kInvalidSlotId;
    std::vector<NodeAttr> attrs;
    std::vector<uint64_t> attr_records;  // indices into attr_file
    std::vector<SlotId> attr_value_slots;
  };

  // The backing files, shared by every version in one lineage. Only the
  // write-through committer chain appends/writes; clones discarded after a
  // failed statement can leave orphan records behind, which affects only
  // the Table-1 byte accounting — recovery replays checkpoint + WAL and
  // never reads these files back (DESIGN.md §14).
  struct Backing {
    explicit Backing(StorageEnv* env);
    RecordFile node_file;
    SlottedFile content_file;
    RecordFile attr_file;
    SlottedFile attr_value_file;
  };

  Status WriteNodeRecord(NodeId n);
  NamePool* OwnNames() {
    if (names_.use_count() > 1) names_ = std::make_shared<NamePool>(*names_);
    return names_.get();
  }

  std::shared_ptr<NamePool> names_;
  CowChunkVector<Node> nodes_;
  std::shared_ptr<Backing> backing_;
  bool write_through_ = true;
  uint64_t num_elements_ = 0;
  uint64_t num_attrs_ = 0;
  uint64_t num_content_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_NODE_STORE_H_

// NodeStore: the shared node set N of an MCT database (Definition 3.2).
//
// Follows the Timber decomposition the paper implements on (Section 6.2):
// an element's *content* and *attributes* are stored exactly once, no matter
// how many colors the element has; per-color *structural* records live in
// ColoredTree. The resident image (vectors/maps) is a write-through cache of
// the backing record files, whose page counts provide the exact storage
// accounting of Table 1.

#ifndef COLORFUL_XML_MCT_NODE_STORE_H_
#define COLORFUL_XML_MCT_NODE_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "mct/color.h"
#include "storage/record_file.h"
#include "storage/slotted_file.h"
#include "storage/storage_env.h"
#include "xml/dom.h"
#include "xml/name_pool.h"

namespace mct {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFFu;

/// One attribute of an element (stored once per node, like content).
struct NodeAttr {
  NameId name;
  std::string value;
};

class NodeStore {
 public:
  explicit NodeStore(StorageEnv* env);

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  /// Creates a node of `kind` named `name` (tag for elements, target for
  /// PIs; ignored for document/text/comment nodes).
  Result<NodeId> CreateNode(xml::NodeKind kind, std::string_view name);

  size_t size() const { return nodes_.size(); }
  bool Exists(NodeId n) const { return n < nodes_.size() && !nodes_[n].dead; }

  xml::NodeKind Kind(NodeId n) const { return nodes_[n].kind; }
  NameId Name(NodeId n) const { return nodes_[n].name; }
  const std::string& NameString(NodeId n) const {
    return names_.Name(nodes_[n].name);
  }

  /// dm:colors accessor (paper Section 3.2): the colors of a node.
  ColorSet Colors(NodeId n) const { return nodes_[n].colors; }
  void AddColor(NodeId n, ColorId c);
  void RemoveColor(NodeId n, ColorId c);

  /// The node's own text content ("" when none). An element's *string
  /// value* additionally concatenates descendants and is color dependent;
  /// that lives on MctDatabase.
  const std::string& Content(NodeId n) const { return nodes_[n].content; }
  bool HasContent(NodeId n) const { return nodes_[n].has_content; }
  Status SetContent(NodeId n, std::string_view text);

  /// Attribute access. Attribute "nodes" carry all the colors of their
  /// owning element (Definition 3.2), so they are stored as unsharded
  /// per-node payload.
  const std::vector<NodeAttr>& Attrs(NodeId n) const { return nodes_[n].attrs; }
  const std::string* FindAttr(NodeId n, std::string_view name) const;
  Status SetAttr(NodeId n, std::string_view name, std::string_view value);

  /// Marks a node dead (detached from every colored tree and dropped).
  void MarkDead(NodeId n) { nodes_[n].dead = true; }

  NamePool* mutable_names() { return &names_; }
  const NamePool& names() const { return names_; }

  /// Counts for Table 1.
  uint64_t num_elements() const { return num_elements_; }
  uint64_t num_attrs() const { return num_attrs_; }
  uint64_t num_content_nodes() const { return num_content_; }

  /// Bytes in the backing node / content / attribute files.
  uint64_t FileBytes() const {
    return node_file_.SizeBytes() + content_file_.SizeBytes() +
           attr_file_.SizeBytes() + attr_value_file_.SizeBytes();
  }

 private:
  // Backing-file image of the fixed-size part of a node.
  struct DiskNodeRecord {
    uint8_t kind;
    uint8_t has_content;
    NameId name;
    uint64_t colors;
    SlotId content_slot;
  };

  struct Node {
    xml::NodeKind kind;
    NameId name;
    ColorSet colors;
    bool has_content = false;
    bool dead = false;
    std::string content;
    SlotId content_slot = kInvalidSlotId;
    std::vector<NodeAttr> attrs;
    std::vector<uint64_t> attr_records;  // indices into attr_file_
    std::vector<SlotId> attr_value_slots;
  };

  Status WriteNodeRecord(NodeId n);

  NamePool names_;
  std::vector<Node> nodes_;
  RecordFile node_file_;
  SlottedFile content_file_;
  RecordFile attr_file_;
  SlottedFile attr_value_file_;
  uint64_t num_elements_ = 0;
  uint64_t num_attrs_ = 0;
  uint64_t num_content_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_NODE_STORE_H_

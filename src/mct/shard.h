// ShardMap: interval-range sharding of colored trees (DESIGN.md §17).
//
// The (start, end, level) labels give every colored tree a total order on
// starts, so a tree partitions naturally into N contiguous *start-label
// ranges*. A ShardMap freezes one such partition per color: shard s of
// color c owns every structural node whose start label falls in
// [boundary[c][s], boundary[c][s+1]). Because a full relabel spaces starts
// uniformly (kLabelGap apart), splitting the root's label interval into N
// equal subranges yields near-equal node counts per shard in O(1) per
// color — no histogram pass.
//
// Two properties make shards useful to the structural join operators:
//
//  * Run cutting. Any start-sorted node sequence (a TagScan, a stream of
//    descendant candidates) decomposes into at most N contiguous runs,
//    one per shard, by binary-searching the boundaries. Processing runs
//    in shard order and concatenating outputs reproduces the serial
//    document-order result exactly — the streaming merge is free.
//
//  * Interval pruning. A context ancestor with interval (a.start, a.end)
//    can only cover descendants whose starts lie inside it. A shard whose
//    range is disjoint from *every* context interval therefore emits
//    nothing and can be skipped without touching a node. The rule is
//    conservative (intersection is necessary, not sufficient), so pruning
//    never changes results.
//
// A ShardMap is immutable once built and shared across MVCC versions via
// shared_ptr; any structural mutation invalidates only the mutating
// version's pointer (shard-local invalidation), and the next query
// rebuilds lazily. shard_count = 1 disables the map entirely — every
// operator then takes its pre-shard code path, bit for bit.

#ifndef COLORFUL_XML_MCT_SHARD_H_
#define COLORFUL_XML_MCT_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "mct/color.h"

namespace mct {

/// mct.shard.* metrics family. Pointers resolved once; registrations
/// survive MetricsRegistry::ResetForTest so they never dangle.
inline Counter* ShardTasksCounter() {
  static Counter* c = MetricsRegistry::Global().counter("mct.shard.tasks");
  return c;
}
inline Counter* ShardPrunedCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.shard.pruned_shards");
  return c;
}
inline Counter* ShardMergeRowsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.shard.merge_rows");
  return c;
}

class ShardMap {
 public:
  /// Builds a map with `shard_count` shards over `color_count` colors.
  /// `root_range(c)` must return the label interval [start, end] of color
  /// c's root (labels clean). shard_count must be >= 2 — a 1-shard map is
  /// represented by *no* map.
  template <typename RootRangeFn>
  ShardMap(int shard_count, size_t color_count, RootRangeFn&& root_range)
      : shard_count_(shard_count) {
    boundaries_.resize(color_count);
    for (size_t c = 0; c < color_count; ++c) {
      auto [lo, hi] = root_range(static_cast<ColorId>(c));
      // Half-open label space [lo, hi+1): the root's own start is in shard
      // 0, the maximal end label in shard N-1.
      BuildColor(&boundaries_[c], static_cast<uint64_t>(shard_count_), lo,
                 hi + 1);
    }
  }

  int shard_count() const { return shard_count_; }
  size_t color_count() const { return boundaries_.size(); }

  /// [lo, hi) start-label range owned by `shard` in `color`.
  std::pair<uint64_t, uint64_t> Range(ColorId color, int shard) const {
    const std::vector<uint64_t>& b = boundaries_[color];
    return {b[static_cast<size_t>(shard)], b[static_cast<size_t>(shard) + 1]};
  }

  /// Shard owning start label `start` in `color`.
  int ShardOf(ColorId color, uint64_t start) const {
    const std::vector<uint64_t>& b = boundaries_[color];
    // upper_bound over the interior boundaries b[1..N-1].
    int lo = 0;
    int hi = shard_count_ - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (start < b[static_cast<size_t>(mid) + 1]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Cuts a start-sorted sequence of `n` elements (start of element i given
  /// by `start_of(i)`) into per-shard runs: returns N+1 cut indices with
  /// shard s owning [cuts[s], cuts[s+1]). Concatenating runs in shard order
  /// is the identity permutation — document order is preserved.
  template <typename StartFn>
  std::vector<size_t> CutRuns(ColorId color, size_t n,
                              StartFn&& start_of) const {
    const std::vector<uint64_t>& b = boundaries_[color];
    std::vector<size_t> cuts(static_cast<size_t>(shard_count_) + 1, n);
    cuts[0] = 0;
    size_t pos = 0;
    for (int s = 1; s < shard_count_; ++s) {
      // First index with start >= b[s], searching from the previous cut.
      size_t lo = pos;
      size_t hi = n;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (start_of(mid) < b[static_cast<size_t>(s)]) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pos = lo;
      cuts[static_cast<size_t>(s)] = pos;
    }
    return cuts;
  }

  /// The interval-pruning rule: true when no context interval
  /// [starts[i], ends_prefix_max over starts < hi] can contain a start in
  /// [lo, hi) — i.e. the shard range is disjoint from every interval and
  /// the shard's descendant run cannot produce output. `starts` must be
  /// sorted ascending and `prefix_max_end[i]` = max(end[0..i]).
  static bool RangeDisjoint(const std::vector<uint64_t>& starts,
                            const std::vector<uint64_t>& prefix_max_end,
                            uint64_t lo, uint64_t hi) {
    // An interval (a.start, a.end) intersects [lo, hi) iff
    // a.start < hi and a.end > lo. Among intervals with start < hi the
    // largest end is prefix_max_end[k-1]; if even that one ends at or
    // before lo, every interval is disjoint from the shard range.
    size_t k = 0;
    {
      size_t l = 0;
      size_t h = starts.size();
      while (l < h) {
        size_t mid = l + (h - l) / 2;
        if (starts[mid] < hi) {
          l = mid + 1;
        } else {
          h = mid;
        }
      }
      k = l;
    }
    if (k == 0) return true;
    return prefix_max_end[k - 1] <= lo;
  }

 private:
  static void BuildColor(std::vector<uint64_t>* out, uint64_t n, uint64_t lo,
                         uint64_t hi);

  int shard_count_;
  /// boundaries_[c] has shard_count_+1 entries; shard s of color c owns
  /// starts in [boundaries_[c][s], boundaries_[c][s+1]).
  std::vector<std::vector<uint64_t>> boundaries_;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_SHARD_H_

// Ingesting ordinary XML into an MctDatabase: a parsed document becomes a
// single-color hierarchy (a conventional XML database is exactly the
// single-color special case of MCT). Additional hierarchies can then be
// layered over the loaded nodes with next-color constructors.

#ifndef COLORFUL_XML_MCT_XML_LOAD_H_
#define COLORFUL_XML_MCT_XML_LOAD_H_

#include <string_view>

#include "common/result.h"
#include "mct/database.h"
#include "xml/dom.h"

namespace mct {

/// Loads `elem`'s subtree into `db` under `parent` in `color`; returns the
/// node created for `elem`. Text children become the element's content
/// (concatenated); comments and processing instructions are dropped (the
/// engine stores element structure and content, Section 6.2).
Result<NodeId> LoadXmlElement(MctDatabase* db, ColorId color, NodeId parent,
                              const xml::Element& elem);

/// Parses `text` and loads the document under db->document() in `color`.
/// Returns the root element's node.
Result<NodeId> LoadXmlText(MctDatabase* db, ColorId color,
                           std::string_view text);

}  // namespace mct

#endif  // COLORFUL_XML_MCT_XML_LOAD_H_

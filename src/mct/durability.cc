#include "mct/durability.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

#include "common/metrics.h"
#include "common/strings.h"
#include "mct/snapshot.h"

namespace mct {

namespace {

constexpr char kWalName[] = "wal.log";
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".snap";

std::string WalPath(const std::string& dir) { return dir + "/" + kWalName; }

std::string CheckpointPath(const std::string& dir, uint64_t seq) {
  return dir + "/" + kCheckpointPrefix +
         StrFormat("%06llu", static_cast<unsigned long long>(seq)) +
         kCheckpointSuffix;
}

/// Checkpoint sequence number from an entry name, or nullopt.
std::optional<uint64_t> ParseCheckpointName(const std::string& name) {
  size_t plen = sizeof(kCheckpointPrefix) - 1;
  size_t slen = sizeof(kCheckpointSuffix) - 1;
  if (name.size() <= plen + slen) return std::nullopt;
  if (name.compare(0, plen, kCheckpointPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - slen, slen, kCheckpointSuffix) != 0) {
    return std::nullopt;
  }
  uint64_t seq = 0;
  for (size_t i = plen; i < name.size() - slen; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

/// Checkpoint sequence numbers in `dir`, descending (newest first). A
/// missing directory lists as empty.
Result<std::vector<uint64_t>> ListCheckpoints(const std::string& dir,
                                              FileEnv* env) {
  auto entries = env->ListDir(dir);
  if (!entries.ok()) return std::vector<uint64_t>{};
  std::vector<uint64_t> seqs;
  for (const std::string& name : *entries) {
    if (auto seq = ParseCheckpointName(name)) seqs.push_back(*seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

/// Registry behind DirLock. Leaked singletons: locks held in static
/// objects must stay releasable through shutdown.
std::mutex& DirLockMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
std::set<std::pair<const FileEnv*, std::string>>& DirLockSet() {
  static auto* s = new std::set<std::pair<const FileEnv*, std::string>>;
  return *s;
}

}  // namespace

std::string WalFilePath(const std::string& dir) { return WalPath(dir); }

Result<DirLock> DirLock::Acquire(FileEnv* env, const std::string& dir) {
  std::lock_guard<std::mutex> lock(DirLockMutex());
  if (!DirLockSet().emplace(env, dir).second) {
    return Status::AlreadyExists("writer session already open on " + dir);
  }
  return DirLock(env, dir);
}

void DirLock::Release() {
  if (env_ == nullptr) return;
  std::lock_guard<std::mutex> lock(DirLockMutex());
  DirLockSet().erase({env_, dir_});
  env_ = nullptr;
}

Result<RecoveredDatabase> RecoverDatabase(const std::string& dir,
                                          FileEnv* env) {
  if (env == nullptr) env = FileEnv::Default();
  MetricsRegistry::Global().counter("mct.recovery.count")->Inc();

  RecoveredDatabase out;
  MCT_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListCheckpoints(dir, env));
  for (uint64_t seq : seqs) {
    uint64_t lsn = 0;
    auto db = OpenSnapshot(CheckpointPath(dir, seq), env, &lsn);
    if (db.ok()) {
      out.db = std::move(*db);
      out.checkpoint_lsn = lsn;
      break;
    }
    MetricsRegistry::Global()
        .counter("mct.recovery.checkpoint_rejects")
        ->Inc();
  }
  if (out.db == nullptr) {
    if (!seqs.empty()) {
      return Status::Corruption(
          StrFormat("no valid checkpoint among %zu in %s", seqs.size(),
                    dir.c_str()));
    }
    out.db = std::make_unique<MctDatabase>();
  }

  MCT_ASSIGN_OR_RETURN(WalContents wal, ReadWal(env, WalPath(dir)));
  if (wal.torn_tail) {
    MCT_RETURN_IF_ERROR(env->TruncateFile(WalPath(dir), wal.valid_bytes));
    out.wal_tail_truncated = true;
    MetricsRegistry::Global().counter("mct.recovery.torn_tails")->Inc();
  }
  for (const WalRecord& rec : wal.records) {
    if (rec.lsn <= out.checkpoint_lsn) continue;  // already in the checkpoint
    if (rec.type != WalRecordType::kUpdateStatement) {
      return Status::Corruption(
          StrFormat("WAL record %llu has unknown type %u",
                    static_cast<unsigned long long>(rec.lsn),
                    static_cast<unsigned>(rec.type)));
    }
    if (rec.payload.size() < sizeof(uint32_t)) {
      return Status::Corruption("WAL update record payload too short");
    }
    uint32_t default_color;
    std::memcpy(&default_color, rec.payload.data(), sizeof(default_color));
    std::string_view text(rec.payload.data() + sizeof(default_color),
                          rec.payload.size() - sizeof(default_color));
    mcx::EvalOptions opts;
    opts.default_color = default_color;
    mcx::Evaluator ev(out.db.get(), opts);
    auto r = ev.Run(text);
    if (!r.ok()) {
      return Status::Corruption(
          StrFormat("WAL replay failed at lsn %llu: %s",
                    static_cast<unsigned long long>(rec.lsn),
                    r.status().ToString().c_str()));
    }
    ++out.replayed_records;
  }
  MetricsRegistry::Global()
      .counter("mct.recovery.replayed_records")
      ->Inc(out.replayed_records);
  out.next_lsn = std::max(out.checkpoint_lsn, wal.max_lsn) + 1;
  return out;
}

Status CheckpointDatabase(MctDatabase& db, const std::string& dir,
                          uint64_t last_lsn, FileEnv* env) {
  if (env == nullptr) env = FileEnv::Default();
  MCT_ASSIGN_OR_RETURN(std::vector<uint64_t> seqs, ListCheckpoints(dir, env));
  uint64_t seq = seqs.empty() ? 1 : seqs.front() + 1;
  // SaveSnapshot is the atomic step: temp write + fsync + rename + dir sync.
  MCT_RETURN_IF_ERROR(SaveSnapshot(db, CheckpointPath(dir, seq), env, last_lsn));
  // Pruning is cleanup, not correctness: a crash here leaves extra files
  // that recovery skips (older checkpoints) or ignores (.tmp).
  auto entries = env->ListDir(dir);
  MCT_RETURN_IF_ERROR(entries.status());
  for (const std::string& name : *entries) {
    auto old = ParseCheckpointName(name);
    bool stray_tmp = name.size() > 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0;
    if ((old.has_value() && *old < seq) || stray_tmp) {
      MCT_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + name));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<DurableSession>> DurableSession::Open(
    const std::string& dir, FileEnv* env) {
  if (env == nullptr) env = FileEnv::Default();
  MCT_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
  auto session =
      std::unique_ptr<DurableSession>(new DurableSession(dir, env));
  MCT_ASSIGN_OR_RETURN(session->lock_, DirLock::Acquire(env, dir));
  MCT_ASSIGN_OR_RETURN(RecoveredDatabase rec, RecoverDatabase(dir, env));
  session->db_ = std::move(rec.db);
  MCT_ASSIGN_OR_RETURN(
      session->wal_,
      WalWriter::Open(env, WalPath(dir), rec.next_lsn, /*truncate=*/false));
  return session;
}

Status DurableSession::Bootstrap(std::unique_ptr<MctDatabase> db) {
  db_ = std::move(db);
  return Checkpoint();
}

Result<mcx::QueryResult> DurableSession::Run(std::string_view text,
                                             ColorId default_color,
                                             bool sync_each) {
  mcx::EvalOptions opts;
  opts.default_color = default_color;
  opts.wal = wal_.get();
  opts.wal_sync_each = sync_each;
  mcx::Evaluator ev(db_.get(), opts);
  return ev.Run(text);
}

Status DurableSession::Checkpoint() {
  // Everything appended so far must be durable before the checkpoint claims
  // to cover it.
  MCT_RETURN_IF_ERROR(wal_->Sync());
  uint64_t covered = wal_->next_lsn() - 1;
  MCT_RETURN_IF_ERROR(CheckpointDatabase(*db_, dir_, covered, env_));
  // Reset the log. A crash before (or during) this reopen merely leaves old
  // records the next recovery filters out by LSN.
  MCT_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(env_, WalPath(dir_), wal_->next_lsn(),
                            /*truncate=*/true));
  return Status::OK();
}

}  // namespace mct

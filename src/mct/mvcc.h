// MvccManager: epoch-stamped snapshot versions of one MctDatabase lineage
// (DESIGN.md §14).
//
// Life of an epoch:
//   1. the committer clones the head version (MctDatabase::CowClone),
//      applies a group of update statements, makes them durable (WAL
//      fsync), and Publish()es the result — the new head, epoch = old + 1;
//   2. reader sessions PinHead() and run every query of their transaction
//      against that frozen version; published versions are never mutated,
//      so readers take no locks on the data;
//   3. once a pre-head version has no pins, Retire() drops the manager's
//      reference. COW chunks the retired version privatized are freed the
//      moment the last snapshot sharing them goes away (plain shared_ptr
//      reclamation — there is no version chain to traverse).
//
// Publish order is the commit linearization point: head_epoch() is
// monotone, and a snapshot pinned at epoch e observes exactly the prefix
// of commits with epoch <= e, all-or-nothing.
//
// Thread-safe. Metrics (mct.mvcc.*) are written with Set() from
// authoritative internal state under the manager mutex, so a concurrent
// MetricsRegistry::ResetForTest is self-healing: the next transition
// rewrites every gauge from truth instead of compounding a lost delta.

#ifndef COLORFUL_XML_MCT_MVCC_H_
#define COLORFUL_XML_MCT_MVCC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mct/database.h"

namespace mct {

class MvccManager {
 public:
  /// RAII snapshot pin: holds one version alive and counted until
  /// destroyed. Move-only.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept { *this = std::move(o); }
    Pin& operator=(Pin&& o) noexcept {
      Release();
      mgr_ = o.mgr_;
      epoch_ = o.epoch_;
      db_ = std::move(o.db_);
      o.mgr_ = nullptr;
      o.epoch_ = 0;
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    /// Epoch of the pinned version; 0 when empty.
    uint64_t epoch() const { return epoch_; }
    /// The frozen snapshot; null when empty.
    const MctDatabase* db() const { return db_.get(); }
    std::shared_ptr<const MctDatabase> shared_db() const { return db_; }
    bool valid() const { return db_ != nullptr; }

    void Release();

   private:
    friend class MvccManager;
    Pin(MvccManager* mgr, uint64_t epoch,
        std::shared_ptr<const MctDatabase> db)
        : mgr_(mgr), epoch_(epoch), db_(std::move(db)) {}

    MvccManager* mgr_ = nullptr;
    uint64_t epoch_ = 0;
    std::shared_ptr<const MctDatabase> db_;
  };

  MvccManager() = default;
  MvccManager(const MvccManager&) = delete;
  MvccManager& operator=(const MvccManager&) = delete;

  /// Installs the initial version as `epoch` (recovery seeds with the
  /// number of WAL-replayed commits + 1 so epochs keep advancing across
  /// restarts). Must be called exactly once, before any other method.
  void Seed(std::shared_ptr<const MctDatabase> db, uint64_t epoch);

  /// Pins the newest published version.
  Pin PinHead();

  /// The newest published version without pinning (the committer's clone
  /// base — safe because the returned shared_ptr keeps it alive anyway).
  std::shared_ptr<const MctDatabase> Head();
  uint64_t head_epoch() const;

  /// Publishes `db` as the next epoch and retires unpinned predecessors.
  /// Returns the new epoch. The caller must not mutate `db` afterwards —
  /// it is now a frozen snapshot readers run against.
  uint64_t Publish(std::shared_ptr<const MctDatabase> db);

  /// Oldest epoch still held (pinned or head) — the plan-cache pruning
  /// horizon: entries stamped below it can never be hit again.
  uint64_t oldest_live_epoch() const;

  /// Observability (also mirrored into mct.mvcc.* gauges).
  size_t live_versions() const;
  int64_t pinned_snapshots() const;

 private:
  struct Version {
    std::shared_ptr<const MctDatabase> db;
    int64_t pins = 0;
  };

  void Unpin(uint64_t epoch);
  /// Drops pre-head versions with no pins. Caller holds mu_; retired
  /// references are appended to `out` so the caller destroys them after
  /// unlocking (chunk reclamation can be a large free cascade).
  void RetireLocked(std::vector<std::shared_ptr<const MctDatabase>>* out);
  void UpdateGaugesLocked();

  mutable std::mutex mu_;
  std::map<uint64_t, Version> versions_;
  uint64_t head_epoch_ = 0;
  int64_t total_pins_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_MVCC_H_

#include "mct/node_store.h"

#include <cstring>

namespace mct {

namespace {

// Fixed-size attribute record in the backing file: name id plus the slot of
// the value string.
struct DiskAttrRecord {
  NameId name;
  SlotId value_slot;
};

}  // namespace

NodeStore::NodeStore(StorageEnv* env)
    : node_file_(env->pool(), sizeof(DiskNodeRecord)),
      content_file_(env->pool()),
      attr_file_(env->pool(), sizeof(DiskAttrRecord)),
      attr_value_file_(env->pool()) {}

Result<NodeId> NodeStore::CreateNode(xml::NodeKind kind,
                                     std::string_view name) {
  if (nodes_.size() >= kInvalidNodeId) {
    return Status::OutOfRange("node store full");
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.kind = kind;
  node.name = names_.Intern(name);
  nodes_.push_back(std::move(node));
  if (kind == xml::NodeKind::kElement) ++num_elements_;
  // Backing file record (write-through).
  DiskNodeRecord rec{};
  rec.kind = static_cast<uint8_t>(kind);
  rec.has_content = 0;
  rec.name = nodes_[id].name;
  rec.colors = 0;
  rec.content_slot = kInvalidSlotId;
  MCT_ASSIGN_OR_RETURN(uint64_t idx, node_file_.Append(&rec));
  (void)idx;  // node ids are dense, so idx == id by construction
  return id;
}

Status NodeStore::WriteNodeRecord(NodeId n) {
  const Node& node = nodes_[n];
  DiskNodeRecord rec{};
  rec.kind = static_cast<uint8_t>(node.kind);
  rec.has_content = node.has_content ? 1 : 0;
  rec.name = node.name;
  rec.colors = node.colors.mask();
  rec.content_slot = node.content_slot;
  return node_file_.Write(n, &rec);
}

void NodeStore::AddColor(NodeId n, ColorId c) {
  nodes_[n].colors.Add(c);
  // Color membership is a property of the node record (Section 6.2: links
  // from the shared content back to each per-color structural node).
  Status s = WriteNodeRecord(n);
  (void)s;
}

void NodeStore::RemoveColor(NodeId n, ColorId c) {
  nodes_[n].colors.Remove(c);
  Status s = WriteNodeRecord(n);
  (void)s;
}

Status NodeStore::SetContent(NodeId n, std::string_view text) {
  Node& node = nodes_[n];
  if (!node.has_content) {
    ++num_content_;
    node.has_content = true;
    MCT_ASSIGN_OR_RETURN(node.content_slot, content_file_.Append(text));
  } else {
    MCT_ASSIGN_OR_RETURN(node.content_slot,
                         content_file_.Update(node.content_slot, text));
  }
  node.content = std::string(text);
  return WriteNodeRecord(n);
}

const std::string* NodeStore::FindAttr(NodeId n, std::string_view name) const {
  NameId id = names_.Lookup(name);
  if (id == kInvalidNameId) return nullptr;
  for (const NodeAttr& a : nodes_[n].attrs) {
    if (a.name == id) return &a.value;
  }
  return nullptr;
}

Status NodeStore::SetAttr(NodeId n, std::string_view name,
                          std::string_view value) {
  Node& node = nodes_[n];
  NameId id = names_.Intern(name);
  for (size_t i = 0; i < node.attrs.size(); ++i) {
    if (node.attrs[i].name == id) {
      node.attrs[i].value = std::string(value);
      MCT_ASSIGN_OR_RETURN(
          node.attr_value_slots[i],
          attr_value_file_.Update(node.attr_value_slots[i], value));
      DiskAttrRecord rec{id, node.attr_value_slots[i]};
      return attr_file_.Write(node.attr_records[i], &rec);
    }
  }
  ++num_attrs_;
  node.attrs.push_back(NodeAttr{id, std::string(value)});
  MCT_ASSIGN_OR_RETURN(SlotId vslot, attr_value_file_.Append(value));
  node.attr_value_slots.push_back(vslot);
  DiskAttrRecord rec{id, vslot};
  MCT_ASSIGN_OR_RETURN(uint64_t ridx, attr_file_.Append(&rec));
  node.attr_records.push_back(ridx);
  return Status::OK();
}

}  // namespace mct

#include "mct/node_store.h"

#include <cstring>

namespace mct {

namespace {

// Fixed-size attribute record in the backing file: name id plus the slot of
// the value string.
struct DiskAttrRecord {
  NameId name;
  SlotId value_slot;
};

}  // namespace

NodeStore::Backing::Backing(StorageEnv* env)
    : node_file(env->pool(), sizeof(DiskNodeRecord)),
      content_file(env->pool()),
      attr_file(env->pool(), sizeof(DiskAttrRecord)),
      attr_value_file(env->pool()) {}

NodeStore::NodeStore(StorageEnv* env)
    : names_(std::make_shared<NamePool>()),
      backing_(std::make_shared<Backing>(env)) {}

NodeStore::NodeStore(const NodeStore& o, bool write_through)
    : names_(o.names_),
      nodes_(o.nodes_),
      backing_(o.backing_),
      write_through_(write_through),
      num_elements_(o.num_elements_),
      num_attrs_(o.num_attrs_),
      num_content_(o.num_content_) {}

Result<NodeId> NodeStore::CreateNode(xml::NodeKind kind,
                                     std::string_view name) {
  if (nodes_.count() >= kInvalidNodeId) {
    return Status::OutOfRange("node store full");
  }
  NodeId id = static_cast<NodeId>(nodes_.count());
  Node& node = nodes_.Put(id);
  node.kind = kind;
  node.name = OwnNames()->Intern(name);
  if (kind == xml::NodeKind::kElement) ++num_elements_;
  if (write_through_) {
    // Backing file record. Node ids are dense within the committer chain;
    // records orphaned by a discarded trial clone only skew the returned
    // index, which accounting tolerates (recovery never reads this file).
    DiskNodeRecord rec{};
    rec.kind = static_cast<uint8_t>(kind);
    rec.has_content = 0;
    rec.name = node.name;
    rec.colors = 0;
    rec.content_slot = kInvalidSlotId;
    MCT_ASSIGN_OR_RETURN(uint64_t idx, backing_->node_file.Append(&rec));
    (void)idx;
  }
  return id;
}

Status NodeStore::WriteNodeRecord(NodeId n) {
  if (!write_through_) return Status::OK();
  const Node& node = nodes_.At(n);
  DiskNodeRecord rec{};
  rec.kind = static_cast<uint8_t>(node.kind);
  rec.has_content = node.has_content ? 1 : 0;
  rec.name = node.name;
  rec.colors = node.colors.mask();
  rec.content_slot = node.content_slot;
  if (n >= backing_->node_file.num_records()) return Status::OK();
  return backing_->node_file.Write(n, &rec);
}

void NodeStore::AddColor(NodeId n, ColorId c) {
  nodes_.Mut(n).colors.Add(c);
  // Color membership is a property of the node record (Section 6.2: links
  // from the shared content back to each per-color structural node).
  Status s = WriteNodeRecord(n);
  (void)s;
}

void NodeStore::RemoveColor(NodeId n, ColorId c) {
  nodes_.Mut(n).colors.Remove(c);
  Status s = WriteNodeRecord(n);
  (void)s;
}

Status NodeStore::SetContent(NodeId n, std::string_view text) {
  Node& node = nodes_.Mut(n);
  if (!node.has_content) {
    ++num_content_;
    node.has_content = true;
    if (write_through_) {
      MCT_ASSIGN_OR_RETURN(node.content_slot,
                           backing_->content_file.Append(text));
    }
  } else if (write_through_ && node.content_slot != kInvalidSlotId) {
    MCT_ASSIGN_OR_RETURN(
        node.content_slot,
        backing_->content_file.Update(node.content_slot, text));
  }
  node.content = std::string(text);
  return WriteNodeRecord(n);
}

const std::string* NodeStore::FindAttr(NodeId n, std::string_view name) const {
  NameId id = names_->Lookup(name);
  if (id == kInvalidNameId) return nullptr;
  for (const NodeAttr& a : nodes_.At(n).attrs) {
    if (a.name == id) return &a.value;
  }
  return nullptr;
}

Status NodeStore::SetAttr(NodeId n, std::string_view name,
                          std::string_view value) {
  NameId id = OwnNames()->Intern(name);
  Node& node = nodes_.Mut(n);
  for (size_t i = 0; i < node.attrs.size(); ++i) {
    if (node.attrs[i].name == id) {
      node.attrs[i].value = std::string(value);
      if (write_through_ && node.attr_value_slots[i] != kInvalidSlotId) {
        MCT_ASSIGN_OR_RETURN(
            node.attr_value_slots[i],
            backing_->attr_value_file.Update(node.attr_value_slots[i], value));
        DiskAttrRecord rec{id, node.attr_value_slots[i]};
        return backing_->attr_file.Write(node.attr_records[i], &rec);
      }
      return Status::OK();
    }
  }
  ++num_attrs_;
  node.attrs.push_back(NodeAttr{id, std::string(value)});
  if (write_through_) {
    MCT_ASSIGN_OR_RETURN(SlotId vslot, backing_->attr_value_file.Append(value));
    node.attr_value_slots.push_back(vslot);
    DiskAttrRecord rec{id, vslot};
    MCT_ASSIGN_OR_RETURN(uint64_t ridx, backing_->attr_file.Append(&rec));
    node.attr_records.push_back(ridx);
  } else {
    node.attr_value_slots.push_back(kInvalidSlotId);
    node.attr_records.push_back(0);
  }
  return Status::OK();
}

}  // namespace mct

#include "mct/mvcc.h"

#include <cassert>

#include "common/cow.h"
#include "common/metrics.h"

namespace mct {

namespace {

Gauge* LiveVersionsGauge() {
  static Gauge* g = MetricsRegistry::Global().gauge("mct.mvcc.live_versions");
  return g;
}
Gauge* PinnedGauge() {
  static Gauge* g =
      MetricsRegistry::Global().gauge("mct.mvcc.pinned_snapshots");
  return g;
}
Gauge* CowChunksGauge() {
  static Gauge* g = MetricsRegistry::Global().gauge("mct.mvcc.cow_chunks");
  return g;
}
Counter* PublishedCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.mvcc.epochs_published");
  return c;
}
Counter* RetiredCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.mvcc.epochs_retired");
  return c;
}

}  // namespace

void MvccManager::Pin::Release() {
  if (mgr_ != nullptr) {
    // Drop the snapshot reference before unpinning so retirement inside
    // Unpin sees the true remaining sharing.
    db_.reset();
    MvccManager* m = mgr_;
    mgr_ = nullptr;
    m->Unpin(epoch_);
    epoch_ = 0;
  } else {
    db_.reset();
  }
}

void MvccManager::Seed(std::shared_ptr<const MctDatabase> db, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(versions_.empty());
  assert(epoch > 0);
  versions_[epoch] = Version{std::move(db), 0};
  head_epoch_ = epoch;
  UpdateGaugesLocked();
}

MvccManager::Pin MvccManager::PinHead() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(head_epoch_ != 0);
  Version& v = versions_.at(head_epoch_);
  ++v.pins;
  ++total_pins_;
  UpdateGaugesLocked();
  return Pin(this, head_epoch_, v.db);
}

std::shared_ptr<const MctDatabase> MvccManager::Head() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(head_epoch_ != 0);
  return versions_.at(head_epoch_).db;
}

uint64_t MvccManager::head_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_epoch_;
}

uint64_t MvccManager::Publish(std::shared_ptr<const MctDatabase> db) {
  std::vector<std::shared_ptr<const MctDatabase>> retired;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(head_epoch_ != 0);
    epoch = head_epoch_ + 1;
    versions_[epoch] = Version{std::move(db), 0};
    head_epoch_ = epoch;
    PublishedCounter()->Inc();
    RetireLocked(&retired);
    UpdateGaugesLocked();
  }
  retired.clear();  // destroy outside the lock: chunk frees can cascade
  return epoch;
}

void MvccManager::Unpin(uint64_t epoch) {
  std::vector<std::shared_ptr<const MctDatabase>> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = versions_.find(epoch);
    assert(it != versions_.end());
    --it->second.pins;
    --total_pins_;
    RetireLocked(&retired);
    UpdateGaugesLocked();
  }
  retired.clear();
}

void MvccManager::RetireLocked(
    std::vector<std::shared_ptr<const MctDatabase>>* out) {
  for (auto it = versions_.begin(); it != versions_.end();) {
    if (it->first >= head_epoch_ || it->second.pins > 0) {
      ++it;
      continue;
    }
    out->push_back(std::move(it->second.db));
    it = versions_.erase(it);
    RetiredCounter()->Inc();
  }
}

void MvccManager::UpdateGaugesLocked() {
  LiveVersionsGauge()->Set(static_cast<int64_t>(versions_.size()));
  PinnedGauge()->Set(total_pins_);
  CowChunksGauge()->Set(CowLiveChunks());
}

uint64_t MvccManager::oldest_live_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.empty() ? 0 : versions_.begin()->first;
}

size_t MvccManager::live_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

int64_t MvccManager::pinned_snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_pins_;
}

}  // namespace mct

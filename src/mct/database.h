// MctDatabase: the public entry point of the library — a multi-colored tree
// database (Definition 3.2): a shared node set, a palette of colors, and one
// colored tree per color, all rooted at a single document node that carries
// every color.
//
// The class exposes:
//  * the paper's color-aware accessors (Section 3.2): Parent(n,c),
//    Children(n,c), StringValue(n,c), TypedValue(n,c), Colors(n);
//  * both constructor families (Section 3.3): first-color constructors
//    (CreateElement / CreateFreeElement, a fresh identity) and next-color
//    constructors (AddNodeColor, same identity gaining a color and tree
//    relationships in it);
//  * index-backed scans used by the physical query operators; and
//  * the storage statistics behind Table 1.
//
// A conventional XML database is the single-color special case, which is
// how the shallow and deep baselines of Section 7 are represented.
//
// MVCC (DESIGN.md §14): CowClone() snapshots the whole database in time
// proportional to (nodes / 64): node and structural chunks are shared
// copy-on-write, and the tag/content/attribute indexes are *resident
// images* — hash maps of immutable posting lists shared between versions
// and copied per-bucket on write. The query path reads only the resident
// state, never the (single-threaded) buffer pool; the backing files and
// B+Trees survive purely for Table-1 accounting, written by the
// write-through committer lineage alone. Index entries exist only for
// nodes carrying at least one color, so query-side constructor scratch
// (free elements built by RETURN clauses on detached reader clones) never
// touches the shared images.

#ifndef COLORFUL_XML_MCT_DATABASE_H_
#define COLORFUL_XML_MCT_DATABASE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "index/bptree.h"
#include "mct/color.h"
#include "mct/colored_tree.h"
#include "mct/node_store.h"
#include "mct/shard.h"
#include "storage/storage_env.h"

namespace mct {

class ThreadPool;

/// Storage statistics in the shape of the paper's Table 1.
struct DatabaseStats {
  uint64_t num_elements = 0;
  uint64_t num_attrs = 0;
  uint64_t num_content_nodes = 0;
  /// Structural-node records summed over every colored tree (an element
  /// with k colors contributes k).
  uint64_t num_struct_nodes = 0;
  uint64_t data_bytes = 0;
  uint64_t index_bytes = 0;

  double DataMBytes() const { return static_cast<double>(data_bytes) / (1u << 20); }
  double IndexMBytes() const { return static_cast<double>(index_bytes) / (1u << 20); }
};

class MctDatabase {
 public:
  /// Creates an empty database over an in-memory storage environment.
  MctDatabase();
  /// Creates an empty database over a caller-provided environment.
  explicit MctDatabase(std::unique_ptr<StorageEnv> env);
  ~MctDatabase();

  MctDatabase(const MctDatabase&) = delete;
  MctDatabase& operator=(const MctDatabase&) = delete;

  /// COW snapshot of this database. The clone shares node/structural
  /// chunks and index posting lists with its source and privatizes only
  /// what it subsequently writes. `write_through` = the clone continues
  /// the committer lineage (its mutations reach the backing files);
  /// detached clones (reader snapshots, trial statement sandboxes) leave
  /// the files alone and may be discarded freely.
  std::unique_ptr<MctDatabase> CowClone(bool write_through) const;

  // ---- Palette ----

  /// Registers a color; its colored tree is created rooted at the shared
  /// document node (which thereby gains the color).
  Result<ColorId> RegisterColor(std::string_view name);
  /// Id of a registered color or kInvalidColorId.
  ColorId LookupColor(std::string_view name) const {
    return colors_.Lookup(name);
  }
  const std::string& ColorName(ColorId c) const { return colors_.Name(c); }
  size_t num_colors() const { return colors_.size(); }

  /// The shared document node, root of every colored tree.
  NodeId document() const { return document_; }

  // ---- Constructors (Section 3.3) ----

  /// First-color constructor: a new element with a fresh identity, colored
  /// `color` and appended under `parent` (which must be in that tree).
  Result<NodeId> CreateElement(ColorId color, NodeId parent,
                               std::string_view tag);

  /// A new element with no color yet — MCXQuery constructor expressions
  /// build fragments from these before createColor attaches them.
  Result<NodeId> CreateFreeElement(std::string_view tag);

  /// Next-color constructor: `node` (same identity) gains `color` and is
  /// inserted under `parent` in that tree, before `before` (or appended).
  /// AlreadyExists when `node` is already in the tree — MCXQuery's
  /// duplicate-node dynamic error.
  Status AddNodeColor(NodeId node, ColorId color, NodeId parent,
                      NodeId before = kInvalidNodeId);

  /// Detaches the subtree at `node` from `color`; every detached node loses
  /// the color, and nodes left with no colors are dropped from the store.
  Status RemoveNodeColor(NodeId node, ColorId color);

  // ---- Node payload ----

  Status SetContent(NodeId node, std::string_view text);
  const std::string& Content(NodeId node) const { return store_.Content(node); }
  Status SetAttr(NodeId node, std::string_view name, std::string_view value);
  const std::string* FindAttr(NodeId node, std::string_view name) const {
    return store_.FindAttr(node, name);
  }
  const std::vector<NodeAttr>& Attrs(NodeId node) const {
    return store_.Attrs(node);
  }
  xml::NodeKind Kind(NodeId node) const { return store_.Kind(node); }
  const std::string& Tag(NodeId node) const { return store_.NameString(node); }
  NameId TagId(NodeId node) const { return store_.Name(node); }

  // ---- Accessors (Section 3.2) ----

  /// dm:colors — the colors of a node.
  ColorSet Colors(NodeId node) const { return store_.Colors(node); }

  /// dm:parent with color; nullopt when node and color are not
  /// color-compatible ("empty sequence" in the paper), kInvalidNodeId never
  /// escapes.
  std::optional<NodeId> Parent(NodeId node, ColorId color) const;

  /// dm:children with color; empty when not color-compatible.
  std::vector<NodeId> Children(NodeId node, ColorId color) const;

  /// dm:string-value with color: own content plus descendant content in the
  /// local order of `color`; nullopt when not color-compatible.
  std::optional<std::string> StringValue(NodeId node, ColorId color) const;

  /// dm:typed-value with color: string value parsed as xs:double.
  std::optional<double> TypedValue(NodeId node, ColorId color) const;

  // ---- Query support ----

  ColoredTree* tree(ColorId c) { return trees_[c].get(); }
  const ColoredTree* tree(ColorId c) const { return trees_[c].get(); }

  /// All elements with `tag` in `color`, sorted by local document order.
  /// With an active shard map and a pool, the order-restoring sort runs as
  /// one task per shard (bucket by owning shard, sort buckets in parallel,
  /// concatenate in shard order) — the result is byte-identical to the
  /// serial sort because shard ranges are disjoint and ordered.
  std::vector<NodeId> TagScan(ColorId color, std::string_view tag,
                              ThreadPool* pool = nullptr);

  // ---- Interval-range sharding (DESIGN.md §17) ----

  /// Sets the number of intra-process shards (clamped to [1, 64]).
  /// 1 disables sharding entirely: shard_map() stays null and every
  /// operator takes its pre-shard code path. Takes effect at the next
  /// EnsureShardMap(); safe only between statements (like EnsureLabels).
  void SetShardCount(int n);
  int shard_count() const { return shard_count_; }

  /// Builds (or reuses) the shard map for the current labels. Called from
  /// the single-threaded prologue of the structural operators, alongside
  /// EnsureLabels(). Returns nullptr when shard_count() <= 1.
  const ShardMap* EnsureShardMap();

  /// The current shard map, or nullptr when sharding is off or the map has
  /// been invalidated by a structural mutation and not yet rebuilt.
  const ShardMap* shard_map() const { return shard_map_.get(); }

  /// Elements with `tag` whose own content equals `value`
  /// (content-index probe; color-agnostic).
  std::vector<NodeId> ContentLookup(std::string_view tag,
                                    std::string_view value) const;

  /// Elements having attribute `name` = `value` (attribute-index probe).
  std::vector<NodeId> AttrLookup(std::string_view name,
                                 std::string_view value) const;

  /// Number of elements of `tag` in `color` (for planner selectivity).
  size_t TagCount(ColorId color, std::string_view tag) const;

  NodeStore* mutable_store() { return &store_; }
  const NodeStore& store() const { return store_; }

  /// Table 1 statistics.
  DatabaseStats Stats() const;

  /// COW chunks resident in this version, store plus every colored tree —
  /// the baseline the epoch-retirement leak test compares CowLiveChunks()
  /// against once all other versions are retired.
  size_t ResidentChunks() const;

  /// The 32-bit value hash the content/attribute indexes key on. Public so
  /// tests can engineer colliding values and assert the lookup recheck.
  static uint32_t HashValue(std::string_view s);

 private:
  // Resident index image: immutable posting lists (sorted by node id)
  // behind a per-version map. Mutation copies the map when shared with
  // another version (bucket-shallow) and always replaces the touched
  // posting list, so published versions stay frozen.
  using PostingList = std::shared_ptr<const std::vector<NodeId>>;
  using IndexMap = std::unordered_map<uint64_t, PostingList>;

  MctDatabase(const MctDatabase& o, bool write_through);

  static uint64_t TagKey(ColorId color, NameId tag) {
    return (uint64_t{color} << 32) | tag;
  }
  static uint64_t ValueKey(NameId name, uint32_t hash) {
    return (uint64_t{name} << 32) | hash;
  }
  static void ImageInsert(std::shared_ptr<IndexMap>* image, uint64_t key,
                          NodeId n);
  static void ImageErase(std::shared_ptr<IndexMap>* image, uint64_t key,
                         NodeId n);
  static const std::vector<NodeId>* ImageFind(const IndexMap& image,
                                              uint64_t key);

  /// True when the node's content/attribute values are index-visible (it
  /// carries at least one color).
  bool Indexed(NodeId n) const { return !store_.Colors(n).empty(); }

  std::shared_ptr<StorageEnv> env_;
  NodeStore store_;
  ColorRegistry colors_;
  std::vector<std::unique_ptr<ColoredTree>> trees_;
  NodeId document_ = kInvalidNodeId;
  // Accounting B+Trees (Table 1 index_bytes), shared across the version
  // lineage and maintained best-effort by the write-through chain only;
  // the query path reads the resident images instead.
  // (color, tag, node) -> node; unique by final component per the bptree
  // contract.
  std::shared_ptr<BPlusTree> tag_index_;
  // (tag, hash(content), node) -> node.
  std::shared_ptr<BPlusTree> content_index_;
  // (attr name, hash(value), node) -> node.
  std::shared_ptr<BPlusTree> attr_index_;
  // Resident images keyed TagKey / ValueKey.
  std::shared_ptr<IndexMap> tag_image_;
  std::shared_ptr<IndexMap> content_image_;
  std::shared_ptr<IndexMap> attr_image_;
  // Immutable shard map shared across the MVCC lineage; any structural
  // mutation resets only this version's pointer (shard-local
  // invalidation), and EnsureShardMap rebuilds lazily. Null when
  // shard_count_ <= 1.
  std::shared_ptr<const ShardMap> shard_map_;
  int shard_count_ = 1;
  bool write_through_ = true;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_DATABASE_H_

#include "mct/xml_load.h"

#include "xml/parser.h"

namespace mct {

Result<NodeId> LoadXmlElement(MctDatabase* db, ColorId color, NodeId parent,
                              const xml::Element& elem) {
  if (elem.kind() != xml::NodeKind::kElement) {
    return Status::InvalidArgument("LoadXmlElement expects an element node");
  }
  MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(color, parent, elem.name()));
  for (const xml::Attr& a : elem.attrs()) {
    MCT_RETURN_IF_ERROR(db->SetAttr(n, a.name, a.value));
  }
  std::string text;
  for (const auto& child : elem.children()) {
    switch (child->kind()) {
      case xml::NodeKind::kText:
        text += child->text();
        break;
      case xml::NodeKind::kElement:
        MCT_RETURN_IF_ERROR(LoadXmlElement(db, color, n, *child).status());
        break;
      default:
        break;  // comments / PIs carry no queryable data here
    }
  }
  if (!text.empty()) MCT_RETURN_IF_ERROR(db->SetContent(n, text));
  return n;
}

Result<NodeId> LoadXmlText(MctDatabase* db, ColorId color,
                           std::string_view text) {
  MCT_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return LoadXmlElement(db, color, db->document(), *doc.root);
}

}  // namespace mct

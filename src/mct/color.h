// Colors (paper Section 3.1): every node carries one or more colors from a
// finite palette C; the database holds one colored tree per color.
//
// Colors are dense small integers; a node's color membership is a 64-bit
// mask (ColorSet), so a palette holds at most 64 colors — far above the
// paper's experiments (TPC-W uses 5, SIGMOD-Record 2, plus result colors).

#ifndef COLORFUL_XML_MCT_COLOR_H_
#define COLORFUL_XML_MCT_COLOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mct {

using ColorId = uint8_t;
inline constexpr ColorId kInvalidColorId = 0xFF;
inline constexpr int kMaxColors = 64;

/// A set of colors as a bitmask.
class ColorSet {
 public:
  ColorSet() = default;
  explicit ColorSet(uint64_t mask) : mask_(mask) {}
  static ColorSet Of(ColorId c) { return ColorSet(1ULL << c); }

  bool Has(ColorId c) const { return (mask_ >> c) & 1; }
  void Add(ColorId c) { mask_ |= (1ULL << c); }
  void Remove(ColorId c) { mask_ &= ~(1ULL << c); }
  bool empty() const { return mask_ == 0; }
  int count() const { return __builtin_popcountll(mask_); }
  uint64_t mask() const { return mask_; }

  ColorSet Union(ColorSet o) const { return ColorSet(mask_ | o.mask_); }
  ColorSet Intersect(ColorSet o) const { return ColorSet(mask_ & o.mask_); }

  bool operator==(const ColorSet&) const = default;

  /// Iterates set colors in increasing id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t m = mask_;
    while (m != 0) {
      ColorId c = static_cast<ColorId>(__builtin_ctzll(m));
      fn(c);
      m &= m - 1;
    }
  }

  std::vector<ColorId> ToVector() const {
    std::vector<ColorId> out;
    ForEach([&](ColorId c) { out.push_back(c); });
    return out;
  }

 private:
  uint64_t mask_ = 0;
};

/// Per-session color visibility mask (DESIGN.md §16): an allow-set of
/// colors with a read/write split, the unit of multi-tenant isolation.
/// Default-constructed masks are inactive and grant everything — the
/// zero-cost-when-off path checked with one branch per use, like the
/// resource governor. An active mask is immutable for a session's
/// lifetime; `write` is intersected with `read` on construction (writing
/// a color you cannot read back would be a blind side channel).
struct ColorMask {
  bool active = false;
  ColorSet read;
  ColorSet write;

  ColorMask() = default;
  ColorMask(ColorSet read_set, ColorSet write_set)
      : active(true), read(read_set), write(write_set.Intersect(read_set)) {}
  /// Read/write symmetric mask over one allow-set.
  static ColorMask AllowOnly(ColorSet colors) {
    return ColorMask(colors, colors);
  }

  bool CanRead(ColorId c) const { return !active || read.Has(c); }
  bool CanWrite(ColorId c) const { return !active || write.Has(c); }
  /// True iff at least one color of `s` is readable (a node is visible
  /// when any of its colors is).
  bool CanReadAny(ColorSet s) const {
    return !active || !read.Intersect(s).empty();
  }

  /// Stable identity of the mask for plan-cache keys: 0 for the inactive
  /// mask (so unmasked sessions share entries), nonzero and injective in
  /// (read, write) otherwise. Plans are pruned against the mask, so a hit
  /// is only sound between sessions with identical masks.
  uint64_t Fingerprint() const {
    if (!active) return 0;
    // splitmix64 over the two 64-bit sets; the |1 keeps an active
    // fingerprint from colliding with the inactive 0.
    uint64_t h = read.mask() + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h ^= write.mask() + 0x94d049bb133111ebULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return (h ^ (h >> 31)) | 1;
  }
};

/// Maps color names ("red", "green", ...) to dense ids, per database.
class ColorRegistry {
 public:
  /// Registers (or finds) a color by name.
  Result<ColorId> Register(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    if (names_.size() >= kMaxColors) {
      return Status::OutOfRange("color palette limited to 64 colors");
    }
    ColorId id = static_cast<ColorId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Id of a registered color, or kInvalidColorId.
  ColorId Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidColorId : it->second;
  }

  const std::string& Name(ColorId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, ColorId> ids_;
  std::vector<std::string> names_;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_COLOR_H_

#include "mct/database.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace mct {

MctDatabase::MctDatabase() : MctDatabase(StorageEnv::CreateInMemory()) {}

MctDatabase::MctDatabase(std::unique_ptr<StorageEnv> env)
    : env_(std::move(env)),
      store_(env_.get()),
      tag_index_(std::make_shared<BPlusTree>(env_->pool())),
      content_index_(std::make_shared<BPlusTree>(env_->pool())),
      attr_index_(std::make_shared<BPlusTree>(env_->pool())),
      tag_image_(std::make_shared<IndexMap>()),
      content_image_(std::make_shared<IndexMap>()),
      attr_image_(std::make_shared<IndexMap>()) {
  auto doc = store_.CreateNode(xml::NodeKind::kDocument, "#document");
  assert(doc.ok());
  document_ = *doc;
}

MctDatabase::MctDatabase(const MctDatabase& o, bool write_through)
    : env_(o.env_),
      store_(o.store_, write_through),
      colors_(o.colors_),
      document_(o.document_),
      tag_index_(o.tag_index_),
      content_index_(o.content_index_),
      attr_index_(o.attr_index_),
      tag_image_(o.tag_image_),
      content_image_(o.content_image_),
      attr_image_(o.attr_image_),
      shard_map_(o.shard_map_),
      shard_count_(o.shard_count_),
      write_through_(write_through) {
  trees_.reserve(o.trees_.size());
  for (const auto& t : o.trees_) {
    trees_.push_back(std::make_unique<ColoredTree>(*t, write_through));
  }
}

std::unique_ptr<MctDatabase> MctDatabase::CowClone(bool write_through) const {
  return std::unique_ptr<MctDatabase>(new MctDatabase(*this, write_through));
}

MctDatabase::~MctDatabase() = default;

uint32_t MctDatabase::HashValue(std::string_view s) {
  // FNV-1a, folded to 32 bits.
  uint32_t h = 2166136261u;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

void MctDatabase::ImageInsert(std::shared_ptr<IndexMap>* image, uint64_t key,
                              NodeId n) {
  if (image->use_count() > 1) {
    *image = std::make_shared<IndexMap>(**image);
  }
  PostingList& slot = (**image)[key];
  auto next = slot == nullptr ? std::make_shared<std::vector<NodeId>>()
                              : std::make_shared<std::vector<NodeId>>(*slot);
  auto it = std::lower_bound(next->begin(), next->end(), n);
  if (it == next->end() || *it != n) next->insert(it, n);
  slot = std::move(next);
}

void MctDatabase::ImageErase(std::shared_ptr<IndexMap>* image, uint64_t key,
                             NodeId n) {
  if (image->use_count() > 1) {
    *image = std::make_shared<IndexMap>(**image);
  }
  auto f = (*image)->find(key);
  if (f == (*image)->end()) return;
  auto next = std::make_shared<std::vector<NodeId>>(*f->second);
  auto it = std::lower_bound(next->begin(), next->end(), n);
  if (it != next->end() && *it == n) next->erase(it);
  if (next->empty()) {
    (*image)->erase(f);
  } else {
    f->second = std::move(next);
  }
}

const std::vector<NodeId>* MctDatabase::ImageFind(const IndexMap& image,
                                                  uint64_t key) {
  auto it = image.find(key);
  return it == image.end() ? nullptr : it->second.get();
}

Result<ColorId> MctDatabase::RegisterColor(std::string_view name) {
  ColorId existing = colors_.Lookup(name);
  if (existing != kInvalidColorId) return existing;
  shard_map_.reset();  // color count changes; rebuild lazily
  MCT_ASSIGN_OR_RETURN(ColorId id, colors_.Register(name));
  assert(id == trees_.size());
  trees_.push_back(std::make_unique<ColoredTree>(id, env_.get()));
  MCT_RETURN_IF_ERROR(trees_[id]->SetRoot(document_));
  store_.AddColor(document_, id);
  return id;
}

Result<NodeId> MctDatabase::CreateElement(ColorId color, NodeId parent,
                                          std::string_view tag) {
  MCT_ASSIGN_OR_RETURN(NodeId node,
                       store_.CreateNode(xml::NodeKind::kElement, tag));
  MCT_RETURN_IF_ERROR(AddNodeColor(node, color, parent));
  return node;
}

Result<NodeId> MctDatabase::CreateFreeElement(std::string_view tag) {
  return store_.CreateNode(xml::NodeKind::kElement, tag);
}

Status MctDatabase::AddNodeColor(NodeId node, ColorId color, NodeId parent,
                                 NodeId before) {
  if (color >= trees_.size()) {
    return Status::InvalidArgument("unregistered color");
  }
  bool first_color = store_.Colors(node).empty();
  // Structural mutation: labels may move (gap insert or full relabel), so
  // this version's shard map is stale. Shared lineage versions keep theirs.
  shard_map_.reset();
  MCT_RETURN_IF_ERROR(trees_[color]->InsertChild(parent, node, before));
  store_.AddColor(node, color);
  if (store_.Kind(node) == xml::NodeKind::kElement) {
    ImageInsert(&tag_image_, TagKey(color, store_.Name(node)), node);
    if (write_through_) {
      // Accounting mirror; a discarded trial clone can leave stale entries
      // behind, so B+Tree maintenance tolerates conflicts.
      Status s = tag_index_->Insert(
          IndexKey::Make(color, store_.Name(node), 0, node), node);
      (void)s;
    }
  }
  if (first_color) {
    // The node enters the database: its content and attribute values
    // become index-visible.
    if (store_.HasContent(node)) {
      ImageInsert(&content_image_,
                  ValueKey(store_.Name(node), HashValue(store_.Content(node))),
                  node);
      if (write_through_) {
        Status s = content_index_->Insert(
            IndexKey::Make(store_.Name(node), HashValue(store_.Content(node)),
                           0, node),
            node);
        (void)s;
      }
    }
    for (const NodeAttr& a : store_.Attrs(node)) {
      ImageInsert(&attr_image_, ValueKey(a.name, HashValue(a.value)), node);
      if (write_through_) {
        Status s = attr_index_->Insert(
            IndexKey::Make(a.name, HashValue(a.value), 0, node), node);
        (void)s;
      }
    }
  }
  return Status::OK();
}

Status MctDatabase::RemoveNodeColor(NodeId node, ColorId color) {
  if (color >= trees_.size()) {
    return Status::InvalidArgument("unregistered color");
  }
  std::vector<NodeId> removed;
  shard_map_.reset();
  MCT_RETURN_IF_ERROR(trees_[color]->DetachSubtree(node, &removed));
  for (NodeId n : removed) {
    store_.RemoveColor(n, color);
    if (store_.Kind(n) == xml::NodeKind::kElement) {
      ImageErase(&tag_image_, TagKey(color, store_.Name(n)), n);
      if (write_through_) {
        Status s =
            tag_index_->Delete(IndexKey::Make(color, store_.Name(n), 0, n), n);
        (void)s;
      }
    }
    if (store_.Colors(n).empty()) {
      // Last color gone: the node leaves the database entirely.
      if (store_.HasContent(n)) {
        ImageErase(&content_image_,
                   ValueKey(store_.Name(n), HashValue(store_.Content(n))), n);
        if (write_through_) {
          Status s = content_index_->Delete(
              IndexKey::Make(store_.Name(n), HashValue(store_.Content(n)), 0,
                             n),
              n);
          (void)s;  // absent for non-element content carriers
        }
      }
      for (const NodeAttr& a : store_.Attrs(n)) {
        ImageErase(&attr_image_, ValueKey(a.name, HashValue(a.value)), n);
        if (write_through_) {
          Status s = attr_index_->Delete(
              IndexKey::Make(a.name, HashValue(a.value), 0, n), n);
          (void)s;
        }
      }
      store_.MarkDead(n);
    }
  }
  return Status::OK();
}

Status MctDatabase::SetContent(NodeId node, std::string_view text) {
  bool indexed = Indexed(node);
  if (indexed && store_.HasContent(node)) {
    ImageErase(&content_image_,
               ValueKey(store_.Name(node), HashValue(store_.Content(node))),
               node);
    if (write_through_) {
      Status s = content_index_->Delete(
          IndexKey::Make(store_.Name(node), HashValue(store_.Content(node)), 0,
                         node),
          node);
      (void)s;
    }
  }
  MCT_RETURN_IF_ERROR(store_.SetContent(node, text));
  if (indexed) {
    ImageInsert(&content_image_, ValueKey(store_.Name(node), HashValue(text)),
                node);
    if (write_through_) {
      Status s = content_index_->Insert(
          IndexKey::Make(store_.Name(node), HashValue(text), 0, node), node);
      (void)s;
    }
  }
  return Status::OK();
}

Status MctDatabase::SetAttr(NodeId node, std::string_view name,
                            std::string_view value) {
  bool indexed = Indexed(node);
  const std::string* old = store_.FindAttr(node, name);
  NameId name_id = store_.mutable_names()->Intern(name);
  if (indexed && old != nullptr) {
    ImageErase(&attr_image_, ValueKey(name_id, HashValue(*old)), node);
    if (write_through_) {
      Status s = attr_index_->Delete(
          IndexKey::Make(name_id, HashValue(*old), 0, node), node);
      (void)s;
    }
  }
  MCT_RETURN_IF_ERROR(store_.SetAttr(node, name, value));
  if (indexed) {
    ImageInsert(&attr_image_, ValueKey(name_id, HashValue(value)), node);
    if (write_through_) {
      Status s = attr_index_->Insert(
          IndexKey::Make(name_id, HashValue(value), 0, node), node);
      (void)s;
    }
  }
  return Status::OK();
}

std::optional<NodeId> MctDatabase::Parent(NodeId node, ColorId color) const {
  // Color compatibility (Section 3.2): accessor on a node lacking the color
  // returns the empty sequence.
  if (color >= trees_.size() || !store_.Colors(node).Has(color)) {
    return std::nullopt;
  }
  NodeId p = trees_[color]->Parent(node);
  if (p == kInvalidNodeId) return std::nullopt;
  return p;
}

std::vector<NodeId> MctDatabase::Children(NodeId node, ColorId color) const {
  if (color >= trees_.size() || !store_.Colors(node).Has(color)) return {};
  return trees_[color]->Children(node);
}

std::optional<std::string> MctDatabase::StringValue(NodeId node,
                                                    ColorId color) const {
  if (color >= trees_.size() || !store_.Colors(node).Has(color)) {
    return std::nullopt;
  }
  std::string out;
  for (NodeId n : trees_[color]->PreOrder(node)) {
    if (store_.HasContent(n)) out += store_.Content(n);
  }
  return out;
}

std::optional<double> MctDatabase::TypedValue(NodeId node,
                                              ColorId color) const {
  auto sv = StringValue(node, color);
  if (!sv.has_value()) return std::nullopt;
  return ParseDouble(*sv);
}

void MctDatabase::SetShardCount(int n) {
  if (n < 1) n = 1;
  if (n > 64) n = 64;
  shard_count_ = n;
  shard_map_.reset();
}

const ShardMap* MctDatabase::EnsureShardMap() {
  if (shard_count_ <= 1) {
    shard_map_.reset();
    return nullptr;
  }
  if (shard_map_ != nullptr && shard_map_->shard_count() == shard_count_ &&
      shard_map_->color_count() == trees_.size()) {
    return shard_map_.get();
  }
  // Boundaries are start labels, so they are only meaningful over clean
  // labels; the map is invalidated by every structural mutation, which is
  // exactly when labels can move.
  for (auto& t : trees_) t->EnsureLabels();
  shard_map_ = std::make_shared<const ShardMap>(
      shard_count_, trees_.size(), [&](ColorId c) {
        const ColoredTree* t = trees_[c].get();
        NodeId r = t->root();
        return std::pair<uint64_t, uint64_t>(t->Start(r), t->End(r));
      });
  return shard_map_.get();
}

namespace {
// Below this, the serial sort wins over bucket + fan-out overhead.
constexpr size_t kShardSortMin = 4096;
}  // namespace

std::vector<NodeId> MctDatabase::TagScan(ColorId color, std::string_view tag,
                                         ThreadPool* pool) {
  std::vector<NodeId> out;
  NameId tag_id = store_.names().Lookup(tag);
  if (tag_id == kInvalidNameId || color >= trees_.size()) return out;
  const std::vector<NodeId>* list =
      ImageFind(*tag_image_, TagKey(color, tag_id));
  if (list == nullptr) return out;
  out = *list;
  // Posting order is by node id (stable under relabeling); re-establish the
  // local document order the structural operators need. Keys are extracted
  // once before sorting (Start() is a chunk probe).
  ColoredTree* t = trees_[color].get();
  t->EnsureLabels();
  std::vector<std::pair<uint64_t, NodeId>> keyed;
  keyed.reserve(out.size());
  for (NodeId n : out) keyed.emplace_back(t->Start(n), n);
  const ShardMap* sm = EnsureShardMap();
  if (sm != nullptr && pool != nullptr && pool->num_threads() > 1 &&
      keyed.size() >= kShardSortMin) {
    // Shard-parallel order restore: bucket by owning shard (shard ranges
    // are disjoint and ordered), sort each bucket as one pool task,
    // concatenate in shard order. Start labels are unique within a tree,
    // so this is byte-identical to the serial full sort.
    const size_t ns = static_cast<size_t>(sm->shard_count());
    std::vector<uint32_t> shard_of(keyed.size());
    std::vector<size_t> offset(ns + 1, 0);
    for (size_t i = 0; i < keyed.size(); ++i) {
      shard_of[i] =
          static_cast<uint32_t>(sm->ShardOf(color, keyed[i].first));
      ++offset[shard_of[i] + 1];
    }
    for (size_t s = 0; s < ns; ++s) offset[s + 1] += offset[s];
    std::vector<std::pair<uint64_t, NodeId>> bucketed(keyed.size());
    std::vector<size_t> fill(offset.begin(), offset.end() - 1);
    for (size_t i = 0; i < keyed.size(); ++i) {
      bucketed[fill[shard_of[i]]++] = keyed[i];
    }
    ShardTasksCounter()->Inc(ns);
    ParallelFor(pool, ns, [&](size_t s) {
      std::sort(bucketed.begin() + static_cast<ptrdiff_t>(offset[s]),
                bucketed.begin() + static_cast<ptrdiff_t>(offset[s + 1]));
    });
    keyed.swap(bucketed);
  } else {
    std::sort(keyed.begin(), keyed.end());
  }
  for (size_t i = 0; i < keyed.size(); ++i) out[i] = keyed[i].second;
  return out;
}

std::vector<NodeId> MctDatabase::ContentLookup(std::string_view tag,
                                               std::string_view value) const {
  std::vector<NodeId> out;
  NameId tag_id = store_.names().Lookup(tag);
  if (tag_id == kInvalidNameId) return out;
  const std::vector<NodeId>* list =
      ImageFind(*content_image_, ValueKey(tag_id, HashValue(value)));
  if (list == nullptr) return out;
  for (NodeId n : *list) {
    if (store_.Content(n) == value) out.push_back(n);  // hash verify
  }
  return out;
}

std::vector<NodeId> MctDatabase::AttrLookup(std::string_view name,
                                            std::string_view value) const {
  std::vector<NodeId> out;
  NameId name_id = store_.names().Lookup(name);
  if (name_id == kInvalidNameId) return out;
  const std::vector<NodeId>* list =
      ImageFind(*attr_image_, ValueKey(name_id, HashValue(value)));
  if (list == nullptr) return out;
  for (NodeId n : *list) {
    const std::string* v = store_.FindAttr(n, name);
    if (v != nullptr && *v == value) out.push_back(n);
  }
  return out;
}

size_t MctDatabase::TagCount(ColorId color, std::string_view tag) const {
  NameId tag_id = store_.names().Lookup(tag);
  if (tag_id == kInvalidNameId || color >= trees_.size()) return 0;
  const std::vector<NodeId>* list =
      ImageFind(*tag_image_, TagKey(color, tag_id));
  return list == nullptr ? 0 : list->size();
}

DatabaseStats MctDatabase::Stats() const {
  DatabaseStats s;
  s.num_elements = store_.num_elements();
  s.num_attrs = store_.num_attrs();
  s.num_content_nodes = store_.num_content_nodes();
  s.data_bytes = store_.FileBytes();
  for (const auto& t : trees_) {
    s.num_struct_nodes += t->size();
    s.data_bytes += t->FileBytes();
  }
  s.index_bytes = tag_index_->SizeBytes() + content_index_->SizeBytes() +
                  attr_index_->SizeBytes();
  return s;
}

size_t MctDatabase::ResidentChunks() const {
  size_t n = store_.ResidentChunks();
  for (const auto& t : trees_) n += t->ResidentChunks();
  return n;
}

}  // namespace mct

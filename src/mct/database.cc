#include "mct/database.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace mct {

MctDatabase::MctDatabase() : MctDatabase(StorageEnv::CreateInMemory()) {}

MctDatabase::MctDatabase(std::unique_ptr<StorageEnv> env)
    : env_(std::move(env)),
      store_(env_.get()),
      tag_index_(env_->pool()),
      content_index_(env_->pool()),
      attr_index_(env_->pool()) {
  auto doc = store_.CreateNode(xml::NodeKind::kDocument, "#document");
  assert(doc.ok());
  document_ = *doc;
}

MctDatabase::~MctDatabase() = default;

uint32_t MctDatabase::HashValue(std::string_view s) {
  // FNV-1a, folded to 32 bits.
  uint32_t h = 2166136261u;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

Result<ColorId> MctDatabase::RegisterColor(std::string_view name) {
  ColorId existing = colors_.Lookup(name);
  if (existing != kInvalidColorId) return existing;
  MCT_ASSIGN_OR_RETURN(ColorId id, colors_.Register(name));
  assert(id == trees_.size());
  trees_.push_back(std::make_unique<ColoredTree>(id, env_.get()));
  MCT_RETURN_IF_ERROR(trees_[id]->SetRoot(document_));
  store_.AddColor(document_, id);
  return id;
}

Result<NodeId> MctDatabase::CreateElement(ColorId color, NodeId parent,
                                          std::string_view tag) {
  MCT_ASSIGN_OR_RETURN(NodeId node,
                       store_.CreateNode(xml::NodeKind::kElement, tag));
  MCT_RETURN_IF_ERROR(AddNodeColor(node, color, parent));
  return node;
}

Result<NodeId> MctDatabase::CreateFreeElement(std::string_view tag) {
  return store_.CreateNode(xml::NodeKind::kElement, tag);
}

Status MctDatabase::AddNodeColor(NodeId node, ColorId color, NodeId parent,
                                 NodeId before) {
  if (color >= trees_.size()) {
    return Status::InvalidArgument("unregistered color");
  }
  MCT_RETURN_IF_ERROR(trees_[color]->InsertChild(parent, node, before));
  store_.AddColor(node, color);
  if (store_.Kind(node) == xml::NodeKind::kElement) {
    MCT_RETURN_IF_ERROR(tag_index_.Insert(
        IndexKey::Make(color, store_.Name(node), 0, node), node));
  }
  return Status::OK();
}

Status MctDatabase::RemoveNodeColor(NodeId node, ColorId color) {
  if (color >= trees_.size()) {
    return Status::InvalidArgument("unregistered color");
  }
  std::vector<NodeId> removed;
  MCT_RETURN_IF_ERROR(trees_[color]->DetachSubtree(node, &removed));
  for (NodeId n : removed) {
    store_.RemoveColor(n, color);
    if (store_.Kind(n) == xml::NodeKind::kElement) {
      MCT_RETURN_IF_ERROR(
          tag_index_.Delete(IndexKey::Make(color, store_.Name(n), 0, n), n));
    }
    if (store_.Colors(n).empty()) {
      // Last color gone: the node leaves the database entirely.
      if (store_.HasContent(n)) {
        Status s = content_index_.Delete(
            IndexKey::Make(store_.Name(n), HashValue(store_.Content(n)), 0, n),
            n);
        (void)s;  // absent for non-element content carriers
      }
      for (const NodeAttr& a : store_.Attrs(n)) {
        Status s = attr_index_.Delete(
            IndexKey::Make(a.name, HashValue(a.value), 0, n), n);
        (void)s;
      }
      store_.MarkDead(n);
    }
  }
  return Status::OK();
}

Status MctDatabase::SetContent(NodeId node, std::string_view text) {
  if (store_.HasContent(node)) {
    MCT_RETURN_IF_ERROR(content_index_.Delete(
        IndexKey::Make(store_.Name(node), HashValue(store_.Content(node)), 0,
                       node),
        node));
  }
  MCT_RETURN_IF_ERROR(store_.SetContent(node, text));
  return content_index_.Insert(
      IndexKey::Make(store_.Name(node), HashValue(text), 0, node), node);
}

Status MctDatabase::SetAttr(NodeId node, std::string_view name,
                            std::string_view value) {
  const std::string* old = store_.FindAttr(node, name);
  NameId name_id = store_.mutable_names()->Intern(name);
  if (old != nullptr) {
    MCT_RETURN_IF_ERROR(attr_index_.Delete(
        IndexKey::Make(name_id, HashValue(*old), 0, node), node));
  }
  MCT_RETURN_IF_ERROR(store_.SetAttr(node, name, value));
  return attr_index_.Insert(
      IndexKey::Make(name_id, HashValue(value), 0, node), node);
}

std::optional<NodeId> MctDatabase::Parent(NodeId node, ColorId color) const {
  // Color compatibility (Section 3.2): accessor on a node lacking the color
  // returns the empty sequence.
  if (color >= trees_.size() || !store_.Colors(node).Has(color)) {
    return std::nullopt;
  }
  NodeId p = trees_[color]->Parent(node);
  if (p == kInvalidNodeId) return std::nullopt;
  return p;
}

std::vector<NodeId> MctDatabase::Children(NodeId node, ColorId color) const {
  if (color >= trees_.size() || !store_.Colors(node).Has(color)) return {};
  return trees_[color]->Children(node);
}

std::optional<std::string> MctDatabase::StringValue(NodeId node,
                                                    ColorId color) const {
  if (color >= trees_.size() || !store_.Colors(node).Has(color)) {
    return std::nullopt;
  }
  std::string out;
  for (NodeId n : trees_[color]->PreOrder(node)) {
    if (store_.HasContent(n)) out += store_.Content(n);
  }
  return out;
}

std::optional<double> MctDatabase::TypedValue(NodeId node,
                                              ColorId color) const {
  auto sv = StringValue(node, color);
  if (!sv.has_value()) return std::nullopt;
  return ParseDouble(*sv);
}

std::vector<NodeId> MctDatabase::TagScan(ColorId color, std::string_view tag) {
  std::vector<NodeId> out;
  NameId tag_id = store_.names().Lookup(tag);
  if (tag_id == kInvalidNameId || color >= trees_.size()) return out;
  auto it = tag_index_.Seek(IndexKey::Make(color, tag_id, 0, 0));
  if (!it.ok()) return out;
  while (it->Valid() && it->key().k[0] == color && it->key().k[1] == tag_id) {
    out.push_back(static_cast<NodeId>(it->value()));
    if (!it->Next().ok()) break;
  }
  // Index order is by node id (stable under relabeling); re-establish the
  // local document order the structural operators need. Keys are extracted
  // once before sorting (Start() is a hash lookup).
  ColoredTree* t = trees_[color].get();
  t->EnsureLabels();
  std::vector<std::pair<uint64_t, NodeId>> keyed;
  keyed.reserve(out.size());
  for (NodeId n : out) keyed.emplace_back(t->Start(n), n);
  std::sort(keyed.begin(), keyed.end());
  for (size_t i = 0; i < keyed.size(); ++i) out[i] = keyed[i].second;
  return out;
}

std::vector<NodeId> MctDatabase::ContentLookup(std::string_view tag,
                                               std::string_view value) const {
  std::vector<NodeId> out;
  NameId tag_id = store_.names().Lookup(tag);
  if (tag_id == kInvalidNameId) return out;
  uint32_t h = HashValue(value);
  auto it = content_index_.Seek(IndexKey::Make(tag_id, h, 0, 0));
  if (!it.ok()) return out;
  while (it->Valid() && it->key().k[0] == tag_id && it->key().k[1] == h) {
    NodeId n = static_cast<NodeId>(it->value());
    if (store_.Content(n) == value) out.push_back(n);  // hash verify
    if (!it->Next().ok()) break;
  }
  return out;
}

std::vector<NodeId> MctDatabase::AttrLookup(std::string_view name,
                                            std::string_view value) const {
  std::vector<NodeId> out;
  NameId name_id = store_.names().Lookup(name);
  if (name_id == kInvalidNameId) return out;
  uint32_t h = HashValue(value);
  auto it = attr_index_.Seek(IndexKey::Make(name_id, h, 0, 0));
  if (!it.ok()) return out;
  while (it->Valid() && it->key().k[0] == name_id && it->key().k[1] == h) {
    NodeId n = static_cast<NodeId>(it->value());
    const std::string* v = store_.FindAttr(n, name);
    if (v != nullptr && *v == value) out.push_back(n);
    if (!it->Next().ok()) break;
  }
  return out;
}

size_t MctDatabase::TagCount(ColorId color, std::string_view tag) const {
  NameId tag_id = store_.names().Lookup(tag);
  if (tag_id == kInvalidNameId || color >= trees_.size()) return 0;
  auto it = tag_index_.Seek(IndexKey::Make(color, tag_id, 0, 0));
  if (!it.ok()) return 0;
  size_t n = 0;
  while (it->Valid() && it->key().k[0] == color && it->key().k[1] == tag_id) {
    ++n;
    if (!it->Next().ok()) break;
  }
  return n;
}

DatabaseStats MctDatabase::Stats() const {
  DatabaseStats s;
  s.num_elements = store_.num_elements();
  s.num_attrs = store_.num_attrs();
  s.num_content_nodes = store_.num_content_nodes();
  s.data_bytes = store_.FileBytes();
  for (const auto& t : trees_) {
    s.num_struct_nodes += t->size();
    s.data_bytes += t->FileBytes();
  }
  s.index_bytes = tag_index_.SizeBytes() + content_index_.SizeBytes() +
                  attr_index_.SizeBytes();
  return s;
}

}  // namespace mct

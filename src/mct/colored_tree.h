// ColoredTree: the structural side of one color c — the ordered rooted tree
// T_c of Definition 3.1. A node's content lives once in NodeStore; here each
// member node has a *structural record* (parent, ordered children, interval
// label), exactly the Timber-style decomposition of Section 6.2: "we create
// one structural relationships node for each color hierarchy that the
// element participates in".
//
// Interval labels: every member carries (start, end, level) with
// start/end drawn from a pre-order event numbering scaled by 2^16. Gaps let
// small structural updates label new nodes in O(1); when a gap is exhausted
// the tree is marked dirty and fully relabeled on the next label access.
// Labels give O(1) ancestor/descendant tests and the per-color *local
// document order* (Section 3.1), which is what the structural join
// operators sort-merge on.
//
// MVCC (DESIGN.md §14): structural records live in a CowChunkVector keyed
// by NodeId with engagement = tree membership, so a snapshot clone shares
// every 64-node chunk a later commit does not touch. This is the
// "copy-on-write at the structural-node level" of the MVCC design — a
// commit that inserts under one parent privatizes only the chunks holding
// that parent, its neighbors, and the new node. The backing record file is
// shared across the lineage and written only when write_through is set.
//
// CowChunkVector references are stable only until the next Put/Mut/Erase
// on the same instance (which may copy the chunk they point into), so the
// implementation re-acquires after every mutating call instead of holding
// references across them.

#ifndef COLORFUL_XML_MCT_COLORED_TREE_H_
#define COLORFUL_XML_MCT_COLORED_TREE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cow.h"
#include "common/metrics.h"
#include "common/result.h"
#include "mct/color.h"
#include "mct/node_store.h"
#include "storage/record_file.h"

namespace mct {

/// Children visited across all ForEachChild calls (process-wide, batched:
/// one relaxed add per call). Pointer resolved once; registrations survive
/// MetricsRegistry::ResetForTest so it never dangles.
inline Counter* TreeChildIterCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.tree.child_iter");
  return c;
}

class ColoredTree {
 public:
  ColoredTree(ColorId color, StorageEnv* env);

  /// COW clone: shares every structural chunk and the backing record file
  /// with `o`. Detached clones (write_through false) never write the file.
  ColoredTree(const ColoredTree& o, bool write_through);

  ColoredTree(const ColoredTree&) = delete;
  ColoredTree& operator=(const ColoredTree&) = delete;

  ColorId color() const { return color_; }

  /// Installs `node` as the root (the shared document node). Must be the
  /// first node added.
  Status SetRoot(NodeId node);
  NodeId root() const { return root_; }

  /// True when `node` participates in this colored tree.
  bool Contains(NodeId node) const { return nodes_.Contains(node); }

  /// Appends `child` as the last child of `parent`.
  /// AlreadyExists when `child` is already in this tree — the hook for
  /// MCXQuery's duplicate-node dynamic error (Section 4.2).
  Status AppendChild(NodeId parent, NodeId child);

  /// Inserts `child` under `parent` immediately before `before`;
  /// `before` == kInvalidNodeId appends.
  Status InsertChild(NodeId parent, NodeId child, NodeId before);

  /// Detaches the subtree rooted at `node` from this color. Appends every
  /// detached node (pre-order) to `removed`. The nodes themselves survive in
  /// the store and in their other colors.
  Status DetachSubtree(NodeId node, std::vector<NodeId>* removed);

  // -- Navigation (color-aware dm:parent / dm:children of Section 3.2 are
  //    routed here by MctDatabase). All return kInvalidNodeId when absent.
  NodeId Parent(NodeId node) const;
  NodeId FirstChild(NodeId node) const;
  NodeId NextSibling(NodeId node) const;
  NodeId PrevSibling(NodeId node) const;
  std::vector<NodeId> Children(NodeId node) const;

  /// Visits children in order without materializing a vector (hot path for
  /// per-row predicate evaluation). Exactly one chunk probe per child: the
  /// sibling link is read from that probe before `fn` runs.
  template <typename Fn>
  void ForEachChild(NodeId node, Fn&& fn) const {
    const StructNode* sn = nodes_.Find(node);
    if (sn == nullptr) return;
    uint64_t visited = 0;
    NodeId c = sn->first_child;
    while (c != kInvalidNodeId) {
      const StructNode* cn = nodes_.Find(c);
      assert(cn != nullptr);
      NodeId next = cn->next_sibling;
      ++visited;
      fn(c);
      c = next;
    }
    if (visited != 0) TreeChildIterCounter()->Inc(visited);
  }

  /// Pre-order (local document order) of the whole tree.
  std::vector<NodeId> PreOrder() const;
  /// Pre-order of the subtree rooted at `node` (inclusive).
  std::vector<NodeId> PreOrder(NodeId node) const;

  // -- Interval labels. Calling any of the mutable overloads relabels first
  //    if dirty. The const overloads are the thread-safe read path used by
  //    parallel operator workers: they require clean labels (callers run
  //    EnsureLabels() before fanning out) and never mutate the tree.
  uint64_t Start(NodeId node);
  uint64_t End(NodeId node);
  uint32_t Level(NodeId node);
  /// True when `anc` is a proper ancestor of `desc` in this color.
  bool IsAncestor(NodeId anc, NodeId desc);

  uint64_t Start(NodeId node) const {
    assert(!labels_dirty_);
    return nodes_.At(node).start;
  }
  uint64_t End(NodeId node) const {
    assert(!labels_dirty_);
    return nodes_.At(node).end;
  }
  uint32_t Level(NodeId node) const {
    assert(!labels_dirty_);
    return nodes_.At(node).level;
  }
  bool IsAncestor(NodeId anc, NodeId desc) const {
    assert(!labels_dirty_);
    const StructNode* a = nodes_.Find(anc);
    const StructNode* d = nodes_.Find(desc);
    if (a == nullptr || d == nullptr) return false;
    return a->start < d->start && d->end < a->end;
  }

  /// Relabels now if dirty (updates fold this into their measured cost).
  void EnsureLabels();
  bool labels_dirty() const { return labels_dirty_; }

  size_t size() const { return nodes_.count(); }

  /// Bytes of the backing structural record file.
  uint64_t FileBytes() const { return struct_file_->SizeBytes(); }

  /// COW chunks resident in this version (for the leak test baseline).
  size_t ResidentChunks() const { return nodes_.num_chunks(); }

 private:
  struct StructNode {
    NodeId parent = kInvalidNodeId;
    NodeId first_child = kInvalidNodeId;
    NodeId last_child = kInvalidNodeId;
    NodeId next_sibling = kInvalidNodeId;
    NodeId prev_sibling = kInvalidNodeId;
    uint64_t start = 0;
    uint64_t end = 0;
    uint32_t level = 0;
    uint64_t file_index = 0;
  };

  // Gap between consecutive pre-order events after a full relabel.
  static constexpr uint64_t kLabelGap = 1ULL << 16;

  Status LinkChild(NodeId parent, NodeId child, NodeId before);
  /// Tries to label a freshly inserted leaf within its neighbors' gap;
  /// marks the tree dirty when the gap is exhausted.
  void TryGapLabel(NodeId node);
  void Relabel();
  Status WriteStructRecord(NodeId node);
  Status AppendStructRecord(NodeId node);

  ColorId color_;
  NodeId root_ = kInvalidNodeId;
  CowChunkVector<StructNode> nodes_;
  std::shared_ptr<RecordFile> struct_file_;
  bool write_through_ = true;
  bool labels_dirty_ = true;
};

}  // namespace mct

#endif  // COLORFUL_XML_MCT_COLORED_TREE_H_

// Binary snapshots: persist an MctDatabase to a single file and reopen it.
//
// The snapshot is a compacting logical dump (palette, live nodes with
// payloads, per-color structure in local document order); loading replays
// it through the public constructors, which rebuilds the record files and
// indexes consistently. Node ids are re-assigned densely — use
// DatabasesIsomorphic (serialize/exchange.h) to compare databases across a
// save/load cycle, not raw NodeIds.
//
// Format v2 (little endian):
//   magic "MCTSNAP2" | u32 format_version (=2) | u64 last_lsn
//   u32 ncolors | colors (lpstring each)
//   u32 nnodes | per node: u8 kind, lpstring tag, u8 has_content,
//     lpstring content?, u32 nattrs, (lpstring name, lpstring value)*
//   per color: u64 nedges | (u32 parent, u32 child)* in pre-order
//     (parent precedes child, so appends reproduce sibling order)
//   u32 crc32c over every preceding byte
//
// Durability: SaveSnapshot writes the whole image to `path + ".tmp"`,
// fsyncs, renames over `path` and fsyncs the directory — a crash at any
// point leaves either the old complete file or the new complete file, and
// OpenSnapshot rejects anything torn or bit-flipped via the CRC trailer
// (v1 files without a checksum are rejected as Corruption). `last_lsn`
// records the newest WAL record the image includes, so recovery replays
// exactly the tail (see mct/durability.h).

#ifndef COLORFUL_XML_MCT_SNAPSHOT_H_
#define COLORFUL_XML_MCT_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "mct/database.h"
#include "storage/file_env.h"

namespace mct {

/// Atomically writes a snapshot of `db` to `path` (replaces any previous
/// file). `env` null uses the real filesystem; `last_lsn` stamps the newest
/// WAL record the image covers (0 for standalone snapshots).
Status SaveSnapshot(MctDatabase& db, const std::string& path,
                    FileEnv* env = nullptr, uint64_t last_lsn = 0);

/// Reconstructs a database from a snapshot file, verifying the CRC trailer
/// first. `last_lsn` (when non-null) receives the stamp written at save.
Result<std::unique_ptr<MctDatabase>> OpenSnapshot(const std::string& path,
                                                  FileEnv* env = nullptr,
                                                  uint64_t* last_lsn = nullptr);

}  // namespace mct

#endif  // COLORFUL_XML_MCT_SNAPSHOT_H_

// Binary snapshots: persist an MctDatabase to a single file and reopen it.
//
// The snapshot is a compacting logical dump (palette, live nodes with
// payloads, per-color structure in local document order); loading replays
// it through the public constructors, which rebuilds the record files and
// indexes consistently. Node ids are re-assigned densely — use
// DatabasesIsomorphic (serialize/exchange.h) to compare databases across a
// save/load cycle, not raw NodeIds.
//
// Format (little endian):
//   magic "MCTSNAP1" | u32 ncolors | colors (lpstring each)
//   u32 nnodes | per node: u8 kind, lpstring tag, u8 has_content,
//     lpstring content?, u32 nattrs, (lpstring name, lpstring value)*
//   per color: u64 nedges | (u32 parent, u32 child)* in pre-order
//     (parent precedes child, so appends reproduce sibling order)

#ifndef COLORFUL_XML_MCT_SNAPSHOT_H_
#define COLORFUL_XML_MCT_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "mct/database.h"

namespace mct {

/// Writes a snapshot of `db` to `path` (overwrites).
Status SaveSnapshot(MctDatabase& db, const std::string& path);

/// Reconstructs a database from a snapshot file.
Result<std::unique_ptr<MctDatabase>> OpenSnapshot(const std::string& path);

}  // namespace mct

#endif  // COLORFUL_XML_MCT_SNAPSHOT_H_

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding WAL records and snapshot files. Chosen over CRC32
// (IEEE) for its better error-detection properties on storage payloads and
// because it is the checksum real storage engines (LevelDB, RocksDB, ext4)
// standardize on, so test vectors are widely published.

#ifndef COLORFUL_XML_COMMON_CRC32C_H_
#define COLORFUL_XML_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mct {

/// Extends `crc` (a previous Crc32c result, or 0 for a fresh computation)
/// with `n` bytes at `data`. Streaming-friendly:
/// Crc32c(Extend(Crc32c(a), b)) == Crc32c(a ++ b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_CRC32C_H_

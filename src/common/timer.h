// Wall-clock timing for the benchmark harness and EXPERIMENTS reporting.

#ifndef COLORFUL_XML_COMMON_TIMER_H_
#define COLORFUL_XML_COMMON_TIMER_H_

#include <chrono>

namespace mct {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_TIMER_H_

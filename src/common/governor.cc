#include "common/governor.h"

#include "common/metrics.h"
#include "common/strings.h"

namespace mct {

namespace {

Counter* CancelsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.governor.cancels");
  return c;
}
Counter* DeadlineHitsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.governor.deadline_hits");
  return c;
}
Counter* BudgetRejectionsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.governor.budget_rejections");
  return c;
}
Gauge* PeakBytesGauge() {
  static Gauge* g =
      MetricsRegistry::Global().gauge("mct.governor.peak_bytes");
  return g;
}

}  // namespace

MemoryBudget::~MemoryBudget() {
  PeakBytesGauge()->SetMax(static_cast<int64_t>(peak()));
  uint64_t outstanding = used_.load(std::memory_order_relaxed);
  if (outstanding > 0 && parent_ != nullptr) parent_->Release(outstanding);
}

Status MemoryBudget::TryCharge(uint64_t bytes) {
  if (bytes == 0) return Status::OK();
  uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        StrFormat("memory budget exceeded: %llu + %llu bytes over the "
                  "%llu-byte cap",
                  static_cast<unsigned long long>(now - bytes),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(limit_)));
  }
  if (parent_ != nullptr) {
    Status s = parent_->TryCharge(bytes);
    if (!s.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return s;
    }
  }
  // Lost races under-report the peak by at most the racing charges; the
  // watermark is diagnostic, not a correctness input.
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < now && !peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryBudget::Release(uint64_t bytes) {
  if (bytes == 0) return;
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

bool ResourceGovernor::ShouldStop() {
  if (tripped()) return true;
  if (cancel_ != nullptr && cancel_->cancel_requested()) {
    Trip(Status::Cancelled("query cancelled"));
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Trip(Status::DeadlineExceeded("query deadline exceeded"));
    return true;
  }
  return false;
}

bool ResourceGovernor::ChargeOrStop(uint64_t bytes) {
  if (tripped()) return true;
  if (budget_ == nullptr) return false;
  Status s = budget_->TryCharge(bytes);
  if (s.ok()) return false;
  Trip(std::move(s));
  return true;
}

void ResourceGovernor::Trip(Status s) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // First violation wins; concurrent morsel workers may race here.
    if (tripped_.load(std::memory_order_relaxed)) return;
    status_ = std::move(s);
    if (status_.IsCancelled()) {
      CancelsCounter()->Inc();
    } else if (status_.IsDeadlineExceeded()) {
      DeadlineHitsCounter()->Inc();
    } else if (status_.IsResourceExhausted()) {
      BudgetRejectionsCounter()->Inc();
    }
    tripped_.store(true, std::memory_order_relaxed);
  }
}

}  // namespace mct

// Status: operation outcome without exceptions, in the RocksDB/Arrow idiom.
//
// Core library code returns Status (or Result<T>, see result.h) instead of
// throwing. The OK path carries no allocation: an OK Status is a null
// pointer internally.

#ifndef COLORFUL_XML_COMMON_STATUS_H_
#define COLORFUL_XML_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mct {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kIOError = 6,
  kNotSupported = 7,
  // MCXQuery dynamic error, e.g. a node occurring twice in one colored tree
  // (paper Section 4.2).
  kDynamicError = 8,
  kParseError = 9,
  kInternal = 10,
  // MCXQuery static-analysis rejection: strict mode refused to execute a
  // statement whose analysis produced errors (MCX0xx diagnostics).
  kStaticError = 11,
  // The caller (or its session) requested cancellation; the operation was
  // abandoned cooperatively with no side effects.
  kCancelled = 12,
  // The operation's wall-clock deadline passed before it completed.
  kDeadlineExceeded = 13,
  // A resource cap refused the operation: memory budget, session limit,
  // writer-queue depth. The only retryable code (see IsRetryable) — the
  // resource may free up; a deadline that passed or a cancel that was
  // requested will not un-happen.
  kResourceExhausted = 14,
  // The session's color visibility mask forbids the statement: it names,
  // traverses, or writes a color outside the mask (MCX2xx diagnostics,
  // mcx/analysis.h). Refused before any side effect.
  kPermissionDenied = 15,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: a code plus, for non-OK outcomes, a message.
/// [[nodiscard]]: silently dropping a Status hides failures; callers must
/// check, propagate, or explicitly discard with a (void) cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status DynamicError(std::string msg) {
    return Status(StatusCode::kDynamicError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status StaticError(std::string msg) {
    return Status(StatusCode::kStaticError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Message for a non-OK status; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsDynamicError() const { return code() == StatusCode::kDynamicError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsStaticError() const { return code() == StatusCode::kStaticError; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }

  /// Retryability classification (gRPC-style). True only for
  /// ResourceExhausted: the pressure that refused the operation (memory
  /// budget, admission queue, session cap) may clear, so a client should
  /// retry with exponential backoff. Cancelled reflects a caller decision
  /// and DeadlineExceeded a deadline that has already passed — retrying
  /// either verbatim cannot succeed.
  bool IsRetryable() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define MCT_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::mct::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_STATUS_H_

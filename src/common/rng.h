// Deterministic pseudo-random number generation for workload generators and
// property tests. All generators in this repository are seeded explicitly so
// experiments are reproducible run-to-run.

#ifndef COLORFUL_XML_COMMON_RNG_H_
#define COLORFUL_XML_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mct {

/// xoshiro256**-based deterministic RNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, the reference initialization for xoshiro.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-like skewed pick in [0, n): small ranks are more likely.
  /// theta in (0,1); theta -> 1 means more skew. Uses the standard
  /// approximate inverse-CDF method (good enough for workload skew).
  uint64_t Zipf(uint64_t n, double theta);

  /// Random lowercase word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len);

  /// Picks a random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_RNG_H_

// Process-wide engine metrics: named counters, gauges and histograms that
// storage, index and execution layers increment as they work. Instruments
// are cheap enough for hot paths (one relaxed atomic op), registration is
// mutex-guarded and returns stable pointers, so callers look an instrument
// up once and cache the pointer.
//
// The registry is observational only — nothing in the engine reads its own
// metrics back — so tests may ResetForTest() freely between scenarios.

#ifndef COLORFUL_XML_COMMON_METRICS_H_
#define COLORFUL_XML_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace mct {

/// Cache-line size for padding hot atomics. Hardcoded rather than
/// std::hardware_destructive_interference_size, which libstdc++ warns is
/// ABI-fragile; 64 is correct for every target this builds on.
inline constexpr size_t kCacheLineBytes = 64;

/// Monotonically increasing event count. Counters are allocated
/// individually and hammered from shard-parallel tasks, so each one is
/// padded to a cache line: two hot counters that happen to be neighbors in
/// the heap must not false-share.
class alignas(kCacheLineBytes) Counter {
 public:
  void Inc(uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written level (queue depths, fan-out widths). Padded like Counter.
class alignas(kCacheLineBytes) Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below (high-watermark gauges like
  /// mct.governor.peak_bytes); concurrent SetMax calls keep the maximum.
  void SetMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Power-of-two bucketed histogram of non-negative integer samples
/// (microseconds, row counts). Bucket b counts samples whose bit width is
/// b: bucket 0 holds 0, bucket b holds [2^(b-1), 2^b).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(uint64_t sample);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  double Mean() const;
  /// Upper edge of the bucket holding the p-quantile (p in [0,1]); an
  /// order-of-magnitude percentile, exact enough for tail diagnosis.
  uint64_t ApproxPercentile(double p) const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Name -> instrument registry. Lookup creates on first use; pointers stay
/// valid for the process lifetime. Names are dot-separated, prefixed
/// "mct.<subsystem>." (see DESIGN.md "Observability" for the inventory).
class MetricsRegistry {
 public:
  /// The process-wide registry (intentionally leaked: instruments cached in
  /// long-lived objects must stay valid through static destruction).
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Zeroes every registered instrument (registrations and cached pointers
  /// survive). Test isolation only.
  void ResetForTest();

  /// "name value" lines, histograms as count/sum/mean/p50/p99/max.
  std::string ToText() const;
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p99, max}}}.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  // std::map: stable iteration order for deterministic dumps.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_METRICS_H_

// Per-query resource governor: cooperative cancellation, wall-clock
// deadlines, and memory budgets (DESIGN.md §15).
//
// Query evaluation over trees is NP-hard in combined complexity, so a
// single bad statement can run (and allocate) essentially forever. The
// governor bounds that damage cooperatively: every physical operator and
// evaluator loop checks a ResourceGovernor carried on ExecContext once per
// morsel/batch — the same zero-cost-when-off discipline as QueryTrace
// (null pointer = one branch per operator, never per row) — and large
// materializations (columnar emit buffers, join scratch) are charged to a
// MemoryBudget before they grow.
//
// Three pieces:
//
//  * CancelToken — a sticky atomic cancel flag another thread may raise at
//    any time (Session::Cancel). Safe to share across threads.
//  * MemoryBudget — atomic byte accounting against a cap, optionally
//    chained to a parent budget (per-query -> process-wide). The per-query
//    budget is an allocation meter: charges accumulate over the statement
//    (intermediates are not released individually), which keeps the hot
//    path to one fetch_add and still bounds a runaway join, whose output
//    is exactly what blows up. Destruction returns the total to the
//    parent, so process-wide accounting never leaks across statements.
//  * ResourceGovernor — binds the two plus a monotonic deadline for one
//    statement execution. The first violation trips a sticky error
//    (Cancelled / DeadlineExceeded / ResourceExhausted); operators that
//    cannot return a Status (they return bare Tables) stop emitting and
//    the evaluator surfaces the sticky status before any truncated output
//    can escape as a result.
//
// Thread safety: morsel workers check and charge one governor
// concurrently; the trip flag is atomic and the sticky status is
// mutex-guarded (taken only on the first violation).

#ifndef COLORFUL_XML_COMMON_GOVERNOR_H_
#define COLORFUL_XML_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>

#include "common/status.h"

namespace mct {

/// Sticky cross-thread cancellation flag. RequestCancel may be called from
/// any thread at any time; the governed execution observes it at its next
/// morsel boundary.
class CancelToken {
 public:
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token for the next statement (a cancelled session is not
  /// dead — clear and continue).
  void Clear() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Atomic byte accounting against a cap. limit_bytes == 0 means unlimited
/// (the budget still counts, e.g. to feed a parent's cap). A parent chain
/// lets a per-statement budget also draw down a process-wide one; a charge
/// refused by any level is rolled back at every level below it.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t limit_bytes = 0,
                        MemoryBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {}
  /// Returns the outstanding total to the parent and publishes the peak to
  /// the mct.governor.peak_bytes high-watermark gauge.
  ~MemoryBudget();

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Accounts `bytes` against this budget and every parent. On refusal
  /// (any level would exceed its cap) nothing stays charged and a
  /// ResourceExhausted describing the refusing level is returned.
  Status TryCharge(uint64_t bytes);
  /// Returns `bytes` to this budget and every parent.
  void Release(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_; }

 private:
  const uint64_t limit_;
  MemoryBudget* const parent_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

/// One statement execution's guard: checked at morsel/batch boundaries by
/// every physical operator and evaluator loop (via ExecContext::governor).
/// Any of the three inputs may be absent; a governor is only constructed
/// when at least one is present, so ungoverned execution pays one null
/// check per operator.
class ResourceGovernor {
 public:
  ResourceGovernor(
      CancelToken* cancel,
      std::optional<std::chrono::steady_clock::time_point> deadline,
      MemoryBudget* budget)
      : cancel_(cancel),
        has_deadline_(deadline.has_value()),
        deadline_(deadline.value_or(std::chrono::steady_clock::time_point())),
        budget_(budget) {}

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// True once any violation has tripped: one relaxed load, the hot check.
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

  /// Morsel-boundary check for operators that return bare Tables: true
  /// when execution must stop (already tripped, cancel requested, or the
  /// deadline passed — the latter two trip the sticky status here). The
  /// caller stops emitting; the evaluator surfaces status().
  bool ShouldStop();

  /// Morsel-boundary check for Status-returning paths: OK, or the sticky
  /// violation status.
  Status Check() {
    if (!ShouldStop()) return Status::OK();
    return status();
  }

  /// Charges `bytes` to the memory budget (no-op without one); a refusal
  /// trips ResourceExhausted. Returns true when execution must stop.
  bool ChargeOrStop(uint64_t bytes);

  /// Charge for Status-returning paths.
  Status Charge(uint64_t bytes) {
    if (!ChargeOrStop(bytes)) return Status::OK();
    return status();
  }

  /// The sticky first-violation status; OK when not tripped.
  Status status() const {
    if (!tripped()) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

  MemoryBudget* budget() const { return budget_; }

 private:
  void Trip(Status s);

  CancelToken* const cancel_;
  const bool has_deadline_;
  const std::chrono::steady_clock::time_point deadline_;
  MemoryBudget* const budget_;

  std::atomic<bool> tripped_{false};
  mutable std::mutex mu_;
  Status status_;  // guarded by mu_; set once by the first Trip
};

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_GOVERNOR_H_

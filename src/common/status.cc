#include "common/status.h"

namespace mct {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kDynamicError:
      return "DynamicError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kStaticError:
      return "StaticError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace mct

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>

#include "common/metrics.h"

namespace mct {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  size_t total = num_threads > 0
                     ? static_cast<size_t>(num_threads)
                     : static_cast<size_t>(std::thread::hardware_concurrency());
  if (total == 0) total = 1;
  workers_.reserve(total - 1);
  for (size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Execute(const std::function<void()>& fn) {
  static Counter* executes =
      MetricsRegistry::Global().counter("mct.thread_pool.executes");
  static Histogram* exec_micros = MetricsRegistry::Global().histogram(
      "mct.thread_pool.execute_micros");
  static Histogram* wait_micros =
      MetricsRegistry::Global().histogram("mct.thread_pool.wait_micros");
  static Gauge* fanout =
      MetricsRegistry::Global().gauge("mct.thread_pool.fanout_width");
  executes->Inc();
  fanout->Set(static_cast<int64_t>(num_threads()));
  const auto t0 = std::chrono::steady_clock::now();
  if (workers_.empty()) {
    fn();
    exec_micros->Observe(MicrosSince(t0));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    ++generation_;
    pending_ = workers_.size();
  }
  work_cv_.notify_all();
  fn();  // the caller is a worker too
  // Time the caller spends blocked after its own share of the work is the
  // pool's load-imbalance signal.
  const auto wait_t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  wait_micros->Observe(MicrosSince(wait_t0));
  exec_micros->Observe(MicrosSince(t0));
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void()>* job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ParallelFor(ThreadPool* pool, size_t num_tasks,
                 const std::function<void(size_t)>& body) {
  static Counter* tasks =
      MetricsRegistry::Global().counter("mct.thread_pool.tasks");
  tasks->Inc(num_tasks);
  if (pool == nullptr || pool->num_threads() == 1 || num_tasks <= 1) {
    for (size_t i = 0; i < num_tasks; ++i) body(i);
    return;
  }
  // The shared claim counter is the hottest atomic in a shard-parallel
  // fan-out; pad it so the surrounding stack frame (the closure's captured
  // state, read-only during the loop) never shares its cache line.
  struct alignas(kCacheLineBytes) PaddedCounter {
    std::atomic<size_t> v{0};
    char pad[kCacheLineBytes - sizeof(std::atomic<size_t>)];
  } counter;
  std::atomic<size_t>& next = counter.v;
  pool->Execute([&] {
    for (;;) {
      size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= num_tasks) return;
      body(task);
    }
  });
}

}  // namespace mct

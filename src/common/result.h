// Result<T>: value-or-Status, the non-throwing analogue of std::expected.

#ifndef COLORFUL_XML_COMMON_RESULT_H_
#define COLORFUL_XML_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mct {

/// Holds either a T (status OK) or a non-OK Status.
///
/// Accessing the value of a non-OK Result is a programming error, guarded by
/// assert in debug builds.
///
/// [[nodiscard]]: a dropped Result discards both the value and any error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// is a programming error (there would be no value).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status with no value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when the Result is an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>); on error returns its Status, otherwise
/// move-assigns the value into `lhs`.
#define MCT_ASSIGN_OR_RETURN(lhs, expr)             \
  MCT_ASSIGN_OR_RETURN_IMPL_(                       \
      MCT_RESULT_CONCAT_(_result_, __LINE__), lhs, expr)

#define MCT_RESULT_CONCAT_INNER_(a, b) a##b
#define MCT_RESULT_CONCAT_(a, b) MCT_RESULT_CONCAT_INNER_(a, b)
#define MCT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_RESULT_H_

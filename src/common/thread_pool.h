// A reusable worker pool for morsel-driven parallel execution.
//
// The pool owns N-1 long-lived workers; the thread calling Execute() acts as
// the Nth worker, so a pool of size 1 degenerates to plain serial execution
// with no thread ever spawned. ParallelFor splits an index range into tasks
// that are claimed off a shared atomic counter (work stealing between
// morsels), which keeps load balanced when per-morsel cost is skewed —
// e.g. descendant expansion under one hot subtree.
//
// Callers are responsible for determinism: workers must write to
// task-indexed output slots, never to shared append-only state.

#ifndef COLORFUL_XML_COMMON_THREAD_POOL_H_
#define COLORFUL_XML_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mct {

class ThreadPool {
 public:
  /// `num_threads` is the total concurrency including the calling thread;
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `fn` on every worker and on the calling thread, returning when all
  /// invocations finish. `fn` must be callable concurrently; it typically
  /// drains a shared atomic task counter. Not reentrant.
  void Execute(const std::function<void()>& fn);

  /// Total concurrency (workers + caller).
  size_t num_threads() const { return workers_.size() + 1; }

 private:
  void WorkerLoop();

  // The lock word is pounded by every worker at every generation edge;
  // keep it off the cache line holding workers_, whose size is read
  // lock-free by num_threads() in every ParallelFor dispatch.
  alignas(64) std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void()>* job_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;                     // guarded by mu_
  size_t pending_ = 0;                          // guarded by mu_
  bool shutdown_ = false;                       // guarded by mu_
  std::vector<std::thread> workers_;
};

/// Runs body(task) for task in [0, num_tasks), fanning out across the pool.
/// Tasks are claimed dynamically; any task may run on any thread. A null
/// pool, a single-thread pool, or num_tasks <= 1 runs inline on the caller.
void ParallelFor(ThreadPool* pool, size_t num_tasks,
                 const std::function<void(size_t)>& body);

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_THREAD_POOL_H_

#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mct {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  int64_t v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace mct

#include "common/rng.h"

#include <cmath>

namespace mct {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse CDF of a continuous approximation to the Zipf distribution.
  double u = UniformDouble();
  double v = std::pow(static_cast<double>(n), 1.0 - theta);
  double x = std::pow(u * (v - 1.0) + 1.0, 1.0 / (1.0 - theta));
  uint64_t r = static_cast<uint64_t>(x) - 1;
  return r >= n ? n - 1 : r;
}

std::string Rng::Word(int min_len, int max_len) {
  int len = static_cast<int>(UniformInt(min_len, max_len));
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

}  // namespace mct

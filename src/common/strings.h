// Small string utilities shared across the library.

#ifndef COLORFUL_XML_COMMON_STRINGS_H_
#define COLORFUL_XML_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mct {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields. This is
/// the tokenization used for IDREFS attribute lists.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `haystack` contains `needle` (XQuery fn:contains on strings).
bool Contains(std::string_view haystack, std::string_view needle);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Parses a decimal integer; nullopt when `s` is not entirely an integer.
std::optional<int64_t> ParseInt(std::string_view s);

/// Parses a decimal floating point number; nullopt when malformed.
std::optional<double> ParseDouble(std::string_view s);

/// Lower-cases ASCII letters.
std::string AsciiLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string EscapeJson(std::string_view s);

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_STRINGS_H_

#include "common/metrics.h"

#include <bit>

#include "common/strings.h"

namespace mct {

namespace {

// Index of the bucket holding `sample`: its bit width.
int BucketOf(uint64_t sample) {
  return sample == 0 ? 0 : 64 - std::countl_zero(sample);
}

// Upper edge of bucket b (inclusive): largest sample it can hold.
uint64_t BucketUpper(int b) {
  if (b == 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

}  // namespace

void Histogram::Observe(uint64_t sample) {
  buckets_[static_cast<size_t>(BucketOf(sample))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < sample &&
         !max_.compare_exchange_weak(prev, sample,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::ApproxPercentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += BucketCount(b);
    if (seen >= rank) return BucketUpper(b);
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s %lld\n", name.c_str(),
                     static_cast<long long>(g->value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat(
        "%s count=%llu sum=%llu mean=%.1f p50<=%llu p99<=%llu max=%llu\n",
        name.c_str(), static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->sum()), h->Mean(),
        static_cast<unsigned long long>(h->ApproxPercentile(0.5)),
        static_cast<unsigned long long>(h->ApproxPercentile(0.99)),
        static_cast<unsigned long long>(h->max()));
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s\"%s\": %llu", first ? "" : ", ", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s\"%s\": %lld", first ? "" : ", ", name.c_str(),
                     static_cast<long long>(g->value()));
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += StrFormat(
        "%s\"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.3f, "
        "\"p50\": %llu, \"p99\": %llu, \"max\": %llu}",
        first ? "" : ", ", name.c_str(),
        static_cast<unsigned long long>(h->count()),
        static_cast<unsigned long long>(h->sum()), h->Mean(),
        static_cast<unsigned long long>(h->ApproxPercentile(0.5)),
        static_cast<unsigned long long>(h->ApproxPercentile(0.99)),
        static_cast<unsigned long long>(h->max()));
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace mct

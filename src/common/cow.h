// Chunked copy-on-write storage for MVCC snapshot versions.
//
// CowChunkVector<T> is an indexable container whose payload lives in
// fixed-size chunks held through shared_ptr. Cloning a CowChunkVector is a
// shallow copy of the chunk-pointer directory: O(slots / kChunkSize)
// pointer copies, with every chunk shared between the clone and its source.
// The first mutation of a slot whose chunk is shared copies that one chunk
// (copy-on-write); all other chunks stay shared. This is the structural-
// node-level versioning granularity of the MVCC design (DESIGN.md §14):
// an epoch clone shares everything a commit did not touch, and dropping a
// retired version releases exactly the chunks that version privatized.
//
// Sparse use (ColoredTree membership keyed by NodeId) is supported through
// per-chunk engagement bits: absent slots have no value, chunks with no
// engaged slot are null pointers, and a chunk whose last slot is erased is
// dropped so detached subtrees release memory per version.
//
// Thread model: a CowChunkVector that is reachable by concurrent readers
// must never be mutated — MVCC publishes a version and from then on only
// clones of it are written. Mutators decide "shared" with use_count(),
// which can only over-estimate sharing from the single writer's point of
// view (a racing reader release makes it copy once more than strictly
// needed — never mutate a chunk a reader still holds).
//
// CowLiveChunks() counts every live chunk process-wide; the epoch-
// retirement leak tests compare it against the chunks resident in the head
// version to prove retired versions free their copies.

#ifndef COLORFUL_XML_COMMON_COW_H_
#define COLORFUL_XML_COMMON_COW_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace mct {

namespace cow_internal {
inline std::atomic<int64_t>& LiveChunkCount() {
  static std::atomic<int64_t> count{0};
  return count;
}
}  // namespace cow_internal

/// Process-wide number of live COW chunks across every CowChunkVector
/// instantiation. The authoritative value is this plain atomic (not a
/// metrics Gauge), so MetricsRegistry::ResetForTest cannot corrupt it;
/// MVCC mirrors it into the mct.mvcc.cow_chunks gauge by Set().
inline int64_t CowLiveChunks() {
  return cow_internal::LiveChunkCount().load(std::memory_order_relaxed);
}

template <typename T>
class CowChunkVector {
 public:
  static constexpr size_t kChunkSlots = 64;

  CowChunkVector() = default;

  /// Shallow copy: shares every chunk with `o` (the COW clone step).
  CowChunkVector(const CowChunkVector&) = default;
  CowChunkVector& operator=(const CowChunkVector&) = default;
  CowChunkVector(CowChunkVector&&) noexcept = default;
  CowChunkVector& operator=(CowChunkVector&&) noexcept = default;

  /// The value at slot `i`, or null when `i` is out of range or the slot is
  /// not engaged. Never copies.
  const T* Find(size_t i) const {
    size_t ci = i / kChunkSlots, si = i % kChunkSlots;
    if (ci >= chunks_.size() || chunks_[ci] == nullptr) return nullptr;
    const Chunk& c = *chunks_[ci];
    if (((c.engaged >> si) & 1) == 0) return nullptr;
    return &c.slots[si];
  }

  /// The value at slot `i`, which must be engaged.
  const T& At(size_t i) const {
    const T* p = Find(i);
    assert(p != nullptr);
    return *p;
  }

  bool Contains(size_t i) const { return Find(i) != nullptr; }

  /// Mutable access to an engaged slot; copies the chunk first when shared.
  T* MutableFind(size_t i) {
    size_t ci = i / kChunkSlots, si = i % kChunkSlots;
    if (ci >= chunks_.size() || chunks_[ci] == nullptr) return nullptr;
    if (((chunks_[ci]->engaged >> si) & 1) == 0) return nullptr;
    return &Own(ci)->slots[si];
  }

  T& Mut(size_t i) {
    T* p = MutableFind(i);
    assert(p != nullptr);
    return *p;
  }

  /// Engages slot `i` (value-initialized when new) and returns a mutable
  /// reference. Extends the directory as needed.
  T& Put(size_t i) {
    size_t ci = i / kChunkSlots, si = i % kChunkSlots;
    if (ci >= chunks_.size()) chunks_.resize(ci + 1);
    Chunk* c = Own(ci);
    if (((c->engaged >> si) & 1) == 0) {
      c->engaged |= (uint64_t{1} << si);
      c->slots[si] = T{};
      ++count_;
    }
    return c->slots[si];
  }

  /// Disengages slot `i`, destroying its value. A chunk left with no
  /// engaged slot is dropped (memory returns when the last version sharing
  /// it is retired).
  void Erase(size_t i) {
    size_t ci = i / kChunkSlots, si = i % kChunkSlots;
    if (ci >= chunks_.size() || chunks_[ci] == nullptr) return;
    if (((chunks_[ci]->engaged >> si) & 1) == 0) return;
    Chunk* c = Own(ci);
    c->engaged &= ~(uint64_t{1} << si);
    c->slots[si] = T{};
    --count_;
    if (c->engaged == 0) chunks_[ci] = nullptr;
  }

  /// Engaged slots.
  size_t count() const { return count_; }

  /// Non-null chunks resident in this instance (shared ones included).
  size_t num_chunks() const {
    size_t n = 0;
    for (const auto& c : chunks_) n += (c != nullptr);
    return n;
  }

  /// Visits every engaged slot in increasing index order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t ci = 0; ci < chunks_.size(); ++ci) {
      const Chunk* c = chunks_[ci].get();
      if (c == nullptr) continue;
      uint64_t m = c->engaged;
      while (m != 0) {
        size_t si = static_cast<size_t>(__builtin_ctzll(m));
        fn(ci * kChunkSlots + si, c->slots[si]);
        m &= m - 1;
      }
    }
  }

 private:
  struct Chunk {
    Chunk() {
      cow_internal::LiveChunkCount().fetch_add(1, std::memory_order_relaxed);
    }
    Chunk(const Chunk& o) : engaged(o.engaged), slots(o.slots) {
      cow_internal::LiveChunkCount().fetch_add(1, std::memory_order_relaxed);
    }
    ~Chunk() {
      cow_internal::LiveChunkCount().fetch_sub(1, std::memory_order_relaxed);
    }
    uint64_t engaged = 0;
    std::array<T, kChunkSlots> slots{};
  };

  /// The chunk at directory slot `ci`, privately owned: allocates when
  /// null, copies when shared with another version.
  Chunk* Own(size_t ci) {
    std::shared_ptr<Chunk>& c = chunks_[ci];
    if (c == nullptr) {
      c = std::make_shared<Chunk>();
    } else if (c.use_count() > 1) {
      c = std::make_shared<Chunk>(*c);
    }
    return c.get();
  }

  std::vector<std::shared_ptr<Chunk>> chunks_;
  size_t count_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_COMMON_COW_H_

#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "mcx/parser.h"

namespace mct::serve {

namespace {

/// Plan-cache entries tolerated before a recency prune (ApplyBatch).
constexpr size_t kPlanCacheCap = 4096;

Counter* ReadsCounter() {
  static Counter* c = MetricsRegistry::Global().counter("mct.serve.reads");
  return c;
}
Counter* CommitsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.serve.committed_statements");
  return c;
}
Counter* BatchesCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.serve.group_commits");
  return c;
}
Counter* QueueShedsCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.governor.queue_sheds");
  return c;
}
Counter* RetriesCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.governor.retries");
  return c;
}

void EnsureAllLabels(MctDatabase& db) {
  for (size_t c = 0; c < db.num_colors(); ++c) {
    db.tree(static_cast<ColorId>(c))->EnsureLabels();
  }
}

}  // namespace

// ---------------------------------------------------------------- Session

Session::~Session() {
  reader_.reset();
  pin_.Release();
  server_->ReleaseSession();
}

Status Session::Begin() {
  reader_.reset();
  pin_.Release();
  pin_ = server_->mvcc_.PinHead();
  // Detached clone: the evaluator mutates its database (lazy relabeling,
  // free nodes for RETURN constructors), and the pinned version is a
  // frozen snapshot shared with every other session at this epoch.
  reader_ = pin_.db()->CowClone(/*write_through=*/false);
  return Status::OK();
}

Status Session::Commit() {
  reader_.reset();
  pin_.Release();
  return Status::OK();
}

Result<mcx::QueryResult> Session::Run(std::string_view text) {
  return Run(text, server_->opts_.default_color);
}

Result<mcx::QueryResult> Session::Run(std::string_view text,
                                      ColorId default_color) {
  // Classification parse. Reads then re-enter through the cached-statement
  // path (an exact plan-cache hit for a previous epoch-mate skips plan,
  // not this parse); updates ship their text to the committer, which
  // parses against the commit-time head.
  auto parsed = mcx::Parse(text);
  if (!parsed.ok()) return parsed.status();

  // The statement's deadline is stamped at acceptance, so for updates it
  // covers queue wait and retries too — a statement cannot dodge its
  // timeout by sitting in the commit queue or backing off.
  const ServerOptions& sopts = server_->opts_;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (sopts.statement_timeout_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(sopts.statement_timeout_ms);
  }

  if (parsed->is_update) {
    uint64_t epoch = 0;
    Result<mcx::QueryResult> r =
        server_->CommitStatement(text, default_color, &cancel_, deadline,
                                 mask_, &epoch);
    // Retryable failures (queue shed, memory pressure) back off with
    // jitter and try again, up to admission_retries attempts; Cancelled
    // and DeadlineExceeded fail straight through (retrying cannot help).
    for (int attempt = 0;
         !r.ok() && r.status().IsRetryable() &&
         attempt < sopts.admission_retries;
         ++attempt) {
      RetriesCounter()->Inc();
      const int64_t base_us = 500ll << std::min(attempt, 8);
      const int64_t jitter_us =
          retry_rng_.UniformInt(base_us / 2, base_us + base_us / 2);
      std::this_thread::sleep_for(std::chrono::microseconds(jitter_us));
      r = server_->CommitStatement(text, default_color, &cancel_, deadline,
                                   mask_, &epoch);
    }
    if (r.ok() && pin_.valid()) {
      // Read-your-writes: the old snapshot predates the commit, so re-pin
      // at (at least) the publishing epoch.
      MCT_RETURN_IF_ERROR(Begin());
    }
    return r;
  }

  if (!pin_.valid()) MCT_RETURN_IF_ERROR(Begin());
  // Per-statement budget, drawing down the server-wide pool; outstanding
  // bytes return to the pool when the statement finishes (dtor).
  MemoryBudget stmt_budget(
      sopts.statement_memory_limit,
      sopts.total_memory_limit > 0 ? &server_->total_budget_ : nullptr);
  mcx::EvalOptions o;
  o.default_color = default_color;
  o.planner = server_->opts_.planner;
  o.plan_cache = server_->opts_.planner ? &server_->plan_cache_ : nullptr;
  o.cache_epoch = pin_.epoch();
  o.cancel_token = &cancel_;
  o.deadline = deadline;
  if (sopts.statement_memory_limit > 0 || sopts.total_memory_limit > 0) {
    o.memory_budget = &stmt_budget;
  }
  o.mask = mask_;
  o.mask_enforcement = sopts.mask_enforcement;
  mcx::Evaluator ev(reader_.get(), o);
  auto r = ev.Run(text);
  if (r.ok()) ReadsCounter()->Inc();
  return r;
}

// ------------------------------------------------------------ ColorServer

Result<std::unique_ptr<ColorServer>> ColorServer::Open(const std::string& dir,
                                                       ServerOptions opts,
                                                       FileEnv* env) {
  if (env == nullptr) env = FileEnv::Default();
  MCT_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
  auto server =
      std::unique_ptr<ColorServer>(new ColorServer(dir, opts, env));
  MCT_ASSIGN_OR_RETURN(server->lock_, DirLock::Acquire(env, dir));
  MCT_ASSIGN_OR_RETURN(RecoveredDatabase rec, RecoverDatabase(dir, env));
  MCT_ASSIGN_OR_RETURN(
      server->wal_,
      WalWriter::Open(env, WalFilePath(dir), rec.next_lsn,
                      /*truncate=*/false));
  EnsureAllLabels(*rec.db);
  // Shard-aligned epochs: the seed snapshot publishes with its interval
  // shard map already built, so no reader session ever pays the build.
  rec.db->SetShardCount(opts.shard_count);
  rec.db->EnsureShardMap();
  // Seed epoch = next_lsn: monotone across restarts, so a client that
  // remembers an epoch from a previous incarnation can never mistake an
  // older state for a newer one.
  server->mvcc_.Seed(
      std::shared_ptr<const MctDatabase>(std::move(rec.db)), rec.next_lsn);
  return server;
}

ColorServer::~ColorServer() = default;

Status ColorServer::Bootstrap(std::unique_ptr<MctDatabase> db) {
  std::unique_lock<std::mutex> lk(commit_mu_);
  commit_cv_.wait(lk, [&] { return commit_queue_.empty(); });
  MCT_RETURN_IF_ERROR(broken_);
  EnsureAllLabels(*db);
  db->SetShardCount(opts_.shard_count);
  db->EnsureShardMap();
  MCT_RETURN_IF_ERROR(wal_->Sync());
  uint64_t covered = wal_->next_lsn() - 1;
  MCT_RETURN_IF_ERROR(CheckpointDatabase(*db, dir_, covered, env_));
  MCT_ASSIGN_OR_RETURN(wal_, WalWriter::Open(env_, WalFilePath(dir_),
                                             wal_->next_lsn(),
                                             /*truncate=*/true));
  mvcc_.Publish(std::shared_ptr<const MctDatabase>(std::move(db)));
  std::lock_guard<std::mutex> h(history_mu_);
  history_.clear();
  return Status::OK();
}

Result<std::unique_ptr<Session>> ColorServer::Connect() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (opts_.max_sessions > 0 && live_sessions_ >= opts_.max_sessions) {
    // ResourceExhausted, not OutOfRange: the limit is a transient capacity
    // condition (a slot frees when any session closes), so clients may
    // retry with backoff — the error-code contract IsRetryable() encodes.
    return Status::ResourceExhausted("session limit reached");
  }
  ++live_sessions_;
  return std::unique_ptr<Session>(new Session(this));
}

Result<std::unique_ptr<Session>> ColorServer::Connect(const ColorMask& mask) {
  MCT_ASSIGN_OR_RETURN(std::unique_ptr<Session> s, Connect());
  s->mask_ = mask;
  return s;
}

void ColorServer::ReleaseSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  --live_sessions_;
}

Status ColorServer::Checkpoint() {
  std::unique_lock<std::mutex> lk(commit_mu_);
  // Queue empty <=> no commit in flight (a leader's request stays at the
  // queue front while it applies), so head + WAL are mutually consistent.
  commit_cv_.wait(lk, [&] { return commit_queue_.empty(); });
  MCT_RETURN_IF_ERROR(wal_->Sync());
  uint64_t covered = wal_->next_lsn() - 1;
  // Checkpoint a detached clone: serialization touches lazy state, and the
  // head version is a frozen snapshot readers share.
  std::unique_ptr<MctDatabase> clone =
      mvcc_.Head()->CowClone(/*write_through=*/false);
  MCT_RETURN_IF_ERROR(CheckpointDatabase(*clone, dir_, covered, env_));
  MCT_ASSIGN_OR_RETURN(wal_, WalWriter::Open(env_, WalFilePath(dir_),
                                             wal_->next_lsn(),
                                             /*truncate=*/true));
  return Status::OK();
}

std::vector<CommittedStatement> ColorServer::CommitHistory() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return history_;
}

Result<mcx::QueryResult> ColorServer::CommitStatement(
    std::string_view text, ColorId default_color, CancelToken* cancel,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    const ColorMask& mask, uint64_t* out_epoch) {
  // Admission: bound the number of sessions inside the commit path. With
  // max_queue_depth > 0 the wait itself is bounded too: an arrival that
  // would queue behind max_queue_depth waiters is shed immediately with a
  // retryable ResourceExhausted instead of piling onto a saturated server.
  {
    std::unique_lock<std::mutex> g(admit_mu_);
    if (opts_.max_queue_depth > 0 &&
        active_writers_ >= opts_.max_concurrent_writers &&
        admit_waiters_ >= opts_.max_queue_depth) {
      QueueShedsCounter()->Inc();
      return Status::ResourceExhausted("commit admission queue full");
    }
    ++admit_waiters_;
    admit_cv_.wait(
        g, [&] { return active_writers_ < opts_.max_concurrent_writers; });
    --admit_waiters_;
    ++active_writers_;
  }

  CommitRequest req;
  req.text = std::string(text);
  req.default_color = default_color;
  req.cancel = cancel;
  req.deadline = deadline;
  req.mask = mask;

  {
    std::unique_lock<std::mutex> lk(commit_mu_);
    commit_queue_.push_back(&req);
    commit_cv_.wait(
        lk, [&] { return req.done || commit_queue_.front() == &req; });
    if (!req.done) {
      // Leader: carry every queued request in one batch. Leadership stays
      // exclusive while unlocked because &req remains the queue front.
      std::vector<CommitRequest*> batch(commit_queue_.begin(),
                                        commit_queue_.end());
      lk.unlock();
      ApplyBatch(batch);
      lk.lock();
      commit_queue_.erase(commit_queue_.begin(),
                          commit_queue_.begin() + batch.size());
      for (CommitRequest* r : batch) r->done = true;
      commit_cv_.notify_all();
    }
  }

  {
    std::lock_guard<std::mutex> g(admit_mu_);
    --active_writers_;
    admit_cv_.notify_one();
  }

  if (!req.status.ok()) return req.status;
  if (out_epoch != nullptr) *out_epoch = req.epoch;
  return std::move(req.result);
}

void ColorServer::ApplyBatch(const std::vector<CommitRequest*>& batch) {
  {
    std::lock_guard<std::mutex> lk(commit_mu_);
    if (!broken_.ok()) {
      for (CommitRequest* r : batch) r->status = broken_;
      return;
    }
  }

  std::shared_ptr<const MctDatabase> base = mvcc_.Head();
  const uint64_t base_epoch = mvcc_.head_epoch();
  std::unique_ptr<MctDatabase> pending = base->CowClone(/*write_through=*/true);
  std::vector<CommitRequest*> applied;
  for (CommitRequest* r : batch) {
    // Statement atomicity: apply against a trial clone of the pending
    // state; a mid-statement failure — including a governor trip — discards
    // the trial whole instead of leaving the batch half-mutated. A request
    // cancelled or expired while it sat in the queue is shed by the
    // evaluator's entry check before any work happens.
    std::unique_ptr<MctDatabase> trial = pending->CowClone(true);
    MemoryBudget stmt_budget(
        opts_.statement_memory_limit,
        opts_.total_memory_limit > 0 ? &total_budget_ : nullptr);
    mcx::EvalOptions o;
    o.default_color = r->default_color;
    o.planner = opts_.planner;
    // The shared cache serves the committer too: parameterized update
    // statements (distinct literals, same shape) reuse plan skeletons via
    // their normalized text. cache_epoch != 0 keeps updates from
    // blanket-invalidating the readers' entries.
    o.plan_cache = opts_.planner ? &plan_cache_ : nullptr;
    o.cache_epoch = base_epoch;
    o.wal = wal_.get();
    o.wal_sync_each = false;  // one fsync per group, below
    o.cancel_token = r->cancel;
    o.deadline = r->deadline;
    if (opts_.statement_memory_limit > 0 || opts_.total_memory_limit > 0) {
      o.memory_budget = &stmt_budget;
    }
    o.mask = r->mask;
    o.mask_enforcement = opts_.mask_enforcement;
    mcx::Evaluator ev(trial.get(), o);
    auto res = ev.Run(r->text);
    if (res.ok()) {
      pending = std::move(trial);
      r->result = std::move(*res);
      applied.push_back(r);
    } else {
      r->status = res.status();
    }
  }
  if (applied.empty()) return;

  if (opts_.sync_commits) {
    Status s = wal_->Sync();
    if (!s.ok()) {
      // Durability before visibility: nothing publishes. The WAL now holds
      // appended records of unknown durability, so the server goes
      // read-only rather than risk replaying unacknowledged statements.
      for (CommitRequest* r : batch) r->status = s;
      std::lock_guard<std::mutex> lk(commit_mu_);
      broken_ = s;
      return;
    }
  }

  // Freeze lazy label state before anyone shares the snapshot, then
  // publish — the linearization point of every statement in the batch.
  EnsureAllLabels(*pending);
  // Rebuild the shard map once per epoch on the committer thread (trial
  // clones that mutated structure dropped the shared map); reader clones
  // then share the head's map pointer and never rebuild.
  pending->EnsureShardMap();
  uint64_t epoch =
      mvcc_.Publish(std::shared_ptr<const MctDatabase>(std::move(pending)));
  {
    std::lock_guard<std::mutex> h(history_mu_);
    for (CommitRequest* r : applied) {
      r->epoch = epoch;
      history_.push_back({epoch, r->default_color, r->text});
    }
  }
  BatchesCounter()->Inc();
  CommitsCounter()->Inc(static_cast<uint64_t>(applied.size()));
  // Memory cap, not a correctness barrier: hot entries carry a recent
  // stamp (lookups refresh it), so pruning sheds only cold ones — e.g.
  // exact-text entries for one-off parameterized updates.
  if (plan_cache_.size() > kPlanCacheCap) {
    plan_cache_.Prune(mvcc_.oldest_live_epoch());
  }
}

}  // namespace mct::serve

// Concurrent multi-session serving with MVCC snapshot isolation
// (DESIGN.md §14).
//
// ColorServer owns one durable database directory (recovery on Open, the
// PR 3 WAL for commits, explicit checkpoints) and serves any number of
// concurrent Sessions, each on its own thread:
//
//  * reads run against an immutable epoch snapshot pinned at Begin() —
//    no locks on the data, repeatable results for the whole transaction;
//  * update statements funnel through a cross-session group committer
//    (leader/follower over a writer queue, LevelDB-style): the leader
//    clones the head version copy-on-write, applies every queued
//    statement — each through its own trial clone, so a failing statement
//    is discarded whole — appends the survivors to the WAL, makes the
//    batch durable with ONE fsync, and publishes the result as the next
//    epoch. Publish order is the commit linearization point.
//
// A session that commits an update is re-pinned to the publishing epoch,
// so it reads its own writes; sessions that only read keep their snapshot
// until Commit(). The process-wide PlanCache is shared across sessions
// with epoch-stamped entries (query/planner.h), so commits need no cache
// barrier.
//
// ColorServer methods are thread-safe; an individual Session is owned by
// one thread at a time (the normal one-connection-one-thread model).

#ifndef COLORFUL_XML_SERVE_SERVER_H_
#define COLORFUL_XML_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "common/rng.h"
#include "mct/color.h"
#include "mct/database.h"
#include "mct/durability.h"
#include "mct/mvcc.h"
#include "mcx/evaluator.h"
#include "query/planner.h"
#include "storage/wal.h"

namespace mct::serve {

struct ServerOptions {
  /// Color used by statements without explicit {color} annotations.
  ColorId default_color = 0;
  /// Admission control: at most this many sessions may be inside the
  /// commit path (queued or applying) at once; further writers block.
  int max_concurrent_writers = 4;
  /// Maximum live sessions; 0 = unlimited. Connect() fails with
  /// ResourceExhausted (retryable) beyond it.
  int max_sessions = 0;
  /// Cost-based planning + the shared epoch-stamped plan cache for reads.
  bool planner = true;
  /// Fsync the WAL once per commit group before publishing (durability
  /// before visibility). false trades durability of the newest commits
  /// for throughput — snapshot isolation itself is unaffected.
  bool sync_commits = true;
  /// Per-statement wall-clock timeout in milliseconds; 0 = none. The
  /// deadline is stamped when Run() accepts the statement, so for updates
  /// it covers queue wait too: a statement that expires while queued is
  /// shed without executing (DeadlineExceeded).
  int64_t statement_timeout_ms = 0;
  /// Per-statement memory budget in bytes (charged by operators for
  /// columnar emit buffers and join scratch); 0 = none. Statements that
  /// exceed it fail with ResourceExhausted.
  uint64_t statement_memory_limit = 0;
  /// Process-wide cap the per-statement budgets chain to; 0 = none.
  /// Concurrent statements draw down one shared pool, so overload degrades
  /// into per-statement ResourceExhausted instead of an OOM kill.
  uint64_t total_memory_limit = 0;
  /// Bounded writer admission: at most this many writers may *wait* for a
  /// commit slot; one more fast-fails with ResourceExhausted (a load shed,
  /// counted by mct.governor.queue_sheds). 0 = legacy unbounded blocking.
  int max_queue_depth = 0;
  /// Session::Run retries a retryable failure (ResourceExhausted: queue
  /// shed, memory) this many times with exponential backoff + jitter
  /// before surfacing it. 0 = fail straight through.
  int admission_retries = 0;
  /// Enforcement mode for masked sessions (secure color views, DESIGN.md
  /// §16): kStrict (default) rejects statements that name or require an
  /// invisible color with PermissionDenied before any side effect; kWarn
  /// admits them and relies on the evaluator layer to filter invisible
  /// nodes out of results. Sessions without a mask are unaffected.
  mcx::AnalyzeMode mask_enforcement = mcx::AnalyzeMode::kStrict;
  /// Intra-process interval-range shards (DESIGN.md §17). Every published
  /// snapshot carries a prebuilt shard map: Open/Bootstrap build it after
  /// recovery, and the committer rebuilds it once per epoch before Publish,
  /// so reader sessions never pay the build. 1 (the default) disables
  /// sharding and leaves every code path byte-identical to the unsharded
  /// server.
  int shard_count = 1;
};

/// One committed update statement, in publish order. Statements grouped
/// into one batch share an epoch.
struct CommittedStatement {
  uint64_t epoch = 0;
  ColorId default_color = 0;
  std::string text;
};

class ColorServer;

/// One client connection. Begin() pins an epoch snapshot; Run() executes
/// reads against it and routes updates through the server's group
/// committer; Commit() releases the snapshot. Run() auto-begins when no
/// transaction is open. Not thread-safe; must not outlive its server.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Pins the current head epoch for subsequent reads.
  Status Begin();
  /// Ends the transaction and releases the snapshot.
  Status Commit();

  Result<mcx::QueryResult> Run(std::string_view text);
  Result<mcx::QueryResult> Run(std::string_view text, ColorId default_color);

  /// Cancels the statement this session is currently running (and any
  /// later one, until ClearCancel). Safe to call from any thread — this is
  /// the one cross-thread entry point on a Session. The victim observes
  /// the flag at its next morsel boundary and fails with Cancelled; an
  /// update cancelled mid-trial is discarded whole (trial clone), so it
  /// leaves no side effects.
  void Cancel() { cancel_.RequestCancel(); }
  /// Re-arms the session after a cancel; subsequent statements run
  /// normally.
  void ClearCancel() { cancel_.Clear(); }
  CancelToken* cancel_token() { return &cancel_; }

  /// The session's color visibility mask, fixed at Connect for the whole
  /// session lifetime (inactive for sessions opened without one). There is
  /// deliberately no setter: a mask that could widen mid-transaction would
  /// break the plan-cache fingerprint slicing and snapshot reasoning.
  const ColorMask& mask() const { return mask_; }

  /// Epoch of the pinned snapshot; 0 when no transaction is open.
  uint64_t snapshot_epoch() const { return pin_.epoch(); }
  /// The session's private view of the pinned snapshot (tests and tools
  /// render results through it); null when no transaction is open.
  const MctDatabase* snapshot_db() const { return reader_.get(); }

 private:
  friend class ColorServer;
  explicit Session(ColorServer* server) : server_(server) {}

  ColorServer* server_;
  MvccManager::Pin pin_;
  /// Private detached clone of the pinned snapshot: the read path mutates
  /// (lazy relabeling, RETURN constructors create free nodes), so the
  /// shared frozen version itself is never handed to an evaluator.
  std::unique_ptr<MctDatabase> reader_;
  /// Raised by Cancel() from any thread; carried into every statement this
  /// session runs (reads directly, updates through the commit queue).
  CancelToken cancel_;
  /// Backoff jitter for retryable commit failures. Seeded per session;
  /// only this session's thread draws from it.
  Rng retry_rng_{reinterpret_cast<uint64_t>(this)};
  /// Visibility mask (immutable; set by Connect(mask)). Carried into every
  /// statement this session runs, reads and commits alike.
  ColorMask mask_;
};

class ColorServer {
 public:
  /// Recovers `dir` (checkpoint + WAL replay), takes the directory writer
  /// lock, and publishes the recovered database as the seed epoch.
  static Result<std::unique_ptr<ColorServer>> Open(const std::string& dir,
                                                   ServerOptions opts = {},
                                                   FileEnv* env = nullptr);
  ~ColorServer();

  /// Replaces the database wholesale (initial load): checkpoints `db`,
  /// resets the WAL, publishes it as the next epoch. Requires no commit
  /// in flight; concurrent readers keep their old snapshots.
  Status Bootstrap(std::unique_ptr<MctDatabase> db);

  /// Opens a session. Fails with ResourceExhausted (retryable — a slot
  /// frees when any session closes) past max_sessions.
  Result<std::unique_ptr<Session>> Connect();
  /// Opens a session restricted to `mask` for its whole lifetime — the
  /// multi-tenant entry point. The mask governs reads (invisible colors
  /// bind and serialize nothing), commits (write-invisible colors are
  /// refused per ServerOptions::mask_enforcement), and plan-cache sharing
  /// (entries are sliced by mask fingerprint).
  Result<std::unique_ptr<Session>> Connect(const ColorMask& mask);

  /// Checkpoints the head snapshot and resets the WAL. Waits for in-flight
  /// commits; safe with concurrent readers and writers.
  Status Checkpoint();

  /// Every committed statement since Open/Bootstrap, in publish order.
  /// The differential-test oracle replays this against a twin database.
  std::vector<CommittedStatement> CommitHistory() const;

  uint64_t head_epoch() const { return mvcc_.head_epoch(); }
  const ServerOptions& options() const { return opts_; }
  MvccManager& mvcc() { return mvcc_; }
  query::PlanCache& plan_cache() { return plan_cache_; }

 private:
  friend class Session;

  struct CommitRequest {
    std::string text;
    ColorId default_color = 0;
    /// Governor inputs carried through the queue: the leader hands them to
    /// the trial evaluator, and a request already cancelled or expired
    /// when the leader reaches it is shed without executing.
    CancelToken* cancel = nullptr;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// The submitting session's visibility mask: the trial evaluator
    /// enforces it, so a masked tenant's update cannot touch an invisible
    /// color even though the committer runs on a shared thread.
    ColorMask mask;
    bool done = false;
    Status status = Status::OK();
    mcx::QueryResult result;
    uint64_t epoch = 0;
  };

  ColorServer(std::string dir, ServerOptions opts, FileEnv* env)
      : dir_(std::move(dir)),
        opts_(opts),
        env_(env),
        total_budget_(opts.total_memory_limit) {}

  /// Group commit entry point: enqueue, then either lead the batch or wait
  /// for a leader to carry the request. Returns the statement's result.
  /// Fast-fails with ResourceExhausted when the bounded admission queue is
  /// full (max_queue_depth > 0).
  Result<mcx::QueryResult> CommitStatement(
      std::string_view text, ColorId default_color, CancelToken* cancel,
      std::optional<std::chrono::steady_clock::time_point> deadline,
      const ColorMask& mask, uint64_t* out_epoch);
  /// Leader body: applies `batch` against a COW clone of head, syncs the
  /// WAL once, publishes. Called with commit_mu_ released (the queue front
  /// keeps leadership exclusive).
  void ApplyBatch(const std::vector<CommitRequest*>& batch);

  void ReleaseSession();

  std::string dir_;
  ServerOptions opts_;
  FileEnv* env_ = nullptr;
  DirLock lock_;
  std::unique_ptr<WalWriter> wal_;  // leader- or checkpoint-owned only
  MvccManager mvcc_;
  query::PlanCache plan_cache_;

  /// Writer queue. front() is the leader; everyone else waits on
  /// commit_cv_ until done or promoted. queue empty <=> no commit in
  /// flight (the leader's request stays at front while it applies).
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::deque<CommitRequest*> commit_queue_;
  /// First WAL-sync failure; once set the server refuses further commits
  /// (records past the failed sync have unknown durability, so applying
  /// more on top could replay statements never acknowledged).
  Status broken_ = Status::OK();

  /// Admission gate for the commit path. admit_waiters_ counts writers
  /// blocked on a commit slot; with max_queue_depth > 0 an arrival beyond
  /// it is shed instead of queued.
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  int active_writers_ = 0;
  int admit_waiters_ = 0;

  /// Process-wide memory pool per-statement budgets chain to (limit 0 =
  /// unlimited, when total_memory_limit is unset).
  MemoryBudget total_budget_;

  mutable std::mutex history_mu_;
  std::vector<CommittedStatement> history_;

  mutable std::mutex sessions_mu_;
  int live_sessions_ = 0;
};

}  // namespace mct::serve

#endif  // COLORFUL_XML_SERVE_SERVER_H_

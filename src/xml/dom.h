// A lightweight owning DOM used as the XML exchange surface (parsing
// serialized MCT databases, Section 5) and by the workload generators.
// The database's resident representation is mct::NodeStore, not this DOM.

#ifndef COLORFUL_XML_XML_DOM_H_
#define COLORFUL_XML_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mct::xml {

/// The seven node kinds of the XQuery 1.0 / XPath 2.0 data model the paper
/// builds on (Section 3.1).
enum class NodeKind : uint8_t {
  kDocument = 0,
  kElement = 1,
  kAttribute = 2,
  kText = 3,
  kNamespace = 4,
  kProcessingInstruction = 5,
  kComment = 6,
};

std::string_view NodeKindToString(NodeKind kind);

struct Attr {
  std::string name;
  std::string value;
};

/// Element node owning its attributes and children. Text, comment and PI
/// children are represented as Element with the corresponding kind and the
/// payload in `text`.
class Element {
 public:
  explicit Element(std::string name, NodeKind kind = NodeKind::kElement)
      : kind_(kind), name_(std::move(name)) {}

  NodeKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  /// Payload for text/comment/PI nodes.
  const std::string& text() const { return text_; }
  void set_text(std::string t) { text_ = std::move(t); }

  const std::vector<Attr>& attrs() const { return attrs_; }
  /// Attribute value or nullptr when absent.
  const std::string* FindAttr(std::string_view name) const;
  void SetAttr(std::string_view name, std::string_view value);

  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  Element* AddChild(std::unique_ptr<Element> child) {
    children_.push_back(std::move(child));
    return children_.back().get();
  }
  /// Convenience: appends a new element child with `name` and returns it.
  Element* AddElement(std::string name);
  /// Convenience: appends a text node child.
  void AddText(std::string text);
  /// Convenience: appends <name>text</name>.
  Element* AddTextElement(std::string name, std::string text);

  /// Concatenated text of this node and element descendants
  /// (XPath string-value).
  std::string StringValue() const;

  /// First element child with `name`, or nullptr.
  const Element* FindChild(std::string_view name) const;

  /// Number of nodes (elements + text + ...) in this subtree, including
  /// this node.
  size_t SubtreeSize() const;

 private:
  NodeKind kind_;
  std::string name_;
  std::string text_;
  std::vector<Attr> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// An XML document: a single element root (prologue/PIs outside the root are
/// parsed and dropped; the paper's exchange format does not rely on them).
struct Document {
  std::unique_ptr<Element> root;
};

}  // namespace mct::xml

#endif  // COLORFUL_XML_XML_DOM_H_

#include "xml/escape.h"

#include <cstdlib>

#include "common/strings.h"

namespace mct::xml {

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttr(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\n':
        out += "&#10;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view ent = s.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      long code;
      char* end = nullptr;
      std::string body(ent.substr(1));
      if (!body.empty() && (body[0] == 'x' || body[0] == 'X')) {
        code = std::strtol(body.c_str() + 1, &end, 16);
        if (end != body.c_str() + body.size()) {
          return Status::ParseError("malformed hex character reference: &" +
                                    std::string(ent) + ";");
        }
      } else {
        code = std::strtol(body.c_str(), &end, 10);
        if (end != body.c_str() + body.size() || body.empty()) {
          return Status::ParseError("malformed character reference: &" +
                                    std::string(ent) + ";");
        }
      }
      // Encode as UTF-8.
      if (code < 0 || code > 0x10FFFF) {
        return Status::ParseError("character reference out of range");
      }
      uint32_t cp = static_cast<uint32_t>(code);
      if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return Status::ParseError("unknown entity: &" + std::string(ent) + ";");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace mct::xml

#include "xml/writer.h"

#include "xml/escape.h"

namespace mct::xml {

namespace {

void WriteRec(const Element& e, const WriteOptions& opt, int depth,
              std::string* out) {
  auto indent = [&](int d) {
    if (opt.pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };

  switch (e.kind()) {
    case NodeKind::kText:
      out->append(EscapeText(e.text()));
      return;
    case NodeKind::kComment:
      out->append("<!--").append(e.text()).append("-->");
      return;
    case NodeKind::kProcessingInstruction:
      out->append("<?").append(e.name());
      if (!e.text().empty()) out->append(" ").append(e.text());
      out->append("?>");
      return;
    default:
      break;
  }

  out->push_back('<');
  out->append(e.name());
  for (const Attr& a : e.attrs()) {
    out->push_back(' ');
    out->append(a.name);
    out->append("=\"");
    out->append(EscapeAttr(a.value));
    out->push_back('"');
  }
  if (e.children().empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  // Mixed content (any text child) is written inline to preserve the text
  // exactly; element-only content may be pretty printed.
  bool has_text_child = false;
  for (const auto& c : e.children()) {
    if (c->kind() == NodeKind::kText) {
      has_text_child = true;
      break;
    }
  }
  bool pretty_here = opt.pretty && !has_text_child;
  for (const auto& c : e.children()) {
    if (pretty_here) indent(depth + 1);
    WriteOptions child_opt = opt;
    child_opt.pretty = pretty_here;
    WriteRec(*c, child_opt, depth + 1, out);
  }
  if (pretty_here) indent(depth);
  out->append("</");
  out->append(e.name());
  out->push_back('>');
}

}  // namespace

std::string Write(const Element& elem, const WriteOptions& options) {
  std::string out;
  if (options.declaration) out += "<?xml version=\"1.0\"?>";
  if (options.pretty && options.declaration) out += "\n";
  WriteRec(elem, options, 0, &out);
  if (options.pretty) out += "\n";
  return out;
}

std::string Write(const Document& doc, const WriteOptions& options) {
  return doc.root ? Write(*doc.root, options) : std::string();
}

}  // namespace mct::xml

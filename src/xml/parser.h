// Non-validating XML parser: elements, attributes, character data (with
// entity resolution), CDATA, comments, processing instructions, and an
// optional XML declaration / DOCTYPE line (skipped). Namespace declarations
// are kept as ordinary attributes, which is sufficient for the exchange
// format of Section 5 and for ingesting generated workloads.

#ifndef COLORFUL_XML_XML_PARSER_H_
#define COLORFUL_XML_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/dom.h"

namespace mct::xml {

/// Parses a whole document; ParseError (with offset info) on malformed input.
Result<Document> Parse(std::string_view input);

}  // namespace mct::xml

#endif  // COLORFUL_XML_XML_PARSER_H_

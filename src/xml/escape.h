// XML character escaping / entity resolution.

#ifndef COLORFUL_XML_XML_ESCAPE_H_
#define COLORFUL_XML_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace mct::xml {

/// Escapes text content: & < >.
std::string EscapeText(std::string_view s);

/// Escapes an attribute value (also " and newline-safe).
std::string EscapeAttr(std::string_view s);

/// Resolves the five predefined entities and decimal/hex character
/// references. ParseError on an unknown or malformed entity.
Result<std::string> Unescape(std::string_view s);

}  // namespace mct::xml

#endif  // COLORFUL_XML_XML_ESCAPE_H_

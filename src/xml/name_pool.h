// NamePool: interns tag and attribute names to dense uint32 ids, so node
// records and index keys store 4-byte name ids instead of strings.

#ifndef COLORFUL_XML_XML_NAME_POOL_H_
#define COLORFUL_XML_XML_NAME_POOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mct {

using NameId = uint32_t;
inline constexpr NameId kInvalidNameId = 0xFFFFFFFFu;

class NamePool {
 public:
  /// Returns the id for `name`, interning it if new.
  NameId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    NameId id = static_cast<NameId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` or kInvalidNameId when never interned.
  NameId Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidNameId : it->second;
  }

  const std::string& Name(NameId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, NameId> ids_;
  std::vector<std::string> names_;
};

}  // namespace mct

#endif  // COLORFUL_XML_XML_NAME_POOL_H_

#include "xml/parser.h"

#include <cctype>
#include <vector>

#include "common/strings.h"
#include "xml/escape.h"

namespace mct::xml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Result<Document> ParseDocument() {
    SkipProlog();
    MCT_ASSIGN_OR_RETURN(auto root, ParseElement());
    SkipMisc();
    if (pos_ != in_.size()) {
      return Err("trailing content after document element");
    }
    Document doc;
    doc.root = std::move(root);
    return doc;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool Lookahead(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipProlog() {
    SkipWs();
    while (!AtEnd()) {
      if (Lookahead("<?")) {
        size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else if (Lookahead("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else if (Lookahead("<!DOCTYPE")) {
        size_t end = in_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 1;
      } else {
        break;
      }
      SkipWs();
    }
  }

  void SkipMisc() {
    SkipWs();
    while (!AtEnd() && (Lookahead("<?") || Lookahead("<!--"))) {
      if (Lookahead("<?")) {
        size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else {
        size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      }
      SkipWs();
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected a name");
    size_t start = pos_;
    ++pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    if (AtEnd() || Peek() != '<') return Err("expected '<'");
    ++pos_;
    MCT_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto elem = std::make_unique<Element>(std::move(name));
    // Attributes.
    while (true) {
      SkipWs();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>' || Lookahead("/>")) break;
      MCT_ASSIGN_OR_RETURN(std::string aname, ParseName());
      SkipWs();
      if (AtEnd() || Peek() != '=') return Err("expected '=' in attribute");
      ++pos_;
      SkipWs();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t vstart = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Err("unterminated attribute value");
      MCT_ASSIGN_OR_RETURN(std::string avalue,
                           Unescape(in_.substr(vstart, pos_ - vstart)));
      ++pos_;  // closing quote
      if (elem->FindAttr(aname) != nullptr) {
        return Err("duplicate attribute '" + aname + "'");
      }
      elem->SetAttr(aname, avalue);
    }
    if (Lookahead("/>")) {
      pos_ += 2;
      return elem;
    }
    ++pos_;  // '>'

    // Content.
    while (true) {
      if (AtEnd()) return Err("unterminated element <" + elem->name() + ">");
      if (Lookahead("</")) {
        pos_ += 2;
        MCT_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != elem->name()) {
          return Err("mismatched close tag </" + close + "> for <" +
                     elem->name() + ">");
        }
        SkipWs();
        if (AtEnd() || Peek() != '>') return Err("expected '>' in close tag");
        ++pos_;
        return elem;
      }
      if (Lookahead("<!--")) {
        size_t end = in_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Err("unterminated comment");
        auto node = std::make_unique<Element>("", NodeKind::kComment);
        node->set_text(std::string(in_.substr(pos_ + 4, end - pos_ - 4)));
        elem->AddChild(std::move(node));
        pos_ = end + 3;
        continue;
      }
      if (Lookahead("<![CDATA[")) {
        size_t end = in_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Err("unterminated CDATA");
        elem->AddText(std::string(in_.substr(pos_ + 9, end - pos_ - 9)));
        pos_ = end + 3;
        continue;
      }
      if (Lookahead("<?")) {
        size_t end = in_.find("?>", pos_ + 2);
        if (end == std::string_view::npos) return Err("unterminated PI");
        std::string_view body = in_.substr(pos_ + 2, end - pos_ - 2);
        size_t sp = body.find(' ');
        auto node = std::make_unique<Element>(
            std::string(sp == std::string_view::npos ? body
                                                     : body.substr(0, sp)),
            NodeKind::kProcessingInstruction);
        node->set_text(std::string(
            sp == std::string_view::npos ? "" : body.substr(sp + 1)));
        elem->AddChild(std::move(node));
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<') {
        MCT_ASSIGN_OR_RETURN(auto child, ParseElement());
        elem->AddChild(std::move(child));
        continue;
      }
      // Character data up to the next markup.
      size_t end = in_.find('<', pos_);
      if (end == std::string_view::npos) {
        return Err("unterminated element <" + elem->name() + ">");
      }
      MCT_ASSIGN_OR_RETURN(std::string text,
                           Unescape(in_.substr(pos_, end - pos_)));
      // Whitespace-only runs between elements are formatting, not data.
      if (!StripWhitespace(text).empty()) {
        elem->AddText(std::move(text));
      }
      pos_ = end;
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<Document> Parse(std::string_view input) {
  Parser p(input);
  return p.ParseDocument();
}

}  // namespace mct::xml

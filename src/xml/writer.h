// XML writer: serializes a DOM back to text, compact or pretty-printed.

#ifndef COLORFUL_XML_XML_WRITER_H_
#define COLORFUL_XML_XML_WRITER_H_

#include <string>

#include "xml/dom.h"

namespace mct::xml {

struct WriteOptions {
  /// Indent children by 2 spaces per depth; false emits compact XML.
  bool pretty = false;
  /// Emit an <?xml version="1.0"?> declaration.
  bool declaration = false;
};

/// Serializes `elem` (and its subtree).
std::string Write(const Element& elem, const WriteOptions& options = {});

/// Serializes a whole document.
std::string Write(const Document& doc, const WriteOptions& options = {});

}  // namespace mct::xml

#endif  // COLORFUL_XML_XML_WRITER_H_

#include "xml/dom.h"

namespace mct::xml {

std::string_view NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument:
      return "document";
    case NodeKind::kElement:
      return "element";
    case NodeKind::kAttribute:
      return "attribute";
    case NodeKind::kText:
      return "text";
    case NodeKind::kNamespace:
      return "namespace";
    case NodeKind::kProcessingInstruction:
      return "processing-instruction";
    case NodeKind::kComment:
      return "comment";
  }
  return "unknown";
}

const std::string* Element::FindAttr(std::string_view name) const {
  for (const Attr& a : attrs_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

void Element::SetAttr(std::string_view name, std::string_view value) {
  for (Attr& a : attrs_) {
    if (a.name == name) {
      a.value = std::string(value);
      return;
    }
  }
  attrs_.push_back(Attr{std::string(name), std::string(value)});
}

Element* Element::AddElement(std::string name) {
  return AddChild(std::make_unique<Element>(std::move(name)));
}

void Element::AddText(std::string text) {
  auto node = std::make_unique<Element>("", NodeKind::kText);
  node->set_text(std::move(text));
  AddChild(std::move(node));
}

Element* Element::AddTextElement(std::string name, std::string text) {
  Element* e = AddElement(std::move(name));
  e->AddText(std::move(text));
  return e;
}

std::string Element::StringValue() const {
  if (kind_ == NodeKind::kText) return text_;
  std::string out;
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kText) {
      out += c->text();
    } else if (c->kind() == NodeKind::kElement) {
      out += c->StringValue();
    }
  }
  return out;
}

const Element* Element::FindChild(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->kind() == NodeKind::kElement && c->name() == name) return c.get();
  }
  return nullptr;
}

size_t Element::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace mct::xml

#include "workload/tpcw_db.h"

#include "common/strings.h"

namespace mct::workload {

namespace {

std::string Money(double v) { return StrFormat("%.2f", v); }

// Creates a field child carrying every color of its parent (the paper's
// convention for name subelements in the movie example).
Status AddField(MctDatabase* db, NodeId parent, ColorSet colors,
                const std::string& tag, const std::string& content) {
  auto cs = colors.ToVector();
  MCT_ASSIGN_OR_RETURN(NodeId field, db->CreateElement(cs[0], parent, tag));
  for (size_t i = 1; i < cs.size(); ++i) {
    MCT_RETURN_IF_ERROR(db->AddNodeColor(field, cs[i], parent));
  }
  return db->SetContent(field, content);
}

Result<TpcwDb> BuildMct(const TpcwData& d) {
  TpcwDb out;
  out.kind = SchemaKind::kMct;
  out.db = std::make_unique<MctDatabase>();
  MctDatabase* db = out.db.get();
  MCT_ASSIGN_OR_RETURN(out.cust, db->RegisterColor("cust"));
  MCT_ASSIGN_OR_RETURN(out.bill, db->RegisterColor("bill"));
  MCT_ASSIGN_OR_RETURN(out.ship, db->RegisterColor("ship"));
  MCT_ASSIGN_OR_RETURN(out.date, db->RegisterColor("date"));
  MCT_ASSIGN_OR_RETURN(out.auth, db->RegisterColor("auth"));
  NodeId doc = db->document();

  // Customers (cust tree roots).
  std::vector<NodeId> customers;
  customers.reserve(d.customers.size());
  for (const TpcwCustomer& c : d.customers) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(out.cust, doc, "customer"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "c" + std::to_string(c.id)));
    ColorSet cs = ColorSet::Of(out.cust);
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "uname", c.uname));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "fname", c.fname));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "lname", c.lname));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "since", c.since));
    customers.push_back(n);
  }

  // Addresses: every address participates in both the billing and the
  // shipping hierarchy.
  std::vector<NodeId> addresses;
  addresses.reserve(d.addresses.size());
  for (const TpcwAddress& a : d.addresses) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(out.bill, doc, "address"));
    MCT_RETURN_IF_ERROR(db->AddNodeColor(n, out.ship, doc));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "a" + std::to_string(a.id)));
    ColorSet cs = ColorSet::Of(out.bill).Union(ColorSet::Of(out.ship));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "street", a.street));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "city", a.city));
    MCT_RETURN_IF_ERROR(AddField(
        db, n, cs, "country",
        d.countries[static_cast<size_t>(a.country_id)].name));
    addresses.push_back(n);
  }

  // Dates.
  std::vector<NodeId> dates;
  dates.reserve(d.dates.size());
  for (const TpcwDate& dt : d.dates) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(out.date, doc, "date"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "d" + std::to_string(dt.id)));
    MCT_RETURN_IF_ERROR(db->SetContent(n, dt.value));
    dates.push_back(n);
  }

  // Authors and items.
  std::vector<NodeId> authors(d.authors.size(), kInvalidNodeId);
  for (const TpcwAuthor& a : d.authors) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(out.auth, doc, "author"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "au" + std::to_string(a.id)));
    ColorSet cs = ColorSet::Of(out.auth);
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "fname", a.fname));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "lname", a.lname));
    authors[static_cast<size_t>(a.id)] = n;
  }
  std::vector<NodeId> items(d.items.size(), kInvalidNodeId);
  for (const TpcwItem& it : d.items) {
    NodeId author = authors[static_cast<size_t>(it.author_id)];
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(out.auth, author, "item"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "i" + std::to_string(it.id)));
    // The paper's MCT database carries the same generated attributes as the
    // shallow one (Table 1 reports identical attribute counts); the IdRefs
    // are redundant next to the colored hierarchies but kept for parity.
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "authorIdRef", "au" + std::to_string(it.author_id)));
    ColorSet cs = ColorSet::Of(out.auth);
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "title", it.title));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "cost", Money(it.cost)));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "subject", it.subject));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "stock", std::to_string(it.stock)));
    items[static_cast<size_t>(it.id)] = n;
  }

  // Orders: cust + bill + ship + date.
  std::vector<NodeId> orders;
  orders.reserve(d.orders.size());
  for (const TpcwOrder& o : d.orders) {
    NodeId customer = customers[static_cast<size_t>(o.customer_id)];
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(out.cust, customer, "order"));
    MCT_RETURN_IF_ERROR(db->AddNodeColor(
        n, out.bill, addresses[static_cast<size_t>(o.bill_addr_id)]));
    MCT_RETURN_IF_ERROR(db->AddNodeColor(
        n, out.ship, addresses[static_cast<size_t>(o.ship_addr_id)]));
    MCT_RETURN_IF_ERROR(
        db->AddNodeColor(n, out.date, dates[static_cast<size_t>(o.date_id)]));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "o" + std::to_string(o.id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "customerIdRef", "c" + std::to_string(o.customer_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "billAddrIdRef", "a" + std::to_string(o.bill_addr_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "shipAddrIdRef", "a" + std::to_string(o.ship_addr_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "dateIdRef", "d" + std::to_string(o.date_id)));
    // Field children carry the colors the workload navigates them in
    // (cust and date); the model permits any subset of the parent's colors
    // and the paper's TPC-W schema does not pin this down.
    ColorSet cs = ColorSet::Of(out.cust).Union(ColorSet::Of(out.date));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "status", o.status));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "total", Money(o.total)));
    orders.push_back(n);
  }

  // Orderlines: under the order in four trees, under the item in auth.
  for (const TpcwOrderLine& ol : d.orderlines) {
    NodeId order = orders[static_cast<size_t>(ol.order_id)];
    MCT_ASSIGN_OR_RETURN(NodeId n,
                         db->CreateElement(out.cust, order, "orderline"));
    MCT_RETURN_IF_ERROR(db->AddNodeColor(n, out.bill, order));
    MCT_RETURN_IF_ERROR(db->AddNodeColor(n, out.ship, order));
    MCT_RETURN_IF_ERROR(db->AddNodeColor(n, out.date, order));
    MCT_RETURN_IF_ERROR(
        db->AddNodeColor(n, out.auth, items[static_cast<size_t>(ol.item_id)]));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "ol" + std::to_string(ol.id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "orderIdRef", "o" + std::to_string(ol.order_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "itemIdRef", "i" + std::to_string(ol.item_id)));
    ColorSet cs = ColorSet::Of(out.cust).Union(ColorSet::Of(out.auth));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "qty", std::to_string(ol.qty)));
    MCT_RETURN_IF_ERROR(AddField(db, n, cs, "discount", Money(ol.discount)));
  }
  return out;
}

Result<TpcwDb> BuildShallow(const TpcwData& d) {
  TpcwDb out;
  out.kind = SchemaKind::kShallow;
  out.db = std::make_unique<MctDatabase>();
  MctDatabase* db = out.db.get();
  MCT_ASSIGN_OR_RETURN(out.doc, db->RegisterColor("doc"));
  const ColorId c = out.doc;
  MCT_ASSIGN_OR_RETURN(NodeId tpcw,
                       db->CreateElement(c, db->document(), "tpcw"));
  ColorSet cs = ColorSet::Of(c);

  auto field = [&](NodeId parent, const std::string& tag,
                   const std::string& content) {
    return AddField(db, parent, cs, tag, content);
  };

  MCT_ASSIGN_OR_RETURN(NodeId customers, db->CreateElement(c, tpcw, "customers"));
  for (const TpcwCustomer& cust : d.customers) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, customers, "customer"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "c" + std::to_string(cust.id)));
    MCT_RETURN_IF_ERROR(field(n, "uname", cust.uname));
    MCT_RETURN_IF_ERROR(field(n, "fname", cust.fname));
    MCT_RETURN_IF_ERROR(field(n, "lname", cust.lname));
    MCT_RETURN_IF_ERROR(field(n, "since", cust.since));
  }
  MCT_ASSIGN_OR_RETURN(NodeId addresses, db->CreateElement(c, tpcw, "addresses"));
  for (const TpcwAddress& a : d.addresses) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, addresses, "address"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "a" + std::to_string(a.id)));
    MCT_RETURN_IF_ERROR(field(n, "street", a.street));
    MCT_RETURN_IF_ERROR(field(n, "city", a.city));
    MCT_RETURN_IF_ERROR(field(
        n, "country", d.countries[static_cast<size_t>(a.country_id)].name));
  }
  MCT_ASSIGN_OR_RETURN(NodeId dates, db->CreateElement(c, tpcw, "dates"));
  for (const TpcwDate& dt : d.dates) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, dates, "date"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "d" + std::to_string(dt.id)));
    MCT_RETURN_IF_ERROR(db->SetContent(n, dt.value));
  }
  MCT_ASSIGN_OR_RETURN(NodeId authors, db->CreateElement(c, tpcw, "authors"));
  for (const TpcwAuthor& a : d.authors) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, authors, "author"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "au" + std::to_string(a.id)));
    MCT_RETURN_IF_ERROR(field(n, "fname", a.fname));
    MCT_RETURN_IF_ERROR(field(n, "lname", a.lname));
  }
  MCT_ASSIGN_OR_RETURN(NodeId items, db->CreateElement(c, tpcw, "items"));
  for (const TpcwItem& it : d.items) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, items, "item"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "i" + std::to_string(it.id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "authorIdRef", "au" + std::to_string(it.author_id)));
    MCT_RETURN_IF_ERROR(field(n, "title", it.title));
    MCT_RETURN_IF_ERROR(field(n, "cost", Money(it.cost)));
    MCT_RETURN_IF_ERROR(field(n, "subject", it.subject));
    MCT_RETURN_IF_ERROR(field(n, "stock", std::to_string(it.stock)));
  }
  MCT_ASSIGN_OR_RETURN(NodeId orders, db->CreateElement(c, tpcw, "orders"));
  for (const TpcwOrder& o : d.orders) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, orders, "order"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "o" + std::to_string(o.id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "customerIdRef", "c" + std::to_string(o.customer_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "billAddrIdRef", "a" + std::to_string(o.bill_addr_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "shipAddrIdRef", "a" + std::to_string(o.ship_addr_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "dateIdRef", "d" + std::to_string(o.date_id)));
    MCT_RETURN_IF_ERROR(field(n, "status", o.status));
    MCT_RETURN_IF_ERROR(field(n, "total", Money(o.total)));
  }
  MCT_ASSIGN_OR_RETURN(NodeId orderlines,
                       db->CreateElement(c, tpcw, "orderlines"));
  for (const TpcwOrderLine& ol : d.orderlines) {
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, orderlines, "orderline"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "ol" + std::to_string(ol.id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "orderIdRef", "o" + std::to_string(ol.order_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(n, "itemIdRef", "i" + std::to_string(ol.item_id)));
    MCT_RETURN_IF_ERROR(field(n, "qty", std::to_string(ol.qty)));
    MCT_RETURN_IF_ERROR(field(n, "discount", Money(ol.discount)));
  }
  return out;
}

Result<TpcwDb> BuildDeep(const TpcwData& d) {
  TpcwDb out;
  out.kind = SchemaKind::kDeep;
  out.db = std::make_unique<MctDatabase>();
  MctDatabase* db = out.db.get();
  MCT_ASSIGN_OR_RETURN(out.doc, db->RegisterColor("doc"));
  const ColorId c = out.doc;
  MCT_ASSIGN_OR_RETURN(NodeId tpcw,
                       db->CreateElement(c, db->document(), "tpcw"));
  ColorSet cs = ColorSet::Of(c);

  auto field = [&](NodeId parent, const std::string& tag,
                   const std::string& content) {
    return AddField(db, parent, cs, tag, content);
  };
  // Replicated address subtree under an order; the role attribute
  // distinguishes billing from shipping (one tag keeps queries uniform).
  auto add_address = [&](NodeId order, const std::string& role,
                         int addr_id) -> Status {
    const TpcwAddress& a = d.addresses[static_cast<size_t>(addr_id)];
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateElement(c, order, "address"));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "role", role));
    MCT_RETURN_IF_ERROR(db->SetAttr(n, "id", "a" + std::to_string(a.id)));
    MCT_RETURN_IF_ERROR(field(n, "street", a.street));
    MCT_RETURN_IF_ERROR(field(n, "city", a.city));
    return field(n, "country",
                 d.countries[static_cast<size_t>(a.country_id)].name);
  };

  // Orderlines grouped by order for nesting.
  std::vector<std::vector<const TpcwOrderLine*>> by_order(d.orders.size());
  for (const TpcwOrderLine& ol : d.orderlines) {
    by_order[static_cast<size_t>(ol.order_id)].push_back(&ol);
  }
  // Orders grouped by customer.
  std::vector<std::vector<const TpcwOrder*>> by_customer(d.customers.size());
  for (const TpcwOrder& o : d.orders) {
    by_customer[static_cast<size_t>(o.customer_id)].push_back(&o);
  }

  for (const TpcwCustomer& cust : d.customers) {
    MCT_ASSIGN_OR_RETURN(NodeId cn, db->CreateElement(c, tpcw, "customer"));
    MCT_RETURN_IF_ERROR(db->SetAttr(cn, "id", "c" + std::to_string(cust.id)));
    MCT_RETURN_IF_ERROR(field(cn, "uname", cust.uname));
    MCT_RETURN_IF_ERROR(field(cn, "fname", cust.fname));
    MCT_RETURN_IF_ERROR(field(cn, "lname", cust.lname));
    MCT_RETURN_IF_ERROR(field(cn, "since", cust.since));
    for (const TpcwOrder* o : by_customer[static_cast<size_t>(cust.id)]) {
      MCT_ASSIGN_OR_RETURN(NodeId on, db->CreateElement(c, cn, "order"));
      MCT_RETURN_IF_ERROR(db->SetAttr(on, "id", "o" + std::to_string(o->id)));
      MCT_RETURN_IF_ERROR(field(on, "status", o->status));
      MCT_RETURN_IF_ERROR(field(on, "total", Money(o->total)));
      MCT_RETURN_IF_ERROR(
          field(on, "order_date",
                d.dates[static_cast<size_t>(o->date_id)].value));
      MCT_RETURN_IF_ERROR(add_address(on, "billing", o->bill_addr_id));
      MCT_RETURN_IF_ERROR(add_address(on, "shipping", o->ship_addr_id));
      for (const TpcwOrderLine* ol : by_order[static_cast<size_t>(o->id)]) {
        MCT_ASSIGN_OR_RETURN(NodeId ln, db->CreateElement(c, on, "orderline"));
        MCT_RETURN_IF_ERROR(
            db->SetAttr(ln, "id", "ol" + std::to_string(ol->id)));
        MCT_RETURN_IF_ERROR(field(ln, "qty", std::to_string(ol->qty)));
        MCT_RETURN_IF_ERROR(field(ln, "discount", Money(ol->discount)));
        // Replicated item subtree (with its replicated author).
        const TpcwItem& it = d.items[static_cast<size_t>(ol->item_id)];
        MCT_ASSIGN_OR_RETURN(NodeId in, db->CreateElement(c, ln, "item"));
        MCT_RETURN_IF_ERROR(db->SetAttr(in, "id", "i" + std::to_string(it.id)));
        MCT_RETURN_IF_ERROR(field(in, "title", it.title));
        MCT_RETURN_IF_ERROR(field(in, "cost", Money(it.cost)));
        MCT_RETURN_IF_ERROR(field(in, "subject", it.subject));
        MCT_RETURN_IF_ERROR(field(in, "stock", std::to_string(it.stock)));
        const TpcwAuthor& au = d.authors[static_cast<size_t>(it.author_id)];
        MCT_ASSIGN_OR_RETURN(NodeId an, db->CreateElement(c, in, "author"));
        MCT_RETURN_IF_ERROR(db->SetAttr(an, "id", "au" + std::to_string(au.id)));
        MCT_RETURN_IF_ERROR(field(an, "fname", au.fname));
        MCT_RETURN_IF_ERROR(field(an, "lname", au.lname));
      }
    }
  }
  return out;
}

}  // namespace

std::string_view SchemaKindName(SchemaKind k) {
  switch (k) {
    case SchemaKind::kMct:
      return "MCT";
    case SchemaKind::kShallow:
      return "Shallow";
    case SchemaKind::kDeep:
      return "Deep";
  }
  return "?";
}

Result<TpcwDb> BuildTpcw(const TpcwData& data, SchemaKind kind) {
  switch (kind) {
    case SchemaKind::kMct:
      return BuildMct(data);
    case SchemaKind::kShallow:
      return BuildShallow(data);
    case SchemaKind::kDeep:
      return BuildDeep(data);
  }
  return Status::InvalidArgument("unknown schema kind");
}

}  // namespace mct::workload

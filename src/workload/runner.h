// Query runner shared by the benchmark harness and the cross-schema
// equivalence tests: parse + plan + execute one catalog query against one
// database, reporting the paper's metrics (wall time, result cardinality,
// join anatomy).

#ifndef COLORFUL_XML_WORKLOAD_RUNNER_H_
#define COLORFUL_XML_WORKLOAD_RUNNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mct/database.h"
#include "mcx/evaluator.h"
#include "query/table.h"
#include "storage/wal.h"

namespace mct::workload {

struct QueryRun {
  uint64_t result_count = 0;   // items for reads, affected nodes for updates
  double seconds = 0;
  query::ExecStats stats;
  /// Atomized result items (only when collect_values was set).
  std::vector<std::string> values;
};

/// Runs `text` against `db` with `default_color` for uncolored steps.
/// `num_threads` follows EvalOptions: 1 = serial (default), 0 = hardware
/// concurrency; `morsel_size` sets the parallel row granularity. When
/// `trace` is non-null the evaluator records an EXPLAIN ANALYZE plan trace
/// into it (see query/trace.h). Durable mode: when `wal` is non-null,
/// update statements are logged and fsynced to it before returning, so a
/// crash after RunQuery reports an update is recoverable
/// (mct::RecoverDatabase); the reported wall time then includes the fsync,
/// as a real durable engine's commit latency would. `analyze` gates the
/// static analyzer (mcx/analysis.h): kWarn records diagnostics into
/// `check` (when non-null) without blocking, kStrict additionally rejects
/// statements with MCX0xx errors before execution (Status::StaticError).
/// `planner` enables cost-based plan selection (EvalOptions::planner);
/// `plan_cache` (implies planner-style session timing) additionally routes
/// the statement through Evaluator::Run(text), so the measured wall time
/// covers parse + plan + execute and repeated statements hit the cache —
/// the workload-session cost the planner bench compares. `vectorized`
/// follows EvalOptions::vectorized: false runs the operators' retained
/// row-at-a-time paths (the --batch A/B baseline); results are identical.
/// Resource governor (common/governor.h): `cancel` may be raised from
/// another thread to abort the run; `deadline_ms` > 0 bounds its wall
/// clock; `memory_limit_bytes` > 0 caps its materialized bytes — trips
/// surface as Cancelled / DeadlineExceeded / ResourceExhausted.
/// Secure color views (DESIGN.md §16): an active `mask` restricts the run
/// to its visible colors; `mask_enforcement` kStrict rejects violating
/// statements with PermissionDenied, kWarn filters silently.
Result<QueryRun> RunQuery(MctDatabase* db, ColorId default_color,
                          const std::string& text, bool collect_values = false,
                          int num_threads = 1, size_t morsel_size = 1024,
                          query::QueryTrace* trace = nullptr,
                          WalWriter* wal = nullptr,
                          mcx::AnalyzeMode analyze = mcx::AnalyzeMode::kOff,
                          mcx::AnalysisReport* check = nullptr,
                          bool planner = false,
                          query::PlanCache* plan_cache = nullptr,
                          bool vectorized = true,
                          CancelToken* cancel = nullptr,
                          int64_t deadline_ms = 0,
                          uint64_t memory_limit_bytes = 0,
                          const ColorMask& mask = {},
                          mcx::AnalyzeMode mask_enforcement =
                              mcx::AnalyzeMode::kStrict);

}  // namespace mct::workload

#endif  // COLORFUL_XML_WORKLOAD_RUNNER_H_

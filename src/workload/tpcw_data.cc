#include "workload/tpcw_data.h"

#include <cmath>

#include "common/strings.h"

namespace mct::workload {

namespace {

const char* kSubjects[] = {"ARTS",    "BIOGRAPHIES", "BUSINESS", "CHILDREN",
                           "COMPUTERS", "COOKING",   "HEALTH",   "HISTORY",
                           "HOME",     "HUMOR",      "LITERATURE", "MYSTERY",
                           "NON-FICTION", "PARENTING", "POLITICS", "REFERENCE",
                           "RELIGION", "ROMANCE",    "SCIENCE",  "TRAVEL"};
const char* kStatuses[] = {"pending", "processing", "shipped", "denied"};

std::string DateString(int ordinal) {
  // Dates over 2003, day granularity wrapping months of 28 days for
  // simplicity of generation (values only need to be distinct and ordered).
  int month = 1 + (ordinal / 28) % 12;
  int day = 1 + ordinal % 28;
  return StrFormat("2003-%02d-%02d", month, day);
}

}  // namespace

TpcwScale TpcwScale::ScaledBy(double f) const {
  TpcwScale s = *this;
  auto scale = [&](int v) { return std::max(1, static_cast<int>(std::lround(v * f))); };
  s.num_countries = scale(num_countries);
  s.num_authors = scale(num_authors);
  s.num_items = scale(num_items);
  s.num_customers = scale(num_customers);
  s.num_addresses = scale(num_addresses);
  s.num_dates = scale(num_dates);
  s.num_orders = scale(num_orders);
  return s;
}

TpcwData GenerateTpcw(const TpcwScale& scale) {
  Rng rng(scale.seed);
  TpcwData d;
  d.scale = scale;

  d.countries.reserve(static_cast<size_t>(scale.num_countries));
  for (int i = 0; i < scale.num_countries; ++i) {
    d.countries.push_back(TpcwCountry{i, "country-" + std::to_string(i)});
  }

  d.authors.reserve(static_cast<size_t>(scale.num_authors));
  for (int i = 0; i < scale.num_authors; ++i) {
    d.authors.push_back(TpcwAuthor{i, rng.Word(4, 8), rng.Word(5, 10)});
  }

  d.items.reserve(static_cast<size_t>(scale.num_items));
  for (int i = 0; i < scale.num_items; ++i) {
    TpcwItem item;
    item.id = i;
    item.title = "title-" + rng.Word(3, 6) + "-" + std::to_string(i);
    // Popular authors get more titles (Zipf), as in TPC-W's skew.
    item.author_id = static_cast<int>(
        rng.Zipf(static_cast<uint64_t>(scale.num_authors), 0.5));
    item.cost = static_cast<double>(rng.UniformInt(100, 9999)) / 100.0;
    item.subject = kSubjects[rng.Uniform(20)];
    item.stock = static_cast<int>(rng.UniformInt(0, 500));
    d.items.push_back(std::move(item));
  }

  d.customers.reserve(static_cast<size_t>(scale.num_customers));
  for (int i = 0; i < scale.num_customers; ++i) {
    TpcwCustomer c;
    c.id = i;
    c.uname = "user" + std::to_string(i);
    c.fname = rng.Word(4, 8);
    c.lname = rng.Word(5, 10);
    c.since = DateString(static_cast<int>(rng.Uniform(300)));
    d.customers.push_back(std::move(c));
  }

  d.addresses.reserve(static_cast<size_t>(scale.num_addresses));
  for (int i = 0; i < scale.num_addresses; ++i) {
    TpcwAddress a;
    a.id = i;
    a.street = std::to_string(rng.UniformInt(1, 999)) + " " + rng.Word(5, 9) +
               " st";
    a.city = "city-" + std::to_string(rng.Uniform(
                           static_cast<uint64_t>(scale.num_addresses) / 8 + 1));
    a.country_id = static_cast<int>(
        rng.Zipf(static_cast<uint64_t>(scale.num_countries), 0.6));
    d.addresses.push_back(std::move(a));
  }

  d.dates.reserve(static_cast<size_t>(scale.num_dates));
  for (int i = 0; i < scale.num_dates; ++i) {
    d.dates.push_back(TpcwDate{i, DateString(i)});
  }

  d.orders.reserve(static_cast<size_t>(scale.num_orders));
  int next_orderline = 0;
  for (int i = 0; i < scale.num_orders; ++i) {
    TpcwOrder o;
    o.id = i;
    o.customer_id = static_cast<int>(
        rng.Zipf(static_cast<uint64_t>(scale.num_customers), 0.4));
    o.bill_addr_id =
        static_cast<int>(rng.Uniform(static_cast<uint64_t>(scale.num_addresses)));
    o.ship_addr_id = rng.Bernoulli(0.8)
                         ? o.bill_addr_id
                         : static_cast<int>(rng.Uniform(
                               static_cast<uint64_t>(scale.num_addresses)));
    o.date_id =
        static_cast<int>(rng.Uniform(static_cast<uint64_t>(scale.num_dates)));
    o.status = kStatuses[rng.Uniform(4)];
    o.total = 0;
    int lines = static_cast<int>(
        rng.UniformInt(scale.min_orderlines, scale.max_orderlines));
    for (int l = 0; l < lines; ++l) {
      TpcwOrderLine ol;
      ol.id = next_orderline++;
      ol.order_id = i;
      // Popular items sell more (Zipf).
      ol.item_id = static_cast<int>(
          rng.Zipf(static_cast<uint64_t>(scale.num_items), 0.7));
      ol.qty = static_cast<int>(rng.UniformInt(1, 9));
      ol.discount = static_cast<double>(rng.UniformInt(0, 30)) / 100.0;
      o.total += static_cast<double>(ol.qty) *
                 d.items[static_cast<size_t>(ol.item_id)].cost *
                 (1.0 - ol.discount);
      d.orderlines.push_back(std::move(ol));
    }
    o.total = std::round(o.total * 100.0) / 100.0;
    d.orders.push_back(std::move(o));
  }

  // Ensure every item has at least one orderline: the deep schema only
  // materializes items inside orderlines, and the query catalogs are
  // result-equivalent across schemas only when the item sets agree.
  std::vector<bool> ordered(static_cast<size_t>(scale.num_items), false);
  for (const TpcwOrderLine& ol : d.orderlines) {
    ordered[static_cast<size_t>(ol.item_id)] = true;
  }
  for (int i = 0; i < scale.num_items; ++i) {
    if (ordered[static_cast<size_t>(i)]) continue;
    TpcwOrderLine ol;
    ol.id = next_orderline++;
    ol.order_id = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(scale.num_orders)));
    ol.item_id = i;
    ol.qty = 1;
    ol.discount = 0;
    TpcwOrder& o = d.orders[static_cast<size_t>(ol.order_id)];
    o.total = std::round((o.total + d.items[static_cast<size_t>(i)].cost) *
                         100.0) /
              100.0;
    d.orderlines.push_back(std::move(ol));
  }
  return d;
}

}  // namespace mct::workload

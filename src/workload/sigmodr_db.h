// SIGMOD-Record dataset (Section 7's second dataset) and its three physical
// schemas. The paper scaled the public SIGMOD Record XML by 100x; we
// generate an equivalent synthetic corpus (issues, articles with authors,
// plus the editor/topic classification the paper's 2-color MCT schema
// needs) at a configurable scale.
//
//  * MCT — 2 colors:  time:  date -- issue -- articles
//                     topic: editor -- topic -- articles
//  * Shallow — 3 trees: articles; date--issue; editor--topic (ID/IDREFs).
//  * Deep — single hierarchy date/issue/article with the editor and topic
//    information replicated inside every article.

#ifndef COLORFUL_XML_WORKLOAD_SIGMODR_DB_H_
#define COLORFUL_XML_WORKLOAD_SIGMODR_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mct/database.h"
#include "workload/tpcw_db.h"  // SchemaKind

namespace mct::workload {

struct SigmodScale {
  int num_years = 10;
  int issues_per_year = 4;
  int articles_per_issue = 60;
  int num_authors = 3000;
  int num_editors = 25;
  int num_topics = 40;
  int min_article_authors = 1;
  int max_article_authors = 4;
  uint64_t seed = 7;

  static SigmodScale Tiny() {
    SigmodScale s;
    s.num_years = 3;
    s.issues_per_year = 2;
    s.articles_per_issue = 8;
    s.num_authors = 30;
    s.num_editors = 4;
    s.num_topics = 6;
    return s;
  }
  static SigmodScale Default() { return SigmodScale(); }
  SigmodScale ScaledBy(double f) const;
};

struct SigmodArticle {
  int id;
  std::string title;
  int init_page, end_page;
  std::vector<int> author_ids;
  int issue_id;
  int topic_id;
};

struct SigmodIssue {
  int id;
  int volume, number;
  std::string date;  // year-month
  int year;
};

struct SigmodData {
  SigmodScale scale;
  std::vector<std::string> years;           // "1994" ...
  std::vector<SigmodIssue> issues;
  std::vector<SigmodArticle> articles;
  std::vector<std::string> authors;         // names
  std::vector<std::string> editors;         // names
  std::vector<std::string> topics;          // names
  std::vector<int> topic_editor;            // topic -> editor
};

SigmodData GenerateSigmod(const SigmodScale& scale);

struct SigmodDb {
  std::unique_ptr<MctDatabase> db;
  SchemaKind kind;
  ColorId time = kInvalidColorId;   // date--issue--articles
  ColorId topic = kInvalidColorId;  // editor--topic--articles
  ColorId doc = kInvalidColorId;    // shallow/deep

  ColorId default_color() const {
    return kind == SchemaKind::kMct ? time : doc;
  }
};

Result<SigmodDb> BuildSigmod(const SigmodData& data, SchemaKind kind);

}  // namespace mct::workload

#endif  // COLORFUL_XML_WORKLOAD_SIGMODR_DB_H_

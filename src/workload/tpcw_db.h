// Builds the three physical TPC-W databases of Section 7 from one logical
// dataset:
//
//  * MCT — the paper's 5-color schema:
//      cust: customer -- order -- orderline
//      bill: billing address -- order -- orderline
//      ship: shipping address -- order -- orderline
//      date: date -- order -- orderline
//      auth: author -- item -- orderline
//    Every entity element (and its field children, which carry all the
//    colors of their parent, as in the paper's movie example) is stored
//    once; orders live in four trees, orderlines in five.
//
//  * Shallow — single hierarchy in XNF: flat entity lists under containers,
//    relationships as id / *IdRef attributes.
//
//  * Deep — single un-normalized hierarchy: customer / order / addresses +
//    date + orderline / item / author, replicating items, authors,
//    addresses and dates per use (the source of the deep baseline's
//    duplicate troubles in Table 2).

#ifndef COLORFUL_XML_WORKLOAD_TPCW_DB_H_
#define COLORFUL_XML_WORKLOAD_TPCW_DB_H_

#include <memory>

#include "common/result.h"
#include "mct/database.h"
#include "workload/tpcw_data.h"

namespace mct::workload {

enum class SchemaKind { kMct, kShallow, kDeep };

std::string_view SchemaKindName(SchemaKind k);

struct TpcwDb {
  std::unique_ptr<MctDatabase> db;
  SchemaKind kind;
  /// MCT colors (kMct only).
  ColorId cust = kInvalidColorId;
  ColorId bill = kInvalidColorId;
  ColorId ship = kInvalidColorId;
  ColorId date = kInvalidColorId;
  ColorId auth = kInvalidColorId;
  /// The single color of shallow/deep databases.
  ColorId doc = kInvalidColorId;

  /// Default color for evaluating this database's dialect.
  ColorId default_color() const {
    return kind == SchemaKind::kMct ? cust : doc;
  }
};

Result<TpcwDb> BuildTpcw(const TpcwData& data, SchemaKind kind);

}  // namespace mct::workload

#endif  // COLORFUL_XML_WORKLOAD_TPCW_DB_H_

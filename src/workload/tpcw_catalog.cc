#include "common/strings.h"
#include "workload/catalog.h"

namespace mct::workload {

namespace {

constexpr char kDoc[] = "document(\"tpcw.xml\")";

std::string D(const char* fmt, const std::string& a = "",
              const std::string& b = "") {
  return StrFormat(fmt, a.c_str(), b.c_str());
}

}  // namespace

std::vector<CatalogQuery> TpcwCatalog(const TpcwData& d) {
  std::vector<CatalogQuery> out;

  // Parameters derived from the data so queries hit at every scale.
  const TpcwOrder& o0 = d.orders[0];
  const std::string uname0 =
      d.customers[static_cast<size_t>(o0.customer_id)].uname;
  const std::string subj0 = d.items[0].subject;
  const TpcwAddress& bill0 = d.addresses[static_cast<size_t>(o0.bill_addr_id)];
  const std::string country0 =
      d.countries[static_cast<size_t>(bill0.country_id)].name;
  const std::string ship_city0 =
      d.addresses[static_cast<size_t>(o0.ship_addr_id)].city;
  const std::string date_mid = d.dates[d.dates.size() / 2].value;
  // The most-ordered item (Zipf makes item 0 popular, but count to be sure).
  std::vector<int> item_lines(d.items.size(), 0);
  for (const TpcwOrderLine& ol : d.orderlines) {
    item_lines[static_cast<size_t>(ol.item_id)]++;
  }
  int popular_item = 0;
  for (size_t i = 0; i < item_lines.size(); ++i) {
    if (item_lines[i] > item_lines[static_cast<size_t>(popular_item)]) {
      popular_item = static_cast<int>(i);
    }
  }
  const std::string pop_title = d.items[static_cast<size_t>(popular_item)].title;
  const std::string street0 = bill0.street;
  const std::string author_ln0 =
      d.authors[static_cast<size_t>(d.items[0].author_id)].lname;

  CatalogQuery q;

  // ---- TQ1: point lookup, no joins anywhere. ----
  q = {};
  q.id = "TQ1";
  q.description = "last name of the customer with a given uname";
  q.mct = D("for $c in %s/{cust}descendant::customer"
            "[{cust}child::uname = \"%s\"] "
            "return $c/{cust}child::lname",
            kDoc, uname0);
  q.shallow = D("for $c in %s//customer[uname = \"%s\"] return $c/lname", kDoc,
                uname0);
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ2: selective scan over one entity. ----
  q = {};
  q.id = "TQ2";
  q.description = "totals of orders over 500";
  q.mct = D("for $o in %s/{cust}descendant::order[{cust}child::total > 500] "
            "return $o/{cust}child::total",
            kDoc);
  q.shallow = D("for $o in %s//order[total > 500] return $o/total", kDoc);
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ3: billing country + shipping city — 2 colors for MCT, 2 value
  // joins for shallow, pure nesting for deep (the paper's row where deep
  // wins). ----
  q = {};
  q.id = "TQ3";
  q.description = "orders billed in a country and shipped to a city";
  q.mct = StrFormat(
      "for $o in %s/{bill}descendant::address[{bill}child::country = \"%s\"]/"
      "{bill}child::order"
      "[{ship}parent::address/{ship}child::city = \"%s\"] "
      "return $o/@id",
      kDoc, country0.c_str(), ship_city0.c_str());
  q.shallow = StrFormat(
      "for $a in %s//address[country = \"%s\"], "
      "$o in %s//order, "
      "$a2 in %s//address[city = \"%s\"] "
      "where $o/@billAddrIdRef = $a/@id and $o/@shipAddrIdRef = $a2/@id "
      "return $o/@id",
      kDoc, country0.c_str(), kDoc, kDoc, ship_city0.c_str());
  // Deep plan: start from the selective country content, climb to the
  // order, then check the shipping predicate — the nesting makes both
  // conditions structural (the paper's row where deep wins).
  q.deep = StrFormat(
      "for $o in %s//country[. = \"%s\"]/parent::address"
      "[@role = \"billing\"]/parent::order"
      "[address[@role = \"shipping\"]/city = \"%s\"] "
      "return $o/@id",
      kDoc, country0.c_str(), ship_city0.c_str());
  q.colors = 2;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TQ4: range scan on customers (not replicated anywhere). ----
  q = {};
  q.id = "TQ4";
  q.description = "unames of customers registered after 2003-09";
  q.mct = D("for $c in %s/{cust}descendant::customer"
            "[{cust}child::since > \"2003-09\"] "
            "return $c/{cust}child::uname",
            kDoc);
  q.shallow =
      D("for $c in %s//customer[since > \"2003-09\"] return $c/uname", kDoc);
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ5: conjunctive selection on one entity. The threshold is set
  // just above the cheapest pending order so the query is satisfiable at
  // every scale. ----
  double min_pending = 1e18;
  for (const TpcwOrder& o : d.orders) {
    if (o.status == "pending" && o.total < min_pending) min_pending = o.total;
  }
  const std::string cheap = StrFormat("%.2f", min_pending + 25.0);
  q = {};
  q.id = "TQ5";
  q.description = "cheap pending orders";
  q.mct = StrFormat(
      "for $o in %s/{cust}descendant::order"
      "[{cust}child::status = \"pending\"][{cust}child::total < %s] "
      "return $o/@id",
      kDoc, cheap.c_str());
  q.shallow = StrFormat(
      "for $o in %s//order[status = \"pending\"][total < %s] "
      "return $o/@id",
      kDoc, cheap.c_str());
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ6: large scan over orderlines. ----
  q = {};
  q.id = "TQ6";
  q.description = "quantities of orderlines with deep discounts";
  q.mct = D("for $l in %s/{cust}descendant::orderline"
            "[{cust}child::discount >= 0.25] "
            "return $l/{cust}child::qty",
            kDoc);
  q.shallow = D("for $l in %s//orderline[discount >= 0.25] return $l/qty",
                kDoc);
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ7: item scan — items are replicated per orderline in deep, so
  // deep pays duplicates + elimination (paper: 112s vs 0.02s). ----
  q = {};
  q.id = "TQ7";
  q.description = "distinct titles of items costing over 90";
  q.mct = D("for $t in distinct-values(%s/{auth}descendant::item"
            "[{auth}child::cost > 90]/{auth}child::title) return $t",
            kDoc);
  q.shallow = D("for $t in distinct-values(%s//item[cost > 90]/title) "
                "return $t",
                kDoc);
  q.deep = q.shallow;
  q.deep_nodup =
      D("for $i in %s//item[cost > 90] return $i/title", kDoc);
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ8: point lookup by attribute. ----
  q = {};
  q.id = "TQ8";
  q.description = "total of one order by id";
  q.mct = D("for $o in %s/{cust}descendant::order[@id = \"o77\"] "
            "return $o/{cust}child::total",
            kDoc);
  q.shallow = D("for $o in %s//order[@id = \"o77\"] return $o/total", kDoc);
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ9: orderline–item relationship. MCT folded it into the auth
  // hierarchy (1 color); shallow needs the value join (paper: 0.55 vs
  // 30.16). ----
  q = {};
  q.id = "TQ9";
  q.description = "quantities of orderlines of items costing over 80";
  q.mct = D("for $l in %s/{auth}descendant::item[{auth}child::cost > 80]/"
            "{auth}child::orderline "
            "return $l/{auth}child::qty",
            kDoc);
  q.shallow = StrFormat(
      "for $i in %s//item[cost > 80], $l in %s//orderline "
      "where $l/@itemIdRef = $i/@id "
      "return $l/qty",
      kDoc, kDoc);
  q.deep = D("for $l in %s//orderline[item/cost > 80] return $l/qty", kDoc);
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TQ10: customer -> items' authors — a genuine color crossing for
  // MCT (cust -> auth), nesting for deep, a join chain for shallow. ----
  q = {};
  q.id = "TQ10";
  q.description = "authors of items ordered by one customer";
  q.mct = StrFormat(
      "for $a in %s/{cust}descendant::customer[{cust}child::uname = \"%s\"]/"
      "{cust}descendant::orderline/{auth}parent::item/{auth}parent::author "
      "return $a/{auth}child::lname",
      kDoc, uname0.c_str());
  q.shallow = StrFormat(
      "for $c in %s//customer[uname = \"%s\"], $o in %s//order, "
      "$l in %s//orderline, $i in %s//item, $a in %s//author "
      "where $o/@customerIdRef = $c/@id and $l/@orderIdRef = $o/@id and "
      "$l/@itemIdRef = $i/@id and $i/@authorIdRef = $a/@id "
      "return $a/lname",
      kDoc, uname0.c_str(), kDoc, kDoc, kDoc, kDoc);
  q.deep = StrFormat(
      "for $a in %s//customer[uname = \"%s\"]/order/orderline/item/author "
      "return $a/lname",
      kDoc, uname0.c_str());
  q.colors = 2;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TQ11: date -> orders. MCT's date hierarchy absorbs the join. ----
  q = {};
  q.id = "TQ11";
  q.description = "statuses of orders placed on one date";
  q.mct = StrFormat(
      "for $o in %s/{date}descendant::date[. = \"%s\"]/{date}child::order "
      "return $o/{date}child::status",
      kDoc, date_mid.c_str());
  q.shallow = StrFormat(
      "for $dt in %s//date[. = \"%s\"], $o in %s//order "
      "where $o/@dateIdRef = $dt/@id "
      "return $o/status",
      kDoc, date_mid.c_str(), kDoc);
  q.deep = StrFormat(
      "for $o in %s//order[order_date = \"%s\"] return $o/status", kDoc,
      date_mid.c_str());
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TQ12: item point lookup — replicated in deep (paper: TQ12D). ----
  q = {};
  q.id = "TQ12";
  q.description = "title of one item by id";
  q.mct = D("for $t in distinct-values(%s/{auth}descendant::item"
            "[@id = \"i7\"]/{auth}child::title) return $t",
            kDoc);
  q.shallow =
      D("for $t in distinct-values(%s//item[@id = \"i7\"]/title) return $t",
        kDoc);
  q.deep = q.shallow;
  q.deep_nodup = D("for $i in %s//item[@id = \"i7\"] return $i/title", kDoc);
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- TQ13: order -> orderline navigation, large. ----
  q = {};
  q.id = "TQ13";
  q.description = "quantities of orderlines of pending orders";
  q.mct = D("for $l in %s/{cust}descendant::order"
            "[{cust}child::status = \"pending\"]/{cust}child::orderline "
            "return $l/{cust}child::qty",
            kDoc);
  q.shallow = StrFormat(
      "for $o in %s//order[status = \"pending\"], $l in %s//orderline "
      "where $l/@orderIdRef = $o/@id "
      "return $l/qty",
      kDoc, kDoc);
  q.deep = D("for $l in %s//order[status = \"pending\"]/orderline "
             "return $l/qty",
             kDoc);
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TQ14: like TQ13, more selective. ----
  q = {};
  q.id = "TQ14";
  q.description = "discounts of orderlines of orders over 900";
  q.mct = D("for $l in %s/{cust}descendant::order[{cust}child::total > 900]/"
            "{cust}child::orderline "
            "return $l/{cust}child::discount",
            kDoc);
  q.shallow = StrFormat(
      "for $o in %s//order[total > 900], $l in %s//orderline "
      "where $l/@orderIdRef = $o/@id "
      "return $l/discount",
      kDoc, kDoc);
  q.deep = D("for $l in %s//order[total > 900]/orderline return $l/discount",
             kDoc);
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TQ15: the inequality value join (quadratic nested loops for
  // shallow, per the paper's Section 7.2 scaling remark); MCT and deep
  // correlate through the customer instead. ----
  q = {};
  q.id = "TQ15";
  q.description = "order pairs of one customer where one outspends the other";
  q.mct = D("for $c in %s/{cust}descendant::customer, "
            "$o1 in $c/{cust}child::order, $o2 in $c/{cust}child::order "
            "where $o1/{cust}child::total > $o2/{cust}child::total "
            "return $o1/@id",
            kDoc);
  q.shallow = StrFormat(
      "for $o1 in %s//order, $o2 in %s//order "
      "where $o1/total > $o2/total and "
      "$o1/@customerIdRef = $o2/@customerIdRef "
      "return $o1/@id",
      kDoc, kDoc);
  q.deep = D("for $c in %s//customer, $o1 in $c/order, $o2 in $c/order "
             "where $o1/total > $o2/total "
             "return $o1/@id",
             kDoc);
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TQ16: value join for shallow AND duplicate-laden intermediates for
  // deep — MCT beats both (the paper's highlighted row). ----
  q = {};
  q.id = "TQ16";
  q.description = "distinct authors with an orderline of quantity 9";
  q.mct = D("for $n in distinct-values(%s/{auth}descendant::orderline"
            "[{auth}child::qty = 9]/{auth}parent::item/{auth}parent::author/"
            "{auth}child::lname) return $n",
            kDoc);
  q.shallow = StrFormat(
      "for $n in distinct-values("
      "for $l in %s//orderline[qty = 9], $i in %s//item, $a in %s//author "
      "where $l/@itemIdRef = $i/@id and $i/@authorIdRef = $a/@id "
      "return $a/lname) return $n",
      kDoc, kDoc, kDoc);
  q.deep = D("for $n in distinct-values(%s//orderline[qty = 9]/item/author/"
             "lname) return $n",
             kDoc);
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- TU1: update one item's stock; deep must touch every replica. ----
  q = {};
  q.id = "TU1";
  q.description = "zero the stock of the most-ordered item";
  q.mct = StrFormat(
      "for $i in %s/{auth}descendant::item[{auth}child::title = \"%s\"] "
      "update $i { replace stock with \"0\" }",
      kDoc, pop_title.c_str());
  q.shallow = StrFormat(
      "for $i in %s//item[title = \"%s\"] update $i { replace stock with "
      "\"0\" }",
      kDoc, pop_title.c_str());
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  q.is_update = true;
  out.push_back(std::move(q));

  // ---- TU2: insert into one address; replicated per order in deep. ----
  q = {};
  q.id = "TU2";
  q.description = "mark one address as verified";
  q.mct = StrFormat(
      "for $a in %s/{bill}descendant::address[{bill}child::street = \"%s\"] "
      "update $a { insert <verified>yes</verified> into {bill} }",
      kDoc, street0.c_str());
  q.shallow = StrFormat(
      "for $a in %s//address[street = \"%s\"] "
      "update $a { insert <verified>yes</verified> }",
      kDoc, street0.c_str());
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  q.is_update = true;
  out.push_back(std::move(q));

  // ---- TU3: identify targets across the date relationship — a value join
  // for shallow (paper: 15.14s vs 0.36s). ----
  q = {};
  q.id = "TU3";
  q.description = "mark all orders of one date as shipped";
  q.mct = StrFormat(
      "for $o in %s/{date}descendant::date[. = \"%s\"]/{date}child::order "
      "update $o { replace status with \"shipped\" }",
      kDoc, date_mid.c_str());
  q.shallow = StrFormat(
      "for $dt in %s//date[. = \"%s\"], $o in %s//order "
      "where $o/@dateIdRef = $dt/@id "
      "update $o { replace status with \"shipped\" }",
      kDoc, date_mid.c_str(), kDoc);
  q.deep = StrFormat(
      "for $o in %s//order[order_date = \"%s\"] "
      "update $o { replace status with \"shipped\" }",
      kDoc, date_mid.c_str());
  q.colors = 1;
  q.trees = 2;
  q.is_update = true;
  out.push_back(std::move(q));

  // ---- TU4: insert into the items of one author; author-item value join
  // for shallow, replicas for deep. ----
  q = {};
  q.id = "TU4";
  q.description = "flag the items of one author";
  q.mct = StrFormat(
      "for $i in %s/{auth}descendant::author[{auth}child::lname = \"%s\"]/"
      "{auth}child::item "
      "update $i { insert <award>bestseller</award> into {auth} }",
      kDoc, author_ln0.c_str());
  q.shallow = StrFormat(
      "for $a in %s//author[lname = \"%s\"], $i in %s//item "
      "where $i/@authorIdRef = $a/@id "
      "update $i { insert <award>bestseller</award> }",
      kDoc, author_ln0.c_str(), kDoc);
  q.deep = StrFormat(
      "for $i in %s//item[author/lname = \"%s\"] "
      "update $i { insert <award>bestseller</award> }",
      kDoc, author_ln0.c_str());
  q.colors = 1;
  q.trees = 2;
  q.is_update = true;
  out.push_back(std::move(q));

  return out;
}

}  // namespace mct::workload

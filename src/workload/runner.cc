#include "workload/runner.h"

#include "common/timer.h"
#include "mcx/parser.h"

namespace mct::workload {

Result<QueryRun> RunQuery(MctDatabase* db, ColorId default_color,
                          const std::string& text, bool collect_values,
                          int num_threads, size_t morsel_size,
                          query::QueryTrace* trace, WalWriter* wal,
                          mcx::AnalyzeMode analyze, mcx::AnalysisReport* check,
                          bool planner, query::PlanCache* plan_cache,
                          bool vectorized, CancelToken* cancel,
                          int64_t deadline_ms, uint64_t memory_limit_bytes,
                          const ColorMask& mask,
                          mcx::AnalyzeMode mask_enforcement) {
  QueryRun run;
  MemoryBudget budget(memory_limit_bytes);
  mcx::EvalOptions opts;
  opts.default_color = default_color;
  opts.stats = &run.stats;
  opts.num_threads = num_threads;
  opts.morsel_size = morsel_size;
  opts.trace = trace;
  opts.wal = wal;
  opts.analyze = analyze;
  opts.check = check;
  opts.planner = planner || plan_cache != nullptr;
  opts.plan_cache = plan_cache;
  opts.vectorized = vectorized;
  opts.cancel_token = cancel;
  if (deadline_ms > 0) {
    opts.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(deadline_ms);
  }
  if (memory_limit_bytes > 0) opts.memory_budget = &budget;
  opts.mask = mask;
  opts.mask_enforcement = mask_enforcement;
  mcx::Evaluator ev(db, opts);
  mcx::QueryResult result;
  bool is_update = false;
  if (plan_cache != nullptr) {
    // Session-style: parse + plan + execute inside the timer, so cache
    // hits (which skip the first two) show up in the measurement.
    MCT_ASSIGN_OR_RETURN(mcx::ParsedQuery probe, mcx::Parse(text));
    is_update = probe.is_update;
    Timer timer;
    MCT_ASSIGN_OR_RETURN(result, ev.Run(text));
    run.seconds = timer.ElapsedSeconds();
  } else {
    MCT_ASSIGN_OR_RETURN(mcx::ParsedQuery parsed, mcx::Parse(text));
    is_update = parsed.is_update;
    Timer timer;
    MCT_ASSIGN_OR_RETURN(result, ev.Run(parsed));
    run.seconds = timer.ElapsedSeconds();
  }
  if (is_update) {
    run.result_count = result.updated_count;
  } else {
    run.result_count = result.items.size();
    if (collect_values) {
      run.values.reserve(result.items.size());
      for (const mcx::Item& item : result.items) {
        if (item.is_node) {
          // Atomize by own content (catalog queries return field nodes),
          // falling back to the first-color string value.
          if (db->store().HasContent(item.node)) {
            run.values.push_back(db->Content(item.node));
          } else {
            auto colors = db->Colors(item.node).ToVector();
            run.values.push_back(
                colors.empty()
                    ? ""
                    : db->StringValue(item.node, colors.front()).value_or(""));
          }
        } else {
          run.values.push_back(item.atomic);
        }
      }
    }
  }
  return run;
}

}  // namespace mct::workload

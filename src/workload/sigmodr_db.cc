#include "workload/sigmodr_db.h"

#include <cmath>

#include "common/rng.h"
#include "common/strings.h"

namespace mct::workload {

SigmodScale SigmodScale::ScaledBy(double f) const {
  SigmodScale s = *this;
  auto scale = [&](int v) {
    return std::max(1, static_cast<int>(std::lround(v * f)));
  };
  s.num_years = scale(num_years);
  s.articles_per_issue = scale(articles_per_issue);
  s.num_authors = scale(num_authors);
  s.num_editors = scale(num_editors);
  s.num_topics = scale(num_topics);
  return s;
}

SigmodData GenerateSigmod(const SigmodScale& scale) {
  Rng rng(scale.seed);
  SigmodData d;
  d.scale = scale;
  for (int y = 0; y < scale.num_years; ++y) {
    d.years.push_back(std::to_string(1990 + y));
  }
  for (int i = 0; i < scale.num_authors; ++i) {
    d.authors.push_back(rng.Word(4, 7) + " " + rng.Word(5, 10));
  }
  for (int i = 0; i < scale.num_editors; ++i) {
    d.editors.push_back("editor " + rng.Word(5, 9));
  }
  for (int i = 0; i < scale.num_topics; ++i) {
    d.topics.push_back("topic-" + rng.Word(4, 9) + "-" + std::to_string(i));
    // Round-robin so every editor owns at least one topic.
    d.topic_editor.push_back(i % scale.num_editors);
  }
  int article_id = 0;
  for (int y = 0; y < scale.num_years; ++y) {
    for (int n = 0; n < scale.issues_per_year; ++n) {
      SigmodIssue issue;
      issue.id = static_cast<int>(d.issues.size());
      issue.volume = 19 + y;
      issue.number = n + 1;
      issue.year = y;
      issue.date = d.years[static_cast<size_t>(y)] + "-" +
                   StrFormat("%02d", n * (12 / scale.issues_per_year) + 1);
      int page = 1;
      for (int a = 0; a < scale.articles_per_issue; ++a) {
        SigmodArticle art;
        art.id = article_id++;
        art.title = "On " + rng.Word(5, 9) + " " + rng.Word(4, 8) + " (" +
                    std::to_string(art.id) + ")";
        art.init_page = page;
        page += static_cast<int>(rng.UniformInt(4, 14));
        art.end_page = page - 1;
        int nauth = static_cast<int>(rng.UniformInt(
            scale.min_article_authors, scale.max_article_authors));
        for (int k = 0; k < nauth; ++k) {
          art.author_ids.push_back(static_cast<int>(
              rng.Zipf(static_cast<uint64_t>(scale.num_authors), 0.5)));
        }
        art.issue_id = issue.id;
        art.topic_id = static_cast<int>(
            rng.Zipf(static_cast<uint64_t>(scale.num_topics), 0.5));
        d.articles.push_back(std::move(art));
      }
      d.issues.push_back(issue);
    }
  }
  // Every topic gets at least one article (the deep schema materializes
  // topics/editors only inside articles, and the catalogs must be
  // result-equivalent across schemas).
  std::vector<bool> covered(static_cast<size_t>(scale.num_topics), false);
  for (const SigmodArticle& a : d.articles) {
    covered[static_cast<size_t>(a.topic_id)] = true;
  }
  size_t next = 0;
  for (int t = 0; t < scale.num_topics; ++t) {
    if (covered[static_cast<size_t>(t)]) continue;
    d.articles[next % d.articles.size()].topic_id = t;
    ++next;
  }
  return d;
}

namespace {

// A field child in every color of the parent.
Status Field(MctDatabase* db, NodeId parent, ColorSet colors,
             const std::string& tag, const std::string& content) {
  auto cs = colors.ToVector();
  MCT_ASSIGN_OR_RETURN(NodeId f, db->CreateElement(cs[0], parent, tag));
  for (size_t i = 1; i < cs.size(); ++i) {
    MCT_RETURN_IF_ERROR(db->AddNodeColor(f, cs[i], parent));
  }
  return db->SetContent(f, content);
}

Status AddArticlePayload(MctDatabase* db, NodeId n, ColorSet cs,
                         const SigmodData& d, const SigmodArticle& art) {
  MCT_RETURN_IF_ERROR(Field(db, n, cs, "title", art.title));
  MCT_RETURN_IF_ERROR(
      Field(db, n, cs, "initPage", std::to_string(art.init_page)));
  MCT_RETURN_IF_ERROR(Field(db, n, cs, "endPage", std::to_string(art.end_page)));
  for (int a : art.author_ids) {
    MCT_RETURN_IF_ERROR(
        Field(db, n, cs, "author", d.authors[static_cast<size_t>(a)]));
  }
  return Status::OK();
}

Result<SigmodDb> BuildMct(const SigmodData& d) {
  SigmodDb out;
  out.kind = SchemaKind::kMct;
  out.db = std::make_unique<MctDatabase>();
  MctDatabase* db = out.db.get();
  MCT_ASSIGN_OR_RETURN(out.time, db->RegisterColor("time"));
  MCT_ASSIGN_OR_RETURN(out.topic, db->RegisterColor("topic"));
  NodeId doc = db->document();

  // time: date -- issue -- articles.
  std::vector<NodeId> issue_nodes;
  for (int y = 0; y < d.scale.num_years; ++y) {
    MCT_ASSIGN_OR_RETURN(NodeId dn, db->CreateElement(out.time, doc, "date"));
    MCT_RETURN_IF_ERROR(db->SetContent(dn, d.years[static_cast<size_t>(y)]));
    for (const SigmodIssue& is : d.issues) {
      if (is.year != y) continue;
      MCT_ASSIGN_OR_RETURN(NodeId in, db->CreateElement(out.time, dn, "issue"));
      MCT_RETURN_IF_ERROR(
          db->SetAttr(in, "id", "is" + std::to_string(is.id)));
      ColorSet cs = ColorSet::Of(out.time);
      MCT_RETURN_IF_ERROR(Field(db, in, cs, "volume", std::to_string(is.volume)));
      MCT_RETURN_IF_ERROR(Field(db, in, cs, "number", std::to_string(is.number)));
      if (static_cast<size_t>(is.id) >= issue_nodes.size()) {
        issue_nodes.resize(static_cast<size_t>(is.id) + 1, kInvalidNodeId);
      }
      issue_nodes[static_cast<size_t>(is.id)] = in;
    }
  }
  // topic: editor -- topic -- articles.
  std::vector<NodeId> editor_nodes;
  for (const std::string& e : d.editors) {
    MCT_ASSIGN_OR_RETURN(NodeId en, db->CreateElement(out.topic, doc, "editor"));
    MCT_RETURN_IF_ERROR(
        Field(db, en, ColorSet::Of(out.topic), "name", e));
    editor_nodes.push_back(en);
  }
  std::vector<NodeId> topic_nodes;
  for (size_t t = 0; t < d.topics.size(); ++t) {
    NodeId editor = editor_nodes[static_cast<size_t>(d.topic_editor[t])];
    MCT_ASSIGN_OR_RETURN(NodeId tn, db->CreateElement(out.topic, editor, "topic"));
    MCT_RETURN_IF_ERROR(Field(db, tn, ColorSet::Of(out.topic), "name", d.topics[t]));
    topic_nodes.push_back(tn);
  }
  // Articles carry both colors; their payload children do too.
  for (const SigmodArticle& art : d.articles) {
    NodeId issue = issue_nodes[static_cast<size_t>(art.issue_id)];
    MCT_ASSIGN_OR_RETURN(NodeId an, db->CreateElement(out.time, issue, "article"));
    MCT_RETURN_IF_ERROR(db->AddNodeColor(
        an, out.topic, topic_nodes[static_cast<size_t>(art.topic_id)]));
    MCT_RETURN_IF_ERROR(db->SetAttr(an, "id", "ar" + std::to_string(art.id)));
    // Attribute parity with the shallow build (paper Table 1 reports
    // near-identical attribute counts for MCT and shallow).
    MCT_RETURN_IF_ERROR(
        db->SetAttr(an, "issueIdRef", "is" + std::to_string(art.issue_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(an, "topicIdRef", "t" + std::to_string(art.topic_id)));
    MCT_RETURN_IF_ERROR(AddArticlePayload(db, an, db->Colors(an), d, art));
  }
  return out;
}

Result<SigmodDb> BuildShallow(const SigmodData& d) {
  SigmodDb out;
  out.kind = SchemaKind::kShallow;
  out.db = std::make_unique<MctDatabase>();
  MctDatabase* db = out.db.get();
  MCT_ASSIGN_OR_RETURN(out.doc, db->RegisterColor("doc"));
  const ColorId c = out.doc;
  ColorSet cs = ColorSet::Of(c);
  MCT_ASSIGN_OR_RETURN(NodeId root,
                       db->CreateElement(c, db->document(), "sigmod"));

  // Tree 1: date -- issue (nested as in the paper's shallow variant).
  MCT_ASSIGN_OR_RETURN(NodeId datetree, db->CreateElement(c, root, "dates"));
  for (int y = 0; y < d.scale.num_years; ++y) {
    MCT_ASSIGN_OR_RETURN(NodeId dn, db->CreateElement(c, datetree, "date"));
    MCT_RETURN_IF_ERROR(db->SetContent(dn, d.years[static_cast<size_t>(y)]));
    for (const SigmodIssue& is : d.issues) {
      if (is.year != y) continue;
      MCT_ASSIGN_OR_RETURN(NodeId in, db->CreateElement(c, dn, "issue"));
      MCT_RETURN_IF_ERROR(db->SetAttr(in, "id", "is" + std::to_string(is.id)));
      MCT_RETURN_IF_ERROR(Field(db, in, cs, "volume", std::to_string(is.volume)));
      MCT_RETURN_IF_ERROR(Field(db, in, cs, "number", std::to_string(is.number)));
    }
  }
  // Tree 2: editor -- topic.
  MCT_ASSIGN_OR_RETURN(NodeId edtree, db->CreateElement(c, root, "editors"));
  std::vector<NodeId> editor_nodes;
  for (size_t e = 0; e < d.editors.size(); ++e) {
    MCT_ASSIGN_OR_RETURN(NodeId en, db->CreateElement(c, edtree, "editor"));
    MCT_RETURN_IF_ERROR(db->SetAttr(en, "id", "e" + std::to_string(e)));
    MCT_RETURN_IF_ERROR(Field(db, en, cs, "name", d.editors[e]));
    editor_nodes.push_back(en);
  }
  for (size_t t = 0; t < d.topics.size(); ++t) {
    NodeId en = editor_nodes[static_cast<size_t>(d.topic_editor[t])];
    MCT_ASSIGN_OR_RETURN(NodeId tn, db->CreateElement(c, en, "topic"));
    MCT_RETURN_IF_ERROR(db->SetAttr(tn, "id", "t" + std::to_string(t)));
    MCT_RETURN_IF_ERROR(Field(db, tn, cs, "name", d.topics[t]));
  }
  // Tree 3: flat articles with IDREFs into the other two trees.
  MCT_ASSIGN_OR_RETURN(NodeId arts, db->CreateElement(c, root, "articles"));
  for (const SigmodArticle& art : d.articles) {
    MCT_ASSIGN_OR_RETURN(NodeId an, db->CreateElement(c, arts, "article"));
    MCT_RETURN_IF_ERROR(db->SetAttr(an, "id", "ar" + std::to_string(art.id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(an, "issueIdRef", "is" + std::to_string(art.issue_id)));
    MCT_RETURN_IF_ERROR(
        db->SetAttr(an, "topicIdRef", "t" + std::to_string(art.topic_id)));
    MCT_RETURN_IF_ERROR(AddArticlePayload(db, an, cs, d, art));
  }
  return out;
}

Result<SigmodDb> BuildDeep(const SigmodData& d) {
  SigmodDb out;
  out.kind = SchemaKind::kDeep;
  out.db = std::make_unique<MctDatabase>();
  MctDatabase* db = out.db.get();
  MCT_ASSIGN_OR_RETURN(out.doc, db->RegisterColor("doc"));
  const ColorId c = out.doc;
  ColorSet cs = ColorSet::Of(c);
  MCT_ASSIGN_OR_RETURN(NodeId root,
                       db->CreateElement(c, db->document(), "sigmod"));
  // Articles by issue for nesting.
  std::vector<std::vector<const SigmodArticle*>> by_issue(d.issues.size());
  for (const SigmodArticle& art : d.articles) {
    by_issue[static_cast<size_t>(art.issue_id)].push_back(&art);
  }
  for (int y = 0; y < d.scale.num_years; ++y) {
    MCT_ASSIGN_OR_RETURN(NodeId dn, db->CreateElement(c, root, "date"));
    MCT_RETURN_IF_ERROR(db->SetContent(dn, d.years[static_cast<size_t>(y)]));
    for (const SigmodIssue& is : d.issues) {
      if (is.year != y) continue;
      MCT_ASSIGN_OR_RETURN(NodeId in, db->CreateElement(c, dn, "issue"));
      MCT_RETURN_IF_ERROR(db->SetAttr(in, "id", "is" + std::to_string(is.id)));
      MCT_RETURN_IF_ERROR(Field(db, in, cs, "volume", std::to_string(is.volume)));
      MCT_RETURN_IF_ERROR(Field(db, in, cs, "number", std::to_string(is.number)));
      for (const SigmodArticle* art : by_issue[static_cast<size_t>(is.id)]) {
        MCT_ASSIGN_OR_RETURN(NodeId an, db->CreateElement(c, in, "article"));
        MCT_RETURN_IF_ERROR(
            db->SetAttr(an, "id", "ar" + std::to_string(art->id)));
        MCT_RETURN_IF_ERROR(AddArticlePayload(db, an, cs, d, *art));
        // Replicated classification: topic (with its editor) inside every
        // article.
        MCT_ASSIGN_OR_RETURN(NodeId tn, db->CreateElement(c, an, "topic"));
        MCT_RETURN_IF_ERROR(Field(
            db, tn, cs, "name", d.topics[static_cast<size_t>(art->topic_id)]));
        MCT_ASSIGN_OR_RETURN(NodeId en, db->CreateElement(c, tn, "editor"));
        MCT_RETURN_IF_ERROR(Field(
            db, en, cs, "name",
            d.editors[static_cast<size_t>(
                d.topic_editor[static_cast<size_t>(art->topic_id)])]));
      }
    }
  }
  return out;
}

}  // namespace

Result<SigmodDb> BuildSigmod(const SigmodData& data, SchemaKind kind) {
  switch (kind) {
    case SchemaKind::kMct:
      return BuildMct(data);
    case SchemaKind::kShallow:
      return BuildShallow(data);
    case SchemaKind::kDeep:
      return BuildDeep(data);
  }
  return Status::InvalidArgument("unknown schema kind");
}

}  // namespace mct::workload

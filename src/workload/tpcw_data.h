// TPC-W logical data (Section 7's first dataset).
//
// The paper generated TPC-W data as XML with ToXgene into a multi-colored
// schema of the authors' design, plus shallow and deep baselines. ToXgene is
// long dead; this generator produces the same *logical* relations with
// TPC-W's relative cardinalities (deterministic, seeded), from which the
// three physical schemas of Section 7 are built (tpcw_db.h).

#ifndef COLORFUL_XML_WORKLOAD_TPCW_DATA_H_
#define COLORFUL_XML_WORKLOAD_TPCW_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace mct::workload {

struct TpcwScale {
  int num_countries = 30;
  int num_authors = 250;
  int num_items = 1000;
  int num_customers = 2500;
  int num_addresses = 5000;
  int num_dates = 365;
  int num_orders = 10000;
  int min_orderlines = 1;
  int max_orderlines = 5;
  uint64_t seed = 42;

  /// Tiny instance for unit tests.
  static TpcwScale Tiny() {
    TpcwScale s;
    s.num_countries = 5;
    s.num_authors = 8;
    s.num_items = 20;
    s.num_customers = 30;
    s.num_addresses = 50;
    s.num_dates = 20;
    s.num_orders = 80;
    return s;
  }

  /// Benchmark default — laptop-scale stand-in for the paper's 1.5M-element
  /// database, keeping TPC-W's relative cardinalities.
  static TpcwScale Default() { return TpcwScale(); }

  /// Multiplies every entity count by `f` (scaling experiments, E7).
  TpcwScale ScaledBy(double f) const;
};

struct TpcwCountry {
  int id;
  std::string name;
};

struct TpcwAuthor {
  int id;
  std::string fname, lname;
};

struct TpcwItem {
  int id;
  std::string title;
  int author_id;
  double cost;
  std::string subject;  // one of a small set of subjects
  int stock;
};

struct TpcwCustomer {
  int id;
  std::string uname, fname, lname;
  std::string since;  // date string
};

struct TpcwAddress {
  int id;
  std::string street, city;
  int country_id;
};

struct TpcwDate {
  int id;
  std::string value;  // "2003-01-17"
};

struct TpcwOrder {
  int id;
  int customer_id;
  int bill_addr_id;
  int ship_addr_id;
  int date_id;
  std::string status;  // pending / shipped / denied
  double total;
};

struct TpcwOrderLine {
  int id;
  int order_id;
  int item_id;
  int qty;
  double discount;
};

struct TpcwData {
  TpcwScale scale;
  std::vector<TpcwCountry> countries;
  std::vector<TpcwAuthor> authors;
  std::vector<TpcwItem> items;
  std::vector<TpcwCustomer> customers;
  std::vector<TpcwAddress> addresses;
  std::vector<TpcwDate> dates;
  std::vector<TpcwOrder> orders;
  std::vector<TpcwOrderLine> orderlines;
};

/// Generates the logical relations, deterministically from scale.seed.
TpcwData GenerateTpcw(const TpcwScale& scale);

}  // namespace mct::workload

#endif  // COLORFUL_XML_WORKLOAD_TPCW_DATA_H_

#include "common/strings.h"
#include "workload/catalog.h"

namespace mct::workload {

namespace {
constexpr char kDoc[] = "document(\"sigmod.xml\")";
}

std::vector<CatalogQuery> SigmodCatalog(const SigmodData& d) {
  std::vector<CatalogQuery> out;

  // Parameters from the data. The SU2 target article is drawn from the
  // most-published topic so the deep baseline visibly rewrites replicas
  // (the paper's SU2D row).
  std::vector<int> topic_articles(d.topics.size(), 0);
  for (const SigmodArticle& a : d.articles) {
    topic_articles[static_cast<size_t>(a.topic_id)]++;
  }
  int hot_topic = 0;
  for (size_t t = 0; t < topic_articles.size(); ++t) {
    if (topic_articles[t] > topic_articles[static_cast<size_t>(hot_topic)]) {
      hot_topic = static_cast<int>(t);
    }
  }
  const SigmodArticle* hot_article = &d.articles[0];
  for (const SigmodArticle& a : d.articles) {
    if (a.topic_id == hot_topic) {
      hot_article = &a;
      break;
    }
  }
  const SigmodArticle& a0 = d.articles[0];
  const std::string title0 = a0.title;
  const SigmodIssue& is0 = d.issues[d.issues.size() / 2];
  const std::string vol = std::to_string(is0.volume);
  const std::string num = std::to_string(is0.number);
  const std::string editor0 = d.editors[0];
  // A reasonably popular topic (Zipf favors topic 0).
  const std::string topic0 = d.topics[0];
  const std::string hot_title = hot_article->title;
  const std::string topic_of_hot =
      d.topics[static_cast<size_t>(hot_article->topic_id)];

  CatalogQuery q;

  // ---- SQ1: point query on articles. ----
  q = {};
  q.id = "SQ1";
  q.description = "end page of one article by title";
  q.mct = StrFormat(
      "for $a in %s/{time}descendant::article[{time}child::title = \"%s\"] "
      "return $a/{time}child::endPage",
      kDoc, title0.c_str());
  q.shallow = StrFormat(
      "for $a in %s//article[title = \"%s\"] return $a/endPage", kDoc,
      title0.c_str());
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- SQ2: issue -> articles; MCT/deep nest it, shallow joins. ----
  q = {};
  q.id = "SQ2";
  q.description = "titles of the articles of one issue";
  q.mct = StrFormat(
      "for $a in %s/{time}descendant::issue[{time}child::volume = %s]"
      "[{time}child::number = %s]/{time}child::article "
      "return $a/{time}child::title",
      kDoc, vol.c_str(), num.c_str());
  q.shallow = StrFormat(
      "for $i in %s//issue[volume = %s][number = %s], $a in %s//article "
      "where $a/@issueIdRef = $i/@id "
      "return $a/title",
      kDoc, vol.c_str(), num.c_str(), kDoc);
  q.deep = StrFormat(
      "for $a in %s//issue[volume = %s][number = %s]/article "
      "return $a/title",
      kDoc, vol.c_str(), num.c_str());
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- SQ3: editor -> topics -> articles (paper: 0.02 vs 10.32). ----
  q = {};
  q.id = "SQ3";
  q.description = "titles of articles under one editor";
  q.mct = StrFormat(
      "for $a in %s/{topic}descendant::editor[{topic}child::name = \"%s\"]/"
      "{topic}descendant::article "
      "return $a/{topic}child::title",
      kDoc, editor0.c_str());
  q.shallow = StrFormat(
      "for $t in %s//editor[name = \"%s\"]/topic, $a in %s//article "
      "where $a/@topicIdRef = $t/@id "
      "return $a/title",
      kDoc, editor0.c_str(), kDoc);
  q.deep = StrFormat(
      "for $a in %s//article[topic/editor/name = \"%s\"] return $a/title",
      kDoc, editor0.c_str());
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- SQ4: distinct editors — replicated per article in deep. ----
  q = {};
  q.id = "SQ4";
  q.description = "distinct editor names";
  q.mct = StrFormat(
      "for $n in distinct-values(%s/{topic}descendant::editor/"
      "{topic}child::name) return $n",
      kDoc);
  q.shallow = StrFormat(
      "for $n in distinct-values(%s//editor/name) return $n", kDoc);
  q.deep = StrFormat(
      "for $n in distinct-values(%s//article/topic/editor/name) return $n",
      kDoc);
  q.deep_nodup = StrFormat(
      "for $e in %s//article/topic/editor return $e/name", kDoc);
  q.colors = 1;
  q.trees = 1;
  out.push_back(std::move(q));

  // ---- SQ5: topic -> articles. ----
  q = {};
  q.id = "SQ5";
  q.description = "start pages of the articles in one topic";
  q.mct = StrFormat(
      "for $a in %s/{topic}descendant::topic[{topic}child::name = \"%s\"]/"
      "{topic}child::article "
      "return $a/{topic}child::initPage",
      kDoc, topic0.c_str());
  q.shallow = StrFormat(
      "for $t in %s//topic[name = \"%s\"], $a in %s//article "
      "where $a/@topicIdRef = $t/@id "
      "return $a/initPage",
      kDoc, topic0.c_str(), kDoc);
  q.deep = StrFormat(
      "for $a in %s//article[topic/name = \"%s\"] return $a/initPage", kDoc,
      topic0.c_str());
  q.colors = 1;
  q.trees = 2;
  out.push_back(std::move(q));

  // ---- SU1: insert into one editor; replicated per article in deep. ----
  q = {};
  q.id = "SU1";
  q.description = "add an email to one editor";
  q.mct = StrFormat(
      "for $e in %s/{topic}descendant::editor[{topic}child::name = \"%s\"] "
      "update $e { insert <email>ed@acm.org</email> into {topic} }",
      kDoc, editor0.c_str());
  q.shallow = StrFormat(
      "for $e in %s//editor[name = \"%s\"] "
      "update $e { insert <email>ed@acm.org</email> }",
      kDoc, editor0.c_str());
  q.deep = q.shallow;
  q.colors = 1;
  q.trees = 1;
  q.is_update = true;
  out.push_back(std::move(q));

  // ---- SU2: rename the topic of one article — reaching the target takes
  // a value join in shallow; deep must rewrite every replica. ----
  q = {};
  q.id = "SU2";
  q.description = "rename the topic of one article";
  q.mct = StrFormat(
      "for $t in %s/{topic}descendant::article[{topic}child::title = \"%s\"]/"
      "{topic}parent::topic "
      "update $t { replace name with \"renamed-topic\" }",
      kDoc, hot_title.c_str());
  q.shallow = StrFormat(
      "for $a in %s//article[title = \"%s\"], $t in %s//topic "
      "where $a/@topicIdRef = $t/@id "
      "update $t { replace name with \"renamed-topic\" }",
      kDoc, hot_title.c_str(), kDoc);
  q.deep = StrFormat(
      "for $t in %s//topic[name = \"%s\"] "
      "update $t { replace name with \"renamed-topic\" }",
      kDoc, topic_of_hot.c_str());
  q.colors = 1;
  q.trees = 2;
  q.is_update = true;
  out.push_back(std::move(q));

  return out;
}

}  // namespace mct::workload

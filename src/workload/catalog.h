// Reconstructed query/update catalogs for the Section 7 evaluation.
//
// XBench's TPC-W query set was never published (the paper promised the
// queries "as supplemental data upon acceptance"); these reconstructions are
// designed so that each query's (Colors, Trees) profile matches the
// corresponding row of Table 2 — Colors = colored trees an MCT plan
// touches (crossings = Colors - 1), Trees = separate trees the shallow plan
// must value-join. Deep "D" variants (TQ7D, TQ12D, TU1D, ...) are the
// paper's duplicate-elimination-free versions. EXPERIMENTS.md lists every
// query in all three dialects next to the paper's row.
//
// Query parameters (names, dates, ids) are derived from the generated data
// so every query is satisfiable at any scale.

#ifndef COLORFUL_XML_WORKLOAD_CATALOG_H_
#define COLORFUL_XML_WORKLOAD_CATALOG_H_

#include <string>
#include <vector>

#include "workload/sigmodr_db.h"
#include "workload/tpcw_data.h"
#include "workload/tpcw_db.h"

namespace mct::workload {

struct CatalogQuery {
  std::string id;           // "TQ9", "TU1", "SQ4", ...
  std::string description;
  std::string mct;          // MCXQuery (colored dialect)
  std::string shallow;      // XQuery over the shallow schema
  std::string deep;         // XQuery over the deep schema
  /// Deep variant without duplicate elimination (the paper's "D" rows);
  /// empty when the deep query has no duplicate problem.
  std::string deep_nodup;
  int colors = 1;           // Table 2 "Colors" annotation
  int trees = 1;            // Table 2 "Trees" annotation
  bool is_update = false;
  /// Read-only results are value-comparable across the three schemas
  /// (multisets of atomized items agree); updates are compared by effect.
  bool comparable = true;
};

/// The 16 read queries and 4 updates of the TPC-W workload.
std::vector<CatalogQuery> TpcwCatalog(const TpcwData& d);

/// The 5 read queries and 2 updates of the SIGMOD-Record workload.
std::vector<CatalogQuery> SigmodCatalog(const SigmodData& d);

}  // namespace mct::workload

#endif  // COLORFUL_XML_WORKLOAD_CATALOG_H_

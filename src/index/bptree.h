// A paged B+-tree with fixed-width composite keys, backing the tag and value
// indexes of the XML/MCT storage engine.
//
// Keys are 4-tuples of uint32 compared lexicographically; values are uint64.
// Duplicate keys are tolerated on insert, but Seek() lower-bounds through
// internal separators and may land past duplicates that were split to the
// left of a separator — callers MUST therefore make keys unique by putting a
// discriminator (e.g. the node id) in the final key component and seeking
// with that component zeroed. Every index in this repository follows that
// convention. Deletion is by (key, value) pair and is lazy: entries are
// removed from their leaf but leaves are never merged, matching the
// append-heavy usage of a database load followed by point updates.
//
// Node layout (8 KB page):
//   header  [u8 is_leaf][u8 pad][u16 num_keys][u32 link]
//     link = next-leaf page for leaves, leftmost child for internal nodes
//   leaf    entries of {IndexKey key, u64 value}   (24 bytes)
//   internal entries of {IndexKey key, u32 child}  (20 bytes); a child to the
//     right of its separator key, all keys in child >= key.

#ifndef COLORFUL_XML_INDEX_BPTREE_H_
#define COLORFUL_XML_INDEX_BPTREE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace mct {

/// Composite fixed-width index key.
struct IndexKey {
  uint32_t k[4] = {0, 0, 0, 0};

  static IndexKey Make(uint32_t a, uint32_t b = 0, uint32_t c = 0,
                       uint32_t d = 0) {
    return IndexKey{{a, b, c, d}};
  }

  int Compare(const IndexKey& o) const {
    for (int i = 0; i < 4; ++i) {
      if (k[i] < o.k[i]) return -1;
      if (k[i] > o.k[i]) return 1;
    }
    return 0;
  }
  bool operator==(const IndexKey& o) const { return Compare(o) == 0; }
  bool operator<(const IndexKey& o) const { return Compare(o) < 0; }
  bool operator<=(const IndexKey& o) const { return Compare(o) <= 0; }

  std::string ToString() const;
};

class BPlusTree {
 public:
  /// Creates an empty tree whose pages are allocated from `pool`'s disk.
  explicit BPlusTree(BufferPool* pool);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (key, value). Duplicates (even identical pairs) are kept.
  Status Insert(const IndexKey& key, uint64_t value);

  /// Removes one entry equal to (key, value). NotFound if absent.
  Status Delete(const IndexKey& key, uint64_t value);

  /// Forward iterator over entries, in key order.
  class Iterator {
   public:
    /// False once the scan is past the last entry.
    bool Valid() const { return valid_; }
    const IndexKey& key() const { return key_; }
    uint64_t value() const { return value_; }
    /// Advances to the next entry.
    Status Next();

   private:
    friend class BPlusTree;
    Iterator(BufferPool* pool) : pool_(pool) {}
    Status LoadCurrent();

    BufferPool* pool_;
    PageId page_ = kInvalidPageId;
    uint32_t slot_ = 0;
    bool valid_ = false;
    IndexKey key_;
    uint64_t value_ = 0;
  };

  /// Iterator positioned at the first entry with key >= `key`.
  Result<Iterator> Seek(const IndexKey& key) const;

  /// Iterator at the smallest entry.
  Result<Iterator> Begin() const;

  /// Number of live entries.
  uint64_t num_entries() const { return num_entries_; }

  /// Pages allocated by this tree.
  uint32_t num_pages() const { return num_pages_; }
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(num_pages_) * kPageSize;
  }

  /// Tree height (1 = just a leaf root); for tests/diagnostics.
  uint32_t height() const { return height_; }

 private:
  struct SplitResult {
    IndexKey separator;
    PageId new_page;
  };

  static constexpr uint32_t kHeaderSize = 8;
  static constexpr uint32_t kLeafEntrySize = 24;
  static constexpr uint32_t kInternalEntrySize = 20;
  static constexpr uint32_t kLeafCapacity =
      (kPageSize - kHeaderSize) / kLeafEntrySize;
  static constexpr uint32_t kInternalCapacity =
      (kPageSize - kHeaderSize) / kInternalEntrySize;

  Result<PageId> NewNode(bool leaf);
  Result<std::optional<SplitResult>> InsertRec(PageId node,
                                               const IndexKey& key,
                                               uint64_t value);

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint64_t num_entries_ = 0;
  uint32_t num_pages_ = 0;
  uint32_t height_ = 1;
};

}  // namespace mct

#endif  // COLORFUL_XML_INDEX_BPTREE_H_

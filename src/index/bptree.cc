#include "index/bptree.h"

#include <cassert>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"

namespace mct {

namespace {

// Process-wide B+-tree instruments; looked up once, then one relaxed atomic
// add per event.
Counter* ProbeCounter() {
  static Counter* c = MetricsRegistry::Global().counter("mct.bptree.probes");
  return c;
}
Counter* SplitCounter() {
  static Counter* c =
      MetricsRegistry::Global().counter("mct.bptree.node_splits");
  return c;
}
Counter* InsertCounter() {
  static Counter* c = MetricsRegistry::Global().counter("mct.bptree.inserts");
  return c;
}

// Raw accessors over a B+-tree page image.

bool IsLeaf(const char* p) { return p[0] != 0; }
void SetLeaf(char* p, bool leaf) { p[0] = leaf ? 1 : 0; }

uint16_t NumKeys(const char* p) {
  uint16_t v;
  std::memcpy(&v, p + 2, sizeof(v));
  return v;
}
void SetNumKeys(char* p, uint16_t v) { std::memcpy(p + 2, &v, sizeof(v)); }

uint32_t Link(const char* p) {
  uint32_t v;
  std::memcpy(&v, p + 4, sizeof(v));
  return v;
}
void SetLink(char* p, uint32_t v) { std::memcpy(p + 4, &v, sizeof(v)); }

constexpr uint32_t kHeader = 8;
constexpr uint32_t kLeafEntry = 24;
constexpr uint32_t kIntEntry = 20;

IndexKey LeafKey(const char* p, uint32_t i) {
  IndexKey k;
  std::memcpy(k.k, p + kHeader + i * kLeafEntry, 16);
  return k;
}
uint64_t LeafValue(const char* p, uint32_t i) {
  uint64_t v;
  std::memcpy(&v, p + kHeader + i * kLeafEntry + 16, 8);
  return v;
}
void SetLeafEntry(char* p, uint32_t i, const IndexKey& k, uint64_t v) {
  std::memcpy(p + kHeader + i * kLeafEntry, k.k, 16);
  std::memcpy(p + kHeader + i * kLeafEntry + 16, &v, 8);
}

IndexKey IntKey(const char* p, uint32_t i) {
  IndexKey k;
  std::memcpy(k.k, p + kHeader + i * kIntEntry, 16);
  return k;
}
uint32_t IntChild(const char* p, uint32_t i) {
  uint32_t v;
  std::memcpy(&v, p + kHeader + i * kIntEntry + 16, 4);
  return v;
}
void SetIntEntry(char* p, uint32_t i, const IndexKey& k, uint32_t child) {
  std::memcpy(p + kHeader + i * kIntEntry, k.k, 16);
  std::memcpy(p + kHeader + i * kIntEntry + 16, &child, 4);
}

// First leaf slot with key >= target (lower bound).
uint32_t LeafLowerBound(const char* p, const IndexKey& key) {
  uint32_t lo = 0, hi = NumKeys(p);
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (LeafKey(p, mid).Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child to descend into for `key`: the rightmost child whose separator is
// <= key; slot 0 refers to the header's leftmost child.
uint32_t IntChildFor(const char* p, const IndexKey& key) {
  uint32_t n = NumKeys(p);
  uint32_t lo = 0, hi = n;  // number of separators <= key
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (IntKey(p, mid).Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? Link(p) : IntChild(p, lo - 1);
}

}  // namespace

std::string IndexKey::ToString() const {
  return StrFormat("(%u,%u,%u,%u)", k[0], k[1], k[2], k[3]);
}

BPlusTree::BPlusTree(BufferPool* pool) : pool_(pool) {
  auto root = NewNode(/*leaf=*/true);
  assert(root.ok());
  root_ = *root;
}

Result<PageId> BPlusTree::NewNode(bool leaf) {
  MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
  char* p = guard.MutableData();
  SetLeaf(p, leaf);
  SetNumKeys(p, 0);
  SetLink(p, kInvalidPageId);
  ++num_pages_;
  return guard.page_id();
}

Status BPlusTree::Insert(const IndexKey& key, uint64_t value) {
  InsertCounter()->Inc();
  MCT_ASSIGN_OR_RETURN(auto split, InsertRec(root_, key, value));
  if (split.has_value()) {
    // Grow a new root above the old one.
    MCT_ASSIGN_OR_RETURN(PageId new_root, NewNode(/*leaf=*/false));
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(new_root));
    char* p = guard.MutableData();
    SetLink(p, root_);
    SetIntEntry(p, 0, split->separator, split->new_page);
    SetNumKeys(p, 1);
    root_ = new_root;
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Result<std::optional<BPlusTree::SplitResult>> BPlusTree::InsertRec(
    PageId node, const IndexKey& key, uint64_t value) {
  MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
  char* p = guard.MutableData();
  if (IsLeaf(p)) {
    uint32_t n = NumKeys(p);
    uint32_t pos = LeafLowerBound(p, key);
    if (n < kLeafCapacity) {
      std::memmove(p + kHeader + (pos + 1) * kLeafEntry,
                   p + kHeader + pos * kLeafEntry, (n - pos) * kLeafEntry);
      SetLeafEntry(p, pos, key, value);
      SetNumKeys(p, static_cast<uint16_t>(n + 1));
      return std::optional<SplitResult>();
    }
    // Split the full leaf: right half moves to a fresh page, then insert
    // into whichever half owns the position.
    SplitCounter()->Inc();
    MCT_ASSIGN_OR_RETURN(PageId right_id, NewNode(/*leaf=*/true));
    MCT_ASSIGN_OR_RETURN(PageGuard rguard, pool_->FetchPage(right_id));
    char* rp = rguard.MutableData();
    uint32_t mid = n / 2;
    uint32_t right_n = n - mid;
    std::memcpy(rp + kHeader, p + kHeader + mid * kLeafEntry,
                right_n * kLeafEntry);
    SetNumKeys(rp, static_cast<uint16_t>(right_n));
    SetLink(rp, Link(p));
    SetLink(p, right_id);
    SetNumKeys(p, static_cast<uint16_t>(mid));
    IndexKey sep = LeafKey(rp, 0);
    char* tp = (pos <= mid) ? p : rp;
    uint32_t tpos = (pos <= mid) ? pos : pos - mid;
    uint32_t tn = NumKeys(tp);
    std::memmove(tp + kHeader + (tpos + 1) * kLeafEntry,
                 tp + kHeader + tpos * kLeafEntry, (tn - tpos) * kLeafEntry);
    SetLeafEntry(tp, tpos, key, value);
    SetNumKeys(tp, static_cast<uint16_t>(tn + 1));
    return std::optional<SplitResult>(SplitResult{sep, right_id});
  }

  // Internal node: descend, then absorb a child split if one happened.
  uint32_t child = IntChildFor(p, key);
  guard.Release();  // avoid holding pins along the whole root-to-leaf path
  MCT_ASSIGN_OR_RETURN(auto child_split, InsertRec(child, key, value));
  if (!child_split.has_value()) return std::optional<SplitResult>();

  MCT_ASSIGN_OR_RETURN(PageGuard g2, pool_->FetchPage(node));
  p = g2.MutableData();
  uint32_t n = NumKeys(p);
  // Position of the new separator among existing separators.
  uint32_t pos = 0;
  while (pos < n && IntKey(p, pos).Compare(child_split->separator) <= 0) ++pos;
  if (n < kInternalCapacity) {
    std::memmove(p + kHeader + (pos + 1) * kIntEntry,
                 p + kHeader + pos * kIntEntry, (n - pos) * kIntEntry);
    SetIntEntry(p, pos, child_split->separator, child_split->new_page);
    SetNumKeys(p, static_cast<uint16_t>(n + 1));
    return std::optional<SplitResult>();
  }
  // Split the full internal node. Assemble the n+1 separators logically,
  // push the middle one up.
  SplitCounter()->Inc();
  std::vector<IndexKey> keys;
  std::vector<uint32_t> children;  // children[i] right of keys[i]
  keys.reserve(n + 1);
  children.reserve(n + 1);
  for (uint32_t i = 0; i < n; ++i) {
    keys.push_back(IntKey(p, i));
    children.push_back(IntChild(p, i));
  }
  keys.insert(keys.begin() + pos, child_split->separator);
  children.insert(children.begin() + pos, child_split->new_page);
  uint32_t total = n + 1;
  uint32_t mid = total / 2;  // keys[mid] is pushed up
  IndexKey up_key = keys[mid];

  MCT_ASSIGN_OR_RETURN(PageId right_id, NewNode(/*leaf=*/false));
  MCT_ASSIGN_OR_RETURN(PageGuard rguard, pool_->FetchPage(right_id));
  char* rp = rguard.MutableData();
  SetLink(rp, children[mid]);  // leftmost child of the right node
  uint32_t rn = 0;
  for (uint32_t i = mid + 1; i < total; ++i) {
    SetIntEntry(rp, rn++, keys[i], children[i]);
  }
  SetNumKeys(rp, static_cast<uint16_t>(rn));
  for (uint32_t i = 0; i < mid; ++i) {
    SetIntEntry(p, i, keys[i], children[i]);
  }
  SetNumKeys(p, static_cast<uint16_t>(mid));
  return std::optional<SplitResult>(SplitResult{up_key, right_id});
}

Status BPlusTree::Delete(const IndexKey& key, uint64_t value) {
  // Descend to the first candidate leaf, then walk the leaf chain while the
  // key still matches (duplicates may span leaves).
  ProbeCounter()->Inc();
  PageId node = root_;
  for (uint32_t level = 1; level < height_; ++level) {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    node = IntChildFor(guard.Data(), key);
  }
  while (node != kInvalidPageId) {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    char* p = guard.MutableData();
    uint32_t n = NumKeys(p);
    uint32_t pos = LeafLowerBound(p, key);
    for (uint32_t i = pos; i < n; ++i) {
      if (LeafKey(p, i).Compare(key) != 0) return Status::NotFound("no entry");
      if (LeafValue(p, i) == value) {
        std::memmove(p + kHeader + i * kLeafEntry,
                     p + kHeader + (i + 1) * kLeafEntry,
                     (n - i - 1) * kLeafEntry);
        SetNumKeys(p, static_cast<uint16_t>(n - 1));
        --num_entries_;
        return Status::OK();
      }
    }
    if (pos < n) return Status::NotFound("no entry");  // key run ended here
    node = Link(p);
  }
  return Status::NotFound("no entry");
}

Result<BPlusTree::Iterator> BPlusTree::Seek(const IndexKey& key) const {
  ProbeCounter()->Inc();
  PageId node = root_;
  for (uint32_t level = 1; level < height_; ++level) {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    node = IntChildFor(guard.Data(), key);
  }
  Iterator it(pool_);
  it.page_ = node;
  {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node));
    it.slot_ = LeafLowerBound(guard.Data(), key);
  }
  MCT_RETURN_IF_ERROR(it.LoadCurrent());
  return it;
}

Result<BPlusTree::Iterator> BPlusTree::Begin() const {
  return Seek(IndexKey::Make(0, 0, 0, 0));
}

Status BPlusTree::Iterator::LoadCurrent() {
  while (page_ != kInvalidPageId) {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page_));
    const char* p = guard.Data();
    if (slot_ < NumKeys(p)) {
      key_ = LeafKey(p, slot_);
      value_ = LeafValue(p, slot_);
      valid_ = true;
      return Status::OK();
    }
    page_ = Link(p);
    slot_ = 0;
  }
  valid_ = false;
  return Status::OK();
}

Status BPlusTree::Iterator::Next() {
  if (!valid_) return Status::OutOfRange("advancing an exhausted iterator");
  ++slot_;
  return LoadCurrent();
}

}  // namespace mct

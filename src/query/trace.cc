#include "query/trace.h"

#include <cassert>

#include "common/strings.h"

namespace mct::query {

QueryTrace::QueryTrace() {
  root_.op = "QUERY";
  stack_.push_back(&root_);
}

OpTrace* QueryTrace::Open(std::string op, std::string detail) {
  if (paused_ > 0) return &scratch_;
  auto node = std::make_unique<OpTrace>();
  node->op = std::move(op);
  node->detail = std::move(detail);
  OpTrace* ptr = node.get();
  stack_.back()->children.push_back(std::move(node));
  stack_.push_back(ptr);
  last_ = ptr;
  return ptr;
}

void QueryTrace::Close(const OpTrace* node) {
  if (paused_ > 0) return;
  assert(stack_.size() > 1 && stack_.back() == node);
  (void)node;
  if (stack_.size() > 1) stack_.pop_back();
}

OpTrace* QueryTrace::Leaf(std::string op, std::string detail) {
  if (paused_ > 0) return &scratch_;
  auto node = std::make_unique<OpTrace>();
  node->op = std::move(op);
  node->detail = std::move(detail);
  OpTrace* ptr = node.get();
  stack_.back()->children.push_back(std::move(node));
  last_ = ptr;
  return ptr;
}

uint64_t QueryTrace::TotalColorTransitions() const {
  uint64_t total = 0;
  root_.Visit([&](const OpTrace& t) { total += t.color_transitions; });
  return total;
}

uint64_t QueryTrace::NodeCount() const {
  uint64_t total = 0;
  root_.Visit([&](const OpTrace&) { ++total; });
  return total - 1;  // exclude the root
}

namespace {

void AppendTextRec(const OpTrace& t, int depth, std::string* out) {
  for (int i = 0; i < depth; ++i) out->append("  ");
  out->append(t.op);
  if (!t.detail.empty()) {
    out->push_back(' ');
    out->append(t.detail);
  }
  out->append(StrFormat("  (rows %llu -> %llu",
                        static_cast<unsigned long long>(t.rows_in),
                        static_cast<unsigned long long>(t.rows_out)));
  if (t.morsels > 0) {
    out->append(StrFormat(", morsels %llu",
                          static_cast<unsigned long long>(t.morsels)));
  }
  if (t.batches > 0) {
    out->append(StrFormat(", batches %llu",
                          static_cast<unsigned long long>(t.batches)));
  }
  if (t.color_transitions > 0) {
    out->append(
        StrFormat(", crossings %llu",
                  static_cast<unsigned long long>(t.color_transitions)));
  }
  if (t.est_rows >= 0) {
    out->append(StrFormat(", est~%.0f", t.est_rows));
  }
  out->append(StrFormat(", %.3f ms)\n", t.seconds * 1e3));
  for (const auto& c : t.children) AppendTextRec(*c, depth + 1, out);
}

void AppendJsonRec(const OpTrace& t, std::string* out) {
  out->append(StrFormat(
      "{\"op\": \"%s\", \"detail\": \"%s\", \"rows_in\": %llu, "
      "\"rows_out\": %llu, \"morsels\": %llu, \"fanout_rows\": %llu, "
      "\"batches\": %llu, "
      "\"color_transitions\": %llu, \"est_rows\": %.3f, \"seconds\": %.9f, "
      "\"children\": [",
      EscapeJson(t.op).c_str(), EscapeJson(t.detail).c_str(),
      static_cast<unsigned long long>(t.rows_in),
      static_cast<unsigned long long>(t.rows_out),
      static_cast<unsigned long long>(t.morsels),
      static_cast<unsigned long long>(t.fanout_rows),
      static_cast<unsigned long long>(t.batches),
      static_cast<unsigned long long>(t.color_transitions), t.est_rows,
      t.seconds));
  for (size_t i = 0; i < t.children.size(); ++i) {
    if (i > 0) out->append(", ");
    AppendJsonRec(*t.children[i], out);
  }
  out->append("]}");
}

}  // namespace

std::string QueryTrace::ToText() const {
  std::string out;
  AppendTextRec(root_, 0, &out);
  return out;
}

std::string QueryTrace::ToJson() const {
  std::string out;
  AppendJsonRec(root_, &out);
  return out;
}

}  // namespace mct::query

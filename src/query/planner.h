// Cost-based physical planner for colored path bindings.
//
// The paper evaluated plans "chosen by hand to be the best" (Section 6.2);
// the evaluator's fixed pipeline encodes those hand choices. This planner
// closes the loop: each FLWOR binding's colored path is lowered to a small
// logical IR (BindingDesc / StepDesc / PredDesc — AST-free, so the planner
// stays below the mcx layer), costed against live database statistics
// (per-(color, tag) counts off the tag index, content/attribute-index
// selectivity probes) and the color-flow lattice estimates of PR 4, and a
// physical access method is chosen per step:
//
//   kBaseline       the fixed pipeline (tag scan + stack-tree merge, etc.)
//   kScanShortcut   descendant step off the lone document row: the tag scan
//                   *is* the result, skip the merge machinery
//   kIndexSeek      equality predicate pushed down into the content or
//                   attribute-value index: seek the candidate set first,
//                   then run the same interval merge over it
//   kNavDescendant  few input rows, small subtrees: navigate (pre-order
//                   walk) instead of scanning the whole tag stream
//
// plus cross-tree-join elision (when the next axis operator color-filters
// anyway), selectivity-ordered predicate evaluation, and a whole-binding
// holistic PathStackJoin for multi-step descendant spines (Section 7.2's
// structural-join cost asymmetry; Bruno et al., the paper's ref [8]).
//
// Hard determinism contract: every plan alternative is result-identical —
// same rows, same order — to the fixed pipeline (tests/planner_test.cc
// enforces this differentially over both workload catalogs). The planner
// therefore only ever trades time, never answers.
//
// PlanCache caches, per statement text, the parsed AST + chosen plan
// (opaque payload, owned by the mcx layer) so repeated workload statements
// skip parse + plan entirely; a second map keyed by the literal-normalized
// statement ("..." and numeric literals replaced by `?`) reuses plan
// skeletons across statements that differ only in constants. Update
// statements invalidate the whole cache (statistics and contents changed).

#ifndef COLORFUL_XML_QUERY_PLANNER_H_
#define COLORFUL_XML_QUERY_PLANNER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mct/color.h"

namespace mct {
class ResourceGovernor;
}

namespace mct::query {

/// Axes of the logical IR (mirrors mcx::Axis without depending on the AST).
enum class PlanAxis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kSelf,
  kAttribute,
};

/// One step predicate, pre-digested for costing.
struct PredDesc {
  /// Positional predicate [N]: order-sensitive, freezes reordering and
  /// pushdown for the whole step.
  bool positional = false;
  /// Index-seekable equality shapes; must mirror the evaluator's
  /// index-probe eligibility exactly, so pushdown == the probe the fixed
  /// pipeline would run anyway, just hoisted before the expansion.
  enum class Seek { kNone, kChildContent, kAttr, kSelfContent };
  Seek seek = Seek::kNone;
  /// Live index hit count for the literal (content/attr index probe taken
  /// at plan time); -1 when unknown / not seekable.
  double est_matches = -1;
};

/// One location step of the logical IR, colors resolved.
struct StepDesc {
  PlanAxis axis = PlanAxis::kChild;
  ColorId color = 0;
  std::string tag;  // empty = any element
  /// The fixed pipeline inserts a cross-tree join before this step.
  bool color_change = false;
  /// The session's visibility mask hides this step's color: the evaluator
  /// empties it at runtime, so the planner must not spend index seeks or
  /// spine machinery on it (and must not elide the cross-tree filter).
  bool masked = false;
  std::vector<PredDesc> preds;
  /// Color-flow lattice estimate of this step's output cardinality
  /// (absolute rows, pre-predicates); -1 when no schema flow is available.
  double flow_out = -1;
};

/// One for-binding's path.
struct BindingDesc {
  /// The context column holds the shared document node.
  bool doc_context = false;
  /// The context table is exactly the one seed row (uncorrelated binding
  /// from document()): scan-shortcut and spine plans become legal.
  bool single_row = false;
  double in_rows = 1;  // estimated context cardinality
  std::vector<StepDesc> steps;
};

enum class StepAccess { kBaseline, kScanShortcut, kIndexSeek, kNavDescendant };

/// The physical choice for one step.
struct StepPlan {
  StepAccess access = StepAccess::kBaseline;
  /// Predicate consumed by kIndexSeek (index into StepDesc::preds), else -1.
  int seek_pred = -1;
  /// Skip the cross-tree join: the next axis operator drops rows lacking
  /// the color anyway (legal for child/descendant/parent/ancestor only).
  bool elide_cross_tree = false;
  /// Evaluation order over the remaining predicates (indices into
  /// StepDesc::preds, seek_pred excluded). Empty = natural order, all.
  std::vector<int> pred_order;
  /// kNavDescendant runtime guard: fall back to the baseline merge when the
  /// actual input row count exceeds this (estimates were off).
  uint64_t nav_max_rows = 0;
  double est_in = -1;      // estimated rows entering the step
  double est_expand = -1;  // estimated rows after the axis expansion
  double est_out = -1;     // estimated rows after this step's predicates
};

struct BindingPlan {
  /// Evaluate the whole binding with one holistic PathStackJoin (multi-step
  /// same-color descendant spine from the document, no predicates) and
  /// restore the pipeline's row order; per-step plans are the fallback.
  bool use_path_stack = false;
  std::vector<StepPlan> steps;
  double est_rows = -1;  // estimated binding output cardinality
};

/// The chosen plan for one statement: one BindingPlan per top-level FLWOR
/// binding, index-aligned (update selectors included).
struct StatementPlan {
  std::vector<BindingPlan> bindings;
  double cost_baseline = 0;  // cost-model units of the fixed pipeline
  double cost_chosen = 0;
  /// Shard fan-out the plan was costed under (StatsProvider::ShardCount);
  /// shown by EXPLAIN PLAN and part of the plan-cache slice key.
  int shard_count = 1;

  /// EXPLAIN PLAN text: one line per step with access method, estimates and
  /// the cost-model totals.
  std::string Describe() const;
};

/// Live statistics the cost model reads (implemented over MctDatabase by
/// the mcx layer; an interface so the planner links below it).
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  /// Elements with `tag` in `color` (the tag index cardinality).
  virtual double TagCount(ColorId color, const std::string& tag) const = 0;
  /// Total nodes in `color`'s tree (navigation cost bound).
  virtual double ColorSize(ColorId color) const = 0;
  /// Intra-process shards of the database (DESIGN.md §17). The cost model
  /// scales merge/emit work of the shard-parallel descendant paths by the
  /// fan-out; 1 (the default) reproduces the unsharded model exactly.
  virtual int ShardCount() const { return 1; }
};

/// Chooses a physical plan for the statement. Pure function of the IR and
/// the statistics; never fails (unknown structure degrades to kBaseline).
/// `governor` (optional) is checked once per binding: a statement whose
/// deadline already passed, or whose session was cancelled, skips costing
/// and returns the empty (all-baseline) plan — the evaluator surfaces the
/// governor's status before executing it.
StatementPlan PlanStatement(const std::vector<BindingDesc>& bindings,
                            const StatsProvider& stats,
                            ResourceGovernor* governor = nullptr);

/// Replaces string and standalone numeric literals with `?` — the plan-cache
/// parameterization key. Identifiers, tags, variables and colors survive.
std::string NormalizeStatement(std::string_view text);

/// Normalized-query plan cache. Two levels:
///  * exact: statement text -> opaque payload (parsed AST + plan, owned by
///    the caller layer) — a hit skips parse and plan entirely;
///  * skeleton: NormalizeStatement(text) -> StatementPlan — a hit after an
///    exact miss skips costing (the statement still parses once).
///
/// Epoch stamping (MVCC, DESIGN.md §14): entries are stamped with the
/// newest epoch that planned OR reused them, and a lookup at any epoch
/// hits — sound because every plan is result-identical to the fixed
/// pipeline (the determinism contract above) and re-validates its
/// preconditions at runtime, so a plan from an older snapshot can cost
/// time but never answers. That removes both the ordering-sensitive
/// blanket invalidation (a commit publishing epoch e+1 needs no cache
/// barrier) and the replan stampede a strict per-epoch cache would cause
/// after every commit. The stamp is a recency horizon for memory
/// pressure: Prune(min_epoch) drops entries not used since min_epoch.
///
/// Epoch 0 is the single-version embedded mode: entries are stamped 0 and
/// the evaluator calls Invalidate() after every applied update statement,
/// exactly the pre-MVCC contract. Thread-safe.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;            // exact-level hits
    uint64_t misses = 0;          // exact-level misses
    uint64_t skeleton_hits = 0;   // plan-skeleton reuses after an exact miss
    uint64_t invalidations = 0;   // Invalidate() calls
  };

  /// `fingerprint` is the session's ColorMask fingerprint (0 = no mask).
  /// Plans are pruned against the mask, so a hit requires the entry's
  /// fingerprint to match exactly — unmasked sessions share the 0 slice,
  /// and no entry ever crosses tenants with different masks.
  std::shared_ptr<const void> LookupExact(const std::string& text,
                                          uint64_t epoch = 0,
                                          uint64_t fingerprint = 0);
  void InsertExact(const std::string& text, std::shared_ptr<const void> payload,
                   uint64_t epoch = 0, uint64_t fingerprint = 0);
  bool LookupSkeleton(const std::string& normalized, StatementPlan* out,
                      uint64_t epoch = 0, uint64_t fingerprint = 0);
  void InsertSkeleton(const std::string& normalized, const StatementPlan& plan,
                      uint64_t epoch = 0, uint64_t fingerprint = 0);
  void Invalidate();
  /// Drops every entry last used below `min_epoch` (memory cap, not a
  /// correctness barrier).
  void Prune(uint64_t min_epoch);

  Stats stats() const;
  size_t size() const;

 private:
  struct ExactEntry {
    std::shared_ptr<const void> payload;
    uint64_t epoch = 0;
    uint64_t fingerprint = 0;
  };
  struct SkeletonEntry {
    StatementPlan plan;
    uint64_t epoch = 0;
    uint64_t fingerprint = 0;
  };

  mutable std::mutex mu_;
  Stats stats_;
  std::unordered_map<std::string, ExactEntry> exact_;
  std::unordered_map<std::string, SkeletonEntry> skeletons_;
};

}  // namespace mct::query

#endif  // COLORFUL_XML_QUERY_PLANNER_H_

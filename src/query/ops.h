// Physical operators over binding tables.
//
// Every operator takes an ExecContext (stats sink + optional worker pool).
// Execution is vectorized by default (ExecContext::batch): operators
// collect (input row index, emitted node) pairs into column chunks and
// materialize their output table with per-column batch gathers; filters
// and duplicate elimination flip the table's selection vector instead of
// copying rows. ExecContext::batch = false routes the hot operators
// through retained row-at-a-time paths (one materialized row vector per
// tuple — the pre-columnar cost profile) for A/B measurement; both modes
// produce identical tables.
//
// When a pool is present, row-oriented operators run morsel-driven: the
// input rows are split into fixed-size morsels claimed by workers off a
// shared counter; each morsel emits into a private buffer (a column chunk
// under batch execution) and the buffers are concatenated in morsel index
// order, so the output is byte-identical to the serial run (the
// determinism contract the tests enforce). Index probes (TagScan,
// content/attr lookups) and hash-table builds stay in the serial prefix of
// each operator; workers only perform const reads of the in-memory tree
// and store images.
//
// The cost asymmetry these implement is the paper's central performance
// claim (Section 7.2): structural (containment) joins are merge/hash joins
// over pre-ordered interval labels and parent pointers — much cheaper than
// value-based joins — and a *cross-tree join* (color transition, Section
// 6.2) is a bulk identity lookup costing slightly less than a value join.
//
// Operator inventory:
//   TagScanTable        index scan of a tag in a color
//   ExpandChildren      child::tag step   (parent-pointer hash join)
//   ExpandDescendants   descendant::tag   (stack-based interval merge join)
//   ExpandParent        parent::tag
//   ExpandAncestors     ancestor::tag     (used by the deep baseline's
//                                          grouping plans)
//   CrossTreeJoin       color transition on a bound column
//   StructuralSemiJoin  filter rows by containment against a node set
//   HashValueJoin       equality value join on extracted string keys
//   IdrefsJoin          IDREFS-list containment join (shallow schemas)
//   NestedLoopJoin      general theta join (inequality predicates)
//   IdentityJoin        join two tables on node identity of two columns
//   FilterRows          predicate filter
//   DupElim             duplicate elimination on a column subset
//   SortRowsBy          order by an extracted key

#ifndef COLORFUL_XML_QUERY_OPS_H_
#define COLORFUL_XML_QUERY_OPS_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mct/database.h"
#include "query/table.h"

namespace mct::query {

/// How to extract a join/sort key string from a bound node.
struct KeySpec {
  enum class Kind {
    kOwnContent,    // the node's own text content
    kChildContent,  // content of the first child with `name` in `color`
    kAttr,          // value of attribute `name`
    kStringValue,   // full color-aware string value
  };
  Kind kind = Kind::kOwnContent;
  ColorId color = 0;  // for kChildContent / kStringValue
  std::string name;   // child tag or attribute name

  static KeySpec OwnContent() { return {Kind::kOwnContent, 0, ""}; }
  static KeySpec ChildContent(ColorId c, std::string tag) {
    return {Kind::kChildContent, c, std::move(tag)};
  }
  static KeySpec Attr(std::string attr) {
    return {Kind::kAttr, 0, std::move(attr)};
  }
  static KeySpec StringValue(ColorId c) {
    return {Kind::kStringValue, c, ""};
  }
};

/// Extracts the key; nullopt when the node lacks the child/attr/color.
std::optional<std::string> ExtractKey(const MctDatabase& db, NodeId node,
                                      const KeySpec& spec);

/// True when `spec`'s key can be served as a view into storage the
/// database owns (content / attribute images are stable for the query's
/// lifetime): kOwnContent, kChildContent and kAttr. kStringValue
/// concatenates and must own its buffer.
bool KeySpecViewable(const KeySpec& spec);

/// Zero-copy variant for viewable specs: the returned view aliases the
/// node store and stays valid until the database is mutated. Precondition:
/// KeySpecViewable(spec).
std::optional<std::string_view> ExtractKeyView(const MctDatabase& db,
                                               NodeId node,
                                               const KeySpec& spec);

/// Index scan: one-column table of all `tag` elements in `color`, in local
/// document order.
Table TagScanTable(MctDatabase* db, ColorId color, const std::string& var,
                   const std::string& tag, const ExecContext& ctx);

/// Appends a column `out_var` binding children of `col` with `tag` in
/// `color` (one output row per child; rows without such children drop out).
/// Empty `tag` matches any element child.
Table ExpandChildren(MctDatabase* db, const Table& in, int col, ColorId color,
                     const std::string& tag, const std::string& out_var,
                     const ExecContext& ctx);

/// Appends a column binding descendants with `tag` in `color`, via a
/// stack-based interval merge against the tag index (a structural join).
Table ExpandDescendants(MctDatabase* db, const Table& in, int col,
                        ColorId color, const std::string& tag,
                        const std::string& out_var, const ExecContext& ctx);

/// ExpandDescendants restricted to a caller-supplied candidate set instead
/// of the full tag index (the planner's index-seek pushdown: candidates
/// come from a content/attribute-index probe). `cands` may be unordered
/// and contain duplicates or nodes outside `color`/`tag`; they are
/// filtered, deduped and start-sorted before the identical interval merge,
/// so the output matches ExpandDescendants over any superset restricted to
/// these matches — same rows, same order.
Table ExpandDescendantsAmong(MctDatabase* db, const Table& in, int col,
                             ColorId color, const std::string& tag,
                             const std::vector<NodeId>& cands,
                             const std::string& out_var,
                             const ExecContext& ctx);

/// Navigational descendant step: pre-order-walks each context row's
/// subtree instead of scanning the tag index. Result-identical (rows and
/// order) to ExpandDescendants; chosen by the planner when the context is
/// tiny and the subtrees are small.
Table ExpandDescendantsNav(MctDatabase* db, const Table& in, int col,
                           ColorId color, const std::string& tag,
                           const std::string& out_var, const ExecContext& ctx);

/// Descendant step off the lone document-root row: the tag scan already
/// *is* the answer in the right order, so skip grouping and merging.
/// Precondition: `in` has exactly one row and in.At(0, col) is the
/// document (asserted). Result-identical to ExpandDescendants.
Table ExpandDescendantsRoot(MctDatabase* db, const Table& in, int col,
                            ColorId color, const std::string& tag,
                            const std::string& out_var,
                            const ExecContext& ctx);

/// Appends a column binding the parent of `col` in `color` when its tag is
/// `tag` (empty = any); other rows drop out.
Table ExpandParent(MctDatabase* db, const Table& in, int col, ColorId color,
                   const std::string& tag, const std::string& out_var,
                   const ExecContext& ctx);

/// Appends a column binding every ancestor with `tag` in `color`.
Table ExpandAncestors(MctDatabase* db, const Table& in, int col, ColorId color,
                      const std::string& tag, const std::string& out_var,
                      const ExecContext& ctx);

/// Cross-tree join (the paper's color-transition access method): keeps rows
/// whose `col` node also has `to_color`. The node keeps its identity; its
/// structural context simply switches trees. Bulk identity join. The
/// rvalue overload keeps the surviving rows by composing the selection
/// vector in place — no row data moves at all.
Table CrossTreeJoin(MctDatabase* db, const Table& in, int col, ColorId to_color,
                    const ExecContext& ctx);
Table CrossTreeJoin(MctDatabase* db, Table&& in, int col, ColorId to_color,
                    const ExecContext& ctx);

/// Keeps rows where `filter` contains a node that is an ancestor (axis
/// descendant: filter-ancestors-of-col ... ) — precisely: keeps row when
/// col's node is a descendant of some node in `anc_set` (color's labels).
Table StructuralSemiJoin(MctDatabase* db, const Table& in, int col,
                         ColorId color, const std::vector<NodeId>& anc_set,
                         const ExecContext& ctx);

/// Hash equality join: rows of `left` and `right` combine when the
/// extracted keys match. Inner join; rows with missing keys drop.
Table HashValueJoin(MctDatabase* db, const Table& left, int lcol,
                    const KeySpec& lkey, const Table& right, int rcol,
                    const KeySpec& rkey, const ExecContext& ctx);

/// IDREFS containment join: `lkey` extracts a whitespace-separated id list
/// from the left node, `rkey` a single id from the right; rows combine when
/// the list contains the id. The shallow baseline's bread and butter.
Table IdrefsJoin(MctDatabase* db, const Table& left, int lcol,
                 const KeySpec& lkey, const Table& right, int rcol,
                 const KeySpec& rkey, const ExecContext& ctx);

/// General theta join (used for inequality predicates; quadratic, matching
/// the paper's observation that its two inequality-join queries scaled
/// quadratically). `pred(li, ri)` sees logical row indices of the two
/// inputs (read cells with left.At(li, c) / right.At(ri, c)) and must be
/// safe to call concurrently when ctx.pool is set.
Table NestedLoopJoin(MctDatabase* db, const Table& left, const Table& right,
                     const std::function<bool(size_t, size_t)>& pred,
                     const ExecContext& ctx);

/// Joins two tables on node identity of (lcol, rcol) — how MCXQuery's
/// `[. = $m]` correlation evaluates (hash join on NodeId).
Table IdentityJoin(MctDatabase* db, const Table& left, int lcol,
                   const Table& right, int rcol, const ExecContext& ctx);

/// Keeps rows satisfying `pred(row)`, where `row` is a logical row index
/// (read cells with in.At(row, c)). `pred` must be safe to call
/// concurrently when ctx.pool is set. The rvalue overload keeps survivors
/// by composing the selection vector in place (no row data moves).
Table FilterRows(const Table& in, const std::function<bool(size_t)>& pred,
                 const ExecContext& ctx);
Table FilterRows(Table&& in, const std::function<bool(size_t)>& pred,
                 const ExecContext& ctx);

/// Removes duplicate rows w.r.t. the projection onto `cols` (first
/// occurrence wins) — the duplicate elimination that hurts the deep
/// baseline in Table 2. Inherently order-dependent, so it stays serial; the
/// rvalue overload keeps the surviving rows via the selection vector
/// instead of copying them.
Table DupElim(const Table& in, const std::vector<int>& cols,
              const ExecContext& ctx);
Table DupElim(Table&& in, const std::vector<int>& cols,
              const ExecContext& ctx);

/// Projects onto `cols` (in the given order). Columnar storage makes this
/// O(cols): the overloads copy or move whole column vectors (the selection
/// vector, when active, carries over untouched).
Table Project(const Table& in, const std::vector<int>& cols);
Table Project(Table&& in, const std::vector<int>& cols);

/// Stable-sorts rows by the key extracted from `col` (numeric when both
/// keys parse as numbers, else lexicographic). With a pool, key extraction
/// (the expensive part) is parallel; the sort itself stays serial and
/// stable, so the output order is unchanged.
Table SortRowsBy(const MctDatabase& db, const Table& in, int col,
                 const KeySpec& key, bool descending = false,
                 const ExecContext& ctx = {});

}  // namespace mct::query

#endif  // COLORFUL_XML_QUERY_OPS_H_

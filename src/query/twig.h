// Holistic twig joins (Bruno, Koudas, Srivastava: "Holistic twig joins:
// optimal XML pattern matching", SIGMOD 2002 — the paper's reference [8]).
//
// A twig pattern is a small tree of (tag, axis) tests. PathStackJoin
// evaluates a *path* pattern (no branching) holistically: all tag streams
// are merged in one pass over their interval labels with chained stacks, so
// no intermediate binary-join result can blow up. TwigStackJoin decomposes
// a branching twig into its root-to-leaf paths, solves each holistically,
// and merge-joins the path solutions on their shared prefixes.
//
// Both agree exactly with composing the binary structural joins of ops.h
// (property-tested); the ablation benchmark compares their costs.

#ifndef COLORFUL_XML_QUERY_TWIG_H_
#define COLORFUL_XML_QUERY_TWIG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mct/database.h"
#include "query/table.h"

namespace mct::query {

/// One node of a twig pattern.
struct TwigNode {
  std::string tag;      // element test (must be non-empty)
  bool child_axis = false;  // edge from parent: child (true) or descendant
  int parent = -1;      // index in TwigPattern::nodes; -1 for the root node
};

/// A twig pattern; node 0 is the pattern root (matched via descendant from
/// the document).
struct TwigPattern {
  std::vector<TwigNode> nodes;

  /// Adds a node; returns its index.
  int Add(int parent, std::string tag, bool child_axis) {
    nodes.push_back(TwigNode{std::move(tag), child_axis, parent});
    return static_cast<int>(nodes.size()) - 1;
  }

  bool IsPath() const;
  /// Root-to-leaf paths as index sequences.
  std::vector<std::vector<int>> RootToLeafPaths() const;
};

/// Holistic path join: `pattern` must be a path (each node at most one
/// child). Output columns follow pattern-node order.
Result<Table> PathStackJoin(MctDatabase* db, ColorId color,
                            const TwigPattern& pattern, const ExecContext& ctx);

/// General twig: path decomposition + merge on shared prefixes. Output
/// columns follow pattern-node index order (var = "#<i>:<tag>").
Result<Table> TwigStackJoin(MctDatabase* db, ColorId color,
                            const TwigPattern& pattern, const ExecContext& ctx);

}  // namespace mct::query

#endif  // COLORFUL_XML_QUERY_TWIG_H_

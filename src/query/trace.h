// EXPLAIN ANALYZE plan traces: a tree of per-operator execution records
// (rows in/out, morsels claimed, wall time, color transitions) built while
// a plan runs, rendered as an indented text tree or as JSON.
//
// Recording discipline. The trace is mutated only from the thread driving
// the plan (the evaluator thread): physical operators open their node
// before fanning out and fill it after the fan-out joins, so morsel workers
// never touch the trace and no synchronization is needed. A null
// ExecContext::trace disables recording at a single branch per operator —
// never per row — which is the zero-overhead-when-off guarantee.

#ifndef COLORFUL_XML_QUERY_TRACE_H_
#define COLORFUL_XML_QUERY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/table.h"

namespace mct::query {

/// One node of the plan trace: a physical operator execution or a logical
/// group (a FOR binding, the query root).
struct OpTrace {
  std::string op;      // operator name, e.g. "CHILD STEP", "CROSS-TREE JOIN"
  std::string detail;  // e.g. "{red}child::name -> $n"
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Morsels claimed by this operator's fan-out (1 = ran serially; 0 = the
  /// operator had no row loop, e.g. an empty input short-circuit).
  uint64_t morsels = 0;
  /// Rows driven through the morsel fan-out. Usually rows_in; descendant
  /// expansion drives the scanned descendant stream instead.
  uint64_t fanout_rows = 0;
  /// Column-batch kernel invocations this operator performed under
  /// vectorized execution: emit-collection chunks plus gather passes.
  /// 0 = the operator ran row-at-a-time (or emitted nothing).
  uint64_t batches = 0;
  /// Color transitions (cross-tree joins) performed by this node.
  uint64_t color_transitions = 0;
  /// Planner cardinality estimate for rows_out (-1 = no plan / not
  /// estimated). EXPLAIN PLAN renders estimated-vs-actual from this.
  double est_rows = -1;
  double seconds = 0;
  std::vector<std::unique_ptr<OpTrace>> children;

  /// Depth-first visit of this node and its subtree.
  template <typename Fn>
  void Visit(const Fn& fn) const {
    fn(*this);
    for (const auto& c : children) c->Visit(fn);
  }
};

/// The trace of one query execution. Open()/Close() manage a stack of group
/// nodes; Leaf() appends an operator record under the current group.
/// Pause()/Resume() discard recordings made in between — used for nested
/// per-row FLWORs, whose per-row subplans would otherwise bloat the trace
/// by a factor of the outer cardinality.
class QueryTrace {
 public:
  QueryTrace();

  /// Appends a group node under the current group and makes it current.
  OpTrace* Open(std::string op, std::string detail = "");
  /// Pops `node` (must be the current group).
  void Close(const OpTrace* node);
  /// Appends an operator record under the current group.
  OpTrace* Leaf(std::string op, std::string detail = "");

  void Pause() { ++paused_; }
  void Resume() {
    if (paused_ > 0) --paused_;
  }
  bool paused() const { return paused_ > 0; }

  const OpTrace& root() const { return root_; }
  OpTrace* mutable_root() { return &root_; }

  /// The most recently opened/appended node (&scratch_ while paused, so
  /// stamping an estimate on it is always safe and drops out with the
  /// paused recording). The evaluator uses this to attach planner
  /// estimates to the operator it just ran.
  OpTrace* last() { return last_ != nullptr ? last_ : &scratch_; }

  /// Sum of color_transitions over the whole tree.
  uint64_t TotalColorTransitions() const;
  /// Number of operator/group nodes (excluding the root).
  uint64_t NodeCount() const;

  /// EXPLAIN ANALYZE-style indented text tree.
  std::string ToText() const;
  /// The same data as one JSON object (schema in DESIGN.md).
  std::string ToJson() const;

 private:
  OpTrace root_;
  OpTrace scratch_;  // sink for recordings made while paused
  std::vector<OpTrace*> stack_;
  OpTrace* last_ = nullptr;
  int paused_ = 0;
};

/// RAII recorder used inside physical operators. Constructing with a null
/// ctx.trace is free; when enabled it opens a leaf, stamps rows_in, and the
/// destructor records wall time — so every exit path is timed.
class OpScope {
 public:
  OpScope(const ExecContext& ctx, const char* op, uint64_t rows_in)
      : trace_(ctx.trace) {
    if (trace_ == nullptr) return;
    node_ = trace_->Leaf(op);
    node_->rows_in = rows_in;
    node_->fanout_rows = rows_in;
    start_ = std::chrono::steady_clock::now();
  }
  ~OpScope() {
    if (node_ != nullptr) {
      node_->seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
    }
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// False when tracing is off: callers skip detail formatting entirely.
  bool enabled() const { return node_ != nullptr; }
  void set_detail(std::string d) { node_->detail = std::move(d); }
  void Finish(uint64_t rows_out, uint64_t morsels) {
    node_->rows_out = rows_out;
    node_->morsels = morsels;
  }
  void Finish(uint64_t rows_out, uint64_t morsels, uint64_t fanout_rows) {
    node_->rows_out = rows_out;
    node_->morsels = morsels;
    node_->fanout_rows = fanout_rows;
  }
  void AddColorTransition() { ++node_->color_transitions; }
  void AddBatches(uint64_t n) { node_->batches += n; }

 private:
  QueryTrace* trace_;
  OpTrace* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mct::query

#endif  // COLORFUL_XML_QUERY_TRACE_H_

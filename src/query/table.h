// Binding tables: the tuple stream flowing between physical operators.
//
// A Table holds the bindings of one or more query variables (columns) to
// nodes (rows), exactly the "tuple of bindings" an XQuery FLWOR produces.
// Operators are set-oriented functions over Tables (Timber evaluated its
// algebra bulk-wise too), which keeps join algorithms — the heart of the
// paper's performance story — explicit and measurable.
//
// Storage is columnar: one contiguous std::vector<NodeId> per variable,
// plus an optional selection vector. A row is a purely logical notion —
// row r of column j is cols[j][sel[r]] (or cols[j][r] when no selection is
// active). Filters and duplicate elimination flip selection indices
// instead of copying rows; expansion operators and joins materialize their
// output with per-column batch gathers. Compared to the former
// row-of-rows layout (std::vector<std::vector<NodeId>>), this removes the
// per-row heap allocation and lets operators process whole label columns
// at a time (DESIGN.md §13, "Vectorized execution").

#ifndef COLORFUL_XML_QUERY_TABLE_H_
#define COLORFUL_XML_QUERY_TABLE_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mct/node_store.h"

namespace mct {
class ResourceGovernor;
class ThreadPool;
struct ColorMask;
}

namespace mct::query {

class QueryTrace;

struct Table {
  /// Column names (variable names like "$m"; internal step columns use
  /// positional names).
  std::vector<std::string> vars;
  /// Column storage, parallel to `vars`: cols[j][r] is the physical cell of
  /// column j. Invariant: cols.size() == vars.size() and all columns have
  /// equal length. Prefer the accessors below over direct indexing — they
  /// resolve the selection vector.
  std::vector<std::vector<NodeId>> cols;
  /// Selection vector (active when `use_sel`): logical row r is physical
  /// row sel[r] of every column. Produced by filters/dup-elim so a
  /// selective operator costs O(kept) index writes, not O(kept * cols)
  /// cell copies.
  std::vector<uint32_t> sel;
  bool use_sel = false;

  size_t num_rows() const {
    if (use_sel) return sel.size();
    return cols.empty() ? 0 : cols[0].size();
  }
  size_t num_cols() const { return vars.size(); }
  /// True when no selection vector is active, i.e. logical row order is
  /// physical column order and ColumnSpan() views are valid.
  bool dense() const { return !use_sel; }

  /// The cell of logical row `row`, column `col`.
  NodeId At(size_t row, int col) const {
    const std::vector<NodeId>& c = cols[static_cast<size_t>(col)];
    return use_sel ? c[sel[row]] : c[row];
  }

  /// Index of a variable, or -1. Takes a string_view so hot callers avoid
  /// temporary std::string conversions; column counts are small (bounded by
  /// the query's variable count), so a linear scan is fine — callers in
  /// per-row loops should still hoist the lookup out of the loop.
  int ColumnOf(std::string_view var) const {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }

  /// Empty table with the given column names (columns sized and empty).
  static Table WithVars(std::vector<std::string> names) {
    Table t;
    t.vars = std::move(names);
    t.cols.resize(t.vars.size());
    return t;
  }

  /// Single-column table from a node list; the vector becomes the column
  /// (no per-row work at all).
  static Table FromNodes(std::string var, std::vector<NodeId> nodes) {
    Table t;
    t.vars.push_back(std::move(var));
    t.cols.push_back(std::move(nodes));
    return t;
  }

  /// Table from explicit rows (tests and small literal setups; O(rows *
  /// cols) scatter).
  static Table FromRows(std::vector<std::string> names,
                        const std::vector<std::vector<NodeId>>& rows) {
    Table t = WithVars(std::move(names));
    for (auto& c : t.cols) c.reserve(rows.size());
    for (const auto& r : rows) t.AppendRow(r);
    return t;
  }

  /// Zero-copy view of one column. Precondition: dense() — callers holding
  /// a selected table Flatten() first (or read through At()).
  std::span<const NodeId> ColumnSpan(int col) const {
    assert(dense());
    return std::span<const NodeId>(cols[static_cast<size_t>(col)]);
  }

  /// The nodes bound in one column, in logical row order (with duplicates).
  /// Materializing copy; prefer ColumnSpan() on dense tables.
  std::vector<NodeId> Column(int col) const {
    const std::vector<NodeId>& c = cols[static_cast<size_t>(col)];
    if (!use_sel) return c;
    std::vector<NodeId> out;
    out.reserve(sel.size());
    for (uint32_t s : sel) out.push_back(c[s]);
    return out;
  }

  /// Appends a new column. Precondition: dense() and (when columns exist)
  /// data.size() == num_rows().
  void AppendColumn(std::string var, std::vector<NodeId> data) {
    assert(dense());
    assert(cols.empty() || data.size() == num_rows());
    vars.push_back(std::move(var));
    cols.push_back(std::move(data));
  }

  /// Appends one row (cell per column). Precondition: dense(). Row-at-a-
  /// time shape: the vectorized paths use gathers instead.
  void AppendRow(const std::vector<NodeId>& row) {
    assert(dense() && row.size() == cols.size());
    for (size_t j = 0; j < cols.size(); ++j) cols[j].push_back(row[j]);
  }

  /// Reserves capacity for n rows in every column.
  void Reserve(size_t n) {
    for (auto& c : cols) c.reserve(n);
  }

  /// Restricts the table to the given logical rows, in order, by composing
  /// the selection vector in place — O(keep) regardless of column count.
  void KeepRows(std::vector<uint32_t> keep) {
    if (use_sel) {
      for (uint32_t& k : keep) k = sel[k];
    }
    sel = std::move(keep);
    use_sel = true;
  }

  /// Materializes the selection vector into dense columns.
  void Flatten() {
    if (!use_sel) return;
    for (auto& c : cols) {
      std::vector<NodeId> packed;
      packed.reserve(sel.size());
      for (uint32_t s : sel) packed.push_back(c[s]);
      c = std::move(packed);
    }
    sel.clear();
    use_sel = false;
  }

  /// New dense table holding the given logical rows of this table, in
  /// order (duplicates allowed) — the batch gather join/sort emits use.
  Table GatherRows(std::span<const uint32_t> idx) const {
    Table out = WithVars(vars);
    GatherInto(*this, idx, &out, 0);
    return out;
  }

  /// Batch gather: appends src's logical rows `idx` (in order) into dst's
  /// columns [dst_col0, dst_col0 + src.num_cols()). Column-at-a-time, so
  /// the inner loop is a tight index copy per column. dst must be dense.
  static void GatherInto(const Table& src, std::span<const uint32_t> idx,
                         Table* dst, size_t dst_col0) {
    assert(dst->dense());
    for (size_t j = 0; j < src.cols.size(); ++j) {
      const std::vector<NodeId>& in = src.cols[j];
      std::vector<NodeId>& out = dst->cols[dst_col0 + j];
      out.reserve(out.size() + idx.size());
      if (src.use_sel) {
        for (uint32_t r : idx) out.push_back(in[src.sel[r]]);
      } else {
        for (uint32_t r : idx) out.push_back(in[r]);
      }
    }
  }

  /// One logical row materialized as a vector (legacy row-at-a-time paths
  /// and tests).
  std::vector<NodeId> RowAt(size_t row) const {
    std::vector<NodeId> r;
    r.reserve(cols.size());
    for (size_t j = 0; j < cols.size(); ++j) {
      r.push_back(At(row, static_cast<int>(j)));
    }
    return r;
  }

  /// The whole table as row vectors — differential tests compare layouts
  /// through this, so columnar/selected/dense variants of the same logical
  /// table compare equal.
  std::vector<std::vector<NodeId>> ToRows() const {
    std::vector<std::vector<NodeId>> rows;
    const size_t n = num_rows();
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) rows.push_back(RowAt(i));
    return rows;
  }
};

/// Counters for the cost anatomy the paper reports alongside Table 2: how
/// many structural joins, value joins and color crossings a plan performed.
struct ExecStats {
  uint64_t structural_joins = 0;
  uint64_t value_joins = 0;
  uint64_t cross_tree_joins = 0;
  uint64_t nested_loop_joins = 0;
  uint64_t dup_elims = 0;
  uint64_t rows_scanned = 0;

  void Reset() { *this = ExecStats(); }

  /// Serial and parallel runs of the same plan must produce equal counters.
  bool operator==(const ExecStats&) const = default;

  /// Folds another counter set into this one. Parallel operators keep one
  /// ExecStats per morsel and merge at operator exit, so the hot path never
  /// touches an atomic and the merged totals equal the serial run exactly.
  void Merge(const ExecStats& other) {
    structural_joins += other.structural_joins;
    value_joins += other.value_joins;
    cross_tree_joins += other.cross_tree_joins;
    nested_loop_joins += other.nested_loop_joins;
    dup_elims += other.dup_elims;
    rows_scanned += other.rows_scanned;
  }
};

/// Everything an operator needs beyond its operands: the stats sink and the
/// parallel execution configuration. Implicitly constructible from a bare
/// ExecStats* so legacy call sites (`&stats`, `nullptr`) keep working and
/// run serially.
struct ExecContext {
  ExecStats* stats = nullptr;
  /// Worker pool; nullptr = serial execution.
  ThreadPool* pool = nullptr;
  /// Rows per morsel; inputs at or below this size run serially.
  size_t morsel_size = 1024;
  /// Plan trace sink (see query/trace.h); nullptr disables tracing. Each
  /// operator checks this exactly once, so a disabled trace costs one
  /// branch per operator call, never per row.
  QueryTrace* trace = nullptr;
  /// Per-query resource governor (common/governor.h): cooperative
  /// cancellation, deadline, and memory budget, checked at morsel/batch
  /// boundaries with the same zero-cost-when-off discipline as `trace` —
  /// nullptr (the default) costs one branch per operator, never per row.
  /// When the governor trips, operators stop emitting (their truncated
  /// output is never returned: the evaluator surfaces the governor's
  /// sticky status first) and large materializations are charged to the
  /// budget before they grow.
  ResourceGovernor* governor = nullptr;
  /// Vectorized (batch) execution: operators emit (row index, value) pairs
  /// into column chunks and materialize output with per-column gathers;
  /// filters flip selection vectors. false routes the hot operators
  /// through the retained row-at-a-time paths, which re-materialize one
  /// row vector per tuple — the pre-columnar cost profile the --batch A/B
  /// benchmark compares against. Results are identical either way.
  bool batch = true;
  /// Session color visibility mask (mct/color.h, DESIGN.md §16): the
  /// defense-in-depth backstop below the analyzer and the evaluator's own
  /// per-step filtering. Color-parameterized operators asked to expand
  /// into a read-invisible color emit nothing. nullptr or inactive = all
  /// colors visible, one branch per operator call (same discipline as
  /// `governor`).
  const ColorMask* mask = nullptr;

  ExecContext() = default;
  ExecContext(ExecStats* s) : stats(s) {}  // NOLINT: implicit by design
  ExecContext(ExecStats* s, ThreadPool* p, size_t morsel,
              QueryTrace* t = nullptr)
      : stats(s), pool(p), morsel_size(morsel), trace(t) {}
};

}  // namespace mct::query

#endif  // COLORFUL_XML_QUERY_TABLE_H_

// Binding tables: the tuple stream flowing between physical operators.
//
// A Table holds the bindings of one or more query variables (columns) to
// nodes (rows), exactly the "tuple of bindings" an XQuery FLWOR produces.
// Operators are set-oriented functions over Tables (Timber evaluated its
// algebra bulk-wise too), which keeps join algorithms — the heart of the
// paper's performance story — explicit and measurable.

#ifndef COLORFUL_XML_QUERY_TABLE_H_
#define COLORFUL_XML_QUERY_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mct/node_store.h"

namespace mct {
class ThreadPool;
}

namespace mct::query {

class QueryTrace;

struct Table {
  /// Column names (variable names like "$m"; internal step columns use
  /// positional names).
  std::vector<std::string> vars;
  /// rows[i][j] binds vars[j].
  std::vector<std::vector<NodeId>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return vars.size(); }

  /// Index of a variable, or -1.
  int ColumnOf(const std::string& var) const {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }

  /// Single-column table from a node list.
  static Table FromNodes(std::string var, const std::vector<NodeId>& nodes) {
    Table t;
    t.vars.push_back(std::move(var));
    t.rows.reserve(nodes.size());
    for (NodeId n : nodes) t.rows.push_back({n});
    return t;
  }

  /// The nodes bound in one column, in row order (with duplicates).
  std::vector<NodeId> Column(int col) const {
    std::vector<NodeId> out;
    out.reserve(rows.size());
    for (const auto& r : rows) out.push_back(r[static_cast<size_t>(col)]);
    return out;
  }
};

/// Counters for the cost anatomy the paper reports alongside Table 2: how
/// many structural joins, value joins and color crossings a plan performed.
struct ExecStats {
  uint64_t structural_joins = 0;
  uint64_t value_joins = 0;
  uint64_t cross_tree_joins = 0;
  uint64_t nested_loop_joins = 0;
  uint64_t dup_elims = 0;
  uint64_t rows_scanned = 0;

  void Reset() { *this = ExecStats(); }

  /// Serial and parallel runs of the same plan must produce equal counters.
  bool operator==(const ExecStats&) const = default;

  /// Folds another counter set into this one. Parallel operators keep one
  /// ExecStats per morsel and merge at operator exit, so the hot path never
  /// touches an atomic and the merged totals equal the serial run exactly.
  void Merge(const ExecStats& other) {
    structural_joins += other.structural_joins;
    value_joins += other.value_joins;
    cross_tree_joins += other.cross_tree_joins;
    nested_loop_joins += other.nested_loop_joins;
    dup_elims += other.dup_elims;
    rows_scanned += other.rows_scanned;
  }
};

/// Everything an operator needs beyond its operands: the stats sink and the
/// parallel execution configuration. Implicitly constructible from a bare
/// ExecStats* so legacy call sites (`&stats`, `nullptr`) keep working and
/// run serially.
struct ExecContext {
  ExecStats* stats = nullptr;
  /// Worker pool; nullptr = serial execution.
  ThreadPool* pool = nullptr;
  /// Rows per morsel; inputs at or below this size run serially.
  size_t morsel_size = 1024;
  /// Plan trace sink (see query/trace.h); nullptr disables tracing. Each
  /// operator checks this exactly once, so a disabled trace costs one
  /// branch per operator call, never per row.
  QueryTrace* trace = nullptr;

  ExecContext() = default;
  ExecContext(ExecStats* s) : stats(s) {}  // NOLINT: implicit by design
  ExecContext(ExecStats* s, ThreadPool* p, size_t morsel,
              QueryTrace* t = nullptr)
      : stats(s), pool(p), morsel_size(morsel), trace(t) {}
};

}  // namespace mct::query

#endif  // COLORFUL_XML_QUERY_TABLE_H_

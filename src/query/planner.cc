#include "query/planner.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/governor.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace mct::query {
namespace {

// Cost-model constants, in "node touches" (relative units only — the
// planner compares alternatives, it never predicts wall time). Calibrated
// against bench_ablation_joins shapes: an index-entry touch is ~1, a stack
// push/pop in the interval merge is cheaper, an interpreted predicate
// evaluation (EvalBool over the AST) is several times a scan touch.
constexpr double kScanC = 1.0;    // tag-index entry scan
constexpr double kGroupC = 1.5;   // group-by-node hash build, per input row
constexpr double kStackC = 0.6;   // interval-merge stack traffic, per node
constexpr double kEmitC = 1.0;    // output-row materialization
constexpr double kProbeC = 1.2;   // content/attr index probe, per row
constexpr double kFilterC = 6.0;  // interpreted predicate, per row
constexpr double kCrossC = 1.2;   // cross-tree join, per row
constexpr double kNavC = 1.5;     // pointer-chasing pre-order visit
// An alternative must beat the baseline by this factor: estimates are
// rough, and flapping between near-equal plans would make benchmarks and
// EXPLAIN PLAN output noisy for no gain.
constexpr double kHysteresis = 0.8;
// Runtime guard for kNavDescendant: if the context table turns out larger
// than this, the evaluator silently falls back to the baseline merge.
constexpr uint64_t kNavMaxRows = 64;

double Selectivity(const PredDesc& p, double expand) {
  if (p.positional) return 0.2;  // [N]: keeps ~one row per group
  if (p.est_matches >= 0 && expand > 0) {
    return std::min(1.0, p.est_matches / expand);
  }
  return 0.5;  // unknown predicate: coin flip
}

/// Cost of evaluating `preds` (minus the consumed seek pred) over
/// `rows` rows, cheapest-first when reordering is legal.
double PredCost(const StepDesc& step, const StepPlan& sp, double rows) {
  double cost = 0;
  for (int i = 0; i < static_cast<int>(step.preds.size()); ++i) {
    if (i == sp.seek_pred) continue;
    const PredDesc& p = step.preds[static_cast<size_t>(i)];
    double per_row =
        (p.seek != PredDesc::Seek::kNone) ? kProbeC : kFilterC;
    cost += per_row * rows;
    rows *= Selectivity(p, rows);
  }
  return cost;
}

bool HasPositional(const StepDesc& step) {
  for (const PredDesc& p : step.preds) {
    if (p.positional) return true;
  }
  return false;
}

/// Cross-tree elision is legal exactly when the axis operator itself
/// filters to the step color: ExpandChildren/Descendants scan the color's
/// tag index, ExpandParent asks Parent(n, color), ExpandAncestors checks
/// tree membership. kSelf/kAttribute filter in place (no color test) and
/// kDescendantOrSelf merges the input row itself back in unfiltered, so
/// the explicit join must stay.
bool AxisColorFilters(PlanAxis axis) {
  switch (axis) {
    case PlanAxis::kChild:
    case PlanAxis::kDescendant:
    case PlanAxis::kParent:
    case PlanAxis::kAncestor:
      return true;
    case PlanAxis::kDescendantOrSelf:
    case PlanAxis::kSelf:
    case PlanAxis::kAttribute:
      return false;
  }
  return false;
}

/// Estimated rows the axis expansion of `step` emits from `in_rows`
/// context rows. Prefers the color-flow lattice estimate when present
/// (absolute per-document cardinality, scaled to pairs only loosely: the
/// workload paths are near tree-shaped so pairs ≈ matching nodes), else
/// falls back to live tag-index counts.
double ExpandEstimate(const StepDesc& step, double in_rows, double tag_count,
                      double color_size) {
  switch (step.axis) {
    case PlanAxis::kChild:
    case PlanAxis::kDescendant:
    case PlanAxis::kDescendantOrSelf: {
      double e = step.flow_out >= 0 ? step.flow_out : tag_count;
      if (step.axis == PlanAxis::kDescendantOrSelf) e += in_rows;
      return std::max(e, 1.0);
    }
    case PlanAxis::kParent:
    case PlanAxis::kAncestor: {
      // At most one parent per row; ancestors bounded by depth (~log n).
      double depth = std::max(1.0, std::log2(color_size + 2));
      return step.axis == PlanAxis::kParent ? in_rows : in_rows * depth;
    }
    case PlanAxis::kSelf:
    case PlanAxis::kAttribute:
      return std::max(in_rows, 1.0);
  }
  return std::max(in_rows, 1.0);
}

/// Baseline cost of the axis expansion itself (tag scan + group hash +
/// interval merge / parent-pointer join), excluding predicates. `par` is
/// the shard fan-out (DESIGN.md §17): the interval merge and the emit run
/// as shard-parallel tasks, so their cost divides by the fan-out; the tag
/// scan and group hash stay serial in the model (the scan's sort does
/// parallelize, but its constant is small enough to ignore). par = 1 is
/// the exact pre-shard model.
double BaselineExpandCost(const StepDesc& step, double in_rows,
                          double tag_count, double expand, double par) {
  switch (step.axis) {
    case PlanAxis::kChild:
    case PlanAxis::kDescendant:
    case PlanAxis::kDescendantOrSelf:
      return kScanC * tag_count + kGroupC * in_rows +
             (kStackC * (in_rows + tag_count) + kEmitC * expand) / par;
    case PlanAxis::kParent:
    case PlanAxis::kAncestor:
      return kScanC * in_rows + kEmitC * expand;
    case PlanAxis::kSelf:
    case PlanAxis::kAttribute:
      return kScanC * in_rows;
  }
  return kScanC * in_rows;
}

/// Fills pred_order: index-seekable predicates first (most selective
/// first), the rest in source order. Only legal without positionals.
void OrderPreds(const StepDesc& step, StepPlan* sp) {
  sp->pred_order.clear();
  if (step.preds.empty() || HasPositional(step)) return;
  std::vector<int> order;
  for (int i = 0; i < static_cast<int>(step.preds.size()); ++i) {
    if (i != sp->seek_pred) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const PredDesc& pa = step.preds[static_cast<size_t>(a)];
    const PredDesc& pb = step.preds[static_cast<size_t>(b)];
    bool sa = pa.seek != PredDesc::Seek::kNone;
    bool sb = pb.seek != PredDesc::Seek::kNone;
    if (sa != sb) return sa;  // probes before interpreted filters
    if (sa && sb && pa.est_matches >= 0 && pb.est_matches >= 0) {
      return pa.est_matches < pb.est_matches;
    }
    return false;
  });
  sp->pred_order = std::move(order);
}

/// A binding qualifies for one holistic PathStackJoin when it is a pure
/// multi-step descendant spine in one color from the document: the join
/// produces exactly the baseline's row set (property-tested equal to the
/// composed binary joins) and the evaluator re-sorts to the baseline
/// order.
bool SpineEligible(const BindingDesc& b) {
  if (!b.doc_context || !b.single_row) return false;
  if (b.steps.size() < 2) return false;
  for (size_t i = 0; i < b.steps.size(); ++i) {
    const StepDesc& s = b.steps[i];
    if (s.masked) return false;  // visibility layer empties the step
    if (s.axis != PlanAxis::kDescendant) return false;
    if (s.tag.empty()) return false;
    if (!s.preds.empty()) return false;
    if (s.color != b.steps[0].color) return false;
    if (i > 0 && s.color_change) return false;
  }
  return true;
}

const char* AccessName(StepAccess a) {
  switch (a) {
    case StepAccess::kBaseline:
      return "baseline";
    case StepAccess::kScanShortcut:
      return "scan-shortcut";
    case StepAccess::kIndexSeek:
      return "index-seek";
    case StepAccess::kNavDescendant:
      return "nav";
  }
  return "?";
}

std::string FmtEst(double v) {
  if (v < 0) return "?";
  if (v == std::floor(v) && v < 1e15) {
    return StrFormat("%.0f", v);
  }
  return StrFormat("%.3g", v);
}

}  // namespace

StatementPlan PlanStatement(const std::vector<BindingDesc>& bindings,
                            const StatsProvider& stats,
                            ResourceGovernor* governor) {
  StatementPlan plan;
  plan.shard_count = std::max(1, stats.ShardCount());
  // Effective shard parallelism: fan-out is capped by what a typical pool
  // can actually run side by side, so a 64-shard map doesn't make the
  // model believe in 64x merges.
  const double par = std::min(plan.shard_count, 8);
  plan.bindings.reserve(bindings.size());
  for (const BindingDesc& b : bindings) {
    if (governor != nullptr && governor->ShouldStop()) {
      // Deadline already passed or session cancelled: don't spend time
      // costing a statement that will not run. The empty plan is the
      // all-baseline shape; the evaluator surfaces the governor's status
      // before execution starts.
      return StatementPlan{};
    }
    BindingPlan bp;
    bp.steps.resize(b.steps.size());
    double rows = std::max(b.in_rows, 1.0);
    double baseline_total = 0;
    double chosen_total = 0;
    for (size_t si = 0; si < b.steps.size(); ++si) {
      const StepDesc& step = b.steps[si];
      StepPlan& sp = bp.steps[si];

      // Masked step: the visibility layer empties it at runtime, so any
      // index seek, shortcut or elision would be wasted (or worse, the
      // elided cross-tree filter is what enforcement relies on). Keep the
      // baseline shape with zero estimates and move on; downstream steps
      // see ~zero input rows.
      if (step.masked) {
        sp.access = StepAccess::kBaseline;
        sp.seek_pred = -1;
        sp.est_in = rows;
        sp.est_expand = 0;
        sp.est_out = 0;
        rows = 1e-3;
        continue;
      }

      double tag_count = step.tag.empty() ? stats.ColorSize(step.color)
                                          : stats.TagCount(step.color, step.tag);
      double color_size = std::max(stats.ColorSize(step.color), 1.0);
      double expand = ExpandEstimate(step, rows, tag_count, color_size);
      sp.est_in = rows;
      sp.est_expand = expand;

      // Cross-tree join: cost it, and elide when the axis operator's own
      // color filter subsumes it (same kept rows, same order).
      double cross_cost = 0;
      if (step.color_change) {
        if (AxisColorFilters(step.axis)) {
          sp.elide_cross_tree = true;
        } else {
          cross_cost = kCrossC * rows;
        }
        baseline_total += kCrossC * rows;
      }

      double base_expand_cost =
          BaselineExpandCost(step, rows, tag_count, expand, par);
      StepPlan natural;  // baseline access, natural pred order
      natural.seek_pred = -1;
      double base_pred_cost = PredCost(step, natural, expand);
      double baseline_step = base_expand_cost + base_pred_cost;
      baseline_total += baseline_step;

      double best = base_expand_cost + base_pred_cost;
      sp.access = StepAccess::kBaseline;
      sp.seek_pred = -1;

      bool positional = HasPositional(step);
      bool first_from_doc = b.doc_context && si == 0;

      // kScanShortcut: the lone document row contains everything — the tag
      // scan is the answer, no grouping or merging needed.
      if (first_from_doc && b.single_row &&
          step.axis == PlanAxis::kDescendant) {
        double c = kScanC * tag_count + kEmitC * expand / par +
                   PredCost(step, natural, expand);
        if (c < best) {
          best = c;
          sp.access = StepAccess::kScanShortcut;
          sp.seek_pred = -1;
        }
      }

      // kIndexSeek: hoist the most selective seekable equality predicate
      // into a content/attr-index lookup, run the same interval merge over
      // the (typically tiny) candidate set. Illegal with positionals: [N]
      // counts per-group over the *pre-predicate* expansion.
      if (step.axis == PlanAxis::kDescendant && !positional) {
        int pick = -1;
        double pick_m = -1;
        for (int i = 0; i < static_cast<int>(step.preds.size()); ++i) {
          const PredDesc& p = step.preds[static_cast<size_t>(i)];
          if (p.seek == PredDesc::Seek::kNone || p.est_matches < 0) continue;
          if (pick < 0 || p.est_matches < pick_m) {
            pick = i;
            pick_m = p.est_matches;
          }
        }
        if (pick >= 0) {
          StepPlan alt;
          alt.seek_pred = pick;
          double m = pick_m;
          double out = std::min(expand, m);
          double c = kProbeC * (m + 1) + kGroupC * rows +
                     (kStackC * (rows + m) + kEmitC * out) / par +
                     PredCost(step, alt, out);
          if (c < kHysteresis * best) {
            best = c;
            sp.access = StepAccess::kIndexSeek;
            sp.seek_pred = pick;
          }
        }
      }

      // kNavDescendant: few context rows over small subtrees — walk them.
      // Subtree size estimated as the color's fan share under the context.
      if (step.axis == PlanAxis::kDescendant && !first_from_doc &&
          rows <= static_cast<double>(kNavMaxRows)) {
        double ctx_count =
            si > 0 ? std::max(
                         1.0, b.steps[si - 1].tag.empty()
                                  ? rows
                                  : stats.TagCount(b.steps[si - 1].color,
                                                   b.steps[si - 1].tag))
                   : std::max(rows, 1.0);
        double subtree = color_size / ctx_count;
        double c = kNavC * rows * subtree + kEmitC * expand +
                   PredCost(step, natural, expand);
        if (c < kHysteresis * best) {
          best = c;
          sp.access = StepAccess::kNavDescendant;
          sp.seek_pred = -1;
          sp.nav_max_rows = kNavMaxRows;
        }
      }

      OrderPreds(step, &sp);
      chosen_total += best + cross_cost;

      // Row estimate leaving the step (order of predicate application does
      // not change the estimate).
      double out = expand;
      for (const PredDesc& p : step.preds) {
        out *= Selectivity(p, expand);
      }
      out = std::max(out, 0.0);
      sp.est_out = out;
      rows = std::max(out, 1e-3);
    }

    // Whole-binding alternative: holistic path-stack spine.
    if (SpineEligible(b)) {
      double scan_sum = 0;
      for (const StepDesc& s : b.steps) {
        scan_sum += stats.TagCount(s.color, s.tag);
      }
      double out = bp.steps.empty() ? 1.0 : std::max(bp.steps.back().est_out, 1.0);
      // Leaf-sharded path stack: stack traffic and emission fan out; the
      // order-restore sort stays serial.
      double spine = (kStackC * scan_sum + kEmitC * out) / par +
                     kEmitC * out * std::log2(out + 2);  // order-restore sort
      if (spine < kHysteresis * chosen_total) {
        bp.use_path_stack = true;
        chosen_total = spine;
      }
    }

    bp.est_rows = b.steps.empty() ? b.in_rows
                                  : std::max(bp.steps.back().est_out, 0.0);
    plan.cost_baseline += baseline_total;
    plan.cost_chosen += chosen_total;
    plan.bindings.push_back(std::move(bp));
  }
  return plan;
}

std::string StatementPlan::Describe() const {
  std::string out =
      StrFormat("PLAN cost %.1f baseline -> %.1f chosen\n", cost_baseline,
                cost_chosen);
  if (shard_count > 1) {
    out += StrFormat("  shard fan-out: %d interval-range shards\n",
                     shard_count);
  }
  for (size_t bi = 0; bi < bindings.size(); ++bi) {
    const BindingPlan& bp = bindings[bi];
    out += StrFormat("  binding %zu%s est~%s\n", bi,
                     bp.use_path_stack ? ": path-stack spine" : "",
                     FmtEst(bp.est_rows).c_str());
    for (size_t si = 0; si < bp.steps.size(); ++si) {
      const StepPlan& sp = bp.steps[si];
      out += StrFormat("    step %zu: %s", si, AccessName(sp.access));
      if (sp.seek_pred >= 0) {
        out += StrFormat(" pred#%d", sp.seek_pred);
      }
      if (sp.elide_cross_tree) out += " elide-cross-tree";
      if (!sp.pred_order.empty()) {
        out += " preds[";
        for (size_t i = 0; i < sp.pred_order.size(); ++i) {
          if (i) out += ",";
          out += StrFormat("%d", sp.pred_order[i]);
        }
        out += "]";
      }
      out += StrFormat("  est %s -> %s -> %s\n", FmtEst(sp.est_in).c_str(),
                       FmtEst(sp.est_expand).c_str(),
                       FmtEst(sp.est_out).c_str());
    }
  }
  return out;
}

std::string NormalizeStatement(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '"' || c == '\'') {
      // String literal: copy the quotes, parameterize the body.
      char q = c;
      out += q;
      out += '?';
      ++i;
      while (i < text.size() && text[i] != q) ++i;
      if (i < text.size()) {
        out += q;
        ++i;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Standalone numeric literal (not part of an identifier like "TQ5" or
      // a variable like $x2): previous significant char must not be
      // alphanumeric, '_' or '$'.
      char prev = out.empty() ? '\0' : out.back();
      bool ident_tail = std::isalnum(static_cast<unsigned char>(prev)) ||
                        prev == '_' || prev == '$' || prev == '?';
      if (!ident_tail) {
        out += '?';
        while (i < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[i])) ||
                text[i] == '.')) {
          ++i;
        }
        continue;
      }
    }
    out += c;
    ++i;
  }
  return out;
}

namespace {
Counter* CacheCounter(const char* name) {
  return MetricsRegistry::Global().counter(name);
}

/// Cache key: the statement (or skeleton) text, extended with the mask
/// fingerprint when one is set. Masked tenants get their own slice — a
/// plan pruned against one mask must never serve another — while unmasked
/// sessions keep the plain-text key (zero cost when off) and different
/// tenants coexist instead of evicting each other.
std::string CacheKey(const std::string& text, uint64_t fingerprint) {
  if (fingerprint == 0) return text;
  return text + '\x1f' + std::to_string(fingerprint);
}
}  // namespace

std::shared_ptr<const void> PlanCache::LookupExact(const std::string& text,
                                                   uint64_t epoch,
                                                   uint64_t fingerprint) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = exact_.find(CacheKey(text, fingerprint));
  // The fingerprint is part of the key, so a lookup can only ever see an
  // entry planned under the same visibility mask; the stored fingerprint
  // double-checks that invariant.
  if (it == exact_.end() || it->second.fingerprint != fingerprint) {
    ++stats_.misses;
    CacheCounter("mct.planner.cache_misses")->Inc();
    return nullptr;
  }
  // A hit at any epoch is sound — plans are result-identical by the
  // determinism contract — so no replan stampede after every commit. The
  // stamp advances to the newest epoch that used the entry (Prune's
  // recency horizon).
  if (epoch > it->second.epoch) it->second.epoch = epoch;
  ++stats_.hits;
  CacheCounter("mct.planner.cache_hits")->Inc();
  return it->second.payload;
}

void PlanCache::InsertExact(const std::string& text,
                            std::shared_ptr<const void> payload,
                            uint64_t epoch, uint64_t fingerprint) {
  std::lock_guard<std::mutex> lk(mu_);
  std::string key = CacheKey(text, fingerprint);
  auto it = exact_.find(key);
  // Never clobber a newer session's entry with an older snapshot's plan.
  if (it != exact_.end() && it->second.epoch > epoch) return;
  exact_[key] = ExactEntry{std::move(payload), epoch, fingerprint};
}

bool PlanCache::LookupSkeleton(const std::string& normalized,
                               StatementPlan* out, uint64_t epoch,
                               uint64_t fingerprint) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = skeletons_.find(CacheKey(normalized, fingerprint));
  if (it == skeletons_.end() || it->second.fingerprint != fingerprint) {
    return false;
  }
  if (epoch > it->second.epoch) it->second.epoch = epoch;
  ++stats_.skeleton_hits;
  CacheCounter("mct.planner.skeleton_hits")->Inc();
  if (out != nullptr) *out = it->second.plan;
  return true;
}

void PlanCache::InsertSkeleton(const std::string& normalized,
                               const StatementPlan& plan, uint64_t epoch,
                               uint64_t fingerprint) {
  std::lock_guard<std::mutex> lk(mu_);
  std::string key = CacheKey(normalized, fingerprint);
  auto it = skeletons_.find(key);
  if (it != skeletons_.end() && it->second.epoch > epoch) return;
  skeletons_[key] = SkeletonEntry{plan, epoch, fingerprint};
}

void PlanCache::Invalidate() {
  std::lock_guard<std::mutex> lk(mu_);
  exact_.clear();
  skeletons_.clear();
  ++stats_.invalidations;
  CacheCounter("mct.planner.cache_invalidations")->Inc();
}

void PlanCache::Prune(uint64_t min_epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = exact_.begin(); it != exact_.end();) {
    it = it->second.epoch < min_epoch ? exact_.erase(it) : std::next(it);
  }
  for (auto it = skeletons_.begin(); it != skeletons_.end();) {
    it = it->second.epoch < min_epoch ? skeletons_.erase(it) : std::next(it);
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return exact_.size() + skeletons_.size();
}

}  // namespace mct::query

#include "query/ops.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/governor.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "mct/color.h"
#include "mct/shard.h"
#include "query/trace.h"

namespace mct::query {

namespace {

using Row = std::vector<NodeId>;

Counter* BatchCounter() {
  static Counter* c = MetricsRegistry::Global().counter("mct.exec.batches");
  return c;
}

// Visibility backstop (DESIGN.md §16): a color-parameterized operator
// asked to expand into a read-invisible color emits nothing. The analyzer
// and the evaluator's per-step filtering normally stop such steps far
// earlier; this guard makes the leak-freedom guarantee hold even for a
// code path that bypasses both. One branch per operator call.
bool MaskBlocks(const ExecContext& ctx, ColorId color) {
  return ctx.mask != nullptr && !ctx.mask->CanRead(color);
}

// Selectivity (rows kept, in percent) of the row-dropping operators —
// filters, cross-tree joins, semi-joins, dup-elim. Feeds the planner's
// future calibration and the observability story; one histogram sample per
// operator call, never per row.
void ObserveSelectivity(size_t rows_in, size_t rows_out) {
  static Histogram* h =
      MetricsRegistry::Global().histogram("mct.exec.selectivity");
  if (rows_in == 0) return;
  h->Observe(static_cast<uint64_t>(rows_out * 100 / rows_in));
}

// Records `n` batch kernel invocations (emit-collection chunks + gather
// passes) on the metrics registry and, when tracing, the operator's trace
// node.
void CountBatches(OpScope& tr, size_t n) {
  if (n == 0) return;
  BatchCounter()->Inc(n);
  if (tr.enabled()) tr.AddBatches(n);
}

// Groups logical row indices by the node bound in `col`.
std::unordered_map<NodeId, std::vector<uint32_t>> GroupByNode(const Table& t,
                                                              int col) {
  std::unordered_map<NodeId, std::vector<uint32_t>> groups;
  const size_t n = t.num_rows();
  for (size_t i = 0; i < n; ++i) {
    groups[t.At(i, col)].push_back(static_cast<uint32_t>(i));
  }
  return groups;
}

Table WithExtraColumn(const Table& in, const std::string& out_var) {
  Table out;
  out.vars = in.vars;
  out.vars.push_back(out_var);
  out.cols.resize(out.vars.size());
  return out;
}

// Legacy row-at-a-time emit: materializes the base row (one heap
// allocation plus a cell copy per column — the pre-columnar cost profile)
// and appends the expansion binding.
void EmitRowAt(std::vector<Row>* out, const Table& in, size_t i,
               NodeId extra) {
  Row row = in.RowAt(i);
  row.push_back(extra);
  out->push_back(std::move(row));
}

// Scatters legacy row buffers into the columnar output table.
void AppendRows(Table* out, std::vector<Row>&& rows) {
  out->Reserve(out->num_rows() + rows.size());
  for (const auto& r : rows) out->AppendRow(r);
}

// Resolves a tag to its interned id once per operator call; kInvalidNameId
// with an empty tag means "match any element".
NameId TagFilterId(const MctDatabase& db, const std::string& tag) {
  return tag.empty() ? kInvalidNameId : db.store().names().Lookup(tag);
}

bool TagIdMatches(const MctDatabase& db, NodeId n, const std::string& tag,
                  NameId tag_id) {
  return tag.empty() || db.TagId(n) == tag_id;
}

// Per-morsel emit buffers of the vectorized operators. Each is a pair (or
// single) of parallel index/value columns; morsel workers fill a private
// chunk and the chunks concatenate in morsel index order, which preserves
// the serial emission order exactly.

// (input row index, emitted node) pairs of the expansion operators.
struct EmitChunk {
  std::vector<uint32_t> idx;
  std::vector<NodeId> node;
  size_t size() const { return idx.size(); }
  void Reserve(size_t n) {
    idx.reserve(n);
    node.reserve(n);
  }
  void Append(EmitChunk&& o) {
    idx.insert(idx.end(), o.idx.begin(), o.idx.end());
    node.insert(node.end(), o.node.begin(), o.node.end());
  }
};

// (left row, right row) pairs of the join operators.
struct PairChunk {
  std::vector<uint32_t> li, ri;
  size_t size() const { return li.size(); }
  void Reserve(size_t n) {
    li.reserve(n);
    ri.reserve(n);
  }
  void Append(PairChunk&& o) {
    li.insert(li.end(), o.li.begin(), o.li.end());
    ri.insert(ri.end(), o.ri.begin(), o.ri.end());
  }
};

// Surviving logical row indices of filters and semi-joins.
struct IdxChunk {
  std::vector<uint32_t> idx;
  size_t size() const { return idx.size(); }
  void Reserve(size_t n) { idx.reserve(n); }
  void Append(IdxChunk&& o) {
    idx.insert(idx.end(), o.idx.begin(), o.idx.end());
  }
};

// Legacy mode: fully materialized rows.
struct RowChunk {
  std::vector<Row> rows;
  size_t size() const { return rows.size(); }
  void Reserve(size_t n) { rows.reserve(n); }
  void Append(RowChunk&& o) {
    for (auto& r : o.rows) rows.push_back(std::move(r));
  }
};

// Morsel-driven fan-out for emit-style operators: splits [0, n) into
// ctx.morsel_size chunks, runs `body(begin, end, chunk, stats)` per chunk
// (workers claim chunks off a shared counter), and concatenates the
// per-morsel chunks in morsel index order — so the output order is
// byte-identical to the serial run. Per-morsel ExecStats are merged into
// ctx.stats after the fan-out; the hot path never touches an atomic.
// Bodies may only perform const reads of shared state. Returns the number
// of morsels claimed (1 for a serial run) for the plan trace.
template <typename Chunk, typename Body>
size_t MorselCollect(const ExecContext& ctx, size_t n, Chunk* out,
                     const Body& body) {
  if (ctx.pool == nullptr || ctx.morsel_size == 0 || n <= ctx.morsel_size) {
    if (ctx.governor != nullptr) {
      // Governed serial run: chunk the loop at morsel granularity anyway,
      // so cancellation latency stays bounded by one morsel of work. The
      // ungoverned path below is untouched (single body call, no checks).
      const size_t step = ctx.morsel_size != 0 ? ctx.morsel_size : (n + 1);
      size_t chunks = 0;
      for (size_t b = 0; b < n; b += step) {
        if (ctx.governor->ShouldStop()) break;
        body(b, std::min(n, b + step), out, ctx.stats);
        ++chunks;
      }
      return chunks;
    }
    body(0, n, out, ctx.stats);
    return n > 0 ? 1 : 0;
  }
  const size_t num_morsels = (n + ctx.morsel_size - 1) / ctx.morsel_size;
  std::vector<Chunk> parts(num_morsels);
  std::vector<ExecStats> part_stats(ctx.stats != nullptr ? num_morsels : 0);
  ParallelFor(ctx.pool, num_morsels, [&](size_t m) {
    // Tripped governor: workers drain remaining morsels without running
    // them; the truncated output is discarded by the evaluator.
    if (ctx.governor != nullptr && ctx.governor->ShouldStop()) return;
    const size_t begin = m * ctx.morsel_size;
    const size_t end = std::min(n, begin + ctx.morsel_size);
    body(begin, end, &parts[m],
         ctx.stats != nullptr ? &part_stats[m] : nullptr);
  });
  size_t total = out->size();
  for (const auto& p : parts) total += p.size();
  out->Reserve(total);
  for (auto& p : parts) out->Append(std::move(p));
  if (ctx.stats != nullptr) {
    for (const ExecStats& s : part_stats) ctx.stats->Merge(s);
  }
  return num_morsels;
}

// Morsel fan-out for slot-writing loops (each index writes its own output
// slot, nothing is appended): just splits the range across workers.
// Returns the number of morsels claimed, as MorselCollect does.
template <typename Body>
size_t ForEachMorsel(const ExecContext& ctx, size_t n, const Body& body) {
  if (ctx.pool == nullptr || ctx.morsel_size == 0 || n <= ctx.morsel_size) {
    if (ctx.governor != nullptr) {
      // Governed serial run: morsel-granular chunks for bounded
      // cancellation latency (see MorselCollect).
      const size_t step = ctx.morsel_size != 0 ? ctx.morsel_size : (n + 1);
      size_t chunks = 0;
      for (size_t b = 0; b < n; b += step) {
        if (ctx.governor->ShouldStop()) break;
        body(b, std::min(n, b + step));
        ++chunks;
      }
      return chunks;
    }
    body(0, n);
    return n > 0 ? 1 : 0;
  }
  const size_t num_morsels = (n + ctx.morsel_size - 1) / ctx.morsel_size;
  ParallelFor(ctx.pool, num_morsels, [&](size_t m) {
    if (ctx.governor != nullptr && ctx.governor->ShouldStop()) return;
    const size_t begin = m * ctx.morsel_size;
    body(begin, std::min(n, begin + ctx.morsel_size));
  });
  return num_morsels;
}

// Batch gather: materializes src's logical rows `idx` (in order) into
// dst's columns [dst_col0, dst_col0 + src.num_cols()), which must be
// empty. Column-at-a-time, morsel-parallel over the row range, so the
// inner loop is a tight index copy per column. Returns the number of batch
// kernel invocations (row chunks x columns) for the batch accounting.
size_t GatherColumns(const ExecContext& ctx, const Table& src,
                     std::span<const uint32_t> idx, Table* dst,
                     size_t dst_col0) {
  assert(dst->dense());
  const size_t n = idx.size();
  const size_t ncols = src.num_cols();
  // Columnar emit buffers are the dominant materialization: charge them to
  // the memory budget before they grow. A refusal trips the governor; the
  // destination columns stay empty (schema intact, zero rows) and the
  // evaluator surfaces the sticky status before the output can escape.
  if (ctx.governor != nullptr &&
      ctx.governor->ChargeOrStop(n * ncols * sizeof(NodeId))) {
    return 0;
  }
  for (size_t j = 0; j < ncols; ++j) {
    assert(dst->cols[dst_col0 + j].empty());
    dst->cols[dst_col0 + j].resize(n);
  }
  if (n == 0 || ncols == 0) return 0;
  size_t chunks = ForEachMorsel(ctx, n, [&](size_t begin, size_t end) {
    for (size_t j = 0; j < ncols; ++j) {
      const NodeId* in = src.cols[j].data();
      NodeId* out = dst->cols[dst_col0 + j].data();
      if (src.use_sel) {
        const uint32_t* sel = src.sel.data();
        for (size_t r = begin; r < end; ++r) out[r] = in[sel[idx[r]]];
      } else {
        for (size_t r = begin; r < end; ++r) out[r] = in[idx[r]];
      }
    }
  });
  return chunks * ncols;
}

// Materializes an expansion's output: batch-gathers the base columns for
// the emitted row indices and installs the emitted bindings as the final
// column (a move, not a copy). Returns the batch count.
size_t GatherExpand(const ExecContext& ctx, const Table& in, EmitChunk&& hits,
                    Table* out) {
  const size_t gathers = GatherColumns(ctx, in, hits.idx, out, 0);
  if (ctx.governor != nullptr && ctx.governor->tripped()) {
    // The gather was refused (or cancelled mid-way): emit a consistent
    // zero-row table rather than columns of unequal length.
    for (auto& c : out->cols) c.clear();
    hits.node.clear();
  }
  const bool any = !hits.node.empty();
  out->cols.back() = std::move(hits.node);
  return any ? gathers + 1 : 0;
}

}  // namespace

std::optional<std::string> ExtractKey(const MctDatabase& db, NodeId node,
                                      const KeySpec& spec) {
  switch (spec.kind) {
    case KeySpec::Kind::kOwnContent:
      if (!db.store().HasContent(node)) return std::nullopt;
      return db.Content(node);
    case KeySpec::Kind::kChildContent: {
      if (!db.Colors(node).Has(spec.color)) return std::nullopt;
      std::optional<std::string> out;
      db.tree(spec.color)->ForEachChild(node, [&](NodeId c) {
        if (!out.has_value() && db.Tag(c) == spec.name) out = db.Content(c);
      });
      return out;
    }
    case KeySpec::Kind::kAttr: {
      const std::string* v = db.FindAttr(node, spec.name);
      if (v == nullptr) return std::nullopt;
      return *v;
    }
    case KeySpec::Kind::kStringValue:
      return db.StringValue(node, spec.color);
  }
  return std::nullopt;
}

bool KeySpecViewable(const KeySpec& spec) {
  return spec.kind != KeySpec::Kind::kStringValue;
}

std::optional<std::string_view> ExtractKeyView(const MctDatabase& db,
                                               NodeId node,
                                               const KeySpec& spec) {
  switch (spec.kind) {
    case KeySpec::Kind::kOwnContent:
      if (!db.store().HasContent(node)) return std::nullopt;
      return std::string_view(db.Content(node));
    case KeySpec::Kind::kChildContent: {
      if (!db.Colors(node).Has(spec.color)) return std::nullopt;
      std::optional<std::string_view> out;
      db.tree(spec.color)->ForEachChild(node, [&](NodeId c) {
        if (!out.has_value() && db.Tag(c) == spec.name) {
          out = std::string_view(db.Content(c));
        }
      });
      return out;
    }
    case KeySpec::Kind::kAttr: {
      const std::string* v = db.FindAttr(node, spec.name);
      if (v == nullptr) return std::nullopt;
      return std::string_view(*v);
    }
    case KeySpec::Kind::kStringValue:
      break;  // concatenates: no stable storage to view (precondition)
  }
  return std::nullopt;
}

Table TagScanTable(MctDatabase* db, ColorId color, const std::string& var,
                   const std::string& tag, const ExecContext& ctx) {
  OpScope tr(ctx, "TAG SCAN", 0);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return Table::FromNodes(var, {});
  }
  std::vector<NodeId> nodes = db->TagScan(color, tag, ctx.pool);
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += nodes.size();
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}%s -> %s", db->ColorName(color).c_str(),
                            tag.c_str(), var.c_str()));
    tr.Finish(nodes.size(), nodes.empty() ? 0 : 1, nodes.size());
  }
  // The scan vector becomes the column directly — no per-row work.
  return Table::FromNodes(var, std::move(nodes));
}

Table ExpandChildren(MctDatabase* db, const Table& in, int col, ColorId color,
                     const std::string& tag, const std::string& out_var,
                     const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "CHILD STEP", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}child::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  const ColoredTree* t = db->tree(color);
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;  // unknown tag
  }
  const MctDatabase& cdb = *db;
  size_t morsels;
  if (ctx.batch) {
    EmitChunk hits;
    morsels = MorselCollect(
        ctx, in.num_rows(), &hits,
        [&](size_t begin, size_t end, EmitChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            NodeId n = in.At(i, col);
            if (!cdb.Colors(n).Has(color)) continue;
            t->ForEachChild(n, [&](NodeId c) {
              if (cdb.Kind(c) == xml::NodeKind::kElement &&
                  TagIdMatches(cdb, c, tag, tag_id)) {
                chunk->idx.push_back(static_cast<uint32_t>(i));
                chunk->node.push_back(c);
              }
            });
          }
        });
    CountBatches(tr, morsels + GatherExpand(ctx, in, std::move(hits), &out));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, in.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            NodeId n = in.At(i, col);
            if (!cdb.Colors(n).Has(color)) continue;
            t->ForEachChild(n, [&](NodeId c) {
              if (cdb.Kind(c) == xml::NodeKind::kElement &&
                  TagIdMatches(cdb, c, tag, tag_id)) {
                EmitRowAt(&chunk->rows, in, i, c);
              }
            });
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

namespace {

// A distinct ancestor candidate of the interval merge: the context node's
// labels in the color, sorted by start.
struct Anc {
  uint64_t start, end;
  NodeId node;
};

std::vector<Anc> AncCandidates(
    const std::unordered_map<NodeId, std::vector<uint32_t>>& groups,
    const ColoredTree& ct) {
  std::vector<Anc> ancs;
  ancs.reserve(groups.size());
  for (const auto& [n, _] : groups) {
    if (!ct.Contains(n)) continue;
    ancs.push_back(Anc{ct.Start(n), ct.End(n), n});
  }
  std::sort(ancs.begin(), ancs.end(),
            [](const Anc& a, const Anc& b) { return a.start < b.start; });
  return ancs;
}

// Interval-range shard pruning (DESIGN.md §17): cuts the start-sorted
// descendant stream into per-shard runs and drops the runs of shards whose
// label range is disjoint from every context interval — those descendants
// can have no open ancestor in the merge, so they emit nothing, and
// removing them up front preserves the exact output sequence while the
// stack replay (and its fan-out) skips the dead ranges entirely. The
// surviving runs, concatenated in shard order, stay in ascending start
// order. Runs only after mask filtering (the caller returns before the
// scan on a masked color), so pruning never observes masked data.
std::vector<NodeId> ShardPrune(const ShardMap& sm, ColorId color,
                               const std::vector<NodeId>& descs,
                               const std::vector<Anc>& ancs,
                               const ColoredTree& ct) {
  const size_t ns = static_cast<size_t>(sm.shard_count());
  const std::vector<size_t> cuts = sm.CutRuns(
      color, descs.size(), [&](size_t i) { return ct.Start(descs[i]); });
  // Context intervals, sorted by start (AncCandidates' order) with a
  // running max end — the O(log) disjointness probe per shard.
  std::vector<uint64_t> astarts;
  std::vector<uint64_t> amax;
  astarts.reserve(ancs.size());
  amax.reserve(ancs.size());
  uint64_t m = 0;
  for (const Anc& a : ancs) {
    astarts.push_back(a.start);
    m = std::max(m, a.end);
    amax.push_back(m);
  }
  std::vector<NodeId> kept;
  kept.reserve(descs.size());
  uint64_t kept_shards = 0;
  uint64_t pruned_shards = 0;
  for (size_t s = 0; s < ns; ++s) {
    if (cuts[s] == cuts[s + 1]) continue;  // no members here anyway
    auto [lo, hi] = sm.Range(color, static_cast<int>(s));
    if (ShardMap::RangeDisjoint(astarts, amax, lo, hi)) {
      ++pruned_shards;
      continue;
    }
    ++kept_shards;
    kept.insert(kept.end(),
                descs.begin() + static_cast<ptrdiff_t>(cuts[s]),
                descs.begin() + static_cast<ptrdiff_t>(cuts[s + 1]));
  }
  ShardTasksCounter()->Inc(kept_shards);
  ShardPrunedCounter()->Inc(pruned_shards);
  return kept;
}

// Stack-based interval merge (stack-tree join, Al-Khalifa et al.): both
// inputs in ascending start order; the stack holds the chain of ancestor
// candidates currently open around the scan point. The stack state at a
// given descendant depends only on its start label, so each morsel of the
// descendant stream can rebuild it independently (one O(|ancs|) replay
// per morsel) and emit exactly the serial subsequence. `emit(chunk, ri,
// d)` fires once per (input row, matched descendant) — into an EmitChunk
// under batch execution, a materialized RowChunk in legacy mode.
template <typename Chunk, typename EmitFn>
size_t IntervalMerge(
    const ExecContext& ctx, const std::vector<NodeId>& descs,
    const std::vector<Anc>& ancs,
    const std::unordered_map<NodeId, std::vector<uint32_t>>& groups,
    const ColoredTree& ct, Chunk* out, const EmitFn& emit) {
  return MorselCollect(
      ctx, descs.size(), out,
      [&](size_t begin, size_t end, Chunk* chunk, ExecStats*) {
        std::vector<const Anc*> stack;
        size_t ai = 0;
        for (size_t di = begin; di < end; ++di) {
          NodeId d = descs[di];
          uint64_t ds = ct.Start(d);
          uint64_t de = ct.End(d);
          while (ai < ancs.size() && ancs[ai].start < ds) {
            while (!stack.empty() && stack.back()->end < ancs[ai].start) {
              stack.pop_back();
            }
            stack.push_back(&ancs[ai]);
            ++ai;
          }
          while (!stack.empty() && stack.back()->end < ds) stack.pop_back();
          // Every remaining stack entry contains d (intervals are properly
          // nested). Guard de anyway for robustness against equal labels.
          for (const Anc* a : stack) {
            if (a->end > de) {
              for (uint32_t ri : groups.at(a->node)) emit(chunk, ri, d);
            }
          }
        }
      });
}

// Shared emission tail of the descendant-merge operators: batch collects
// (row, descendant) pairs then gathers; legacy materializes rows.
size_t MergeEmit(const ExecContext& ctx, const Table& in,
                 const std::vector<NodeId>& descs,
                 const std::vector<Anc>& ancs,
                 const std::unordered_map<NodeId, std::vector<uint32_t>>& groups,
                 const ColoredTree& ct, Table* out, OpScope& tr) {
  size_t morsels;
  if (ctx.batch) {
    EmitChunk hits;
    morsels = IntervalMerge(ctx, descs, ancs, groups, ct, &hits,
                            [](EmitChunk* chunk, uint32_t ri, NodeId d) {
                              chunk->idx.push_back(ri);
                              chunk->node.push_back(d);
                            });
    CountBatches(tr, morsels + GatherExpand(ctx, in, std::move(hits), out));
  } else {
    RowChunk rows;
    morsels = IntervalMerge(ctx, descs, ancs, groups, ct, &rows,
                            [&in](RowChunk* chunk, uint32_t ri, NodeId d) {
                              EmitRowAt(&chunk->rows, in, ri, d);
                            });
    AppendRows(out, std::move(rows.rows));
  }
  return morsels;
}

}  // namespace

Table ExpandDescendants(MctDatabase* db, const Table& in, int col,
                        ColorId color, const std::string& tag,
                        const std::string& out_var, const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT STEP", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  std::vector<NodeId> descs = db->TagScan(color, tag, ctx.pool);
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += descs.size();
  if (descs.empty() || in.num_rows() == 0) {
    if (tr.enabled()) tr.Finish(0, 0, descs.size());
    return out;
  }

  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;  // clean labels: const reads from here on

  // Distinct ancestor candidates (rows grouped per node), sorted by start.
  const auto groups = GroupByNode(in, col);
  const std::vector<Anc> ancs = AncCandidates(groups, ct);

  const size_t scanned = descs.size();
  const ShardMap* sm = db->EnsureShardMap();
  if (sm != nullptr) descs = ShardPrune(*sm, color, descs, ancs, ct);

  size_t morsels = MergeEmit(ctx, in, descs, ancs, groups, ct, &out, tr);
  if (sm != nullptr) ShardMergeRowsCounter()->Inc(out.num_rows());
  // Re-establish row order of the left input (group expansion visits in
  // descendant order): callers that need input order should sort; FLWOR
  // semantics here only require the binding set, so we keep merge order.
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, scanned);
  return out;
}

Table ExpandDescendantsAmong(MctDatabase* db, const Table& in, int col,
                             ColorId color, const std::string& tag,
                             const std::vector<NodeId>& cands,
                             const std::string& out_var,
                             const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT SEEK", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s (%zu candidates)",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str(), cands.size()));
  }
  Table out = WithExtraColumn(in, out_var);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }

  // Normalize the candidate set to the exact subsequence of the tag scan it
  // represents: color members of the right kind and tag, deduped, ascending
  // start order (= local document order, the tag index's order). After
  // this, the interval merge below sees precisely the baseline's descendant
  // stream restricted to the candidates, so it emits the identical
  // subsequence of the baseline's output rows.
  std::vector<NodeId> descs;
  descs.reserve(cands.size());
  {
    std::unordered_set<NodeId> seen;
    seen.reserve(cands.size() * 2);
    for (NodeId d : cands) {
      if (!ct.Contains(d)) continue;
      if (db->Kind(d) != xml::NodeKind::kElement) continue;
      if (!TagIdMatches(*db, d, tag, tag_id)) continue;
      if (seen.insert(d).second) descs.push_back(d);
    }
  }
  std::sort(descs.begin(), descs.end(),
            [&](NodeId a, NodeId b) { return ct.Start(a) < ct.Start(b); });
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += descs.size();
  if (descs.empty() || in.num_rows() == 0) {
    if (tr.enabled()) tr.Finish(0, 0, descs.size());
    return out;
  }

  const auto groups = GroupByNode(in, col);
  const std::vector<Anc> ancs = AncCandidates(groups, ct);

  // Seek pushdown composes with sharding for free: the normalized
  // candidate stream is start-sorted, so pruning routes the merge to only
  // the shards owning candidates under a live context interval.
  const size_t scanned = descs.size();
  const ShardMap* sm = db->EnsureShardMap();
  if (sm != nullptr) descs = ShardPrune(*sm, color, descs, ancs, ct);

  size_t morsels = MergeEmit(ctx, in, descs, ancs, groups, ct, &out, tr);
  if (sm != nullptr) ShardMergeRowsCounter()->Inc(out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, scanned);
  return out;
}

Table ExpandDescendantsNav(MctDatabase* db, const Table& in, int col,
                           ColorId color, const std::string& tag,
                           const std::string& out_var,
                           const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT NAV", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  if (in.num_rows() == 0) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }

  const auto groups = GroupByNode(in, col);
  struct Ctx {
    uint64_t start;
    NodeId node;
  };
  std::vector<Ctx> ancs;
  ancs.reserve(groups.size());
  for (const auto& [n, _] : groups) {
    if (!ct.Contains(n)) continue;
    ancs.push_back(Ctx{ct.Start(n), n});
  }
  std::sort(ancs.begin(), ancs.end(),
            [](const Ctx& a, const Ctx& b) { return a.start < b.start; });

  // Walk each context subtree; order hits globally like the interval merge
  // does: by (descendant start, ancestor start). With nested contexts a
  // descendant is found once per containing context, exactly as the merge
  // emits it once per open stack entry, bottom (outermost) first.
  struct Hit {
    uint64_t ds;
    size_t anc_idx;
    NodeId d;
  };
  std::vector<Hit> hits;
  size_t visited = 0;
  for (size_t a = 0; a < ancs.size(); ++a) {
    for (NodeId d : ct.PreOrder(ancs[a].node)) {
      ++visited;
      if (d == ancs[a].node) continue;  // proper descendants only
      if (db->Kind(d) != xml::NodeKind::kElement) continue;
      if (!TagIdMatches(*db, d, tag, tag_id)) continue;
      hits.push_back(Hit{ct.Start(d), a, d});
    }
  }
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += visited;
  std::sort(hits.begin(), hits.end(), [](const Hit& x, const Hit& y) {
    return x.ds != y.ds ? x.ds < y.ds : x.anc_idx < y.anc_idx;
  });
  if (ctx.batch) {
    EmitChunk emits;
    emits.Reserve(hits.size());
    for (const Hit& h : hits) {
      for (uint32_t ri : groups.at(ancs[h.anc_idx].node)) {
        emits.idx.push_back(ri);
        emits.node.push_back(h.d);
      }
    }
    CountBatches(tr, 1 + GatherExpand(ctx, in, std::move(emits), &out));
  } else {
    std::vector<Row> rows;
    rows.reserve(hits.size());
    for (const Hit& h : hits) {
      for (uint32_t ri : groups.at(ancs[h.anc_idx].node)) {
        EmitRowAt(&rows, in, ri, h.d);
      }
    }
    AppendRows(&out, std::move(rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), 1, hits.size());
  return out;
}

Table ExpandDescendantsRoot(MctDatabase* db, const Table& in, int col,
                            ColorId color, const std::string& tag,
                            const std::string& out_var,
                            const ExecContext& ctx) {
  // Precondition fallback: only the lone document row qualifies.
  if (in.num_rows() != 1 || in.At(0, col) != db->document()) {
    return ExpandDescendants(db, in, col, color, tag, out_var, ctx);
  }
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT SCAN", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  // Every tag-index entry of the color is a proper descendant of the
  // document root, and the index is in local document order — exactly the
  // (start(d), start(doc), row 0) order the interval merge would emit.
  // With shards active the order-restoring sort inside the scan fans out
  // one task per shard (the whole-document context prunes nothing).
  std::vector<NodeId> descs = db->TagScan(color, tag, ctx.pool);
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += descs.size();
  const ColoredTree* t = db->tree(color);
  std::vector<NodeId> kept;
  kept.reserve(descs.size());
  for (NodeId d : descs) {
    if (t->Contains(d)) kept.push_back(d);
  }
  if (ctx.batch) {
    // The base columns are n copies of the single input row; the emit
    // column is the filtered scan itself (moved in).
    const size_t ncols = in.num_cols();
    for (size_t j = 0; j < ncols; ++j) {
      out.cols[j].assign(kept.size(), in.At(0, static_cast<int>(j)));
    }
    if (!kept.empty()) CountBatches(tr, ncols + 1);
    out.cols.back() = std::move(kept);
  } else {
    std::vector<Row> rows;
    rows.reserve(kept.size());
    for (NodeId d : kept) EmitRowAt(&rows, in, 0, d);
    AppendRows(&out, std::move(rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), descs.empty() ? 0 : 1,
                              descs.size());
  return out;
}

Table ExpandParent(MctDatabase* db, const Table& in, int col, ColorId color,
                   const std::string& tag, const std::string& out_var,
                   const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "PARENT STEP", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}parent::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  const MctDatabase& cdb = *db;
  size_t morsels;
  if (ctx.batch) {
    EmitChunk hits;
    morsels = MorselCollect(
        ctx, in.num_rows(), &hits,
        [&](size_t begin, size_t end, EmitChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            auto p = cdb.Parent(in.At(i, col), color);
            if (p.has_value() && cdb.Kind(*p) == xml::NodeKind::kElement &&
                TagIdMatches(cdb, *p, tag, tag_id)) {
              chunk->idx.push_back(static_cast<uint32_t>(i));
              chunk->node.push_back(*p);
            }
          }
        });
    CountBatches(tr, morsels + GatherExpand(ctx, in, std::move(hits), &out));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, in.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            auto p = cdb.Parent(in.At(i, col), color);
            if (p.has_value() && cdb.Kind(*p) == xml::NodeKind::kElement &&
                TagIdMatches(cdb, *p, tag, tag_id)) {
              EmitRowAt(&chunk->rows, in, i, *p);
            }
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table ExpandAncestors(MctDatabase* db, const Table& in, int col, ColorId color,
                      const std::string& tag, const std::string& out_var,
                      const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "ANCESTOR STEP", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}ancestor::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  const ColoredTree* t = db->tree(color);
  const MctDatabase& cdb = *db;
  size_t morsels;
  if (ctx.batch) {
    EmitChunk hits;
    morsels = MorselCollect(
        ctx, in.num_rows(), &hits,
        [&](size_t begin, size_t end, EmitChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            NodeId n = in.At(i, col);
            if (!t->Contains(n)) continue;
            for (NodeId p = t->Parent(n); p != kInvalidNodeId;
                 p = t->Parent(p)) {
              if (cdb.Kind(p) == xml::NodeKind::kElement &&
                  TagIdMatches(cdb, p, tag, tag_id)) {
                chunk->idx.push_back(static_cast<uint32_t>(i));
                chunk->node.push_back(p);
              }
            }
          }
        });
    CountBatches(tr, morsels + GatherExpand(ctx, in, std::move(hits), &out));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, in.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            NodeId n = in.At(i, col);
            if (!t->Contains(n)) continue;
            for (NodeId p = t->Parent(n); p != kInvalidNodeId;
                 p = t->Parent(p)) {
              if (cdb.Kind(p) == xml::NodeKind::kElement &&
                  TagIdMatches(cdb, p, tag, tag_id)) {
                EmitRowAt(&chunk->rows, in, i, p);
              }
            }
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

namespace {

// Shared survivor collection of CrossTreeJoin: logical row indices whose
// `col` node carries the target color.
size_t CollectColorSurvivors(const ExecContext& ctx, const Table& in, int col,
                             const ColoredTree& t, IdxChunk* keep) {
  return MorselCollect(
      ctx, in.num_rows(), keep,
      [&](size_t begin, size_t end, IdxChunk* chunk, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          if (t.Contains(in.At(i, col))) {
            chunk->idx.push_back(static_cast<uint32_t>(i));
          }
        }
      });
}

}  // namespace

Table CrossTreeJoin(MctDatabase* db, const Table& in, int col, ColorId to_color,
                    const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->cross_tree_joins;
  OpScope tr(ctx, "CROSS-TREE JOIN", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s -> {%s}",
                            in.vars[static_cast<size_t>(col)].c_str(),
                            db->ColorName(to_color).c_str()));
    tr.AddColorTransition();
  }
  // Bulk identity join: follow the back-links from the shared node record
  // to the structural node of the target color (Section 6.2); rows whose
  // node lacks the color are dropped.
  Table out = Table::WithVars(in.vars);
  if (MaskBlocks(ctx, to_color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  const ColoredTree* t = db->tree(to_color);
  size_t morsels;
  if (ctx.batch) {
    IdxChunk keep;
    morsels = CollectColorSurvivors(ctx, in, col, *t, &keep);
    CountBatches(tr, morsels + GatherColumns(ctx, in, keep.idx, &out, 0));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, in.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            if (t->Contains(in.At(i, col))) {
              chunk->rows.push_back(in.RowAt(i));
            }
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  ObserveSelectivity(in.num_rows(), out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table CrossTreeJoin(MctDatabase* db, Table&& in, int col, ColorId to_color,
                    const ExecContext& ctx) {
  if (!ctx.batch) {
    return CrossTreeJoin(db, static_cast<const Table&>(in), col, to_color,
                         ctx);
  }
  if (ctx.stats != nullptr) ++ctx.stats->cross_tree_joins;
  OpScope tr(ctx, "CROSS-TREE JOIN", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s -> {%s}",
                            in.vars[static_cast<size_t>(col)].c_str(),
                            db->ColorName(to_color).c_str()));
    tr.AddColorTransition();
  }
  if (MaskBlocks(ctx, to_color)) {
    Table out = std::move(in);
    out.KeepRows({});
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  const ColoredTree* t = db->tree(to_color);
  IdxChunk keep;
  size_t morsels = CollectColorSurvivors(ctx, in, col, *t, &keep);
  const size_t rows_in = in.num_rows();
  // Survivors become the selection vector of the moved table: no cell
  // copies at all.
  Table out = std::move(in);
  out.KeepRows(std::move(keep.idx));
  CountBatches(tr, morsels);
  ObserveSelectivity(rows_in, out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table StructuralSemiJoin(MctDatabase* db, const Table& in, int col,
                         ColorId color, const std::vector<NodeId>& anc_set,
                         const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "STRUCTURAL SEMI-JOIN", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s} %llu ancestors",
                            db->ColorName(color).c_str(),
                            static_cast<unsigned long long>(anc_set.size())));
  }
  Table out = Table::WithVars(in.vars);
  if (MaskBlocks(ctx, color)) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;
  struct Iv {
    uint64_t start, end;
  };
  std::vector<Iv> ivs;
  ivs.reserve(anc_set.size());
  for (NodeId a : anc_set) {
    if (ct.Contains(a)) ivs.push_back(Iv{ct.Start(a), ct.End(a)});
  }
  std::sort(ivs.begin(), ivs.end(),
            [](const Iv& a, const Iv& b) { return a.start < b.start; });
  // Tree intervals are nested or disjoint, so node n (start s) lies under
  // some interval iff an interval with start < s has end > s. Precompute the
  // running max end so each probe is one binary search.
  std::vector<uint64_t> prefix_max_end(ivs.size());
  uint64_t running = 0;
  for (size_t i = 0; i < ivs.size(); ++i) {
    running = std::max(running, ivs[i].end);
    prefix_max_end[i] = running;
  }
  auto contained = [&](NodeId n) {
    if (!ct.Contains(n)) return false;
    uint64_t s = ct.Start(n);
    // Last interval with start < s.
    size_t lo = 0, hi = ivs.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ivs[mid].start < s) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo > 0 && prefix_max_end[lo - 1] > s;
  };
  size_t morsels;
  if (ctx.batch) {
    IdxChunk keep;
    morsels = MorselCollect(
        ctx, in.num_rows(), &keep,
        [&](size_t begin, size_t end, IdxChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            if (contained(in.At(i, col))) {
              chunk->idx.push_back(static_cast<uint32_t>(i));
            }
          }
        });
    CountBatches(tr, morsels + GatherColumns(ctx, in, keep.idx, &out, 0));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, in.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            if (contained(in.At(i, col))) chunk->rows.push_back(in.RowAt(i));
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  ObserveSelectivity(in.num_rows(), out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

namespace {

// Batch key extraction: fills one key slot per logical row (morsel-
// parallel slot writes — extraction is the expensive part of a value
// join). Returns the chunk count for the batch accounting.
template <typename Key, typename Fn>
size_t ExtractKeyColumn(const ExecContext& ctx, size_t n,
                        std::vector<std::optional<Key>>* keys, const Fn& fn) {
  keys->resize(n);
  return ForEachMorsel(ctx, n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) (*keys)[i] = fn(i);
  });
}

// Vectorized hash-join core: build a key -> build-row-index table
// (serial), then probe morsel-parallel over the probe key column emitting
// (left row, right row) pairs. Probe-major, bucket insertion order —
// identical emission order to the legacy row-at-a-time join.
template <typename Key>
size_t HashJoinProbe(const ExecContext& ctx, bool build_left,
                     const std::vector<std::optional<Key>>& bkeys,
                     const std::vector<std::optional<Key>>& pkeys,
                     PairChunk* pairs) {
  // Join scratch: charge the hash table (bucket array + per-entry node and
  // row-index vector, ~48 bytes each) before building it.
  if (ctx.governor != nullptr && ctx.governor->ChargeOrStop(bkeys.size() * 48)) {
    return 0;
  }
  std::unordered_map<Key, std::vector<uint32_t>> ht;
  ht.reserve(bkeys.size() * 2);
  for (size_t i = 0; i < bkeys.size(); ++i) {
    if (bkeys[i].has_value()) {
      ht[*bkeys[i]].push_back(static_cast<uint32_t>(i));
    }
  }
  return MorselCollect(
      ctx, pkeys.size(), pairs,
      [&](size_t begin, size_t end, PairChunk* chunk, ExecStats*) {
        for (size_t pi = begin; pi < end; ++pi) {
          if (!pkeys[pi].has_value()) continue;
          auto it = ht.find(*pkeys[pi]);
          if (it == ht.end()) continue;
          for (uint32_t bi : it->second) {
            chunk->li.push_back(build_left ? bi : static_cast<uint32_t>(pi));
            chunk->ri.push_back(build_left ? static_cast<uint32_t>(pi) : bi);
          }
        }
      });
}

// Legacy build+probe of HashValueJoin, generic over the key type so the
// viewable specs can use std::string_view keys aliasing the node store.
// Per-row key extraction and per-tuple row materialization — the
// pre-columnar cost profile.
template <typename BuildKeyFn, typename ProbeKeyFn>
size_t HashJoinLegacy(const ExecContext& ctx, const Table& build,
                      const Table& probe, bool build_left, Table* out,
                      const BuildKeyFn& build_key,
                      const ProbeKeyFn& probe_key) {
  using Key = std::decay_t<decltype(*build_key(size_t{0}))>;
  std::unordered_map<Key, std::vector<uint32_t>> ht;
  for (size_t i = 0; i < build.num_rows(); ++i) {
    auto k = build_key(i);
    if (k.has_value()) ht[*k].push_back(static_cast<uint32_t>(i));
  }
  RowChunk rows;
  size_t morsels = MorselCollect(
      ctx, probe.num_rows(), &rows,
      [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
        for (size_t pi = begin; pi < end; ++pi) {
          auto k = probe_key(pi);
          if (!k.has_value()) continue;
          auto it = ht.find(*k);
          if (it == ht.end()) continue;
          const Row prow = probe.RowAt(pi);
          for (uint32_t bi : it->second) {
            const Row brow = build.RowAt(bi);
            Row row;
            row.reserve(out->num_cols());
            const Row& l = build_left ? brow : prow;
            const Row& r = build_left ? prow : brow;
            row.insert(row.end(), l.begin(), l.end());
            row.insert(row.end(), r.begin(), r.end());
            chunk->rows.push_back(std::move(row));
          }
        }
      });
  AppendRows(out, std::move(rows.rows));
  return morsels;
}

Table JoinOutput(const Table& left, const Table& right) {
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  out.cols.resize(out.vars.size());
  return out;
}

// Materializes a join's output from collected row pairs: one batch gather
// per side. Returns the batch count.
size_t GatherJoin(const ExecContext& ctx, const Table& left,
                  const Table& right, const PairChunk& pairs, Table* out) {
  size_t batches = GatherColumns(ctx, left, pairs.li, out, 0);
  batches += GatherColumns(ctx, right, pairs.ri, out, left.num_cols());
  return batches;
}

}  // namespace

Table HashValueJoin(MctDatabase* db, const Table& left, int lcol,
                    const KeySpec& lkey, const Table& right, int rcol,
                    const KeySpec& rkey, const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->value_joins;
  OpScope tr(ctx, "HASH VALUE JOIN", left.num_rows() + right.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s = %s",
                            left.vars[static_cast<size_t>(lcol)].c_str(),
                            right.vars[static_cast<size_t>(rcol)].c_str()));
  }
  Table out = JoinOutput(left, right);
  // Build on the smaller input (serial); probe in parallel morsels.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const int bcol = build_left ? lcol : rcol;
  const int pcol = build_left ? rcol : lcol;
  const KeySpec& bkey = build_left ? lkey : rkey;
  const KeySpec& pkey = build_left ? rkey : lkey;
  const MctDatabase& cdb = *db;

  // Viewable keys (content / attribute images) hash as string_views into
  // the node store — no per-row key copies on either side.
  size_t morsels;
  if (ctx.batch) {
    PairChunk pairs;
    size_t batches = 0;
    if (KeySpecViewable(bkey) && KeySpecViewable(pkey)) {
      std::vector<std::optional<std::string_view>> bk, pk;
      batches += ExtractKeyColumn(ctx, build.num_rows(), &bk, [&](size_t i) {
        return ExtractKeyView(cdb, build.At(i, bcol), bkey);
      });
      batches += ExtractKeyColumn(ctx, probe.num_rows(), &pk, [&](size_t i) {
        return ExtractKeyView(cdb, probe.At(i, pcol), pkey);
      });
      morsels = HashJoinProbe(ctx, build_left, bk, pk, &pairs);
    } else {
      std::vector<std::optional<std::string>> bk, pk;
      batches += ExtractKeyColumn(ctx, build.num_rows(), &bk, [&](size_t i) {
        return ExtractKey(cdb, build.At(i, bcol), bkey);
      });
      batches += ExtractKeyColumn(ctx, probe.num_rows(), &pk, [&](size_t i) {
        return ExtractKey(cdb, probe.At(i, pcol), pkey);
      });
      morsels = HashJoinProbe(ctx, build_left, bk, pk, &pairs);
    }
    CountBatches(tr, batches + morsels + GatherJoin(ctx, left, right, pairs,
                                                    &out));
  } else if (KeySpecViewable(bkey) && KeySpecViewable(pkey)) {
    morsels = HashJoinLegacy(
        ctx, build, probe, build_left, &out,
        [&](size_t i) { return ExtractKeyView(cdb, build.At(i, bcol), bkey); },
        [&](size_t i) { return ExtractKeyView(cdb, probe.At(i, pcol), pkey); });
  } else {
    morsels = HashJoinLegacy(
        ctx, build, probe, build_left, &out,
        [&](size_t i) { return ExtractKey(cdb, build.At(i, bcol), bkey); },
        [&](size_t i) { return ExtractKey(cdb, probe.At(i, pcol), pkey); });
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, probe.num_rows());
  return out;
}

Table IdrefsJoin(MctDatabase* db, const Table& left, int lcol,
                 const KeySpec& lkey, const Table& right, int rcol,
                 const KeySpec& rkey, const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->value_joins;
  OpScope tr(ctx, "IDREFS VALUE JOIN", left.num_rows() + right.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s ~ %s",
                            left.vars[static_cast<size_t>(lcol)].c_str(),
                            right.vars[static_cast<size_t>(rcol)].c_str()));
  }
  Table out = JoinOutput(left, right);
  const MctDatabase& cdb = *db;
  // Hash the single-id side (serial), then probe once per token of each
  // list, morsel-parallel over the list side. The table (string keys +
  // row-index vectors, ~64 bytes each) is join scratch: budget it first.
  if (ctx.governor != nullptr &&
      ctx.governor->ChargeOrStop(right.num_rows() * 64)) {
    return out;
  }
  std::unordered_map<std::string, std::vector<uint32_t>> ht;
  for (size_t i = 0; i < right.num_rows(); ++i) {
    auto k = ExtractKey(cdb, right.At(i, rcol), rkey);
    if (k.has_value()) ht[*k].push_back(static_cast<uint32_t>(i));
  }
  size_t morsels;
  if (ctx.batch) {
    PairChunk pairs;
    morsels = MorselCollect(
        ctx, left.num_rows(), &pairs,
        [&](size_t begin, size_t end, PairChunk* chunk, ExecStats*) {
          for (size_t li = begin; li < end; ++li) {
            auto list = ExtractKey(cdb, left.At(li, lcol), lkey);
            if (!list.has_value()) continue;
            for (const std::string& token : SplitWhitespace(*list)) {
              auto it = ht.find(token);
              if (it == ht.end()) continue;
              for (uint32_t ri : it->second) {
                chunk->li.push_back(static_cast<uint32_t>(li));
                chunk->ri.push_back(ri);
              }
            }
          }
        });
    CountBatches(tr, morsels + GatherJoin(ctx, left, right, pairs, &out));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, left.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t li = begin; li < end; ++li) {
            auto list = ExtractKey(cdb, left.At(li, lcol), lkey);
            if (!list.has_value()) continue;
            const Row lrow = left.RowAt(li);
            for (const std::string& token : SplitWhitespace(*list)) {
              auto it = ht.find(token);
              if (it == ht.end()) continue;
              for (uint32_t ri : it->second) {
                Row row = lrow;
                const Row rrow = right.RowAt(ri);
                row.insert(row.end(), rrow.begin(), rrow.end());
                chunk->rows.push_back(std::move(row));
              }
            }
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, left.num_rows());
  return out;
}

Table NestedLoopJoin(MctDatabase* db, const Table& left, const Table& right,
                     const std::function<bool(size_t, size_t)>& pred,
                     const ExecContext& ctx) {
  (void)db;
  if (ctx.stats != nullptr) ++ctx.stats->nested_loop_joins;
  OpScope tr(ctx, "NESTED-LOOP JOIN", left.num_rows() + right.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%llu x %llu",
                            static_cast<unsigned long long>(left.num_rows()),
                            static_cast<unsigned long long>(right.num_rows())));
  }
  Table out = JoinOutput(left, right);
  const size_t rn = right.num_rows();
  // The quadratic operator: one morsel of left rows costs O(morsel * rn)
  // predicate calls, so a morsel-boundary check alone could be arbitrarily
  // late. When governed and the inner side is large enough to amortize a
  // clock read, check per left row.
  const bool row_check = ctx.governor != nullptr && rn > 256;
  size_t morsels;
  if (ctx.batch) {
    PairChunk pairs;
    morsels = MorselCollect(
        ctx, left.num_rows(), &pairs,
        [&](size_t begin, size_t end, PairChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            if (row_check && ctx.governor->ShouldStop()) return;
            for (size_t j = 0; j < rn; ++j) {
              if (pred(i, j)) {
                chunk->li.push_back(static_cast<uint32_t>(i));
                chunk->ri.push_back(static_cast<uint32_t>(j));
              }
            }
          }
        });
    CountBatches(tr, morsels + GatherJoin(ctx, left, right, pairs, &out));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, left.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            if (row_check && ctx.governor->ShouldStop()) return;
            const Row lrow = left.RowAt(i);
            for (size_t j = 0; j < rn; ++j) {
              if (pred(i, j)) {
                Row row = lrow;
                const Row rrow = right.RowAt(j);
                row.insert(row.end(), rrow.begin(), rrow.end());
                chunk->rows.push_back(std::move(row));
              }
            }
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, left.num_rows());
  return out;
}

Table IdentityJoin(MctDatabase* db, const Table& left, int lcol,
                   const Table& right, int rcol, const ExecContext& ctx) {
  (void)db;
  if (ctx.stats != nullptr) {
    ++ctx.stats->structural_joins;  // identity = label equality
  }
  OpScope tr(ctx, "IDENTITY JOIN", left.num_rows() + right.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s is %s",
                            left.vars[static_cast<size_t>(lcol)].c_str(),
                            right.vars[static_cast<size_t>(rcol)].c_str()));
  }
  Table out = JoinOutput(left, right);
  const auto groups = GroupByNode(right, rcol);
  size_t morsels;
  if (ctx.batch) {
    PairChunk pairs;
    morsels = MorselCollect(
        ctx, left.num_rows(), &pairs,
        [&](size_t begin, size_t end, PairChunk* chunk, ExecStats*) {
          for (size_t li = begin; li < end; ++li) {
            auto it = groups.find(left.At(li, lcol));
            if (it == groups.end()) continue;
            for (uint32_t ri : it->second) {
              chunk->li.push_back(static_cast<uint32_t>(li));
              chunk->ri.push_back(ri);
            }
          }
        });
    CountBatches(tr, morsels + GatherJoin(ctx, left, right, pairs, &out));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, left.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t li = begin; li < end; ++li) {
            auto it = groups.find(left.At(li, lcol));
            if (it == groups.end()) continue;
            const Row lrow = left.RowAt(li);
            for (uint32_t ri : it->second) {
              Row row = lrow;
              const Row rrow = right.RowAt(ri);
              row.insert(row.end(), rrow.begin(), rrow.end());
              chunk->rows.push_back(std::move(row));
            }
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, left.num_rows());
  return out;
}

namespace {

// Shared survivor collection of FilterRows.
size_t CollectFilterSurvivors(const ExecContext& ctx, size_t n,
                              const std::function<bool(size_t)>& pred,
                              IdxChunk* keep) {
  return MorselCollect(
      ctx, n, keep,
      [&](size_t begin, size_t end, IdxChunk* chunk, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          if (pred(i)) chunk->idx.push_back(static_cast<uint32_t>(i));
        }
      });
}

}  // namespace

Table FilterRows(const Table& in, const std::function<bool(size_t)>& pred,
                 const ExecContext& ctx) {
  OpScope tr(ctx, "FILTER", in.num_rows());
  Table out = Table::WithVars(in.vars);
  size_t morsels;
  if (ctx.batch) {
    IdxChunk keep;
    morsels = CollectFilterSurvivors(ctx, in.num_rows(), pred, &keep);
    CountBatches(tr, morsels + GatherColumns(ctx, in, keep.idx, &out, 0));
  } else {
    RowChunk rows;
    morsels = MorselCollect(
        ctx, in.num_rows(), &rows,
        [&](size_t begin, size_t end, RowChunk* chunk, ExecStats*) {
          for (size_t i = begin; i < end; ++i) {
            if (pred(i)) chunk->rows.push_back(in.RowAt(i));
          }
        });
    AppendRows(&out, std::move(rows.rows));
  }
  ObserveSelectivity(in.num_rows(), out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table FilterRows(Table&& in, const std::function<bool(size_t)>& pred,
                 const ExecContext& ctx) {
  if (!ctx.batch) {
    return FilterRows(static_cast<const Table&>(in), pred, ctx);
  }
  OpScope tr(ctx, "FILTER", in.num_rows());
  IdxChunk keep;
  size_t morsels = CollectFilterSurvivors(ctx, in.num_rows(), pred, &keep);
  const size_t rows_in = in.num_rows();
  // Survivors become the selection vector of the moved table.
  Table out = std::move(in);
  out.KeepRows(std::move(keep.idx));
  CountBatches(tr, morsels);
  ObserveSelectivity(rows_in, out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

namespace {

// Fixed-width byte key of one logical row's projection onto `cols`.
void DupKeyAt(const Table& t, size_t row, const std::vector<int>& cols,
              std::string* key) {
  key->clear();
  for (int c : cols) {
    NodeId v = t.At(row, c);
    key->append(reinterpret_cast<const char*>(&v), sizeof(NodeId));
  }
}

// First-occurrence survivors of duplicate elimination. Inherently order-
// dependent, so it stays serial.
std::vector<uint32_t> DupSurvivors(const Table& in,
                                   const std::vector<int>& cols) {
  std::vector<uint32_t> keep;
  std::unordered_set<std::string> seen;
  std::string key;
  const size_t n = in.num_rows();
  for (size_t i = 0; i < n; ++i) {
    DupKeyAt(in, i, cols, &key);
    if (seen.insert(key).second) keep.push_back(static_cast<uint32_t>(i));
  }
  return keep;
}

}  // namespace

Table DupElim(const Table& in, const std::vector<int>& cols,
              const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->dup_elims;
  OpScope tr(ctx, "DUP ELIM", in.num_rows());
  const size_t n = in.num_rows();
  Table out = Table::WithVars(in.vars);
  if (ctx.batch) {
    std::vector<uint32_t> keep = DupSurvivors(in, cols);
    CountBatches(tr, GatherColumns(ctx, in, keep, &out, 0));
  } else {
    std::vector<Row> rows;
    std::unordered_set<std::string> seen;
    std::string key;
    for (size_t i = 0; i < n; ++i) {
      DupKeyAt(in, i, cols, &key);
      if (seen.insert(key).second) rows.push_back(in.RowAt(i));
    }
    AppendRows(&out, std::move(rows));
  }
  ObserveSelectivity(n, out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), n == 0 ? 0 : 1, 0);
  return out;
}

Table DupElim(Table&& in, const std::vector<int>& cols,
              const ExecContext& ctx) {
  if (!ctx.batch) {
    return DupElim(static_cast<const Table&>(in), cols, ctx);
  }
  if (ctx.stats != nullptr) ++ctx.stats->dup_elims;
  OpScope tr(ctx, "DUP ELIM", in.num_rows());
  const size_t n = in.num_rows();
  std::vector<uint32_t> keep = DupSurvivors(in, cols);
  // Survivors become the selection vector of the moved table.
  Table out = std::move(in);
  out.KeepRows(std::move(keep));
  ObserveSelectivity(n, out.num_rows());
  if (tr.enabled()) tr.Finish(out.num_rows(), n == 0 ? 0 : 1, 0);
  return out;
}

Table Project(const Table& in, const std::vector<int>& cols) {
  Table out;
  out.vars.reserve(cols.size());
  out.cols.reserve(cols.size());
  for (int c : cols) {
    out.vars.push_back(in.vars[static_cast<size_t>(c)]);
    out.cols.push_back(in.cols[static_cast<size_t>(c)]);
  }
  out.sel = in.sel;
  out.use_sel = in.use_sel;
  return out;
}

Table Project(Table&& in, const std::vector<int>& cols) {
  // Move whole column vectors out of the source; a column referenced twice
  // is copied from its first (already moved) occurrence. The selection
  // vector carries over untouched.
  Table out;
  out.vars.reserve(cols.size());
  out.cols.reserve(cols.size());
  std::vector<int> placed(in.cols.size(), -1);
  for (size_t j = 0; j < cols.size(); ++j) {
    const size_t c = static_cast<size_t>(cols[j]);
    if (placed[c] < 0) {
      out.vars.push_back(std::move(in.vars[c]));
      out.cols.push_back(std::move(in.cols[c]));
      placed[c] = static_cast<int>(j);
    } else {
      out.vars.push_back(out.vars[static_cast<size_t>(placed[c])]);
      out.cols.push_back(out.cols[static_cast<size_t>(placed[c])]);
    }
  }
  out.sel = std::move(in.sel);
  out.use_sel = in.use_sel;
  in.vars.clear();
  in.cols.clear();
  in.use_sel = false;
  return out;
}

Table SortRowsBy(const MctDatabase& db, const Table& in, int col,
                 const KeySpec& key, bool descending, const ExecContext& ctx) {
  // Decorate-sort: extract every key once (morsel-parallel — extraction is
  // the expensive part), then a serial stable sort of row indices, so the
  // result is identical to sorting rows with per-comparison extraction.
  OpScope tr(ctx, "SORT", in.num_rows());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("by %s%s",
                            in.vars[static_cast<size_t>(col)].c_str(),
                            descending ? " desc" : ""));
  }
  const size_t n = in.num_rows();
  auto key_less = [](std::string_view ka, std::string_view kb) {
    auto na = ParseDouble(ka), nb = ParseDouble(kb);
    if (na.has_value() && nb.has_value()) return *na < *nb;
    return ka < kb;
  };
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), uint32_t{0});
  auto sort_order = [&](const auto& keys) {
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return descending ? key_less(keys[b], keys[a])
                                         : key_less(keys[a], keys[b]);
                     });
  };
  size_t morsels;
  if (KeySpecViewable(key)) {
    // Viewable keys sort as views into the node store: extraction writes a
    // pointer pair per row instead of copying every key string.
    std::vector<std::string_view> keys(n);
    morsels = ForEachMorsel(ctx, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        keys[i] = ExtractKeyView(db, in.At(i, col), key)
                      .value_or(std::string_view());
      }
    });
    sort_order(keys);
  } else {
    std::vector<std::string> keys(n);
    morsels = ForEachMorsel(ctx, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        keys[i] = ExtractKey(db, in.At(i, col), key).value_or("");
      }
    });
    sort_order(keys);
  }
  Table out = Table::WithVars(in.vars);
  if (ctx.batch) {
    CountBatches(tr, morsels + GatherColumns(ctx, in, order, &out, 0));
  } else {
    std::vector<Row> rows;
    rows.reserve(n);
    for (uint32_t i : order) rows.push_back(in.RowAt(i));
    AppendRows(&out, std::move(rows));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

}  // namespace mct::query

#include "query/ops.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "query/trace.h"

namespace mct::query {

namespace {

using Row = std::vector<NodeId>;

// Groups row indices by the node bound in `col`.
std::unordered_map<NodeId, std::vector<size_t>> GroupByNode(const Table& t,
                                                            int col) {
  std::unordered_map<NodeId, std::vector<size_t>> groups;
  for (size_t i = 0; i < t.rows.size(); ++i) {
    groups[t.rows[i][static_cast<size_t>(col)]].push_back(i);
  }
  return groups;
}

Table WithExtraColumn(const Table& in, const std::string& out_var) {
  Table out;
  out.vars = in.vars;
  out.vars.push_back(out_var);
  return out;
}

void EmitRow(std::vector<Row>* out, const Row& base, NodeId extra) {
  Row row = base;
  row.push_back(extra);
  out->push_back(std::move(row));
}

// Resolves a tag to its interned id once per operator call; kInvalidNameId
// with an empty tag means "match any element".
NameId TagFilterId(const MctDatabase& db, const std::string& tag) {
  return tag.empty() ? kInvalidNameId : db.store().names().Lookup(tag);
}

bool TagIdMatches(const MctDatabase& db, NodeId n, const std::string& tag,
                  NameId tag_id) {
  return tag.empty() || db.TagId(n) == tag_id;
}

// Morsel-driven fan-out for emit-style operators: splits [0, n) into
// ctx.morsel_size chunks, runs `body(begin, end, rows, stats)` per chunk
// (workers claim chunks off a shared counter), and concatenates the
// per-morsel row buffers in morsel index order — so the output row order is
// byte-identical to the serial run. Per-morsel ExecStats are merged into
// ctx.stats after the fan-out; the hot path never touches an atomic.
// Bodies may only perform const reads of shared state. Returns the number
// of morsels claimed (1 for a serial run) for the plan trace.
template <typename Body>
size_t MorselRun(const ExecContext& ctx, size_t n, Table* out,
                 const Body& body) {
  if (ctx.pool == nullptr || ctx.morsel_size == 0 || n <= ctx.morsel_size) {
    body(0, n, &out->rows, ctx.stats);
    return n > 0 ? 1 : 0;
  }
  const size_t num_morsels = (n + ctx.morsel_size - 1) / ctx.morsel_size;
  std::vector<std::vector<Row>> parts(num_morsels);
  std::vector<ExecStats> part_stats(ctx.stats != nullptr ? num_morsels : 0);
  ParallelFor(ctx.pool, num_morsels, [&](size_t m) {
    const size_t begin = m * ctx.morsel_size;
    const size_t end = std::min(n, begin + ctx.morsel_size);
    body(begin, end, &parts[m],
         ctx.stats != nullptr ? &part_stats[m] : nullptr);
  });
  size_t total = out->rows.size();
  for (const auto& p : parts) total += p.size();
  out->rows.reserve(total);
  for (auto& p : parts) {
    for (auto& r : p) out->rows.push_back(std::move(r));
  }
  if (ctx.stats != nullptr) {
    for (const ExecStats& s : part_stats) ctx.stats->Merge(s);
  }
  return num_morsels;
}

// Morsel fan-out for slot-writing loops (each index writes its own output
// slot, nothing is appended): just splits the range across workers.
// Returns the number of morsels claimed, as MorselRun does.
template <typename Body>
size_t ForEachMorsel(const ExecContext& ctx, size_t n, const Body& body) {
  if (ctx.pool == nullptr || ctx.morsel_size == 0 || n <= ctx.morsel_size) {
    body(0, n);
    return n > 0 ? 1 : 0;
  }
  const size_t num_morsels = (n + ctx.morsel_size - 1) / ctx.morsel_size;
  ParallelFor(ctx.pool, num_morsels, [&](size_t m) {
    const size_t begin = m * ctx.morsel_size;
    body(begin, std::min(n, begin + ctx.morsel_size));
  });
  return num_morsels;
}

// Shared build+probe core of HashValueJoin, generic over the key type so
// the viewable specs can use std::string_view keys aliasing the node store
// (no per-row copies) while kStringValue keeps owning strings. Emission is
// identical either way, so both instantiations produce the same table.
template <typename BuildKeyFn, typename ProbeKeyFn>
size_t HashJoinEmit(const ExecContext& ctx, const Table& build,
                    const Table& probe, bool build_left, Table* out,
                    const BuildKeyFn& build_key, const ProbeKeyFn& probe_key) {
  using Key = std::decay_t<decltype(*build_key(size_t{0}))>;
  std::unordered_map<Key, std::vector<size_t>> ht;
  for (size_t i = 0; i < build.rows.size(); ++i) {
    auto k = build_key(i);
    if (k.has_value()) ht[*k].push_back(i);
  }
  return MorselRun(
      ctx, probe.rows.size(), out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t pi = begin; pi < end; ++pi) {
          const Row& prow = probe.rows[pi];
          auto k = probe_key(pi);
          if (!k.has_value()) continue;
          auto it = ht.find(*k);
          if (it == ht.end()) continue;
          for (size_t bi : it->second) {
            const Row& brow = build.rows[bi];
            Row row;
            row.reserve(out->vars.size());
            const Row& l = build_left ? brow : prow;
            const Row& r = build_left ? prow : brow;
            row.insert(row.end(), l.begin(), l.end());
            row.insert(row.end(), r.begin(), r.end());
            rows->push_back(std::move(row));
          }
        }
      });
}

}  // namespace

std::optional<std::string> ExtractKey(const MctDatabase& db, NodeId node,
                                      const KeySpec& spec) {
  switch (spec.kind) {
    case KeySpec::Kind::kOwnContent:
      if (!db.store().HasContent(node)) return std::nullopt;
      return db.Content(node);
    case KeySpec::Kind::kChildContent: {
      if (!db.Colors(node).Has(spec.color)) return std::nullopt;
      std::optional<std::string> out;
      db.tree(spec.color)->ForEachChild(node, [&](NodeId c) {
        if (!out.has_value() && db.Tag(c) == spec.name) out = db.Content(c);
      });
      return out;
    }
    case KeySpec::Kind::kAttr: {
      const std::string* v = db.FindAttr(node, spec.name);
      if (v == nullptr) return std::nullopt;
      return *v;
    }
    case KeySpec::Kind::kStringValue:
      return db.StringValue(node, spec.color);
  }
  return std::nullopt;
}

bool KeySpecViewable(const KeySpec& spec) {
  return spec.kind != KeySpec::Kind::kStringValue;
}

std::optional<std::string_view> ExtractKeyView(const MctDatabase& db,
                                               NodeId node,
                                               const KeySpec& spec) {
  switch (spec.kind) {
    case KeySpec::Kind::kOwnContent:
      if (!db.store().HasContent(node)) return std::nullopt;
      return std::string_view(db.Content(node));
    case KeySpec::Kind::kChildContent: {
      if (!db.Colors(node).Has(spec.color)) return std::nullopt;
      std::optional<std::string_view> out;
      db.tree(spec.color)->ForEachChild(node, [&](NodeId c) {
        if (!out.has_value() && db.Tag(c) == spec.name) {
          out = std::string_view(db.Content(c));
        }
      });
      return out;
    }
    case KeySpec::Kind::kAttr: {
      const std::string* v = db.FindAttr(node, spec.name);
      if (v == nullptr) return std::nullopt;
      return std::string_view(*v);
    }
    case KeySpec::Kind::kStringValue:
      break;  // concatenates: no stable storage to view (precondition)
  }
  return std::nullopt;
}

Table TagScanTable(MctDatabase* db, ColorId color, const std::string& var,
                   const std::string& tag, const ExecContext& ctx) {
  OpScope tr(ctx, "TAG SCAN", 0);
  std::vector<NodeId> nodes = db->TagScan(color, tag);
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += nodes.size();
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}%s -> %s", db->ColorName(color).c_str(),
                            tag.c_str(), var.c_str()));
    tr.Finish(nodes.size(), nodes.empty() ? 0 : 1, nodes.size());
  }
  return Table::FromNodes(var, nodes);
}

Table ExpandChildren(MctDatabase* db, const Table& in, int col, ColorId color,
                     const std::string& tag, const std::string& out_var,
                     const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "CHILD STEP", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}child::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  const ColoredTree* t = db->tree(color);
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;  // unknown tag
  }
  const MctDatabase& cdb = *db;
  size_t morsels = MorselRun(
      ctx, in.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          const Row& row = in.rows[i];
          NodeId n = row[static_cast<size_t>(col)];
          if (!cdb.Colors(n).Has(color)) continue;
          t->ForEachChild(n, [&](NodeId c) {
            if (cdb.Kind(c) == xml::NodeKind::kElement &&
                TagIdMatches(cdb, c, tag, tag_id)) {
              EmitRow(rows, row, c);
            }
          });
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table ExpandDescendants(MctDatabase* db, const Table& in, int col,
                        ColorId color, const std::string& tag,
                        const std::string& out_var, const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT STEP", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  std::vector<NodeId> descs = db->TagScan(color, tag);
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += descs.size();
  if (descs.empty() || in.rows.empty()) {
    if (tr.enabled()) tr.Finish(0, 0, descs.size());
    return out;
  }

  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;  // clean labels: const reads from here on

  // Distinct ancestor candidates (rows grouped per node), sorted by start.
  const auto groups = GroupByNode(in, col);
  struct Anc {
    uint64_t start, end;
    NodeId node;
  };
  std::vector<Anc> ancs;
  ancs.reserve(groups.size());
  for (const auto& [n, _] : groups) {
    if (!ct.Contains(n)) continue;
    ancs.push_back(Anc{ct.Start(n), ct.End(n), n});
  }
  std::sort(ancs.begin(), ancs.end(),
            [](const Anc& a, const Anc& b) { return a.start < b.start; });

  // Stack-based interval merge (stack-tree join, Al-Khalifa et al.): both
  // inputs in ascending start order; the stack holds the chain of ancestor
  // candidates currently open around the scan point. The stack state at a
  // given descendant depends only on its start label, so each morsel of the
  // descendant stream can rebuild it independently (one O(|ancs|) replay
  // per morsel) and emit exactly the serial subsequence.
  size_t morsels = MorselRun(
      ctx, descs.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        std::vector<const Anc*> stack;
        size_t ai = 0;
        for (size_t di = begin; di < end; ++di) {
          NodeId d = descs[di];
          uint64_t ds = ct.Start(d);
          uint64_t de = ct.End(d);
          while (ai < ancs.size() && ancs[ai].start < ds) {
            while (!stack.empty() && stack.back()->end < ancs[ai].start) {
              stack.pop_back();
            }
            stack.push_back(&ancs[ai]);
            ++ai;
          }
          while (!stack.empty() && stack.back()->end < ds) stack.pop_back();
          // Every remaining stack entry contains d (intervals are properly
          // nested). Guard de anyway for robustness against equal labels.
          for (const Anc* a : stack) {
            if (a->end > de) {
              for (size_t ri : groups.at(a->node)) {
                EmitRow(rows, in.rows[ri], d);
              }
            }
          }
        }
      });
  // Re-establish row order of the left input (group expansion visits in
  // descendant order): callers that need input order should sort; FLWOR
  // semantics here only require the binding set, so we keep merge order.
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, descs.size());
  return out;
}

Table ExpandDescendantsAmong(MctDatabase* db, const Table& in, int col,
                             ColorId color, const std::string& tag,
                             const std::vector<NodeId>& cands,
                             const std::string& out_var,
                             const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT SEEK", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s (%zu candidates)",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str(), cands.size()));
  }
  Table out = WithExtraColumn(in, out_var);
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }

  // Normalize the candidate set to the exact subsequence of the tag scan it
  // represents: color members of the right kind and tag, deduped, ascending
  // start order (= local document order, the tag index's order). After
  // this, the interval merge below sees precisely the baseline's descendant
  // stream restricted to the candidates, so it emits the identical
  // subsequence of the baseline's output rows.
  std::vector<NodeId> descs;
  descs.reserve(cands.size());
  {
    std::unordered_set<NodeId> seen;
    seen.reserve(cands.size() * 2);
    for (NodeId d : cands) {
      if (!ct.Contains(d)) continue;
      if (db->Kind(d) != xml::NodeKind::kElement) continue;
      if (!TagIdMatches(*db, d, tag, tag_id)) continue;
      if (seen.insert(d).second) descs.push_back(d);
    }
  }
  std::sort(descs.begin(), descs.end(),
            [&](NodeId a, NodeId b) { return ct.Start(a) < ct.Start(b); });
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += descs.size();
  if (descs.empty() || in.rows.empty()) {
    if (tr.enabled()) tr.Finish(0, 0, descs.size());
    return out;
  }

  const auto groups = GroupByNode(in, col);
  struct Anc {
    uint64_t start, end;
    NodeId node;
  };
  std::vector<Anc> ancs;
  ancs.reserve(groups.size());
  for (const auto& [n, _] : groups) {
    if (!ct.Contains(n)) continue;
    ancs.push_back(Anc{ct.Start(n), ct.End(n), n});
  }
  std::sort(ancs.begin(), ancs.end(),
            [](const Anc& a, const Anc& b) { return a.start < b.start; });

  size_t morsels = MorselRun(
      ctx, descs.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        std::vector<const Anc*> stack;
        size_t ai = 0;
        for (size_t di = begin; di < end; ++di) {
          NodeId d = descs[di];
          uint64_t ds = ct.Start(d);
          uint64_t de = ct.End(d);
          while (ai < ancs.size() && ancs[ai].start < ds) {
            while (!stack.empty() && stack.back()->end < ancs[ai].start) {
              stack.pop_back();
            }
            stack.push_back(&ancs[ai]);
            ++ai;
          }
          while (!stack.empty() && stack.back()->end < ds) stack.pop_back();
          for (const Anc* a : stack) {
            if (a->end > de) {
              for (size_t ri : groups.at(a->node)) {
                EmitRow(rows, in.rows[ri], d);
              }
            }
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, descs.size());
  return out;
}

Table ExpandDescendantsNav(MctDatabase* db, const Table& in, int col,
                           ColorId color, const std::string& tag,
                           const std::string& out_var,
                           const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT NAV", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  if (in.rows.empty()) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }

  const auto groups = GroupByNode(in, col);
  struct Anc {
    uint64_t start;
    NodeId node;
  };
  std::vector<Anc> ancs;
  ancs.reserve(groups.size());
  for (const auto& [n, _] : groups) {
    if (!ct.Contains(n)) continue;
    ancs.push_back(Anc{ct.Start(n), n});
  }
  std::sort(ancs.begin(), ancs.end(),
            [](const Anc& a, const Anc& b) { return a.start < b.start; });

  // Walk each context subtree; order hits globally like the interval merge
  // does: by (descendant start, ancestor start). With nested contexts a
  // descendant is found once per containing context, exactly as the merge
  // emits it once per open stack entry, bottom (outermost) first.
  struct Hit {
    uint64_t ds;
    size_t anc_idx;
    NodeId d;
  };
  std::vector<Hit> hits;
  size_t visited = 0;
  for (size_t a = 0; a < ancs.size(); ++a) {
    for (NodeId d : ct.PreOrder(ancs[a].node)) {
      ++visited;
      if (d == ancs[a].node) continue;  // proper descendants only
      if (db->Kind(d) != xml::NodeKind::kElement) continue;
      if (!TagIdMatches(*db, d, tag, tag_id)) continue;
      hits.push_back(Hit{ct.Start(d), a, d});
    }
  }
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += visited;
  std::sort(hits.begin(), hits.end(), [](const Hit& x, const Hit& y) {
    return x.ds != y.ds ? x.ds < y.ds : x.anc_idx < y.anc_idx;
  });
  for (const Hit& h : hits) {
    for (size_t ri : groups.at(ancs[h.anc_idx].node)) {
      EmitRow(&out.rows, in.rows[ri], h.d);
    }
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), 1, hits.size());
  return out;
}

Table ExpandDescendantsRoot(MctDatabase* db, const Table& in, int col,
                            ColorId color, const std::string& tag,
                            const std::string& out_var,
                            const ExecContext& ctx) {
  // Precondition fallback: only the lone document row qualifies.
  if (in.rows.size() != 1 ||
      in.rows[0][static_cast<size_t>(col)] != db->document()) {
    return ExpandDescendants(db, in, col, color, tag, out_var, ctx);
  }
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "DESCENDANT SCAN", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}descendant::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  // Every tag-index entry of the color is a proper descendant of the
  // document root, and the index is in local document order — exactly the
  // (start(d), start(doc), row 0) order the interval merge would emit.
  std::vector<NodeId> descs = db->TagScan(color, tag);
  if (ctx.stats != nullptr) ctx.stats->rows_scanned += descs.size();
  const ColoredTree* t = db->tree(color);
  out.rows.reserve(descs.size());
  for (NodeId d : descs) {
    if (!t->Contains(d)) continue;
    EmitRow(&out.rows, in.rows[0], d);
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), descs.empty() ? 0 : 1,
                              descs.size());
  return out;
}

Table ExpandParent(MctDatabase* db, const Table& in, int col, ColorId color,
                   const std::string& tag, const std::string& out_var,
                   const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "PARENT STEP", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}parent::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  const MctDatabase& cdb = *db;
  size_t morsels = MorselRun(
      ctx, in.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          const Row& row = in.rows[i];
          auto p = cdb.Parent(row[static_cast<size_t>(col)], color);
          if (p.has_value() && cdb.Kind(*p) == xml::NodeKind::kElement &&
              TagIdMatches(cdb, *p, tag, tag_id)) {
            EmitRow(rows, row, *p);
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table ExpandAncestors(MctDatabase* db, const Table& in, int col, ColorId color,
                      const std::string& tag, const std::string& out_var,
                      const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "ANCESTOR STEP", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s}ancestor::%s -> %s",
                            db->ColorName(color).c_str(),
                            tag.empty() ? "node()" : tag.c_str(),
                            out_var.c_str()));
  }
  Table out = WithExtraColumn(in, out_var);
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) {
    if (tr.enabled()) tr.Finish(0, 0, 0);
    return out;
  }
  const ColoredTree* t = db->tree(color);
  const MctDatabase& cdb = *db;
  size_t morsels = MorselRun(
      ctx, in.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          const Row& row = in.rows[i];
          NodeId n = row[static_cast<size_t>(col)];
          if (!t->Contains(n)) continue;
          for (NodeId p = t->Parent(n); p != kInvalidNodeId;
               p = t->Parent(p)) {
            if (cdb.Kind(p) == xml::NodeKind::kElement &&
                TagIdMatches(cdb, p, tag, tag_id)) {
              EmitRow(rows, row, p);
            }
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table CrossTreeJoin(MctDatabase* db, const Table& in, int col, ColorId to_color,
                    const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->cross_tree_joins;
  OpScope tr(ctx, "CROSS-TREE JOIN", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s -> {%s}",
                            in.vars[static_cast<size_t>(col)].c_str(),
                            db->ColorName(to_color).c_str()));
    tr.AddColorTransition();
  }
  Table out;
  out.vars = in.vars;
  // Bulk identity join: follow the back-links from the shared node record
  // to the structural node of the target color (Section 6.2); rows whose
  // node lacks the color are dropped.
  const ColoredTree* t = db->tree(to_color);
  size_t morsels = MorselRun(
      ctx, in.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          if (t->Contains(in.rows[i][static_cast<size_t>(col)])) {
            rows->push_back(in.rows[i]);
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table StructuralSemiJoin(MctDatabase* db, const Table& in, int col,
                         ColorId color, const std::vector<NodeId>& anc_set,
                         const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;
  OpScope tr(ctx, "STRUCTURAL SEMI-JOIN", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("{%s} %llu ancestors",
                            db->ColorName(color).c_str(),
                            static_cast<unsigned long long>(anc_set.size())));
  }
  Table out;
  out.vars = in.vars;
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  const ColoredTree& ct = *t;
  struct Iv {
    uint64_t start, end;
  };
  std::vector<Iv> ivs;
  ivs.reserve(anc_set.size());
  for (NodeId a : anc_set) {
    if (ct.Contains(a)) ivs.push_back(Iv{ct.Start(a), ct.End(a)});
  }
  std::sort(ivs.begin(), ivs.end(),
            [](const Iv& a, const Iv& b) { return a.start < b.start; });
  // Tree intervals are nested or disjoint, so node n (start s) lies under
  // some interval iff an interval with start < s has end > s. Precompute the
  // running max end so each probe is one binary search.
  std::vector<uint64_t> prefix_max_end(ivs.size());
  uint64_t running = 0;
  for (size_t i = 0; i < ivs.size(); ++i) {
    running = std::max(running, ivs[i].end);
    prefix_max_end[i] = running;
  }
  size_t morsels = MorselRun(
      ctx, in.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          NodeId n = in.rows[i][static_cast<size_t>(col)];
          if (!ct.Contains(n)) continue;
          uint64_t s = ct.Start(n);
          // Last interval with start < s.
          size_t lo = 0, hi = ivs.size();
          while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (ivs[mid].start < s) {
              lo = mid + 1;
            } else {
              hi = mid;
            }
          }
          if (lo > 0 && prefix_max_end[lo - 1] > s) {
            rows->push_back(in.rows[i]);
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

Table HashValueJoin(MctDatabase* db, const Table& left, int lcol,
                    const KeySpec& lkey, const Table& right, int rcol,
                    const KeySpec& rkey, const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->value_joins;
  OpScope tr(ctx, "HASH VALUE JOIN", left.rows.size() + right.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s = %s",
                            left.vars[static_cast<size_t>(lcol)].c_str(),
                            right.vars[static_cast<size_t>(rcol)].c_str()));
  }
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  // Build on the smaller input (serial); probe in parallel morsels.
  const bool build_left = left.rows.size() <= right.rows.size();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const int bcol = build_left ? lcol : rcol;
  const int pcol = build_left ? rcol : lcol;
  const KeySpec& bkey = build_left ? lkey : rkey;
  const KeySpec& pkey = build_left ? rkey : lkey;
  const MctDatabase& cdb = *db;

  // Viewable keys (content / attribute images) hash as string_views into
  // the node store — no per-row key copies on either side.
  size_t morsels;
  if (KeySpecViewable(bkey) && KeySpecViewable(pkey)) {
    morsels = HashJoinEmit(
        ctx, build, probe, build_left, &out,
        [&](size_t i) {
          return ExtractKeyView(cdb, build.rows[i][static_cast<size_t>(bcol)],
                                bkey);
        },
        [&](size_t i) {
          return ExtractKeyView(cdb, probe.rows[i][static_cast<size_t>(pcol)],
                                pkey);
        });
  } else {
    morsels = HashJoinEmit(
        ctx, build, probe, build_left, &out,
        [&](size_t i) {
          return ExtractKey(cdb, build.rows[i][static_cast<size_t>(bcol)],
                            bkey);
        },
        [&](size_t i) {
          return ExtractKey(cdb, probe.rows[i][static_cast<size_t>(pcol)],
                            pkey);
        });
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, probe.rows.size());
  return out;
}

Table IdrefsJoin(MctDatabase* db, const Table& left, int lcol,
                 const KeySpec& lkey, const Table& right, int rcol,
                 const KeySpec& rkey, const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->value_joins;
  OpScope tr(ctx, "IDREFS VALUE JOIN", left.rows.size() + right.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s ~ %s",
                            left.vars[static_cast<size_t>(lcol)].c_str(),
                            right.vars[static_cast<size_t>(rcol)].c_str()));
  }
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  const MctDatabase& cdb = *db;
  // Hash the single-id side (serial), then probe once per token of each
  // list, morsel-parallel over the list side.
  std::unordered_map<std::string, std::vector<size_t>> ht;
  for (size_t i = 0; i < right.rows.size(); ++i) {
    auto k = ExtractKey(cdb, right.rows[i][static_cast<size_t>(rcol)], rkey);
    if (k.has_value()) ht[*k].push_back(i);
  }
  size_t morsels = MorselRun(
      ctx, left.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t li = begin; li < end; ++li) {
          const Row& lrow = left.rows[li];
          auto list = ExtractKey(cdb, lrow[static_cast<size_t>(lcol)], lkey);
          if (!list.has_value()) continue;
          for (const std::string& token : SplitWhitespace(*list)) {
            auto it = ht.find(token);
            if (it == ht.end()) continue;
            for (size_t ri : it->second) {
              Row row = lrow;
              row.insert(row.end(), right.rows[ri].begin(),
                         right.rows[ri].end());
              rows->push_back(std::move(row));
            }
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, left.rows.size());
  return out;
}

Table NestedLoopJoin(MctDatabase* db, const Table& left, const Table& right,
                     const std::function<bool(const std::vector<NodeId>&,
                                              const std::vector<NodeId>&)>& pred,
                     const ExecContext& ctx) {
  (void)db;
  if (ctx.stats != nullptr) ++ctx.stats->nested_loop_joins;
  OpScope tr(ctx, "NESTED-LOOP JOIN",
             left.rows.size() + right.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%llu x %llu",
                            static_cast<unsigned long long>(left.rows.size()),
                            static_cast<unsigned long long>(right.rows.size())));
  }
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  size_t morsels = MorselRun(
      ctx, left.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t i = begin; i < end; ++i) {
          const Row& l = left.rows[i];
          for (const Row& r : right.rows) {
            if (pred(l, r)) {
              Row row = l;
              row.insert(row.end(), r.begin(), r.end());
              rows->push_back(std::move(row));
            }
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, left.rows.size());
  return out;
}

Table IdentityJoin(MctDatabase* db, const Table& left, int lcol,
                   const Table& right, int rcol, const ExecContext& ctx) {
  (void)db;
  if (ctx.stats != nullptr) {
    ++ctx.stats->structural_joins;  // identity = label equality
  }
  OpScope tr(ctx, "IDENTITY JOIN", left.rows.size() + right.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("%s is %s",
                            left.vars[static_cast<size_t>(lcol)].c_str(),
                            right.vars[static_cast<size_t>(rcol)].c_str()));
  }
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  const auto groups = GroupByNode(right, rcol);
  size_t morsels = MorselRun(
      ctx, left.rows.size(), &out,
      [&](size_t begin, size_t end, std::vector<Row>* rows, ExecStats*) {
        for (size_t li = begin; li < end; ++li) {
          const Row& lrow = left.rows[li];
          auto it = groups.find(lrow[static_cast<size_t>(lcol)]);
          if (it == groups.end()) continue;
          for (size_t ri : it->second) {
            Row row = lrow;
            row.insert(row.end(), right.rows[ri].begin(),
                       right.rows[ri].end());
            rows->push_back(std::move(row));
          }
        }
      });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels, left.rows.size());
  return out;
}

Table FilterRows(const Table& in,
                 const std::function<bool(const std::vector<NodeId>&)>& pred,
                 const ExecContext& ctx) {
  OpScope tr(ctx, "FILTER", in.rows.size());
  Table out;
  out.vars = in.vars;
  size_t morsels =
      MorselRun(ctx, in.rows.size(), &out,
                [&](size_t begin, size_t end, std::vector<Row>* rows,
                    ExecStats*) {
                  for (size_t i = begin; i < end; ++i) {
                    if (pred(in.rows[i])) rows->push_back(in.rows[i]);
                  }
                });
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

namespace {

void DupKey(const Row& row, const std::vector<int>& cols, std::string* key) {
  key->clear();
  for (int c : cols) {
    key->append(reinterpret_cast<const char*>(&row[static_cast<size_t>(c)]),
                sizeof(NodeId));
  }
}

}  // namespace

Table DupElim(const Table& in, const std::vector<int>& cols,
              const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->dup_elims;
  OpScope tr(ctx, "DUP ELIM", in.rows.size());
  Table out;
  out.vars = in.vars;
  std::unordered_set<std::string> seen;
  std::string key;
  for (const auto& row : in.rows) {
    DupKey(row, cols, &key);
    if (seen.insert(key).second) out.rows.push_back(row);
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), in.rows.empty() ? 0 : 1, 0);
  return out;
}

Table DupElim(Table&& in, const std::vector<int>& cols,
              const ExecContext& ctx) {
  if (ctx.stats != nullptr) ++ctx.stats->dup_elims;
  OpScope tr(ctx, "DUP ELIM", in.rows.size());
  Table out;
  out.vars = std::move(in.vars);
  std::unordered_set<std::string> seen;
  std::string key;
  for (auto& row : in.rows) {
    DupKey(row, cols, &key);
    if (seen.insert(key).second) out.rows.push_back(std::move(row));
  }
  if (tr.enabled()) tr.Finish(out.num_rows(), in.rows.empty() ? 0 : 1, 0);
  in.rows.clear();
  return out;
}

Table Project(const Table& in, const std::vector<int>& cols) {
  Table out;
  for (int c : cols) out.vars.push_back(in.vars[static_cast<size_t>(c)]);
  out.rows.reserve(in.rows.size());
  for (const auto& row : in.rows) {
    Row r;
    r.reserve(cols.size());
    for (int c : cols) r.push_back(row[static_cast<size_t>(c)]);
    out.rows.push_back(std::move(r));
  }
  return out;
}

Table Project(Table&& in, const std::vector<int>& cols) {
  // When the projection keeps columns in increasing order, each row can be
  // compacted in place (cols[j] >= j, so left-to-right copies never clobber
  // a source) — no per-row allocation at all.
  bool increasing = true;
  for (size_t j = 0; j + 1 < cols.size(); ++j) {
    if (cols[j] >= cols[j + 1]) {
      increasing = false;
      break;
    }
  }
  if (!increasing) return Project(in, cols);
  Table out;
  for (int c : cols) out.vars.push_back(in.vars[static_cast<size_t>(c)]);
  out.rows = std::move(in.rows);
  for (auto& row : out.rows) {
    for (size_t j = 0; j < cols.size(); ++j) {
      row[j] = row[static_cast<size_t>(cols[j])];
    }
    row.resize(cols.size());
  }
  return out;
}

Table SortRowsBy(const MctDatabase& db, const Table& in, int col,
                 const KeySpec& key, bool descending, const ExecContext& ctx) {
  // Decorate-sort: extract every key once (morsel-parallel — extraction is
  // the expensive part), then a serial stable sort of row indices, so the
  // result is identical to sorting rows with per-comparison extraction.
  OpScope tr(ctx, "SORT", in.rows.size());
  if (tr.enabled()) {
    tr.set_detail(StrFormat("by %s%s", in.vars[static_cast<size_t>(col)].c_str(),
                            descending ? " desc" : ""));
  }
  const size_t n = in.rows.size();
  auto key_less = [](std::string_view ka, std::string_view kb) {
    auto na = ParseDouble(ka), nb = ParseDouble(kb);
    if (na.has_value() && nb.has_value()) return *na < *nb;
    return ka < kb;
  };
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  auto sort_order = [&](const auto& keys) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return descending ? key_less(keys[b], keys[a])
                        : key_less(keys[a], keys[b]);
    });
  };
  size_t morsels;
  if (KeySpecViewable(key)) {
    // Viewable keys sort as views into the node store: extraction writes a
    // pointer pair per row instead of copying every key string.
    std::vector<std::string_view> keys(n);
    morsels = ForEachMorsel(ctx, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        keys[i] = ExtractKeyView(db, in.rows[i][static_cast<size_t>(col)], key)
                      .value_or(std::string_view());
      }
    });
    sort_order(keys);
  } else {
    std::vector<std::string> keys(n);
    morsels = ForEachMorsel(ctx, n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        keys[i] = ExtractKey(db, in.rows[i][static_cast<size_t>(col)], key)
                      .value_or("");
      }
    });
    sort_order(keys);
  }
  Table out;
  out.vars = in.vars;
  out.rows.reserve(n);
  for (size_t i : order) out.rows.push_back(in.rows[i]);
  if (tr.enabled()) tr.Finish(out.num_rows(), morsels);
  return out;
}

}  // namespace mct::query

#include "query/ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace mct::query {

namespace {

// Groups row indices by the node bound in `col`.
std::unordered_map<NodeId, std::vector<size_t>> GroupByNode(const Table& t,
                                                            int col) {
  std::unordered_map<NodeId, std::vector<size_t>> groups;
  for (size_t i = 0; i < t.rows.size(); ++i) {
    groups[t.rows[i][static_cast<size_t>(col)]].push_back(i);
  }
  return groups;
}

Table WithExtraColumn(const Table& in, const std::string& out_var) {
  Table out;
  out.vars = in.vars;
  out.vars.push_back(out_var);
  return out;
}

void EmitRow(Table* out, const std::vector<NodeId>& base, NodeId extra) {
  std::vector<NodeId> row = base;
  row.push_back(extra);
  out->rows.push_back(std::move(row));
}

// Resolves a tag to its interned id once per operator call; kInvalidNameId
// with an empty tag means "match any element".
NameId TagFilterId(const MctDatabase& db, const std::string& tag) {
  return tag.empty() ? kInvalidNameId : db.store().names().Lookup(tag);
}

bool TagIdMatches(const MctDatabase& db, NodeId n, const std::string& tag,
                  NameId tag_id) {
  return tag.empty() || db.TagId(n) == tag_id;
}

}  // namespace

std::optional<std::string> ExtractKey(const MctDatabase& db, NodeId node,
                                      const KeySpec& spec) {
  switch (spec.kind) {
    case KeySpec::Kind::kOwnContent:
      if (!db.store().HasContent(node)) return std::nullopt;
      return db.Content(node);
    case KeySpec::Kind::kChildContent: {
      if (!db.Colors(node).Has(spec.color)) return std::nullopt;
      std::optional<std::string> out;
      db.tree(spec.color)->ForEachChild(node, [&](NodeId c) {
        if (!out.has_value() && db.Tag(c) == spec.name) out = db.Content(c);
      });
      return out;
    }
    case KeySpec::Kind::kAttr: {
      const std::string* v = db.FindAttr(node, spec.name);
      if (v == nullptr) return std::nullopt;
      return *v;
    }
    case KeySpec::Kind::kStringValue:
      return db.StringValue(node, spec.color);
  }
  return std::nullopt;
}

Table TagScanTable(MctDatabase* db, ColorId color, const std::string& var,
                   const std::string& tag, ExecStats* stats) {
  std::vector<NodeId> nodes = db->TagScan(color, tag);
  if (stats != nullptr) stats->rows_scanned += nodes.size();
  return Table::FromNodes(var, nodes);
}

Table ExpandChildren(MctDatabase* db, const Table& in, int col, ColorId color,
                     const std::string& tag, const std::string& out_var,
                     ExecStats* stats) {
  if (stats != nullptr) ++stats->structural_joins;
  Table out = WithExtraColumn(in, out_var);
  const ColoredTree* t = db->tree(color);
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) return out;  // unknown tag
  for (const auto& row : in.rows) {
    NodeId n = row[static_cast<size_t>(col)];
    if (!db->Colors(n).Has(color)) continue;
    t->ForEachChild(n, [&](NodeId c) {
      if (db->Kind(c) == xml::NodeKind::kElement &&
          TagIdMatches(*db, c, tag, tag_id)) {
        EmitRow(&out, row, c);
      }
    });
  }
  return out;
}

Table ExpandDescendants(MctDatabase* db, const Table& in, int col,
                        ColorId color, const std::string& tag,
                        const std::string& out_var, ExecStats* stats) {
  if (stats != nullptr) ++stats->structural_joins;
  Table out = WithExtraColumn(in, out_var);
  std::vector<NodeId> descs = db->TagScan(color, tag);
  if (stats != nullptr) stats->rows_scanned += descs.size();
  if (descs.empty() || in.rows.empty()) return out;

  ColoredTree* t = db->tree(color);
  t->EnsureLabels();

  // Distinct ancestor candidates (rows grouped per node), sorted by start.
  auto groups = GroupByNode(in, col);
  struct Anc {
    uint64_t start, end;
    NodeId node;
  };
  std::vector<Anc> ancs;
  ancs.reserve(groups.size());
  for (const auto& [n, _] : groups) {
    if (!t->Contains(n)) continue;
    ancs.push_back(Anc{t->Start(n), t->End(n), n});
  }
  std::sort(ancs.begin(), ancs.end(),
            [](const Anc& a, const Anc& b) { return a.start < b.start; });

  // Stack-based interval merge (stack-tree join, Al-Khalifa et al.): both
  // inputs in ascending start order; the stack holds the chain of ancestor
  // candidates currently open around the scan point.
  std::vector<const Anc*> stack;
  size_t ai = 0;
  for (NodeId d : descs) {
    uint64_t ds = t->Start(d);
    uint64_t de = t->End(d);
    while (ai < ancs.size() && ancs[ai].start < ds) {
      while (!stack.empty() && stack.back()->end < ancs[ai].start) {
        stack.pop_back();
      }
      stack.push_back(&ancs[ai]);
      ++ai;
    }
    while (!stack.empty() && stack.back()->end < ds) stack.pop_back();
    // Every remaining stack entry contains d (intervals are properly
    // nested). Guard de anyway for robustness against equal labels.
    for (const Anc* a : stack) {
      if (a->end > de) {
        for (size_t ri : groups[a->node]) {
          EmitRow(&out, in.rows[ri], d);
        }
      }
    }
  }
  // Re-establish row order of the left input (group expansion visits in
  // descendant order): callers that need input order should sort; FLWOR
  // semantics here only require the binding set, so we keep merge order.
  return out;
}

Table ExpandParent(MctDatabase* db, const Table& in, int col, ColorId color,
                   const std::string& tag, const std::string& out_var,
                   ExecStats* stats) {
  if (stats != nullptr) ++stats->structural_joins;
  Table out = WithExtraColumn(in, out_var);
  NameId tag_id = TagFilterId(*db, tag);
  if (!tag.empty() && tag_id == kInvalidNameId) return out;
  for (const auto& row : in.rows) {
    auto p = db->Parent(row[static_cast<size_t>(col)], color);
    if (p.has_value() && db->Kind(*p) == xml::NodeKind::kElement &&
        TagIdMatches(*db, *p, tag, tag_id)) {
      EmitRow(&out, row, *p);
    }
  }
  return out;
}

Table ExpandAncestors(MctDatabase* db, const Table& in, int col, ColorId color,
                      const std::string& tag, const std::string& out_var,
                      ExecStats* stats) {
  if (stats != nullptr) ++stats->structural_joins;
  Table out = WithExtraColumn(in, out_var);
  ColoredTree* t = db->tree(color);
  for (const auto& row : in.rows) {
    NodeId n = row[static_cast<size_t>(col)];
    if (!t->Contains(n)) continue;
    for (NodeId p = t->Parent(n); p != kInvalidNodeId; p = t->Parent(p)) {
      if (db->Kind(p) == xml::NodeKind::kElement &&
          TagIdMatches(*db, p, tag, TagFilterId(*db, tag))) {
        EmitRow(&out, row, p);
      }
    }
  }
  return out;
}

Table CrossTreeJoin(MctDatabase* db, const Table& in, int col, ColorId to_color,
                    ExecStats* stats) {
  if (stats != nullptr) ++stats->cross_tree_joins;
  Table out;
  out.vars = in.vars;
  // Bulk identity join: follow the back-links from the shared node record
  // to the structural node of the target color (Section 6.2); rows whose
  // node lacks the color are dropped.
  const ColoredTree* t = db->tree(to_color);
  for (const auto& row : in.rows) {
    if (t->Contains(row[static_cast<size_t>(col)])) {
      out.rows.push_back(row);
    }
  }
  return out;
}

Table StructuralSemiJoin(MctDatabase* db, const Table& in, int col,
                         ColorId color, const std::vector<NodeId>& anc_set,
                         ExecStats* stats) {
  if (stats != nullptr) ++stats->structural_joins;
  Table out;
  out.vars = in.vars;
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  struct Iv {
    uint64_t start, end;
  };
  std::vector<Iv> ivs;
  ivs.reserve(anc_set.size());
  for (NodeId a : anc_set) {
    if (t->Contains(a)) ivs.push_back(Iv{t->Start(a), t->End(a)});
  }
  std::sort(ivs.begin(), ivs.end(),
            [](const Iv& a, const Iv& b) { return a.start < b.start; });
  // Tree intervals are nested or disjoint, so node n (start s) lies under
  // some interval iff an interval with start < s has end > s. Precompute the
  // running max end so each probe is one binary search.
  std::vector<uint64_t> prefix_max_end(ivs.size());
  uint64_t running = 0;
  for (size_t i = 0; i < ivs.size(); ++i) {
    running = std::max(running, ivs[i].end);
    prefix_max_end[i] = running;
  }
  for (const auto& row : in.rows) {
    NodeId n = row[static_cast<size_t>(col)];
    if (!t->Contains(n)) continue;
    uint64_t s = t->Start(n);
    // Last interval with start < s.
    size_t lo = 0, hi = ivs.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (ivs[mid].start < s) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0 && prefix_max_end[lo - 1] > s) out.rows.push_back(row);
  }
  return out;
}

Table HashValueJoin(MctDatabase* db, const Table& left, int lcol,
                    const KeySpec& lkey, const Table& right, int rcol,
                    const KeySpec& rkey, ExecStats* stats) {
  if (stats != nullptr) ++stats->value_joins;
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  // Build on the smaller input.
  const bool build_left = left.rows.size() <= right.rows.size();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const int bcol = build_left ? lcol : rcol;
  const int pcol = build_left ? rcol : lcol;
  const KeySpec& bkey = build_left ? lkey : rkey;
  const KeySpec& pkey = build_left ? rkey : lkey;

  std::unordered_map<std::string, std::vector<size_t>> ht;
  for (size_t i = 0; i < build.rows.size(); ++i) {
    auto k = ExtractKey(*db, build.rows[i][static_cast<size_t>(bcol)], bkey);
    if (k.has_value()) ht[*k].push_back(i);
  }
  for (const auto& prow : probe.rows) {
    auto k = ExtractKey(*db, prow[static_cast<size_t>(pcol)], pkey);
    if (!k.has_value()) continue;
    auto it = ht.find(*k);
    if (it == ht.end()) continue;
    for (size_t bi : it->second) {
      const auto& brow = build.rows[bi];
      std::vector<NodeId> row;
      row.reserve(out.vars.size());
      const auto& l = build_left ? brow : prow;
      const auto& r = build_left ? prow : brow;
      row.insert(row.end(), l.begin(), l.end());
      row.insert(row.end(), r.begin(), r.end());
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Table IdrefsJoin(MctDatabase* db, const Table& left, int lcol,
                 const KeySpec& lkey, const Table& right, int rcol,
                 const KeySpec& rkey, ExecStats* stats) {
  if (stats != nullptr) ++stats->value_joins;
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  // Hash the single-id side, then probe once per token of each list.
  std::unordered_map<std::string, std::vector<size_t>> ht;
  for (size_t i = 0; i < right.rows.size(); ++i) {
    auto k = ExtractKey(*db, right.rows[i][static_cast<size_t>(rcol)], rkey);
    if (k.has_value()) ht[*k].push_back(i);
  }
  for (const auto& lrow : left.rows) {
    auto list = ExtractKey(*db, lrow[static_cast<size_t>(lcol)], lkey);
    if (!list.has_value()) continue;
    for (const std::string& token : SplitWhitespace(*list)) {
      auto it = ht.find(token);
      if (it == ht.end()) continue;
      for (size_t ri : it->second) {
        std::vector<NodeId> row = lrow;
        row.insert(row.end(), right.rows[ri].begin(), right.rows[ri].end());
        out.rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

Table NestedLoopJoin(MctDatabase* db, const Table& left, const Table& right,
                     const std::function<bool(const std::vector<NodeId>&,
                                              const std::vector<NodeId>&)>& pred,
                     ExecStats* stats) {
  (void)db;
  if (stats != nullptr) ++stats->nested_loop_joins;
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  for (const auto& l : left.rows) {
    for (const auto& r : right.rows) {
      if (pred(l, r)) {
        std::vector<NodeId> row = l;
        row.insert(row.end(), r.begin(), r.end());
        out.rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

Table IdentityJoin(MctDatabase* db, const Table& left, int lcol,
                   const Table& right, int rcol, ExecStats* stats) {
  (void)db;
  if (stats != nullptr) ++stats->structural_joins;  // identity = label equality
  Table out;
  out.vars = left.vars;
  out.vars.insert(out.vars.end(), right.vars.begin(), right.vars.end());
  auto groups = GroupByNode(right, rcol);
  for (const auto& lrow : left.rows) {
    auto it = groups.find(lrow[static_cast<size_t>(lcol)]);
    if (it == groups.end()) continue;
    for (size_t ri : it->second) {
      std::vector<NodeId> row = lrow;
      row.insert(row.end(), right.rows[ri].begin(), right.rows[ri].end());
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Table FilterRows(const Table& in,
                 const std::function<bool(const std::vector<NodeId>&)>& pred,
                 ExecStats* stats) {
  (void)stats;
  Table out;
  out.vars = in.vars;
  for (const auto& row : in.rows) {
    if (pred(row)) out.rows.push_back(row);
  }
  return out;
}

Table DupElim(const Table& in, const std::vector<int>& cols, ExecStats* stats) {
  if (stats != nullptr) ++stats->dup_elims;
  Table out;
  out.vars = in.vars;
  std::unordered_set<std::string> seen;
  std::string key;
  for (const auto& row : in.rows) {
    key.clear();
    for (int c : cols) {
      key.append(reinterpret_cast<const char*>(&row[static_cast<size_t>(c)]),
                 sizeof(NodeId));
    }
    if (seen.insert(key).second) out.rows.push_back(row);
  }
  return out;
}

Table Project(const Table& in, const std::vector<int>& cols) {
  Table out;
  for (int c : cols) out.vars.push_back(in.vars[static_cast<size_t>(c)]);
  out.rows.reserve(in.rows.size());
  for (const auto& row : in.rows) {
    std::vector<NodeId> r;
    r.reserve(cols.size());
    for (int c : cols) r.push_back(row[static_cast<size_t>(c)]);
    out.rows.push_back(std::move(r));
  }
  return out;
}

Table SortRowsBy(const MctDatabase& db, const Table& in, int col,
                 const KeySpec& key, bool descending) {
  Table out = in;
  auto key_of = [&](const std::vector<NodeId>& row) {
    return ExtractKey(db, row[static_cast<size_t>(col)], key).value_or("");
  };
  auto key_less = [](const std::string& ka, const std::string& kb) {
    auto na = ParseDouble(ka), nb = ParseDouble(kb);
    if (na.has_value() && nb.has_value()) return *na < *nb;
    return ka < kb;
  };
  std::stable_sort(
      out.rows.begin(), out.rows.end(),
      [&](const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
        return descending ? key_less(key_of(b), key_of(a))
                          : key_less(key_of(a), key_of(b));
      });
  return out;
}

}  // namespace mct::query

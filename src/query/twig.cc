#include "query/twig.h"

#include "query/ops.h"

#include <algorithm>
#include <unordered_map>

#include "common/governor.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "mct/shard.h"

namespace mct::query {

namespace {

std::string ColName(const TwigPattern& p, int i) {
  return StrFormat("#%d:%s", i, p.nodes[static_cast<size_t>(i)].tag.c_str());
}

struct StreamElem {
  uint64_t start, end;
  NodeId node;
};

// Sorted (by start) stream of one pattern node's tag.
std::vector<StreamElem> StreamOf(MctDatabase* db, ColorId color,
                                 const std::string& tag,
                                 query::ExecStats* stats,
                                 const ExecContext& ctx) {
  std::vector<StreamElem> out;
  ColoredTree* t = db->tree(color);
  t->EnsureLabels();
  for (NodeId n : db->TagScan(color, tag, ctx.pool)) {  // start order
    out.push_back(StreamElem{t->Start(n), t->End(n), n});
  }
  if (stats != nullptr) stats->rows_scanned += out.size();
  return out;
}

// One PathStackJoin merge pass over the leaf elements with index in
// [leaf_begin, leaf_end), seeded at start label `lo`: every stream cursor
// begins at its first element with start >= lo, and each stack is
// pre-loaded with its *open chain* at lo — the elements whose interval
// contains lo and that have a full ancestor chain in the streams above.
//
// Why seeding is exact (the shard-decomposition argument, DESIGN.md §17):
// an element is on stack i at scan point lo iff (a) its interval contains
// lo — entries whose end has passed are cleaned before any later use, and
// coexisting entries always nest, so stale ones sit on top and vanish at
// the first cleaning — and (b) it was pushed, which required an entry of
// stack i-1 open at its own start; by proper interval nesting that
// ancestor also contains lo. So the stack state at lo is intrinsic to the
// streams (chains of open intervals), not to the scan history, and a task
// can rebuild it with one O(prefix) filter pass per stream. parent_top
// links equal the count of lower-start entries on the stack above, exactly
// as the serial scan would have left them. lo = 0, full leaf range
// reproduces the serial join byte for byte — that IS the serial join.
//
// Emissions fire only on leaf pushes, so the pass emits exactly the
// serial subsequence for its leaf range; concatenating per-shard outputs
// in shard order is the serial output (the document-order streaming
// merge). Appends rows to `out`; returns false on a governor trip.
bool PathStackRange(const TwigPattern& pattern,
                    const std::vector<std::vector<StreamElem>>& streams,
                    const ColoredTree* t, ResourceGovernor* gov,
                    uint64_t lo, size_t leaf_begin, size_t leaf_end,
                    Table* out) {
  const int k = static_cast<int>(pattern.nodes.size());

  struct Entry {
    StreamElem e;
    int parent_top;  // index of S_{i-1}'s top when pushed (-1 when i == 0)
  };
  std::vector<std::vector<Entry>> stacks(static_cast<size_t>(k));
  std::vector<size_t> cursor(static_cast<size_t>(k), 0);

  // Seed cursors and open chains at lo (no-op when lo == 0).
  for (int i = 0; i < k && lo > 0; ++i) {
    const auto& st = streams[static_cast<size_t>(i)];
    size_t c = 0;
    for (; c < st.size() && st[c].start < lo; ++c) {
      if (st[c].end < lo) continue;  // closed before lo
      if (i > 0) {
        // Chain check: some open entry above starts strictly earlier.
        const auto& above = stacks[static_cast<size_t>(i - 1)];
        int ptr = static_cast<int>(above.size()) - 1;
        while (ptr >= 0 &&
               above[static_cast<size_t>(ptr)].e.start >= st[c].start) {
          --ptr;
        }
        if (ptr < 0) continue;
        stacks[static_cast<size_t>(i)].push_back(Entry{st[c], ptr});
      } else {
        stacks[0].push_back(Entry{st[c], -1});
      }
    }
    cursor[static_cast<size_t>(i)] = i == k - 1 ? leaf_begin : c;
  }

  bool stopped = false;
  std::vector<NodeId> partial(static_cast<size_t>(k));
  auto emit_row_ok = [&]() -> bool {
    out->AppendRow(partial);
    if (gov != nullptr && (out->num_rows() & 1023) == 0 &&
        (gov->ShouldStop() ||
         gov->ChargeOrStop(1024 * static_cast<uint64_t>(k) *
                           sizeof(NodeId)))) {
      return false;
    }
    return true;
  };

  // Emits every solution ending at the just-pushed leaf entry.
  auto expand = [&](auto&& self, int level, int max_idx) -> void {
    if (stopped) return;
    if (level < 0) {
      if (!emit_row_ok()) stopped = true;
      return;
    }
    for (int idx = 0; idx <= max_idx && !stopped; ++idx) {
      const Entry& entry = stacks[static_cast<size_t>(level)]
                                 [static_cast<size_t>(idx)];
      // Child-axis edges are verified against the parent pointer; the
      // stacks only guarantee ancestorship.
      if (level + 1 < k &&
          pattern.nodes[static_cast<size_t>(level + 1)].child_axis) {
        NodeId below = partial[static_cast<size_t>(level + 1)];
        if (t->Parent(below) != entry.e.node) continue;
      }
      partial[static_cast<size_t>(level)] = entry.e.node;
      self(self, level - 1, entry.parent_top);
    }
  };

  uint64_t iters = 0;
  while (cursor[static_cast<size_t>(k - 1)] < leaf_end) {
    if (gov != nullptr &&
        (stopped || ((++iters & 1023) == 0 && gov->ShouldStop()))) {
      break;
    }
    // qmin: the stream whose next element has the smallest start.
    int qmin = -1;
    uint64_t min_start = ~0ULL;
    for (int i = 0; i < k; ++i) {
      const size_t limit = i == k - 1 ? leaf_end
                                      : streams[static_cast<size_t>(i)].size();
      if (cursor[static_cast<size_t>(i)] >= limit) continue;
      uint64_t s =
          streams[static_cast<size_t>(i)][cursor[static_cast<size_t>(i)]]
              .start;
      if (s < min_start) {
        min_start = s;
        qmin = i;
      }
    }
    if (qmin < 0) break;
    const StreamElem& e =
        streams[static_cast<size_t>(qmin)][cursor[static_cast<size_t>(qmin)]];
    // Clean every stack of entries that cannot contain e (or anything
    // after it).
    for (auto& s : stacks) {
      while (!s.empty() && s.back().e.end < e.start) s.pop_back();
    }
    // Push when the chain above is extendable. The linked ancestor entry
    // must contain e *strictly* (start < e.start): with a tag repeated
    // along the pattern (a//a) the same element sits on both stacks and
    // must not chain to itself.
    int ptr = -1;
    if (qmin > 0) {
      const auto& above = stacks[static_cast<size_t>(qmin - 1)];
      ptr = static_cast<int>(above.size()) - 1;
      while (ptr >= 0 &&
             above[static_cast<size_t>(ptr)].e.start >= e.start) {
        --ptr;
      }
    }
    if (qmin == 0 || ptr >= 0) {
      stacks[static_cast<size_t>(qmin)].push_back(Entry{e, ptr});
      if (qmin == k - 1) {
        partial[static_cast<size_t>(k - 1)] = e.node;
        expand(expand, k - 2,
               stacks[static_cast<size_t>(qmin)].back().parent_top);
        stacks[static_cast<size_t>(qmin)].pop_back();  // leaves never nest usefully
      }
    }
    cursor[static_cast<size_t>(qmin)]++;
  }
  return !stopped;
}

}  // namespace

bool TwigPattern::IsPath() const {
  std::vector<int> fanout(nodes.size(), 0);
  for (const TwigNode& n : nodes) {
    if (n.parent >= 0) fanout[static_cast<size_t>(n.parent)]++;
  }
  for (int f : fanout) {
    if (f > 1) return false;
  }
  return true;
}

std::vector<std::vector<int>> TwigPattern::RootToLeafPaths() const {
  std::vector<std::vector<int>> kids(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent >= 0) {
      kids[static_cast<size_t>(nodes[i].parent)].push_back(
          static_cast<int>(i));
    }
  }
  std::vector<std::vector<int>> paths;
  std::vector<int> cur;
  // DFS from node 0.
  struct Frame {
    int node;
    size_t next_kid;
  };
  std::vector<Frame> stack{{0, 0}};
  cur.push_back(0);
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& k = kids[static_cast<size_t>(f.node)];
    if (k.empty() && f.next_kid == 0) {
      paths.push_back(cur);
      ++f.next_kid;  // mark leaf done
      stack.pop_back();
      cur.pop_back();
      continue;
    }
    if (f.next_kid < k.size()) {
      int child = k[f.next_kid++];
      stack.push_back({child, 0});
      cur.push_back(child);
    } else {
      stack.pop_back();
      cur.pop_back();
    }
  }
  return paths;
}

Result<Table> PathStackJoin(MctDatabase* db, ColorId color,
                            const TwigPattern& pattern, const ExecContext& ctx) {
  if (!pattern.IsPath()) {
    return Status::InvalidArgument("PathStackJoin requires a path pattern");
  }
  if (pattern.nodes.empty()) {
    return Status::InvalidArgument("empty twig pattern");
  }
  if (ctx.stats != nullptr) ++ctx.stats->structural_joins;  // one holistic join
  const int k = static_cast<int>(pattern.nodes.size());

  Table out;
  for (int i = 0; i < k; ++i) out.vars.push_back(ColName(pattern, i));
  out.cols.resize(out.vars.size());

  // Streams in pattern order (node 0 is the path root), shared read-only
  // by every shard task.
  std::vector<std::vector<StreamElem>> streams;
  for (int i = 0; i < k; ++i) {
    streams.push_back(
        StreamOf(db, color, pattern.nodes[static_cast<size_t>(i)].tag,
                 ctx.stats, ctx));
    if (streams.back().empty()) return out;  // some tag never occurs
  }
  ColoredTree* t = db->tree(color);
  ResourceGovernor* gov = ctx.governor;
  const std::vector<StreamElem>& leaves =
      streams[static_cast<size_t>(k - 1)];

  // Shard fan-out: cut the *leaf* stream into per-shard runs and solve
  // each run as an independent task with stacks seeded at the shard's
  // range start (see PathStackRange). Only the leaf stream is cut — the
  // chain above a leaf lives in earlier shards, so upper streams stay
  // whole per task. Shards with no leaves are skipped outright.
  const ShardMap* sm = db->EnsureShardMap();
  if (sm != nullptr && ctx.pool != nullptr && ctx.pool->num_threads() > 1 &&
      leaves.size() > 1) {
    const size_t ns = static_cast<size_t>(sm->shard_count());
    const std::vector<size_t> cuts =
        sm->CutRuns(color, leaves.size(),
                    [&](size_t i) { return leaves[i].start; });
    std::vector<Table> parts(ns);
    uint64_t tasks = 0;
    for (size_t s = 0; s < ns; ++s) {
      if (cuts[s] != cuts[s + 1]) ++tasks;
    }
    ShardTasksCounter()->Inc(tasks);
    ParallelFor(ctx.pool, ns, [&](size_t s) {
      if (cuts[s] == cuts[s + 1]) return;  // no leaves here
      if (gov != nullptr && gov->ShouldStop()) return;
      Table& part = parts[s];
      part.vars = out.vars;
      part.cols.resize(out.vars.size());
      uint64_t lo = sm->Range(color, static_cast<int>(s)).first;
      PathStackRange(pattern, streams, t, gov, lo, cuts[s], cuts[s + 1],
                     &part);
    });
    // Document-order streaming merge: shard ranges are disjoint and
    // ordered, so concatenating per-shard solutions in shard order is the
    // serial output sequence.
    size_t total = 0;
    for (const Table& p : parts) total += p.num_rows();
    ShardMergeRowsCounter()->Inc(total);
    for (size_t j = 0; j < out.cols.size(); ++j) out.cols[j].reserve(total);
    for (Table& p : parts) {
      for (size_t j = 0; j < out.cols.size(); ++j) {
        out.cols[j].insert(out.cols[j].end(), p.cols[j].begin(),
                           p.cols[j].end());
      }
    }
  } else {
    PathStackRange(pattern, streams, t, gov, 0, 0, leaves.size(), &out);
  }
  // A governed abort must never surface its truncated table as a result.
  if (gov != nullptr && gov->tripped()) return gov->status();
  return out;
}

Result<Table> TwigStackJoin(MctDatabase* db, ColorId color,
                            const TwigPattern& pattern, const ExecContext& ctx) {
  if (pattern.nodes.empty()) {
    return Status::InvalidArgument("empty twig pattern");
  }
  auto paths = pattern.RootToLeafPaths();
  // Solve each root-to-leaf path holistically.
  std::vector<Table> tables;
  for (const auto& path : paths) {
    TwigPattern sub;
    for (size_t j = 0; j < path.size(); ++j) {
      const TwigNode& n = pattern.nodes[static_cast<size_t>(path[j])];
      sub.Add(static_cast<int>(j) - 1, n.tag, n.child_axis);
    }
    MCT_ASSIGN_OR_RETURN(Table t, PathStackJoin(db, color, sub, ctx));
    // Rename columns back to the global pattern indices.
    for (size_t j = 0; j < path.size(); ++j) {
      t.vars[j] = ColName(pattern, path[j]);
    }
    tables.push_back(std::move(t));
  }
  // Merge path solutions on their shared columns.
  Table acc = std::move(tables[0]);
  for (size_t pi = 1; pi < tables.size(); ++pi) {
    Table& right = tables[pi];
    // Columns shared with acc (by name) and right-only columns.
    std::vector<int> shared_l, shared_r, extra_r;
    for (size_t j = 0; j < right.vars.size(); ++j) {
      int li = acc.ColumnOf(right.vars[j]);
      if (li >= 0) {
        shared_l.push_back(li);
        shared_r.push_back(static_cast<int>(j));
      } else {
        extra_r.push_back(static_cast<int>(j));
      }
    }
    auto key_of = [](const Table& t, size_t row,
                     const std::vector<int>& cols) {
      std::string key;
      for (int c : cols) {
        NodeId v = t.At(row, c);
        key.append(reinterpret_cast<const char*>(&v), sizeof(NodeId));
      }
      return key;
    };
    // Join scratch (string keys + row-index vectors, ~64 bytes/entry).
    if (ctx.governor != nullptr) {
      MCT_RETURN_IF_ERROR(ctx.governor->Charge(right.num_rows() * 64));
    }
    std::unordered_map<std::string, std::vector<uint32_t>> ht;
    for (size_t i = 0; i < right.num_rows(); ++i) {
      ht[key_of(right, i, shared_r)].push_back(static_cast<uint32_t>(i));
    }
    std::vector<std::string> merged_vars = acc.vars;
    for (int c : extra_r) {
      merged_vars.push_back(right.vars[static_cast<size_t>(c)]);
    }
    Table merged = Table::WithVars(std::move(merged_vars));
    if (ctx.batch) {
      // Collect matching (acc row, right row) pairs, then materialize both
      // sides with column-at-a-time gathers.
      std::vector<uint32_t> li, ri;
      for (size_t i = 0; i < acc.num_rows(); ++i) {
        if (ctx.governor != nullptr && (i & 1023) == 0) {
          MCT_RETURN_IF_ERROR(ctx.governor->Check());
        }
        auto it = ht.find(key_of(acc, i, shared_l));
        if (it == ht.end()) continue;
        for (uint32_t r : it->second) {
          li.push_back(static_cast<uint32_t>(i));
          ri.push_back(r);
        }
      }
      const size_t acc_cols = acc.num_cols();
      // Merged output buffers (Table::GatherInto has no ExecContext, so
      // the charge happens here).
      if (ctx.governor != nullptr) {
        MCT_RETURN_IF_ERROR(ctx.governor->Charge(
            li.size() * merged.num_cols() * sizeof(NodeId)));
      }
      Table::GatherInto(acc, li, &merged, 0);
      // Project the right side down to its extra columns first (a column
      // move, no cell copies), so the gather touches only those.
      Table rex = Project(std::move(right), extra_r);
      Table::GatherInto(rex, ri, &merged, acc_cols);
    } else {
      for (size_t i = 0; i < acc.num_rows(); ++i) {
        if (ctx.governor != nullptr && (i & 1023) == 0) {
          MCT_RETURN_IF_ERROR(ctx.governor->Check());
        }
        auto it = ht.find(key_of(acc, i, shared_l));
        if (it == ht.end()) continue;
        std::vector<NodeId> lrow = acc.RowAt(i);
        for (uint32_t ri : it->second) {
          std::vector<NodeId> row = lrow;
          for (int c : extra_r) {
            row.push_back(right.At(ri, c));
          }
          merged.AppendRow(row);
        }
      }
    }
    acc = std::move(merged);
  }
  // Normalize column order to pattern index order.
  std::vector<int> order;
  for (size_t i = 0; i < pattern.nodes.size(); ++i) {
    order.push_back(acc.ColumnOf(ColName(pattern, static_cast<int>(i))));
  }
  return Project(std::move(acc), order);
}

}  // namespace mct::query

#include "storage/file_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "storage/io_util.h"

namespace mct {

namespace {

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t offset)
      : fd_(fd), path_(std::move(path)), offset_(offset) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError("append to closed file " + path_);
    MCT_RETURN_IF_ERROR(
        PWriteFull(fd_, data.data(), data.size(), offset_, path_));
    offset_ += data.size();
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync of closed file " + path_);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
  uint64_t offset_;
};

class PosixFileEnv : public FileEnv {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate_existing) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    if (truncate_existing) flags |= O_TRUNC;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    uint64_t offset = 0;
    if (!truncate_existing) {
      struct stat st;
      if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        return ErrnoStatus("fstat", path, err);
      }
      offset = static_cast<uint64_t>(st.st_size);
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(fd, path, offset));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      int err = errno;
      if (err == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("open", path, err);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat", path, err);
    }
    std::string out(static_cast<size_t>(st.st_size), '\0');
    Status s = out.empty() ? Status::OK()
                           : PReadFull(fd, out.data(), out.size(), 0, path);
    ::close(fd);
    if (!s.ok()) return s;
    return out;
  }

  Result<bool> FileExists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT || errno == ENOTDIR) return false;
    return ErrnoStatus("stat", path, errno);
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path, errno);
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
    std::vector<std::string> names;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return ErrnoStatus("mkdir", dir, errno);
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", dir, errno);
    int rc = ::fsync(fd);
    int err = errno;
    ::close(fd);
    // Some filesystems reject fsync on directories; the rename durability
    // they provide without it is the best available.
    if (rc != 0 && err != EINVAL && err != EBADF) {
      return ErrnoStatus("fsync dir", dir, err);
    }
    return Status::OK();
  }
};

}  // namespace

FileEnv* FileEnv::Default() {
  static PosixFileEnv* env = new PosixFileEnv();
  return env;
}

}  // namespace mct

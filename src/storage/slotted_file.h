// SlottedFile: variable-size records over slotted pages. Element content
// (text values) is stored here, exactly once per node regardless of how many
// colors the node has — the storage-sharing property at the heart of the
// MCT physical design (paper Section 6.2).
//
// Page layout:
//   [u16 num_slots][u16 free_end]  header (4 bytes)
//   [u16 offset, u16 length] * num_slots  slot directory, grows up
//   ... free space ...
//   record bytes, grow down from free_end
// A deleted slot has length 0xFFFF.

#ifndef COLORFUL_XML_STORAGE_SLOTTED_FILE_H_
#define COLORFUL_XML_STORAGE_SLOTTED_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace mct {

/// Identifier of a record in a SlottedFile: (page ordinal << 16) | slot.
using SlotId = uint64_t;

inline constexpr SlotId kInvalidSlotId = ~0ULL;

class SlottedFile {
 public:
  explicit SlottedFile(BufferPool* pool) : pool_(pool) {}

  SlottedFile(const SlottedFile&) = delete;
  SlottedFile& operator=(const SlottedFile&) = delete;

  /// Maximum record payload a single page can hold.
  static constexpr uint32_t kMaxRecordSize = kPageSize - 4 - 4;

  /// Appends `data`; returns its SlotId.
  Result<SlotId> Append(std::string_view data);

  /// Reads the record at `id`.
  Result<std::string> Read(SlotId id) const;

  /// Replaces the record at `id`. In-place when the new data fits in the old
  /// slot's space; otherwise the old slot is tombstoned and a new SlotId is
  /// returned. Always returns the record's current SlotId.
  Result<SlotId> Update(SlotId id, std::string_view data);

  /// Tombstones the record at `id`.
  Status Delete(SlotId id);

  uint64_t num_records() const { return num_records_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(pages_.size()) * kPageSize;
  }

 private:
  struct PageInfo {
    PageId page_id;
    uint32_t free_bytes;  // usable free space (between slot dir and free_end)
  };

  static constexpr uint16_t kTombstoneLen = 0xFFFF;

  Status Locate(SlotId id, PageId* page, uint32_t* slot) const;

  BufferPool* pool_;
  std::vector<PageInfo> pages_;
  uint64_t num_records_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_SLOTTED_FILE_H_

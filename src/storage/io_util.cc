#include "storage/io_util.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "common/strings.h"

namespace mct {

namespace {

IoSyscallHooks* Hooks() {
  static IoSyscallHooks hooks;
  return &hooks;
}

ssize_t DoPRead(int fd, void* buf, size_t n, off_t off) {
  const auto& hook = Hooks()->pread;
  return hook ? hook(fd, buf, n, off) : ::pread(fd, buf, n, off);
}

ssize_t DoPWrite(int fd, const void* buf, size_t n, off_t off) {
  const auto& hook = Hooks()->pwrite;
  return hook ? hook(fd, buf, n, off) : ::pwrite(fd, buf, n, off);
}

}  // namespace

void SetIoSyscallHooksForTest(IoSyscallHooks hooks) { *Hooks() = std::move(hooks); }

void ClearIoSyscallHooksForTest() { *Hooks() = IoSyscallHooks{}; }

Status ErrnoStatus(const std::string& op, const std::string& target, int err) {
  return Status::IOError(op + " " + target + ": " + std::strerror(err));
}

Status PReadFull(int fd, char* buf, size_t n, uint64_t offset,
                 const std::string& what) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = DoPRead(fd, buf + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", what, errno);
    }
    if (r == 0) {
      return Status::IOError(StrFormat("short read of %s: got %zu of %zu bytes",
                                       what.c_str(), done, n));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PWriteFull(int fd, const char* buf, size_t n, uint64_t offset,
                  const std::string& what) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = DoPWrite(fd, buf + done, n - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", what, errno);
    }
    if (r == 0) {
      // POSIX never returns 0 for n > 0; bail rather than spin.
      return Status::IOError(StrFormat(
          "zero-length write to %s: got %zu of %zu bytes", what.c_str(), done,
          n));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace mct

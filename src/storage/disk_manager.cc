#include "storage/disk_manager.h"

#include <cstring>

#include "common/strings.h"

namespace mct {

Status DiskManager::OpenFile(const std::string& path,
                             std::unique_ptr<DiskManager>* out) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    f = std::fopen(path.c_str(), "w+b");
  }
  if (f == nullptr) {
    return Status::IOError("cannot open storage file: " + path);
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager());
  dm->file_ = f;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed on: " + path);
  }
  long size = std::ftell(f);
  if (size < 0) return Status::IOError("ftell failed on: " + path);
  dm->num_pages_ = static_cast<uint32_t>(static_cast<uint64_t>(size) / kPageSize);
  *out = std::move(dm);
  return Status::OK();
}

std::unique_ptr<DiskManager> DiskManager::CreateInMemory() {
  return std::unique_ptr<DiskManager>(new DiskManager());
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId DiskManager::AllocatePage() {
  PageId id = num_pages_++;
  if (file_ == nullptr) {
    auto page = std::make_unique<char[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    mem_pages_.push_back(std::move(page));
  } else {
    // Extend the file with a zero page so reads of fresh pages succeed.
    char zeros[kPageSize];
    std::memset(zeros, 0, kPageSize);
    std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET);
    std::fwrite(zeros, 1, kPageSize, file_);
  }
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("read of page %u beyond %u allocated pages", id, num_pages_));
  }
  if (file_ == nullptr) {
    std::memcpy(out, mem_pages_[id].get(), kPageSize);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("short read of page %u", id));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("write of page %u beyond %u allocated pages", id, num_pages_));
  }
  if (file_ == nullptr) {
    std::memcpy(mem_pages_[id].get(), data, kPageSize);
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  if (std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("short write of page %u", id));
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::IOError("fflush failed");
  }
  return Status::OK();
}

}  // namespace mct

#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"
#include "storage/io_util.h"

namespace mct {

Status DiskManager::OpenFile(const std::string& path,
                             std::unique_ptr<DiskManager>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return ErrnoStatus("open storage file", path, errno);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return ErrnoStatus("fstat", path, err);
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager());
  dm->fd_ = fd;
  dm->path_ = path;
  dm->num_pages_ =
      static_cast<uint32_t>(static_cast<uint64_t>(st.st_size) / kPageSize);
  *out = std::move(dm);
  return Status::OK();
}

std::unique_ptr<DiskManager> DiskManager::CreateInMemory() {
  return std::unique_ptr<DiskManager>(new DiskManager());
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    // Destruction is the last chance to make WritePage traffic durable;
    // errors here have no caller to report to.
    ::fsync(fd_);
    ::close(fd_);
  }
}

PageId DiskManager::AllocatePage() {
  PageId id = num_pages_++;
  if (fd_ < 0) {
    auto page = std::make_unique<char[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    mem_pages_.push_back(std::move(page));
  } else {
    // Extend the file with a zero page so reads of fresh pages succeed.
    char zeros[kPageSize];
    std::memset(zeros, 0, kPageSize);
    (void)PWriteFull(fd_, zeros, kPageSize,
                     static_cast<uint64_t>(id) * kPageSize, path_);
  }
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) {
  if (id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("read of page %u beyond %u allocated pages", id, num_pages_));
  }
  if (fd_ < 0) {
    std::memcpy(out, mem_pages_[id].get(), kPageSize);
    return Status::OK();
  }
  return PReadFull(fd_, out, kPageSize, static_cast<uint64_t>(id) * kPageSize,
                   StrFormat("page %u of %s", id, path_.c_str()));
}

Status DiskManager::WritePage(PageId id, const char* data) {
  if (id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("write of page %u beyond %u allocated pages", id,
                  num_pages_));
  }
  if (fd_ < 0) {
    std::memcpy(mem_pages_[id].get(), data, kPageSize);
    return Status::OK();
  }
  return PWriteFull(fd_, data, kPageSize, static_cast<uint64_t>(id) * kPageSize,
                    StrFormat("page %u of %s", id, path_.c_str()));
}

Status DiskManager::Sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    return ErrnoStatus("fsync", path_, errno);
  }
  return Status::OK();
}

}  // namespace mct

// DiskManager: allocation and page-granular I/O over a single storage file.
//
// Two backings are supported:
//  * file-backed  — a real file on disk accessed through a POSIX fd with
//    positioned reads/writes that retry EINTR and short transfers (a signal
//    mid-pwrite must not become a torn page), used by examples and
//    persistence tests;
//  * in-memory    — an anonymous page vector, used by benchmarks so timing
//    measures the engine (the paper reports warm-cache numbers; an in-memory
//    backing is the warm-cache limit).
//
// Either way, all page traffic flows through the BufferPool, and the number
// of allocated pages is the storage footprint reported in Table 1.
//
// Destruction of a file-backed manager syncs: pages written through
// WritePage are durable once the manager (and any pool flushing into it)
// is gone, without requiring an explicit Sync() from every caller.

#ifndef COLORFUL_XML_STORAGE_DISK_MANAGER_H_
#define COLORFUL_XML_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace mct {

class DiskManager {
 public:
  /// Opens (creating if absent) a file-backed manager.
  static Status OpenFile(const std::string& path,
                         std::unique_ptr<DiskManager>* out);

  /// Creates an in-memory manager.
  static std::unique_ptr<DiskManager> CreateInMemory();

  /// Best-effort Sync() then close for file backings.
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh zeroed page and returns its id.
  PageId AllocatePage();

  /// Reads page `id` into `out` (kPageSize bytes).
  Status ReadPage(PageId id, char* out);

  /// Writes kPageSize bytes from `data` to page `id`.
  Status WritePage(PageId id, const char* data);

  /// Number of allocated pages.
  uint32_t num_pages() const { return num_pages_; }

  /// Total allocated bytes (pages * page size).
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(num_pages_) * kPageSize;
  }

  /// fsyncs file contents to stable storage (no-op for in-memory backing).
  Status Sync();

  bool in_memory() const { return fd_ < 0; }

 private:
  DiskManager() = default;

  int fd_ = -1;  // < 0 => in-memory
  std::string path_;
  std::vector<std::unique_ptr<char[]>> mem_pages_;
  uint32_t num_pages_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_DISK_MANAGER_H_

// FileEnv: the filesystem surface the durability layer (WAL, checkpoints,
// recovery) goes through. Everything that must survive a crash — appends,
// fsyncs, renames, truncates, directory listings — is a virtual call here,
// so FaultInjectionEnv (fault_env.h) can substitute a deterministic
// in-memory filesystem with named failure points and simulated crashes,
// while production uses the POSIX implementation behind Default().
//
// Durability contract (matched by both implementations):
//  * WritableFile::Append buffers in the OS — data is readable immediately
//    but survives a crash only after Sync().
//  * RenameFile is atomic: readers see the old file or the new, never a mix.
//  * SyncDir makes preceding renames/creates/removes in that directory
//    durable.

#ifndef COLORFUL_XML_STORAGE_FILE_ENV_H_
#define COLORFUL_XML_STORAGE_FILE_ENV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace mct {

class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Makes every byte appended so far durable.
  virtual Status Sync() = 0;
  /// Releases the handle; does NOT imply durability.
  virtual Status Close() = 0;
};

class FileEnv {
 public:
  virtual ~FileEnv() = default;

  /// The process-wide POSIX environment.
  static FileEnv* Default();

  /// Opens `path` for writing; `truncate_existing` starts from empty,
  /// otherwise appends at the current end.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate_existing) = 0;

  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual Result<bool> FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  /// Entry names (not full paths), unordered.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  virtual Status SyncDir(const std::string& dir) = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_FILE_ENV_H_

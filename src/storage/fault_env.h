// FaultInjectionEnv: a deterministic in-memory FileEnv for crash-recovery
// testing. Every file tracks a durable part (synced) and a volatile tail
// (appended but not yet synced); reads see both, like the OS page cache,
// and SimulateCrash discards the volatile tails — optionally keeping an
// arbitrary prefix of one file's tail, which is how tests manufacture torn
// WAL records at every byte boundary.
//
// Named failure points arm one-shot errors on the Nth matching append, the
// next rename / truncate / remove / sync. After a failure point fires the
// environment keeps working, so a test can arm a fault, watch the operation
// fail, crash, and then run recovery against the same environment.
//
// Metadata model: creates, renames and removes take effect immediately and
// survive SimulateCrash (as if every directory op were synchronously
// journaled). The lost-rename crash mode is therefore expressed as
// FailNextRename — from recovery's viewpoint the two are identical.
//
// Writers created before a crash belong to the pre-crash epoch and fail all
// subsequent operations, preventing a stale handle from "writing through"
// the simulated power cut.

#ifndef COLORFUL_XML_STORAGE_FAULT_ENV_H_
#define COLORFUL_XML_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/file_env.h"

namespace mct {

class FaultInjectionEnv : public FileEnv {
 public:
  FaultInjectionEnv() = default;

  // ---- Failure points ----

  /// Fails the `nth` (1-based) Append to a path containing `path_substring`
  /// with IOError. Counting starts when armed; one-shot.
  void FailNthAppend(const std::string& path_substring, int nth) {
    append_fault_.substring = path_substring;
    append_fault_.remaining = nth;
  }
  void FailNextRename() { fail_next_rename_ = true; }
  void FailNextTruncate() { fail_next_truncate_ = true; }
  void FailNextRemove() { fail_next_remove_ = true; }
  void FailNextSync() { fail_next_sync_ = true; }
  void ClearFaults() {
    append_fault_ = AppendFault{};
    fail_next_rename_ = fail_next_truncate_ = false;
    fail_next_remove_ = fail_next_sync_ = false;
  }

  // ---- Crash simulation ----

  /// Discards all unsynced data in every file; open writers become dead.
  void SimulateCrash() { SimulateCrashKeepingPrefix("", 0); }

  /// Like SimulateCrash, but the file whose path contains `path_substring`
  /// keeps the first `bytes` bytes of its unsynced tail (a torn write).
  void SimulateCrashKeepingPrefix(const std::string& path_substring,
                                  size_t bytes);

  // ---- Introspection ----

  uint64_t num_appends() const { return num_appends_; }
  uint64_t num_syncs() const { return num_syncs_; }
  uint64_t num_renames() const { return num_renames_; }
  /// Unsynced tail length of `path` (0 if absent).
  uint64_t UnsyncedBytes(const std::string& path) const;

  // ---- FileEnv ----

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate_existing) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

 private:
  friend class FaultWritableFile;

  struct FileState {
    std::string synced;
    std::string unsynced;
  };
  struct AppendFault {
    std::string substring;
    int remaining = 0;  // 0 = disarmed
  };

  // Called by FaultWritableFile.
  Status DoAppend(const std::string& path, std::string_view data,
                  uint64_t epoch);
  Status DoSync(const std::string& path, uint64_t epoch);

  std::map<std::string, FileState> files_;
  std::vector<std::string> dirs_;
  AppendFault append_fault_;
  bool fail_next_rename_ = false;
  bool fail_next_truncate_ = false;
  bool fail_next_remove_ = false;
  bool fail_next_sync_ = false;
  uint64_t epoch_ = 0;  // bumped on every simulated crash
  uint64_t num_appends_ = 0;
  uint64_t num_syncs_ = 0;
  uint64_t num_renames_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_FAULT_ENV_H_

// Write-ahead log of logical redo records.
//
// File layout:
//   magic "MCTWAL01" (8 bytes)
//   record*:  u32 crc32c | u32 payload_len | u64 lsn | u8 type | payload
//
// The CRC covers everything after itself (payload_len, lsn, type, payload),
// so a torn or bit-flipped record — including a corrupted length — fails
// verification. LSNs are assigned by the writer and strictly increase
// within a file; the reader treats any violation (bad CRC, short header,
// payload past EOF, non-monotonic LSN, absurd length) as the start of a
// torn tail: it returns every record before it plus the byte offset of the
// valid prefix, and recovery truncates the file there.
//
// Group commit: Append only buffers (one env Append); Sync issues a single
// fsync covering every record appended since the previous Sync. Callers
// running batches disable per-statement sync (EvalOptions::wal_sync_each)
// and sync once per batch.

#ifndef COLORFUL_XML_STORAGE_WAL_H_
#define COLORFUL_XML_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "storage/file_env.h"

namespace mct {

enum class WalRecordType : uint8_t {
  /// Payload: u32 default_color | canonical MCXQuery update statement text.
  kUpdateStatement = 1,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kUpdateStatement;
  std::string payload;
};

struct WalContents {
  std::vector<WalRecord> records;
  /// Byte length of the well-formed prefix (magic + whole valid records).
  uint64_t valid_bytes = 0;
  /// True when trailing bytes past valid_bytes exist (torn final record).
  bool torn_tail = false;
  /// Largest LSN seen; 0 when empty.
  uint64_t max_lsn = 0;
};

/// Reads a WAL. A missing or empty file yields empty contents; a file whose
/// leading magic is wrong is Corruption (it is not a WAL at all); a torn
/// tail is reported, not an error.
Result<WalContents> ReadWal(FileEnv* env, const std::string& path);

class WalWriter {
 public:
  /// Opens `path` for appending with LSNs starting at `next_lsn`.
  /// `truncate` starts a fresh log (magic rewritten); otherwise the caller
  /// must have repaired any torn tail first (see RecoverDatabase).
  static Result<std::unique_ptr<WalWriter>> Open(FileEnv* env,
                                                 const std::string& path,
                                                 uint64_t next_lsn,
                                                 bool truncate);

  /// Buffers one record; returns its LSN. Durable only after Sync().
  Result<uint64_t> Append(WalRecordType type, std::string_view payload);

  /// One fsync covering every append since the last Sync; no-op when clean.
  Status Sync();

  uint64_t next_lsn() const { return next_lsn_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path,
            uint64_t next_lsn);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  uint64_t next_lsn_;
  bool dirty_;
  Counter* m_appends_;
  Counter* m_bytes_;
  Counter* m_fsyncs_;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_WAL_H_

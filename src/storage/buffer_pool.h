// BufferPool: fixed-size frame cache over a DiskManager with LRU eviction
// and pin counting. All higher storage layers (RecordFile, SlottedFile,
// BPlusTree) access pages exclusively through PageGuard handles obtained
// here, mirroring how a native XML engine such as Timber manages its
// buffer pool (the paper configured a 256 MB pool; ours is configurable).

#ifndef COLORFUL_XML_STORAGE_BUFFER_POOL_H_
#define COLORFUL_XML_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace mct {

class BufferPool;

/// RAII pin on one buffered page. Movable, not copyable. Writing through
/// MutableData() marks the frame dirty; it is written back on eviction or
/// FlushAll().
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, uint32_t frame, PageId page_id)
      : pool_(pool), frame_(frame), page_id_(page_id) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  const char* Data() const;
  /// Mutable view of the page; marks it dirty.
  char* MutableData();

  /// Drops the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

class BufferPool {
 public:
  /// `capacity_pages` frames over `disk` (not owned). `label` names this
  /// pool's metric instruments: empty (the default) keeps the legacy
  /// process-wide "mct.buffer_pool.*" names, a non-empty label registers
  /// "mct.buffer_pool.<label>.*" so co-resident pools (per-shard pools,
  /// side-by-side databases) report hits/misses/evictions separately
  /// instead of folding into one process-global stream.
  BufferPool(DiskManager* disk, uint32_t capacity_pages,
             const std::string& label = std::string());

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh page on disk and pins it.
  Result<PageGuard> NewPage();

  /// Writes back every dirty frame.
  Status FlushAll();

  /// Drops all unpinned frames (after FlushAll this simulates a cold cache).
  Status EvictAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint32_t capacity() const { return static_cast<uint32_t>(frames_.size()); }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<char[]> data;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0.
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(uint32_t frame, PageId page_id);
  void MarkDirty(uint32_t frame) { frames_[frame].dirty = true; }
  const char* FrameData(uint32_t frame) const {
    return frames_[frame].data.get();
  }
  char* FrameMutableData(uint32_t frame) {
    frames_[frame].dirty = true;
    return frames_[frame].data.get();
  }

  /// Finds a frame to hold a new page: a free frame, or evicts the LRU
  /// unpinned frame (flushing it when dirty).
  Result<uint32_t> GetVictimFrame();

  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> free_frames_;
  std::list<uint32_t> lru_;  // front = most recently used
  std::unordered_map<PageId, uint32_t> page_table_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  // Metric instruments (common/metrics.h), looked up once at construction
  // and bumped alongside the per-pool counters above. Labeled pools get
  // their own "mct.buffer_pool.<label>.*" instruments, so eviction stats
  // stay attributable per pool instead of merging process-globally.
  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_BUFFER_POOL_H_

#include "storage/buffer_pool.h"

#include <cstring>

#include "common/strings.h"

namespace mct {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

const char* PageGuard::Data() const { return pool_->FrameData(frame_); }

char* PageGuard::MutableData() { return pool_->FrameMutableData(frame_); }

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, page_id_);
    pool_ = nullptr;
  }
}

namespace {

// Labeled pools register "mct.buffer_pool.<label>.<stat>"; the unlabeled
// default keeps the legacy process-wide "mct.buffer_pool.<stat>" names.
std::string PoolMetricName(const std::string& label, const char* stat) {
  std::string name = "mct.buffer_pool.";
  if (!label.empty()) {
    name += label;
    name += '.';
  }
  name += stat;
  return name;
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, uint32_t capacity_pages,
                       const std::string& label)
    : disk_(disk),
      m_hits_(MetricsRegistry::Global().counter(PoolMetricName(label, "hits"))),
      m_misses_(
          MetricsRegistry::Global().counter(PoolMetricName(label, "misses"))),
      m_evictions_(MetricsRegistry::Global().counter(
          PoolMetricName(label, "evictions"))) {
  frames_.resize(capacity_pages);
  free_frames_.reserve(capacity_pages);
  for (uint32_t i = 0; i < capacity_pages; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(capacity_pages - 1 - i);
  }
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    m_hits_->Inc();
    Frame& f = frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageGuard(this, it->second, id);
  }
  ++misses_;
  m_misses_->Inc();
  MCT_ASSIGN_OR_RETURN(uint32_t frame, GetVictimFrame());
  Frame& f = frames_[frame];
  MCT_RETURN_IF_ERROR(disk_->ReadPage(id, f.data.get()));
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  page_table_[id] = frame;
  return PageGuard(this, frame, id);
}

Result<PageGuard> BufferPool::NewPage() {
  PageId id = disk_->AllocatePage();
  MCT_ASSIGN_OR_RETURN(uint32_t frame, GetVictimFrame());
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  page_table_[id] = frame;
  return PageGuard(this, frame, id);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      MCT_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.get()));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  MCT_RETURN_IF_ERROR(FlushAll());
  for (uint32_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId || f.pin_count > 0) continue;
    page_table_.erase(f.page_id);
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    f.page_id = kInvalidPageId;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

void BufferPool::Unpin(uint32_t frame, PageId page_id) {
  Frame& f = frames_[frame];
  // The guard outlived an eviction cycle only if pins were mismanaged;
  // pin_count > 0 is an invariant here.
  if (f.page_id != page_id || f.pin_count == 0) return;
  if (--f.pin_count == 0) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Result<uint32_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    uint32_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::Internal(
        StrFormat("buffer pool exhausted: all %zu frames pinned",
                  frames_.size()));
  }
  uint32_t frame = lru_.back();
  lru_.pop_back();
  ++evictions_;
  m_evictions_->Inc();
  Frame& f = frames_[frame];
  f.in_lru = false;
  if (f.dirty) {
    MCT_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.get()));
    f.dirty = false;
  }
  page_table_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  return frame;
}

}  // namespace mct

// Page constants and identifiers for the paged storage layer.
//
// The paper's experimental setup used 8 KB data pages (Section 7); we use the
// same page size so storage sizes in Table 1 are computed on equal footing.

#ifndef COLORFUL_XML_STORAGE_PAGE_H_
#define COLORFUL_XML_STORAGE_PAGE_H_

#include <cstdint>

namespace mct {

using PageId = uint32_t;

inline constexpr uint32_t kPageSize = 8192;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_PAGE_H_

// RecordFile: an append-mostly file of fixed-size records over buffered
// pages. Structural nodes (one per node per color, Timber decomposition) and
// attribute records live in RecordFiles.

#ifndef COLORFUL_XML_STORAGE_RECORD_FILE_H_
#define COLORFUL_XML_STORAGE_RECORD_FILE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace mct {

class RecordFile {
 public:
  /// `record_size` must be in [1, kPageSize].
  RecordFile(BufferPool* pool, uint32_t record_size);

  RecordFile(const RecordFile&) = delete;
  RecordFile& operator=(const RecordFile&) = delete;

  /// Appends one record (exactly record_size bytes); returns its index.
  Result<uint64_t> Append(const void* record);

  /// Reads record `index` into `out` (record_size bytes).
  Status Read(uint64_t index, void* out) const;

  /// Overwrites record `index`.
  Status Write(uint64_t index, const void* record);

  uint64_t num_records() const { return num_records_; }
  uint32_t record_size() const { return record_size_; }

  /// Pages owned by this file.
  uint32_t num_pages() const { return static_cast<uint32_t>(pages_.size()); }
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(pages_.size()) * kPageSize;
  }

 private:
  Status Locate(uint64_t index, PageId* page, uint32_t* offset) const;

  BufferPool* pool_;
  uint32_t record_size_;
  uint32_t records_per_page_;
  std::vector<PageId> pages_;
  uint64_t num_records_ = 0;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_RECORD_FILE_H_

#include "storage/slotted_file.h"

#include <cstring>

#include "common/strings.h"

namespace mct {

namespace {

uint16_t ReadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

Result<SlotId> SlottedFile::Append(std::string_view data) {
  if (data.size() > kMaxRecordSize) {
    return Status::InvalidArgument(
        StrFormat("record of %zu bytes exceeds page capacity", data.size()));
  }
  // 4 bytes for the new slot directory entry plus the payload.
  uint32_t needed = static_cast<uint32_t>(data.size()) + 4;
  size_t page_no = pages_.size();
  // First-fit over the tail page only: content loads are append-heavy, and
  // scanning all pages would make bulk load quadratic.
  if (!pages_.empty() && pages_.back().free_bytes >= needed) {
    page_no = pages_.size() - 1;
  }
  if (page_no == pages_.size()) {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
    char* p = guard.MutableData();
    WriteU16(p, 0);                       // num_slots
    WriteU16(p + 2, static_cast<uint16_t>(kPageSize));  // free_end
    pages_.push_back(PageInfo{guard.page_id(), kPageSize - 4});
  }
  PageInfo& info = pages_[page_no];
  MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(info.page_id));
  char* p = guard.MutableData();
  uint16_t num_slots = ReadU16(p);
  uint32_t free_end = ReadU16(p + 2);
  uint32_t data_start = free_end - static_cast<uint32_t>(data.size());
  std::memcpy(p + data_start, data.data(), data.size());
  uint32_t slot_off = 4 + static_cast<uint32_t>(num_slots) * 4;
  WriteU16(p + slot_off, static_cast<uint16_t>(data_start));
  WriteU16(p + slot_off + 2, static_cast<uint16_t>(data.size()));
  WriteU16(p, static_cast<uint16_t>(num_slots + 1));
  WriteU16(p + 2, static_cast<uint16_t>(data_start));
  info.free_bytes -= needed;
  ++num_records_;
  return (static_cast<SlotId>(page_no) << 16) | num_slots;
}

Status SlottedFile::Locate(SlotId id, PageId* page, uint32_t* slot) const {
  size_t page_no = static_cast<size_t>(id >> 16);
  if (page_no >= pages_.size()) {
    return Status::OutOfRange("slot id refers to unknown page");
  }
  *page = pages_[page_no].page_id;
  *slot = static_cast<uint32_t>(id & 0xFFFF);
  return Status::OK();
}

Result<std::string> SlottedFile::Read(SlotId id) const {
  PageId page;
  uint32_t slot;
  MCT_RETURN_IF_ERROR(Locate(id, &page, &slot));
  MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
  const char* p = guard.Data();
  uint16_t num_slots = ReadU16(p);
  if (slot >= num_slots) return Status::OutOfRange("slot beyond directory");
  uint32_t off = ReadU16(p + 4 + slot * 4);
  uint16_t len = ReadU16(p + 4 + slot * 4 + 2);
  if (len == kTombstoneLen) return Status::NotFound("record deleted");
  return std::string(p + off, len);
}

Result<SlotId> SlottedFile::Update(SlotId id, std::string_view data) {
  PageId page;
  uint32_t slot;
  MCT_RETURN_IF_ERROR(Locate(id, &page, &slot));
  {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
    char* p = guard.MutableData();
    uint16_t num_slots = ReadU16(p);
    if (slot >= num_slots) return Status::OutOfRange("slot beyond directory");
    uint32_t off = ReadU16(p + 4 + slot * 4);
    uint16_t len = ReadU16(p + 4 + slot * 4 + 2);
    if (len == kTombstoneLen) return Status::NotFound("record deleted");
    if (data.size() <= len && data.size() <= 0xFFFE) {
      std::memcpy(p + off, data.data(), data.size());
      // Keep the original offset; shrink the recorded length.
      WriteU16(p + 4 + slot * 4 + 2, static_cast<uint16_t>(data.size()));
      return id;
    }
    WriteU16(p + 4 + slot * 4 + 2, kTombstoneLen);
    --num_records_;
  }
  return Append(data);
}

Status SlottedFile::Delete(SlotId id) {
  PageId page;
  uint32_t slot;
  MCT_RETURN_IF_ERROR(Locate(id, &page, &slot));
  MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
  char* p = guard.MutableData();
  uint16_t num_slots = ReadU16(p);
  if (slot >= num_slots) return Status::OutOfRange("slot beyond directory");
  uint16_t len = ReadU16(p + 4 + slot * 4 + 2);
  if (len == kTombstoneLen) return Status::NotFound("record already deleted");
  WriteU16(p + 4 + slot * 4 + 2, kTombstoneLen);
  --num_records_;
  return Status::OK();
}

}  // namespace mct

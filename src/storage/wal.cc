#include "storage/wal.h"

#include <cstring>

#include "common/crc32c.h"

namespace mct {

namespace {

constexpr char kWalMagic[8] = {'M', 'C', 'T', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderSize = 4 + 4 + 8 + 1;  // crc, len, lsn, type
// Records are update statements — a gigabyte-scale length is corruption,
// not data, and must not drive an allocation.
constexpr uint32_t kMaxPayload = 1u << 30;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<WalContents> ReadWal(FileEnv* env, const std::string& path) {
  WalContents out;
  auto exists = env->FileExists(path);
  MCT_RETURN_IF_ERROR(exists.status());
  if (!*exists) return out;
  auto read = env->ReadFileToString(path);
  MCT_RETURN_IF_ERROR(read.status());
  const std::string& data = *read;
  if (data.empty()) return out;
  if (data.size() < sizeof(kWalMagic)) {
    // A crash can leave a partial magic; the file holds nothing durable.
    out.torn_tail = true;
    return out;
  }
  if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption(path + " is not an MCT WAL");
  }
  size_t off = sizeof(kWalMagic);
  out.valid_bytes = off;
  while (off < data.size()) {
    if (data.size() - off < kHeaderSize) break;  // torn header
    const char* p = data.data() + off;
    uint32_t crc = GetU32(p);
    uint32_t len = GetU32(p + 4);
    uint64_t lsn = GetU64(p + 8);
    uint8_t type = static_cast<uint8_t>(p[16]);
    if (len > kMaxPayload) break;                          // absurd length
    if (data.size() - off - kHeaderSize < len) break;      // torn payload
    if (Crc32c(p + 4, kHeaderSize - 4 + len) != crc) break;  // bit flip / torn
    if (lsn <= out.max_lsn) break;  // non-monotonic: not a record we wrote
    WalRecord rec;
    rec.lsn = lsn;
    rec.type = static_cast<WalRecordType>(type);
    rec.payload.assign(p + kHeaderSize, len);
    out.records.push_back(std::move(rec));
    out.max_lsn = lsn;
    off += kHeaderSize + len;
    out.valid_bytes = off;
  }
  out.torn_tail = out.valid_bytes < data.size();
  return out;
}

WalWriter::WalWriter(std::unique_ptr<WritableFile> file, std::string path,
                     uint64_t next_lsn)
    : file_(std::move(file)),
      path_(std::move(path)),
      next_lsn_(next_lsn),
      dirty_(false),
      m_appends_(MetricsRegistry::Global().counter("mct.wal.appends")),
      m_bytes_(MetricsRegistry::Global().counter("mct.wal.bytes")),
      m_fsyncs_(MetricsRegistry::Global().counter("mct.wal.fsyncs")) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(FileEnv* env,
                                                   const std::string& path,
                                                   uint64_t next_lsn,
                                                   bool truncate) {
  auto exists = env->FileExists(path);
  MCT_RETURN_IF_ERROR(exists.status());
  bool fresh = truncate || !*exists;
  if (!fresh) {
    MCT_ASSIGN_OR_RETURN(uint64_t size, env->FileSize(path));
    fresh = size == 0;
  }
  MCT_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path, fresh));
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), path, next_lsn));
  if (fresh) {
    MCT_RETURN_IF_ERROR(
        writer->file_->Append(std::string_view(kWalMagic, sizeof(kWalMagic))));
    writer->dirty_ = true;
  }
  return writer;
}

Result<uint64_t> WalWriter::Append(WalRecordType type,
                                   std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("WAL payload too large");
  }
  uint64_t lsn = next_lsn_;
  std::string rec;
  rec.reserve(kHeaderSize + payload.size());
  PutU32(&rec, 0);  // crc placeholder
  PutU32(&rec, static_cast<uint32_t>(payload.size()));
  PutU64(&rec, lsn);
  rec.push_back(static_cast<char>(type));
  rec.append(payload.data(), payload.size());
  uint32_t crc = Crc32c(rec.data() + 4, rec.size() - 4);
  std::memcpy(rec.data(), &crc, 4);
  MCT_RETURN_IF_ERROR(file_->Append(rec));
  ++next_lsn_;
  dirty_ = true;
  m_appends_->Inc();
  m_bytes_->Inc(rec.size());
  return lsn;
}

Status WalWriter::Sync() {
  if (!dirty_) return Status::OK();
  MCT_RETURN_IF_ERROR(file_->Sync());
  dirty_ = false;
  m_fsyncs_->Inc();
  return Status::OK();
}

}  // namespace mct

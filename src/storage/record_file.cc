#include "storage/record_file.h"

#include <cassert>
#include <cstring>

#include "common/strings.h"

namespace mct {

RecordFile::RecordFile(BufferPool* pool, uint32_t record_size)
    : pool_(pool), record_size_(record_size) {
  assert(record_size >= 1 && record_size <= kPageSize);
  records_per_page_ = kPageSize / record_size_;
}

Result<uint64_t> RecordFile::Append(const void* record) {
  uint64_t index = num_records_;
  uint32_t page_no = static_cast<uint32_t>(index / records_per_page_);
  uint32_t slot = static_cast<uint32_t>(index % records_per_page_);
  if (page_no == pages_.size()) {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
    pages_.push_back(guard.page_id());
    std::memcpy(guard.MutableData() + slot * record_size_, record,
                record_size_);
  } else {
    MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(pages_[page_no]));
    std::memcpy(guard.MutableData() + slot * record_size_, record,
                record_size_);
  }
  ++num_records_;
  return index;
}

Status RecordFile::Locate(uint64_t index, PageId* page,
                          uint32_t* offset) const {
  if (index >= num_records_) {
    return Status::OutOfRange(StrFormat(
        "record %llu beyond %llu records",
        static_cast<unsigned long long>(index),
        static_cast<unsigned long long>(num_records_)));
  }
  *page = pages_[static_cast<size_t>(index / records_per_page_)];
  *offset = static_cast<uint32_t>(index % records_per_page_) * record_size_;
  return Status::OK();
}

Status RecordFile::Read(uint64_t index, void* out) const {
  PageId page;
  uint32_t offset;
  MCT_RETURN_IF_ERROR(Locate(index, &page, &offset));
  MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
  std::memcpy(out, guard.Data() + offset, record_size_);
  return Status::OK();
}

Status RecordFile::Write(uint64_t index, const void* record) {
  PageId page;
  uint32_t offset;
  MCT_RETURN_IF_ERROR(Locate(index, &page, &offset));
  MCT_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
  std::memcpy(guard.MutableData() + offset, record, record_size_);
  return Status::OK();
}

}  // namespace mct

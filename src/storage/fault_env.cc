#include "storage/fault_env.h"

#include <algorithm>

namespace mct {

namespace {

bool PathInDir(const std::string& path, const std::string& dir) {
  return path.size() > dir.size() + 1 && path.compare(0, dir.size(), dir) == 0 &&
         path[dir.size()] == '/' &&
         path.find('/', dir.size() + 1) == std::string::npos;
}

}  // namespace

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path, uint64_t epoch)
      : env_(env), path_(std::move(path)), epoch_(epoch) {}

  Status Append(std::string_view data) override {
    return env_->DoAppend(path_, data, epoch_);
  }
  Status Sync() override { return env_->DoSync(path_, epoch_); }
  Status Close() override { return Status::OK(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  uint64_t epoch_;
};

void FaultInjectionEnv::SimulateCrashKeepingPrefix(
    const std::string& path_substring, size_t bytes) {
  for (auto& [path, st] : files_) {
    if (!path_substring.empty() && bytes > 0 &&
        path.find(path_substring) != std::string::npos) {
      st.synced += st.unsynced.substr(0, std::min(bytes, st.unsynced.size()));
    }
    st.unsynced.clear();
  }
  ++epoch_;
}

uint64_t FaultInjectionEnv::UnsyncedBytes(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.unsynced.size();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate_existing) {
  FileState& st = files_[path];
  if (truncate_existing) {
    st.synced.clear();
    st.unsynced.clear();
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, path, epoch_));
}

Status FaultInjectionEnv::DoAppend(const std::string& path,
                                   std::string_view data, uint64_t epoch) {
  if (epoch != epoch_) {
    return Status::IOError("append to " + path + " after simulated crash");
  }
  if (append_fault_.remaining > 0 &&
      path.find(append_fault_.substring) != std::string::npos) {
    if (--append_fault_.remaining == 0) {
      return Status::IOError("injected append failure on " + path);
    }
  }
  ++num_appends_;
  files_[path].unsynced.append(data.data(), data.size());
  return Status::OK();
}

Status FaultInjectionEnv::DoSync(const std::string& path, uint64_t epoch) {
  if (epoch != epoch_) {
    return Status::IOError("sync of " + path + " after simulated crash");
  }
  if (fail_next_sync_) {
    fail_next_sync_ = false;
    return Status::IOError("injected fsync failure on " + path);
  }
  ++num_syncs_;
  FileState& st = files_[path];
  st.synced += st.unsynced;
  st.unsynced.clear();
  return Status::OK();
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.synced + it->second.unsynced;
}

Result<bool> FaultInjectionEnv::FileExists(const std::string& path) {
  return files_.count(path) > 0;
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.synced.size() + it->second.unsynced.size();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (fail_next_rename_) {
    fail_next_rename_ = false;
    return Status::IOError("injected rename failure: " + from + " -> " + to);
  }
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  ++num_renames_;
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (fail_next_remove_) {
    fail_next_remove_ = false;
    return Status::IOError("injected remove failure on " + path);
  }
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  files_.erase(it);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  if (fail_next_truncate_) {
    fail_next_truncate_ = false;
    return Status::IOError("injected truncate failure on " + path);
  }
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  FileState& st = files_[path];
  // Truncation applies to the combined view, then the file is fully synced
  // (the callers — WAL tail repair — truncate durable prefixes anyway).
  std::string all = st.synced + st.unsynced;
  all.resize(std::min<size_t>(all.size(), size));
  st.synced = std::move(all);
  st.unsynced.clear();
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& [path, st] : files_) {
    if (PathInDir(path, dir)) names.push_back(path.substr(dir.size() + 1));
  }
  return names;
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dir) {
  if (std::find(dirs_.begin(), dirs_.end(), dir) == dirs_.end()) {
    dirs_.push_back(dir);
  }
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string&) { return Status::OK(); }

}  // namespace mct

// Full-length positioned I/O over POSIX file descriptors.
//
// pread/pwrite may legally transfer fewer bytes than requested or fail with
// EINTR; treating either as a hard error turns routine signals into data
// corruption. PReadFull/PWriteFull loop until the full count transfers,
// retrying EINTR and resuming after short transfers, and surface the errno
// text in the returned Status when a real error occurs.
//
// Tests inject EINTR and short transfers through SetIoSyscallHooksForTest,
// which swaps the underlying syscalls for the whole process — the very same
// loops the production DiskManager and PosixFileEnv run are then exercised
// against the fault pattern.

#ifndef COLORFUL_XML_STORAGE_IO_UTIL_H_
#define COLORFUL_XML_STORAGE_IO_UTIL_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace mct {

/// Replacement syscalls for fault injection; an empty function restores the
/// real syscall. Not thread-safe — install only from single-threaded tests.
struct IoSyscallHooks {
  std::function<ssize_t(int fd, void* buf, size_t n, off_t off)> pread;
  std::function<ssize_t(int fd, const void* buf, size_t n, off_t off)> pwrite;
};
void SetIoSyscallHooksForTest(IoSyscallHooks hooks);
void ClearIoSyscallHooksForTest();

/// IOError carrying the errno text: "<op> <target>: <strerror(err)>".
Status ErrnoStatus(const std::string& op, const std::string& target, int err);

/// Reads exactly `n` bytes at `offset`, retrying EINTR and short reads.
/// Hitting EOF before `n` bytes is an IOError (reads of allocated pages and
/// fully written files never legitimately see EOF).
Status PReadFull(int fd, char* buf, size_t n, uint64_t offset,
                 const std::string& what);

/// Writes exactly `n` bytes at `offset`, retrying EINTR and short writes.
Status PWriteFull(int fd, const char* buf, size_t n, uint64_t offset,
                  const std::string& what);

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_IO_UTIL_H_

// StorageEnv: one DiskManager plus one BufferPool shared by every record
// file and index of a database instance. Individual files own disjoint page
// sets allocated from the shared manager, so per-file sizes (Table 1's data
// and index megabytes) are exact page counts.

#ifndef COLORFUL_XML_STORAGE_STORAGE_ENV_H_
#define COLORFUL_XML_STORAGE_STORAGE_ENV_H_

#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace mct {

class StorageEnv {
 public:
  /// Flushes dirty frames and syncs the disk manager so a file-backed
  /// environment's pages survive destruction without an explicit FlushAll
  /// from every caller. Errors are unreportable here; callers that need to
  /// observe them flush and sync explicitly first.
  ~StorageEnv() {
    if (pool_ != nullptr) (void)pool_->FlushAll();
    if (disk_ != nullptr) (void)disk_->Sync();
  }

  /// In-memory environment (warm-cache benchmarking; default pool is
  /// effectively unbounded so timing measures the engine, not eviction).
  /// `pool_label` names the pool's metric instruments (see BufferPool) so
  /// multiple co-resident environments keep separate eviction stats.
  static std::unique_ptr<StorageEnv> CreateInMemory(
      uint32_t pool_pages = 32768, const std::string& pool_label = "") {
    auto env = std::make_unique<StorageEnv>();
    env->disk_ = DiskManager::CreateInMemory();
    env->pool_ = std::make_unique<BufferPool>(env->disk_.get(), pool_pages,
                                              pool_label);
    return env;
  }

  /// File-backed environment at `path`.
  static Result<std::unique_ptr<StorageEnv>> OpenFile(
      const std::string& path, uint32_t pool_pages,
      const std::string& pool_label = "") {
    auto env = std::make_unique<StorageEnv>();
    MCT_RETURN_IF_ERROR(DiskManager::OpenFile(path, &env->disk_));
    env->pool_ = std::make_unique<BufferPool>(env->disk_.get(), pool_pages,
                                              pool_label);
    return env;
  }

  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }

 private:
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace mct

#endif  // COLORFUL_XML_STORAGE_STORAGE_ENV_H_

#include "serialize/schema.h"

#include <unordered_map>

namespace mct::serialize {

ElementType* MctSchema::AddElement(const std::string& name) {
  auto [it, _] = elements_.try_emplace(name);
  it->second.name = name;
  return &it->second;
}

void MctSchema::AddChild(const std::string& color, const std::string& parent,
                         const std::string& child, char quant) {
  colors_.insert(color);
  ElementType* p = AddElement(parent);
  ElementType* c = AddElement(child);
  p->colors.insert(color);
  c->colors.insert(color);
  Production& prod = p->productions[color];
  for (const ProductionChild& pc : prod.children) {
    if (pc.elem == child) return;  // already declared
  }
  prod.children.push_back(ProductionChild{child, quant});
}

const ElementType* MctSchema::Find(const std::string& name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

std::vector<const ElementType*> MctSchema::MultiColoredTypes() const {
  std::vector<const ElementType*> out;
  for (const auto& [_, e] : elements_) {
    if (e.colors.size() > 1) out.push_back(&e);
  }
  return out;
}

MctSchema InferSchema(const MctDatabase& db) {
  MctSchema schema;
  // parent-type x child-type x color -> (total children, parent instances).
  struct Acc {
    uint64_t child_count = 0;
  };
  std::map<std::tuple<std::string, std::string, std::string>, Acc> accs;
  std::map<std::pair<std::string, std::string>, uint64_t> parent_instances;

  for (ColorId c = 0; c < db.num_colors(); ++c) {
    const std::string& color = db.ColorName(c);
    const ColoredTree* t = db.tree(c);
    for (NodeId n : t->PreOrder()) {
      if (db.Kind(n) != xml::NodeKind::kElement) continue;
      const std::string& ptag = db.Tag(n);
      parent_instances[{ptag, color}]++;
      schema.AddElement(ptag)->colors.insert(color);
      for (NodeId ch : t->Children(n)) {
        if (db.Kind(ch) != xml::NodeKind::kElement) continue;
        schema.AddChild(color, ptag, db.Tag(ch));
        accs[{ptag, db.Tag(ch), color}].child_count++;
      }
    }
  }
  // quant(child, color) = avg children per parent instance. When a child
  // type appears under several parent types in one color (rare in our
  // schemas), the averages are summed per parent type and the last wins;
  // workloads here have a unique parent type per (child, color).
  for (const auto& [key, acc] : accs) {
    const auto& [ptag, ctag, color] = key;
    uint64_t parents = parent_instances[{ptag, color}];
    if (parents > 0) {
      schema.SetQuant(ctag, color,
                      static_cast<double>(acc.child_count) /
                          static_cast<double>(parents));
    }
  }
  return schema;
}

MctSchema MovieSchemaOfFigure8() {
  MctSchema s;
  // Red: movie-genre hierarchy down to movies and roles.
  s.AddChild("red", "movie-genre", "movie-genre", '*');
  s.AddChild("red", "movie-genre", "name", '1');
  s.AddChild("red", "movie-genre", "movie", '*');
  s.AddChild("red", "movie", "name", '1');
  s.AddChild("red", "movie", "movie-role", '*');
  s.AddChild("red", "movie-role", "name", '1');
  s.AddChild("red", "movie-role", "description", '?');
  s.AddChild("red", "movie-role", "scene", '*');
  // Green: movie-award hierarchy.
  s.AddChild("green", "movie-award", "movie-award", '*');
  s.AddChild("green", "movie-award", "name", '1');
  s.AddChild("green", "movie-award", "movie", '*');
  s.AddChild("green", "movie", "name", '1');
  s.AddChild("green", "movie", "votes", '?');
  s.AddChild("green", "movie", "category", '?');
  // Blue: actors.
  s.AddChild("blue", "actor", "name", '1');
  s.AddChild("blue", "actor", "movie-role", '*');
  s.AddChild("blue", "movie-role", "name", '1');
  s.AddChild("blue", "movie-role", "payment", '?');

  // Statistics in the spirit of Section 5.2's example: each movie-role has
  // one name and description but 3 scenes on average; a movie has 10 roles.
  s.SetQuant("name", "red", 1);
  s.SetQuant("name", "green", 1);
  s.SetQuant("name", "blue", 1);
  s.SetQuant("description", "red", 1);
  s.SetQuant("scene", "red", 3);
  s.SetQuant("movie-role", "red", 10);
  s.SetQuant("movie-role", "blue", 5);
  s.SetQuant("movie", "red", 20);
  s.SetQuant("movie", "green", 5);
  s.SetQuant("movie-genre", "red", 3);
  s.SetQuant("movie-award", "green", 4);
  s.SetQuant("votes", "green", 1);
  s.SetQuant("category", "green", 1);
  s.SetQuant("payment", "blue", 1);
  return s;
}

}  // namespace mct::serialize

// MCT schemas (Section 5): per color, a grammar of element productions,
// plus the statistical summary quant(e, c) — the average number of children
// of type e per parent, in the hierarchy of color c — that the optimal
// serialization algorithm consumes.
//
// A schema can be authored programmatically (the paper's Figure 8 movie
// schema) or inferred from a live MctDatabase (used by the workload
// benchmarks).

#ifndef COLORFUL_XML_SERIALIZE_SCHEMA_H_
#define COLORFUL_XML_SERIALIZE_SCHEMA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "mct/database.h"

namespace mct::serialize {

/// Quantifier of a child slot in a production ('1', '?', '+', '*').
struct ProductionChild {
  std::string elem;
  char quant = '*';
};

struct Production {
  std::vector<ProductionChild> children;
};

/// One element type: its real colors and, per real color, its production.
struct ElementType {
  std::string name;
  std::set<std::string> colors;                 // real colors (Section 5.1)
  std::map<std::string, Production> productions;  // by color
};

class MctSchema {
 public:
  /// Declares (or finds) an element type.
  ElementType* AddElement(const std::string& name);

  /// Declares that `parent` produces `child` (quant) in `color`. Both types
  /// gain the color as a real color.
  void AddChild(const std::string& color, const std::string& parent,
                const std::string& child, char quant = '*');

  /// Sets quant(child, color): average children of type `child` per parent
  /// in the `color` hierarchy.
  void SetQuant(const std::string& child, const std::string& color,
                double avg) {
    quant_[{child, color}] = avg;
  }
  /// quant(child, color); defaults to 1 when never set.
  double Quant(const std::string& child, const std::string& color) const {
    auto it = quant_.find({child, color});
    return it == quant_.end() ? 1.0 : it->second;
  }

  const ElementType* Find(const std::string& name) const;
  const std::map<std::string, ElementType>& elements() const {
    return elements_;
  }
  const std::set<std::string>& colors() const { return colors_; }

  /// Element types with more than one real color, in a deterministic
  /// top-down-friendly order (by name).
  std::vector<const ElementType*> MultiColoredTypes() const;

 private:
  std::map<std::string, ElementType> elements_;
  std::set<std::string> colors_;
  std::map<std::pair<std::string, std::string>, double> quant_;
};

/// Infers a schema (types, per-color productions, quant statistics) from a
/// live database: one element type per tag.
MctSchema InferSchema(const MctDatabase& db);

/// The paper's Figure 8 movie schema (with the Section 5.1 extensions:
/// green category under movie; blue payment and red description/scene
/// under movie-role).
MctSchema MovieSchemaOfFigure8();

}  // namespace mct::serialize

#endif  // COLORFUL_XML_SERIALIZE_SCHEMA_H_

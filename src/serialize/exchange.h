// MCT <-> XML exchange (Section 5): serializes an MCT database as a single
// plain-XML document that a receiver can reconstruct the database from.
//
// Encoding. Every element is emitted exactly once, nested inside its parent
// in its *primary* color (per a SerializationScheme, normally produced by
// optSerialize; instances lacking the chosen color fall back to the next
// ranked color, Section 5.3). Bookkeeping attributes carry what nesting
// alone cannot:
//   mct.id            node identifier (emitted when any reference needs it)
//   mct.colors        the node's colors, space separated, when they differ
//                     from the single enclosing color (this plays the role
//                     of the paper's color="c+/c-/c" annotations; the
//                     information content is identical and decoding is
//                     simpler — see DESIGN.md)
//   mct.ref.<color>   id of the node's parent in a non-primary color
//   mct.pos.<color>   sibling position under that parent (restores the
//                     per-color local order)
// User attributes are emitted as-is; names starting with "mct." are
// reserved by the format.

#ifndef COLORFUL_XML_SERIALIZE_EXCHANGE_H_
#define COLORFUL_XML_SERIALIZE_EXCHANGE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "mct/database.h"
#include "serialize/opt_serialize.h"

namespace mct::serialize {

/// Overhead accounting of one serialization, in the units of the cost
/// model: 2 per non-primary parent pointer, 1 per color re-annotation.
struct ExportStats {
  uint64_t parent_pointers = 0;
  uint64_t color_annotations = 0;
  uint64_t elements = 0;
  uint64_t bytes = 0;

  double CostUnits() const {
    return 2.0 * static_cast<double>(parent_pointers) +
           static_cast<double>(color_annotations);
  }
};

/// Serializes the database as XML using `scheme`'s primary colors.
Result<std::string> ExportXml(MctDatabase* db,
                              const SerializationScheme& scheme,
                              ExportStats* stats = nullptr);

/// Reconstructs an MCT database from ExportXml output.
Result<std::unique_ptr<MctDatabase>> ImportXml(const std::string& xml);

/// Deep structural equality of two MCT databases (same colors, isomorphic
/// colored trees, same tags/content/attributes), for round-trip tests.
bool DatabasesIsomorphic(const MctDatabase& a, const MctDatabase& b,
                         std::string* why = nullptr);

}  // namespace mct::serialize

#endif  // COLORFUL_XML_SERIALIZE_EXCHANGE_H_

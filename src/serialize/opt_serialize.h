// Algorithm optSerialize (paper Figure 9): choose, per element type, the
// *primary color* — the hierarchy in which its instances are nested inline
// in the XML serialization — minimizing the expected serialization overhead.
//
// Cost model (reconstructed from Section 5.2's worked example; the paper's
// pseudocode is abridged, see DESIGN.md):
//  * an element type serialized under primary color `shade` pays 2 units
//    (an ID plus an IDREF parent pointer) for every *other* real color it
//    participates in — the "+2" of the example;
//  * a child type whose chosen primary differs from its parent's pays 1
//    unit (the color re-annotation, the "+1" of the example);
//  * a child's legal primary choices are its real colors plus the parent's
//    shade flowing down (Section 5.1's "surprisingly, green is also a
//    primary color choice for movie-role");
//  * expected counts come from quant(child, color).
//
// The dynamic program memoizes cost(type, shade); Theorem 5.1 (optimality
// w.r.t. the schema + statistics) is validated in tests against exhaustive
// enumeration of all assignments.

#ifndef COLORFUL_XML_SERIALIZE_OPT_SERIALIZE_H_
#define COLORFUL_XML_SERIALIZE_OPT_SERIALIZE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "serialize/schema.h"

namespace mct::serialize {

/// The serialization scheme: per element type, its primary-color choices
/// ranked best-first (Section 5.3's fallback for instances missing the
/// chosen color), and the scheme's expected cost.
struct SerializationScheme {
  /// type name -> colors ranked by cost (best first). Types with a single
  /// real color rank it first, followed by nothing.
  std::map<std::string, std::vector<std::string>> primary;
  /// Expected overhead (cost units) of the whole scheme, per schema root
  /// statistics.
  double expected_cost = 0;

  const std::string& PrimaryOf(const std::string& type) const {
    static const std::string kEmpty;
    auto it = primary.find(type);
    return it == primary.end() || it->second.empty() ? kEmpty
                                                     : it->second.front();
  }
};

/// Expected cost of serializing one instance of `type` with primary color
/// `shade` (recursively over the schema), for a fixed assignment of
/// primaries to all other types being *free* (the DP chooses children
/// optimally given the parent's shade). Exposed for tests.
double CostOf(const MctSchema& schema, const std::string& type,
              const std::string& shade);

/// Runs the dynamic program and returns the optimal scheme.
/// InvalidArgument on cyclic multi-colored productions (excluded by the
/// paper's assumption in Section 5.3).
Result<SerializationScheme> OptSerialize(const MctSchema& schema);

/// Exhaustive oracle: tries every assignment of primaries to multi-colored
/// types and returns the minimum expected cost. Exponential; only for small
/// schemas in tests (validates Theorem 5.1).
double BruteForceOptimalCost(const MctSchema& schema);

/// Expected cost of one fixed assignment (type -> primary color). Used by
/// the oracle and the serialization benchmarks.
double AssignmentCost(const MctSchema& schema,
                      const std::map<std::string, std::string>& primary);

}  // namespace mct::serialize

#endif  // COLORFUL_XML_SERIALIZE_OPT_SERIALIZE_H_

#include "serialize/opt_serialize.h"

#include <algorithm>
#include <limits>
#include <set>

namespace mct::serialize {

namespace {

// Union of child slots over every real-color production of `m`: a child
// type shared by several hierarchies (movie/name in red and green) is one
// physical node, so it is counted once, with the largest per-parent count.
std::map<std::string, double> ChildQuants(const MctSchema& schema,
                                          const ElementType& m) {
  std::map<std::string, double> out;
  for (const std::string& c : m.colors) {
    auto pit = m.productions.find(c);
    if (pit == m.productions.end()) continue;
    for (const ProductionChild& pc : pit->second.children) {
      double q = schema.Quant(pc.elem, c);
      auto [it, inserted] = out.try_emplace(pc.elem, q);
      if (!inserted) it->second = std::max(it->second, q);
    }
  }
  return out;
}

// Memoized DP over (type, shade). Cycles (recursive productions such as
// movie-genre under movie-genre) contribute a shade-independent constant,
// so the guard returns 0 for in-progress pairs without affecting the
// argmin (see header).
class CostSolver {
 public:
  explicit CostSolver(const MctSchema& schema) : schema_(schema) {}

  double Cost(const std::string& type, const std::string& shade) {
    auto key = std::make_pair(type, shade);
    auto mit = memo_.find(key);
    if (mit != memo_.end()) return mit->second;
    if (!in_progress_.insert(key).second) return 0.0;  // cycle guard
    const ElementType* m = schema_.Find(type);
    double cost = 0;
    if (m != nullptr) {
      // Parent pointers (ID + IDREF) for every real hierarchy other than
      // the primary one — the "+2" of Section 5.2.
      int others = static_cast<int>(m->colors.size()) -
                   (m->colors.contains(shade) ? 1 : 0);
      cost = 2.0 * others;
      for (const auto& [child, q] : ChildQuants(schema_, *m)) {
        cost += q * BestChildCost(child, shade);
      }
    }
    in_progress_.erase(key);
    memo_[key] = cost;
    return cost;
  }

  /// min over the child's legal primaries given the parent's shade:
  /// its real colors, plus the parent's shade flowing down (Section 5.1).
  double BestChildCost(const std::string& child,
                       const std::string& parent_shade) {
    const ElementType* t = schema_.Find(child);
    std::set<std::string> choices;
    if (t != nullptr) choices = t->colors;
    choices.insert(parent_shade);
    double best = std::numeric_limits<double>::infinity();
    for (const std::string& s : choices) {
      // "+1" re-annotation when the child's primary differs from the
      // enclosing hierarchy's color.
      double c = Cost(child, s) + (s == parent_shade ? 0.0 : 1.0);
      best = std::min(best, c);
    }
    return best;
  }

 private:
  const MctSchema& schema_;
  std::map<std::pair<std::string, std::string>, double> memo_;
  std::set<std::pair<std::string, std::string>> in_progress_;
};

// Root types: produced by nobody in any color.
std::vector<const ElementType*> RootTypes(const MctSchema& schema) {
  std::set<std::string> produced;
  for (const auto& [_, e] : schema.elements()) {
    for (const auto& [c, prod] : e.productions) {
      for (const ProductionChild& pc : prod.children) {
        if (pc.elem != e.name) produced.insert(pc.elem);
      }
    }
  }
  std::vector<const ElementType*> roots;
  for (const auto& [name, e] : schema.elements()) {
    if (!produced.contains(name)) roots.push_back(&e);
  }
  return roots;
}

// Cost of one instance of `type` serialized with the FIXED assignment,
// under a parent serialized in `parent_shade` ("" for roots).
double FixedCost(const MctSchema& schema,
                 const std::map<std::string, std::string>& primary,
                 const std::string& type, const std::string& shade,
                 std::set<std::pair<std::string, std::string>>* in_progress) {
  auto key = std::make_pair(type, shade);
  if (!in_progress->insert(key).second) return 0.0;  // cycle guard
  const ElementType* m = schema.Find(type);
  double cost = 0;
  if (m != nullptr) {
    int others = static_cast<int>(m->colors.size()) -
                 (m->colors.contains(shade) ? 1 : 0);
    cost = 2.0 * others;
    for (const auto& [child, q] : ChildQuants(schema, *m)) {
      auto pit = primary.find(child);
      std::string assigned = pit != primary.end() ? pit->second : "";
      const ElementType* t = schema.Find(child);
      double child_cost;
      if (assigned == shade) {
        child_cost = FixedCost(schema, primary, child, shade, in_progress);
      } else if (t != nullptr && t->colors.contains(assigned)) {
        child_cost =
            FixedCost(schema, primary, child, assigned, in_progress) + 1.0;
      } else {
        // Assignment not realizable in this context: fall back to inlining
        // under the parent's shade with a re-annotation.
        child_cost =
            FixedCost(schema, primary, child, shade, in_progress) + 1.0;
      }
      cost += q * child_cost;
    }
  }
  in_progress->erase(key);
  return cost;
}

}  // namespace

double CostOf(const MctSchema& schema, const std::string& type,
              const std::string& shade) {
  CostSolver solver(schema);
  return solver.Cost(type, shade);
}

double AssignmentCost(const MctSchema& schema,
                      const std::map<std::string, std::string>& primary) {
  double total = 0;
  for (const ElementType* r : RootTypes(schema)) {
    auto pit = primary.find(r->name);
    std::string shade = pit != primary.end()
                            ? pit->second
                            : (r->colors.empty() ? "" : *r->colors.begin());
    std::set<std::pair<std::string, std::string>> in_progress;
    total += FixedCost(schema, primary, r->name, shade, &in_progress);
  }
  return total;
}

Result<SerializationScheme> OptSerialize(const MctSchema& schema) {
  CostSolver solver(schema);
  SerializationScheme scheme;
  for (const auto& [name, e] : schema.elements()) {
    std::vector<std::pair<double, std::string>> ranked;
    for (const std::string& c : e.colors) {
      ranked.emplace_back(solver.Cost(name, c), c);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<std::string> colors;
    for (const auto& [_, c] : ranked) colors.push_back(c);
    scheme.primary[name] = std::move(colors);
  }
  std::map<std::string, std::string> top;
  for (const auto& [name, ranked] : scheme.primary) {
    if (!ranked.empty()) top[name] = ranked.front();
  }
  // The DP's per-type argmin is exact under the paper's Section 5.3
  // assumption (one production context per multi-colored type). When a
  // type appears under parents serialized in different shades (the movie
  // schema's movie-role, under movie *and* actor), contextual optima can
  // disagree with the best single global choice; a greedy local search
  // over the multi-colored types repairs that, seeded by the DP ranking.
  double best_cost = AssignmentCost(schema, top);
  bool improved = true;
  while (improved) {
    improved = false;
    for (const ElementType* m : schema.MultiColoredTypes()) {
      const std::string current = top[m->name];
      for (const std::string& alt : m->colors) {
        if (alt == current) continue;
        top[m->name] = alt;
        double cost = AssignmentCost(schema, top);
        if (cost + 1e-12 < best_cost) {
          best_cost = cost;
          improved = true;
        } else {
          top[m->name] = current;
        }
      }
    }
  }
  // Promote the search's winners to the front of each ranking.
  for (auto& [name, ranked] : scheme.primary) {
    auto it = std::find(ranked.begin(), ranked.end(), top[name]);
    if (it != ranked.end()) std::rotate(ranked.begin(), it, it + 1);
  }
  scheme.expected_cost = best_cost;
  return scheme;
}

double BruteForceOptimalCost(const MctSchema& schema) {
  // Enumerate assignments of every multi-colored type over its real colors.
  std::vector<const ElementType*> multi = schema.MultiColoredTypes();
  std::map<std::string, std::string> primary;
  for (const auto& [name, e] : schema.elements()) {
    if (e.colors.size() == 1) primary[name] = *e.colors.begin();
  }
  double best = std::numeric_limits<double>::infinity();
  // Odometer over choices.
  std::vector<std::vector<std::string>> domains;
  for (const ElementType* m : multi) {
    domains.emplace_back(m->colors.begin(), m->colors.end());
  }
  std::vector<size_t> idx(multi.size(), 0);
  while (true) {
    for (size_t i = 0; i < multi.size(); ++i) {
      primary[multi[i]->name] = domains[i][idx[i]];
    }
    best = std::min(best, AssignmentCost(schema, primary));
    // Advance odometer.
    size_t d = 0;
    while (d < idx.size()) {
      if (++idx[d] < domains[d].size()) break;
      idx[d] = 0;
      ++d;
    }
    if (d == idx.size()) break;
    if (multi.empty()) break;
  }
  if (multi.empty()) best = AssignmentCost(schema, primary);
  return best;
}

}  // namespace mct::serialize

#include "serialize/exchange.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mct::serialize {

namespace {

constexpr char kWrapperTag[] = "mct-database";

// Chooses the primary color of node `n`: the best-ranked color of its type
// that the instance actually has (the Section 5.3 fallback), else its first
// color.
ColorId PrimaryColorOf(const MctDatabase& db, const SerializationScheme& scheme,
                       NodeId n) {
  ColorSet colors = db.Colors(n);
  auto it = scheme.primary.find(db.Tag(n));
  if (it != scheme.primary.end()) {
    for (const std::string& cname : it->second) {
      ColorId c = db.LookupColor(cname);
      if (c != kInvalidColorId && colors.Has(c)) return c;
    }
  }
  auto v = colors.ToVector();
  return v.empty() ? kInvalidColorId : v.front();
}

}  // namespace

Result<std::string> ExportXml(MctDatabase* db,
                              const SerializationScheme& scheme,
                              ExportStats* stats) {
  ExportStats local;
  ExportStats* st = stats != nullptr ? stats : &local;
  *st = ExportStats();

  const NodeId doc = db->document();
  const size_t ncolors = db->num_colors();

  // Pass 1: primary colors and referenced parents.
  std::unordered_map<NodeId, ColorId> primary;
  std::unordered_set<NodeId> needs_id;
  std::vector<NodeId> all_nodes;
  for (ColorId c = 0; c < ncolors; ++c) {
    for (NodeId n : db->tree(c)->PreOrder()) {
      if (n == doc || db->Kind(n) != xml::NodeKind::kElement) continue;
      if (primary.contains(n)) continue;
      primary[n] = PrimaryColorOf(*db, scheme, n);
      all_nodes.push_back(n);
    }
  }
  for (NodeId n : all_nodes) {
    db->Colors(n).ForEach([&](ColorId c) {
      if (c == primary[n]) return;
      NodeId p = db->tree(c)->Parent(n);
      if (p != kInvalidNodeId && p != doc) needs_id.insert(p);
    });
  }


  // Pass 2: build the DOM.
  std::unordered_map<NodeId, xml::Element*> emitted;
  auto wrapper = std::make_unique<xml::Element>(kWrapperTag);
  {
    std::vector<std::string> cnames;
    for (ColorId c = 0; c < ncolors; ++c) cnames.push_back(db->ColorName(c));
    wrapper->SetAttr("colors", Join(cnames, " "));
  }

  // Emit nodes so that each node's XML parent (its parent in its primary
  // color) is emitted first. Primary-color nesting across colors is not
  // guaranteed acyclic (the paper assumes multi-colored elements are not
  // involved in schema cycles, Section 5.3); nodes caught in a cross-color
  // nesting cycle are emitted at top level as *orphans*, carrying parent
  // pointers for every color including the primary one.
  std::vector<NodeId> order;
  std::unordered_set<NodeId> orphans;
  {
    // Nesting forest: each node hangs under its primary-color parent, and
    // the children of a parent are ordered color by color in each colored
    // tree's local order (so nested siblings decode back in tree order).
    auto nested_children = [&](NodeId parent) {
      std::vector<NodeId> out;
      db->Colors(parent).ForEach([&](ColorId c) {
        for (NodeId k : db->tree(c)->Children(parent)) {
          if (db->Kind(k) == xml::NodeKind::kElement && primary[k] == c) {
            out.push_back(k);
          }
        }
      });
      return out;
    };
    order.reserve(all_nodes.size());
    std::unordered_set<NodeId> visited;
    auto dfs = [&](NodeId from) {
      std::vector<NodeId> stack{from};
      while (!stack.empty()) {
        NodeId n = stack.back();
        stack.pop_back();
        if (n != doc) order.push_back(n);
        auto kids = nested_children(n);
        for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
          if (visited.insert(*it).second) stack.push_back(*it);
        }
      }
    };
    visited.insert(doc);
    dfs(doc);
    // Nodes not reached sit in (or under) a cross-color nesting cycle —
    // the case the paper's Section 5.3 assumption excludes. Break each
    // cycle by orphaning its first node (emitted at top level with parent
    // pointers for every color) and nest the rest below it.
    for (NodeId n : all_nodes) {
      if (visited.insert(n).second) {
        orphans.insert(n);
        NodeId p = db->tree(primary[n])->Parent(n);
        if (p != doc) needs_id.insert(p);
        dfs(n);
      }
    }
  }
  for (NodeId n : order) {
    ColorId pc = primary[n];
    bool orphan = orphans.contains(n);
    NodeId parent = orphan ? doc : db->tree(pc)->Parent(n);
    xml::Element* parent_elem;
    ColorId parent_pc = kInvalidColorId;
    if (parent == doc) {
      parent_elem = wrapper.get();
    } else {
      parent_elem = emitted.at(parent);
      parent_pc = primary[parent];
    }
    auto elem = std::make_unique<xml::Element>(db->Tag(n));
    // Bookkeeping first, user attributes after.
    if (needs_id.contains(n)) {
      elem->SetAttr("mct.id", std::to_string(n));
    }
    if (pc != parent_pc) {
      elem->SetAttr("mct.pc", db->ColorName(pc));
      if (parent != doc) ++st->color_annotations;
    }
    if (orphan) elem->SetAttr("mct.orphan", "1");
    // Parent pointers: every non-primary color; for orphans the primary
    // color too (their nesting under the wrapper carries no edge).
    db->Colors(n).ForEach([&](ColorId c) {
      if (c == pc && !orphan) return;
      NodeId p = db->tree(c)->Parent(n);
      if (p == kInvalidNodeId) return;
      const std::string& cname = db->ColorName(c);
      elem->SetAttr("mct.ref." + cname,
                    p == doc ? "doc" : std::to_string(p));
      // Position among all element children of p in color c.
      int pos = 0;
      for (NodeId sib : db->tree(c)->Children(p)) {
        if (sib == n) break;
        if (db->Kind(sib) == xml::NodeKind::kElement) ++pos;
      }
      elem->SetAttr("mct.pos." + cname, std::to_string(pos));
      ++st->parent_pointers;
    });
    // Explicit position in the primary color when the parent (the document
    // included) mixes nested and referenced children there (order would
    // otherwise be ambiguous).
    if (!orphan) {
      bool mixed = false;
      for (NodeId sib : db->tree(pc)->Children(parent)) {
        if (db->Kind(sib) == xml::NodeKind::kElement &&
            (primary[sib] != pc || orphans.contains(sib))) {
          mixed = true;
          break;
        }
      }
      if (mixed) {
        int pos = 0;
        for (NodeId sib : db->tree(pc)->Children(parent)) {
          if (sib == n) break;
          if (db->Kind(sib) == xml::NodeKind::kElement) ++pos;
        }
        elem->SetAttr("mct.pos." + db->ColorName(pc), std::to_string(pos));
      }
    }
    for (const NodeAttr& a : db->Attrs(n)) {
      elem->SetAttr(db->store().names().Name(a.name), a.value);
    }
    if (db->store().HasContent(n)) {
      elem->AddText(db->Content(n));
    }
    emitted[n] = parent_elem->AddChild(std::move(elem));
    ++st->elements;
  }

  std::string xml = xml::Write(*wrapper);
  st->bytes = xml.size();
  return xml;
}

namespace {

struct PendingEdge {
  NodeId child;
  int pos;       // explicit position or XML sequence fallback
  int xml_seq;   // tie-breaker preserving document order
};

struct ImportState {
  std::unique_ptr<MctDatabase> db;
  std::unordered_map<std::string, NodeId> by_export_id;
  // (parent, color) -> edges.
  std::map<std::pair<NodeId, ColorId>, std::vector<PendingEdge>> edges;
};

}  // namespace

Result<std::unique_ptr<MctDatabase>> ImportXml(const std::string& xml) {
  MCT_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml));
  if (doc.root->name() != kWrapperTag) {
    return Status::Corruption("not an MCT exchange document (missing <" +
                              std::string(kWrapperTag) + ">)");
  }
  ImportState state;
  state.db = std::make_unique<MctDatabase>();
  const std::string* colors = doc.root->FindAttr("colors");
  if (colors == nullptr) {
    return Status::Corruption("wrapper lacks the colors attribute");
  }
  for (const std::string& cname : SplitWhitespace(*colors)) {
    MCT_RETURN_IF_ERROR(state.db->RegisterColor(cname).status());
  }

  // Pass 1: create nodes, record nested edges; non-primary refs need the
  // id map completed first, so collect them textually.
  struct RawRef {
    NodeId child;
    ColorId color;
    std::string parent_id;
    int pos;
  };
  std::vector<RawRef> raw_refs;
  // Recursive import of elements and nested edges; non-primary refs are
  // collected textually and resolved once the id map is complete.
  std::function<Result<NodeId>(const xml::Element&, NodeId, ColorId)> imp =
      [&](const xml::Element& e, NodeId xml_parent,
          ColorId parent_pc) -> Result<NodeId> {
    MctDatabase* db = state.db.get();
    MCT_ASSIGN_OR_RETURN(NodeId n, db->CreateFreeElement(e.name()));
    std::string pc_name;
    std::map<std::string, std::string> refs;
    std::map<std::string, int> poss;
    bool orphan = false;
    for (const xml::Attr& a : e.attrs()) {
      if (a.name == "mct.id") {
        state.by_export_id[a.value] = n;
      } else if (a.name == "mct.pc") {
        pc_name = a.value;
      } else if (a.name == "mct.orphan") {
        orphan = true;
      } else if (StartsWith(a.name, "mct.ref.")) {
        refs[a.name.substr(8)] = a.value;
      } else if (StartsWith(a.name, "mct.pos.")) {
        poss[a.name.substr(8)] =
            static_cast<int>(ParseInt(a.value).value_or(0));
      } else {
        MCT_RETURN_IF_ERROR(db->SetAttr(n, a.name, a.value));
      }
    }
    ColorId pc = parent_pc;
    if (!pc_name.empty()) {
      pc = db->LookupColor(pc_name);
      if (pc == kInvalidColorId) {
        return Status::Corruption("unknown primary color '" + pc_name + "'");
      }
    }
    if (pc == kInvalidColorId) {
      return Status::Corruption("element <" + e.name() +
                                "> has no derivable primary color");
    }
    if (!orphan) {
      int explicit_pos = -1;
      auto pit = poss.find(state.db->ColorName(pc));
      if (pit != poss.end()) explicit_pos = pit->second;
      auto& vec = state.edges[{xml_parent, pc}];
      vec.push_back(
          PendingEdge{n, explicit_pos, static_cast<int>(vec.size())});
    }
    for (const auto& [cname, pid] : refs) {
      ColorId c = state.db->LookupColor(cname);
      if (c == kInvalidColorId) {
        return Status::Corruption("unknown ref color '" + cname + "'");
      }
      int pos = 0;
      auto pit = poss.find(cname);
      if (pit != poss.end()) pos = pit->second;
      raw_refs.push_back(RawRef{n, c, pid, pos});
    }
    std::string text;
    for (const auto& child : e.children()) {
      if (child->kind() == xml::NodeKind::kText) {
        text += child->text();
      } else if (child->kind() == xml::NodeKind::kElement) {
        MCT_RETURN_IF_ERROR(imp(*child, n, pc).status());
      }
    }
    if (!text.empty()) MCT_RETURN_IF_ERROR(db->SetContent(n, text));
    return n;
  };

  for (const auto& child : doc.root->children()) {
    if (child->kind() != xml::NodeKind::kElement) continue;
    MCT_RETURN_IF_ERROR(
        imp(*child, state.db->document(), kInvalidColorId).status());
  }

  // Resolve raw refs into edges.
  for (const RawRef& r : raw_refs) {
    NodeId parent;
    if (r.parent_id == "doc") {
      parent = state.db->document();
    } else {
      auto it = state.by_export_id.find(r.parent_id);
      if (it == state.by_export_id.end()) {
        return Status::Corruption("dangling mct.ref to id " + r.parent_id);
      }
      parent = it->second;
    }
    auto& vec = state.edges[{parent, r.color}];
    vec.push_back(PendingEdge{r.child, r.pos, 1 << 20});
  }

  // Order children within each (parent, color): explicit positions win,
  // XML sequence breaks ties / fills in.
  for (auto& [key, vec] : state.edges) {
    std::stable_sort(vec.begin(), vec.end(),
                     [](const PendingEdge& a, const PendingEdge& b) {
                       int ka = a.pos >= 0 ? a.pos : a.xml_seq;
                       int kb = b.pos >= 0 ? b.pos : b.xml_seq;
                       return ka < kb;
                     });
  }

  // Attach per color, top-down from the document.
  for (ColorId c = 0; c < state.db->num_colors(); ++c) {
    std::vector<NodeId> frontier{state.db->document()};
    while (!frontier.empty()) {
      NodeId parent = frontier.back();
      frontier.pop_back();
      auto it = state.edges.find({parent, c});
      if (it == state.edges.end()) continue;
      for (const PendingEdge& e : it->second) {
        MCT_RETURN_IF_ERROR(state.db->AddNodeColor(e.child, c, parent));
        frontier.push_back(e.child);
      }
    }
  }
  return std::move(state.db);
}

bool DatabasesIsomorphic(const MctDatabase& a, const MctDatabase& b,
                         std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (a.num_colors() != b.num_colors()) return fail("color count differs");
  for (ColorId c = 0; c < a.num_colors(); ++c) {
    if (a.ColorName(c) != b.ColorName(c)) return fail("color names differ");
  }
  std::unordered_map<NodeId, NodeId> map_ab;
  map_ab[a.document()] = b.document();
  // Parallel DFS per color builds and checks the identity correspondence.
  for (ColorId c = 0; c < a.num_colors(); ++c) {
    std::vector<std::pair<NodeId, NodeId>> stack{{a.document(), b.document()}};
    while (!stack.empty()) {
      auto [na, nb] = stack.back();
      stack.pop_back();
      auto ka = a.tree(c)->Children(na);
      auto kb = b.tree(c)->Children(nb);
      if (ka.size() != kb.size()) {
        return fail(StrFormat("child counts differ under color %s",
                              a.ColorName(c).c_str()));
      }
      for (size_t i = 0; i < ka.size(); ++i) {
        auto it = map_ab.find(ka[i]);
        if (it == map_ab.end()) {
          map_ab[ka[i]] = kb[i];
        } else if (it->second != kb[i]) {
          return fail("node identity mapping inconsistent across colors");
        }
        stack.push_back({ka[i], kb[i]});
      }
    }
  }
  for (const auto& [na, nb] : map_ab) {
    if (a.Tag(na) != b.Tag(nb)) return fail("tag mismatch");
    if (a.Content(na) != b.Content(nb)) return fail("content mismatch");
    if (a.Colors(na).count() != b.Colors(nb).count()) {
      return fail("color set mismatch on node");
    }
    auto attrs_a = a.Attrs(na);
    auto attrs_b = b.Attrs(nb);
    if (attrs_a.size() != attrs_b.size()) return fail("attr count mismatch");
    for (const NodeAttr& at : attrs_a) {
      const std::string* v = b.FindAttr(nb, a.store().names().Name(at.name));
      if (v == nullptr || *v != at.value) return fail("attr value mismatch");
    }
  }
  return true;
}

}  // namespace mct::serialize

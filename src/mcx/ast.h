// MCXQuery abstract syntax (Section 4).
//
// MCXQuery is XQuery with the paper's extensions:
//  * color-qualified location steps   {red}descendant::movie
//    (grammar productions 85/86/151 of Figure 6);
//  * identity-preserving enclosed expressions in constructors;
//  * createColor(color, expr) and createCopy(expr);
//  * update clauses in the style of Tatarinov et al. [25].
//
// The subset implemented covers every query shape in the paper: FLWOR with
// multiple for/let bindings, where conjunctions (comparisons, contains),
// order by, nested FLWORs inside constructors, distinct-values, and the
// abbreviated ({c}//tag, {c}/tag, @attr) plus unabbreviated
// ({c}axis::test) step syntax.

#ifndef COLORFUL_XML_MCX_AST_H_
#define COLORFUL_XML_MCX_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mct::mcx {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Half-open byte range [begin, end) into the source text a construct was
/// parsed from. Spans survive into diagnostics (static analysis, parse
/// errors) so every message can point at the offending query fragment.
struct SourceSpan {
  uint32_t begin = 0;
  uint32_t end = 0;
  bool valid() const { return end > begin; }
};

/// 1-based line/column of byte offset `pos` in `text`.
struct LineCol {
  size_t line = 1;
  size_t col = 1;
};
LineCol ResolveLineCol(std::string_view text, size_t pos);

enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kSelf,
  kAttribute,
};

/// One location step: optional {color}, axis, node test, predicates.
struct PathStep {
  std::string color;  // empty = default color of the evaluation
  Axis axis = Axis::kChild;
  /// Element tag to match; empty means any element (node test * / node()).
  /// For Axis::kAttribute this is the attribute name.
  std::string tag;
  std::vector<ExprPtr> predicates;
  SourceSpan span;
};

/// A path expression: rooted at document("...") or at a variable.
struct PathExpr {
  bool from_document = false;
  std::string doc_arg;    // document("...") argument (informational)
  std::string start_var;  // "$m" when rooted at a variable; empty otherwise
  std::vector<PathStep> steps;
};

/// for/let binding. `is_let` distinguishes let := (paths only in this
/// subset; general let-expressions are not needed by the catalogs).
struct Binding {
  bool is_let = false;
  std::string var;  // "$m"
  ExprPtr expr;     // kPath or kDistinctValues
  SourceSpan span;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Ordered attribute literal inside an element constructor.
struct ConstructorAttr {
  std::string name;
  std::string value;
};

struct Expr {
  enum class Kind {
    kPath,            // path
    kString,          // "literal"
    kNumber,          // numeric literal
    kVarRef,          // bare $v
    kCompare,         // lhs op rhs
    kAnd,             // children conjunction
    kOr,              // children disjunction
    kContains,        // contains(a, b)
    kDistinctValues,  // distinct-values(path)
    kCount,           // count(expr)
    kFLWOR,           // nested FLWOR
    kElement,         // <tag attr="v"> content </tag>
    kCreateColor,     // createColor(color, expr)
    kCreateCopy,      // createCopy(expr)
    kSequence,        // comma sequence inside enclosed expressions
    kText,            // literal text content inside a constructor
  };

  Kind kind;

  // kString / kText literal value; color name for kCreateColor.
  std::string str;
  double num = 0;  // kNumber

  PathExpr path;  // kPath

  CmpOp cmp = CmpOp::kEq;          // kCompare
  std::vector<ExprPtr> children;   // operands / content / sequence items

  // kFLWOR
  std::vector<Binding> bindings;
  ExprPtr where;     // may be null
  ExprPtr order_by;  // may be null
  bool order_descending = false;
  ExprPtr ret;       // return expression

  // kElement
  std::string tag;
  std::vector<ConstructorAttr> attrs;

  SourceSpan span;

  explicit Expr(Kind k) : kind(k) {}
};

/// Update actions (Tatarinov-style update extension, Section 4.3).
struct UpdateAction {
  enum class Kind { kInsert, kDelete, kReplace };
  Kind kind;
  /// Color the action applies in; empty = default color.
  std::string color;
  /// kInsert: the constructor to insert under the target node.
  ExprPtr constructor;
  /// kDelete / kReplace: path relative to the target variable selecting the
  /// affected nodes (empty steps = the target node itself for kDelete).
  PathExpr selector;
  /// kReplace: the new content.
  std::string new_value;
  SourceSpan span;
};

/// A parsed statement: either a query (root expression) or an update
/// (FLWOR prefix + target variable + actions).
struct ParsedQuery {
  bool is_update = false;
  ExprPtr root;  // query root (kFLWOR or constructor/createColor)

  // Update form.
  std::vector<Binding> bindings;
  ExprPtr where;
  std::string target_var;
  SourceSpan target_span;
  std::vector<UpdateAction> actions;

  /// The statement text this query was parsed from; diagnostics resolve
  /// their spans to line/column against it. Empty for hand-built ASTs.
  std::string source;
};

}  // namespace mct::mcx

#endif  // COLORFUL_XML_MCX_AST_H_

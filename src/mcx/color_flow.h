// Color-flow lattice over an MCT schema (the static-analysis domain).
//
// An abstract value is a map from (element type, color) points to an
// estimated cardinality: the set of places a location step's result can
// live in the multi-colored database, weighted by the schema's quant(e, c)
// statistics (Section 5). The lattice order is pointwise: bottom is the
// empty map (a statically-empty step), join is map union with summed
// estimates. Axis steps, color transitions (cross-tree joins) and node
// tests are monotone transfer functions, so a single forward pass over a
// query's location steps computes, per step, the exact set of
// schema-reachable (type, color) pairs — the basis for every MCX0xx
// diagnostic in analysis.h.
//
// The special type name "#document" stands for the shared document node,
// which carries every color; its children in color c are the root element
// types of c (types never produced as a child in that color).

#ifndef COLORFUL_XML_MCX_COLOR_FLOW_H_
#define COLORFUL_XML_MCX_COLOR_FLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "serialize/schema.h"

namespace mct::mcx {

/// One lattice point: an element type inside one colored tree.
struct TypeColor {
  std::string type;
  std::string color;

  bool operator<(const TypeColor& o) const {
    return type != o.type ? type < o.type : color < o.color;
  }
  bool operator==(const TypeColor& o) const {
    return type == o.type && color == o.color;
  }
};

/// An abstract step result: reachable points with cardinality estimates.
/// Empty map == lattice bottom == the step is statically unsatisfiable.
class FlowSet {
 public:
  static constexpr double kEstCap = 1e18;

  /// The document node: every color, cardinality 1.
  static FlowSet Document(const std::set<std::string>& colors);

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const std::map<TypeColor, double>& points() const { return points_; }

  /// Adds `est` to the point's estimate (join with a singleton).
  void Add(const TypeColor& tc, double est);
  /// Pointwise join (map union, estimates summed).
  void Join(const FlowSet& other);

  bool ContainsType(const std::string& type) const;
  bool ContainsColor(const std::string& color) const;
  bool IsDocumentOnly() const;

  /// Sum of all estimates (total expected cardinality of the step).
  double TotalEstimate() const;

  /// Deterministic "type@color" renderings, for EXPLAIN CHECK output.
  std::vector<std::string> Render() const;

 private:
  std::map<TypeColor, double> points_;
};

/// The transfer functions, precomputed from one schema: per color, the
/// child relation between element types, its reverse, and the root types.
class ColorFlowGraph {
 public:
  explicit ColorFlowGraph(const serialize::MctSchema* schema);

  const serialize::MctSchema& schema() const { return *schema_; }

  bool KnownColor(const std::string& color) const;
  /// True when `tag` names an element type in any color.
  bool KnownType(const std::string& tag) const;

  /// dm:children — child step. Empty `tag` matches any element type.
  FlowSet Child(const FlowSet& in, const std::string& tag) const;
  /// Transitive child closure (descendant axis).
  FlowSet Descendant(const FlowSet& in, const std::string& tag) const;
  /// Descendant-or-self.
  FlowSet DescendantOrSelf(const FlowSet& in, const std::string& tag) const;
  FlowSet Parent(const FlowSet& in, const std::string& tag) const;
  FlowSet Ancestor(const FlowSet& in, const std::string& tag) const;
  FlowSet Self(const FlowSet& in, const std::string& tag) const;

  /// Cross-tree color transition: keeps points whose type carries `color`
  /// as a real color (the document keeps every color). Estimates survive
  /// unchanged — identity is preserved across trees.
  FlowSet Recolor(const FlowSet& in, const std::string& color) const;

  /// Quantifier bound for a positional predicate on points of `in`: the
  /// loosest quantifier ('1' < '?' < '+'/'*') any parent production gives
  /// the matched child slot. Returns 1 when every slot is '1'/'?' (so a
  /// positional predicate [N], N >= 2 is statically empty); 0 = unbounded
  /// or unknown.
  int MaxOccurs(const FlowSet& in) const;

 private:
  // Per color: type -> child types (with quant char), and the reverse.
  struct Edges {
    std::map<std::string, std::vector<serialize::ProductionChild>> children;
    std::map<std::string, std::vector<std::string>> parents;
    std::set<std::string> roots;  // types never produced as a child
    std::set<std::string> types;  // all types with this real color
  };

  const Edges* EdgesFor(const std::string& color) const;

  const serialize::MctSchema* schema_;
  std::map<std::string, Edges> per_color_;
  std::set<std::string> all_types_;
};

/// The document's lattice type name.
inline const char kDocumentType[] = "#document";

}  // namespace mct::mcx

#endif  // COLORFUL_XML_MCX_COLOR_FLOW_H_

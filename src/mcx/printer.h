// MCXQuery unparser: renders a parsed query back to canonical (compact,
// unabbreviated) MCXQuery text. Guarantees print/parse stability:
// Parse(Print(q)) yields a structurally identical query (property-tested),
// which also makes Print a normalizer for abbreviated syntax.

#ifndef COLORFUL_XML_MCX_PRINTER_H_
#define COLORFUL_XML_MCX_PRINTER_H_

#include <string>

#include "mcx/ast.h"

namespace mct::mcx {

std::string Print(const ParsedQuery& q);
std::string Print(const Expr& e);
std::string Print(const PathExpr& p);

}  // namespace mct::mcx

#endif  // COLORFUL_XML_MCX_PRINTER_H_

// MCXQuery parser: recursive descent over the raw query text. Both the
// unabbreviated syntax of the paper's Figure 3
// ({red}descendant::movie-genre[{red}child::name = "Comedy"]) and the
// abbreviated syntax of the introduction ({red}//movie-genre[name =
// "Comedy"], @attr) are accepted.

#ifndef COLORFUL_XML_MCX_PARSER_H_
#define COLORFUL_XML_MCX_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "mcx/ast.h"

namespace mct::mcx {

/// Parses a query or update statement. ParseError with offset on failure.
Result<ParsedQuery> Parse(std::string_view text);

}  // namespace mct::mcx

#endif  // COLORFUL_XML_MCX_PARSER_H_

// Schema-aware static analysis for MCXQuery (the compile-time companion of
// the evaluator's dynamic checks).
//
// The analyzer runs between parse and evaluation: it walks the statement
// AST against an MCT schema (serialize/schema.h), propagating the
// color-flow lattice of color_flow.h through every location step, and
// emits span-carrying diagnostics with stable codes:
//
//   errors (strict mode rejects the statement)
//     MCX001  unknown color in a step / update action
//     MCX002  unknown element name in a node test
//     MCX003  statically-empty step ({c}axis::test unsatisfiable)
//     MCX004  createColor / insert provably raises the paper's
//             duplicate-node dynamic error (Section 4.2)
//     MCX005  unbound variable
//     MCX006  update action targets a color the target node can never carry
//
//   warnings (reported, never block)
//     MCX101  cross-tree color transition with no shared element type
//     MCX102  predicate / where clause always evaluates false
//     MCX103  quant(e,c) statistics imply cardinality blowup
//     MCX104  positional predicate beyond the schema's quantifier bound
//
// With an active visibility mask (secure color views, DESIGN.md §16) the
// same pass additionally emits the MCX2xx family:
//
//   errors (strict mode rejects with Status::PermissionDenied)
//     MCX200  statement explicitly names a color outside the read mask
//     MCX201  step is reachable only through invisible colors — it names
//             none itself, but the inherited/default color is masked and
//             the mask-filtered lattice state is empty
//     MCX202  update inserts / relabels into a write-invisible color
//     MCX203  cross-tree join whose only bridging colors are masked
//
//   warnings
//     MCX204  result nodes are shared with a masked sibling hierarchy
//             (structural context may leak through node identity)
//
// The full catalog with rationale lives in DESIGN.md §11.

#ifndef COLORFUL_XML_MCX_ANALYSIS_H_
#define COLORFUL_XML_MCX_ANALYSIS_H_

#include <string>
#include <vector>

#include "mcx/ast.h"
#include "mcx/color_flow.h"
#include "serialize/schema.h"

namespace mct::mcx {

enum class Severity { kWarning, kError };

/// One analyzer finding: stable code, severity, source span (with the
/// line/column resolved against the statement text when available).
struct Diagnostic {
  std::string code;  // "MCX003"
  Severity severity = Severity::kError;
  SourceSpan span;
  size_t line = 0;  // 1-based; 0 when the AST carried no source
  size_t col = 0;
  std::string message;

  /// "error MCX003 at 1:42: ..." (the EXPLAIN CHECK line).
  std::string ToString() const;
};

/// Result of one analysis run: diagnostics plus the step-by-step lattice
/// states (the EXPLAIN CHECK flow trace).
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  /// One line per analyzed location step: the reachable (type, color)
  /// pairs and the quant-derived cardinality estimate.
  std::vector<std::string> flow;
  std::string default_color;

  size_t num_errors() const;
  size_t num_warnings() const;
  bool HasErrors() const { return num_errors() > 0; }

  /// EXPLAIN CHECK rendering: header, flow lines, diagnostics.
  std::string ToText() const;
  /// The same data as one JSON object (schema in DESIGN.md §11).
  std::string ToJson() const;
};

/// Name-level projection of a session's ColorMask (mct/color.h): the
/// analyzer reasons over schema color names, not dense ids, so the caller
/// resolves ids to names before analysis. Inactive = everything visible.
struct VisibilityMask {
  bool active = false;
  std::vector<std::string> read;
  std::vector<std::string> write;

  bool CanRead(const std::string& color) const {
    if (!active) return true;
    for (const std::string& c : read) {
      if (c == color) return true;
    }
    return false;
  }
  bool CanWrite(const std::string& color) const {
    if (!active) return true;
    for (const std::string& c : write) {
      if (c == color) return true;
    }
    return false;
  }
};

struct AnalyzeOptions {
  /// The schema to check against (required).
  const serialize::MctSchema* schema = nullptr;
  /// Color assumed for steps without an explicit {color}.
  std::string default_color;
  /// MCX103 fires when a step's estimated cardinality exceeds this.
  double blowup_threshold = 1e8;
  /// Session visibility mask; when active the pass runs the MCX2xx
  /// visibility analysis alongside the MCX0xx/1xx checks.
  VisibilityMask mask;
};

/// Analyzes a parsed statement. Never fails: problems become diagnostics.
AnalysisReport Analyze(const ParsedQuery& q, const AnalyzeOptions& opts);

}  // namespace mct::mcx

#endif  // COLORFUL_XML_MCX_ANALYSIS_H_

#include "mcx/evaluator.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_set>

#include "common/metrics.h"
#include "common/strings.h"
#include "mcx/parser.h"
#include "mcx/printer.h"
#include "serialize/schema.h"
#include "storage/wal.h"
#include "query/trace.h"
#include "query/twig.h"
#include "xml/escape.h"

namespace mct::mcx {

namespace {

using query::ExecStats;
using query::Table;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Opens a trace group node on construction and closes it (stamping wall
// time) on destruction, so error returns unwind the trace stack correctly.
class TraceGroup {
 public:
  TraceGroup(query::QueryTrace* t, std::string op, std::string detail)
      : t_(t) {
    if (t_ == nullptr) return;
    node_ = t_->Open(std::move(op), std::move(detail));
    start_ = std::chrono::steady_clock::now();
  }
  ~TraceGroup() {
    if (t_ == nullptr) return;
    node_->seconds = SecondsSince(start_);
    t_->Close(node_);
  }
  TraceGroup(const TraceGroup&) = delete;
  TraceGroup& operator=(const TraceGroup&) = delete;

  bool enabled() const { return node_ != nullptr; }
  query::OpTrace* node() { return node_; }

 private:
  query::QueryTrace* t_ = nullptr;
  query::OpTrace* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

// Suspends trace recording for a scope. Nested per-row FLWORs would bloat
// the trace by the outer cardinality, so their subplans are discarded.
class TracePause {
 public:
  explicit TracePause(query::QueryTrace* t) : t_(t) {
    if (t_ != nullptr) t_->Pause();
  }
  ~TracePause() {
    if (t_ != nullptr) t_->Resume();
  }
  TracePause(const TracePause&) = delete;
  TracePause& operator=(const TracePause&) = delete;

 private:
  query::QueryTrace* t_;
};

// True for axes whose operator filters targets by membership in the step's
// color — making a preceding cross-tree join on the context column
// redundant (the planner's elision). self/attribute/descendant-or-self pass
// context nodes through untested, so elision there would change results.
bool AxisSubsumesCrossTree(Axis a) {
  return a == Axis::kChild || a == Axis::kDescendant || a == Axis::kParent ||
         a == Axis::kAncestor;
}

// Flattens an AND tree into conjuncts.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kAnd) {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
  } else {
    out->push_back(e);
  }
}

void CollectVars(const Expr& e, std::vector<std::string>* out) {
  switch (e.kind) {
    case Expr::Kind::kVarRef:
      out->push_back(e.str);
      break;
    case Expr::Kind::kPath:
      if (!e.path.start_var.empty()) out->push_back(e.path.start_var);
      for (const auto& step : e.path.steps) {
        for (const auto& pred : step.predicates) CollectVars(*pred, out);
      }
      break;
    default:
      for (const auto& c : e.children) CollectVars(*c, out);
      if (e.where) CollectVars(*e.where, out);
      if (e.ret) CollectVars(*e.ret, out);
      break;
  }
}

// The single variable a (sub)expression depends on, or "" when none or
// several — used to classify where-conjuncts as selections vs joins.
std::string SoleVar(const Expr& e) {
  std::vector<std::string> vars;
  CollectVars(e, &vars);
  if (vars.empty()) return "";
  for (const auto& v : vars) {
    if (v != vars[0]) return "";
  }
  return vars[0];
}

bool NumericCompare(CmpOp op, double a, double b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

bool StringCompareOp(CmpOp op, const std::string& a, const std::string& b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

// XQuery-style general comparison on atomized values: numeric when both
// sides parse as numbers.
bool CompareValues(CmpOp op, const std::string& a, const std::string& b) {
  auto na = ParseDouble(a);
  auto nb = ParseDouble(b);
  if (na.has_value() && nb.has_value()) return NumericCompare(op, *na, *nb);
  return StringCompareOp(op, a, b);
}

std::string FormatNumber(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return StrFormat("%g", v);
}

// True when evaluating `e` cannot mutate evaluator or database state: no
// constructors (they create store nodes), no createColor/createCopy, no
// nested FLWOR (it runs physical operators, which count stats), and no
// distinct-values (it counts dup_elims). Pure expressions touch only const
// read paths of the tree/store images, so per-row evaluation may fan out
// across workers and still produce serial-identical results and stats.
bool IsPureExpr(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kElement:
    case Expr::Kind::kCreateColor:
    case Expr::Kind::kCreateCopy:
    case Expr::Kind::kFLWOR:
    case Expr::Kind::kDistinctValues:
      return false;
    case Expr::Kind::kPath:
      for (const auto& step : e.path.steps) {
        for (const auto& pred : step.predicates) {
          if (!IsPureExpr(*pred)) return false;
        }
      }
      return true;
    default:
      for (const auto& c : e.children) {
        if (!IsPureExpr(*c)) return false;
      }
      return true;
  }
}

}  // namespace

Result<ColorId> Evaluator::ResolveColor(const std::string& name) const {
  if (name.empty()) return opts_.default_color;
  ColorId c = db_->LookupColor(name);
  if (c == kInvalidColorId) {
    return Status::InvalidArgument("unknown color '" + name + "'");
  }
  return c;
}

namespace {

// Extends a plan-cache fingerprint with the database's shard count (mirror
// of the mask-fingerprint slicing): plans are costed under a shard
// fan-out, so a cached spine must never cross differently-sharded
// databases. shards <= 1 leaves the fingerprint untouched — the unsharded
// slice keys stay exactly as before. splitmix64 finalizer; | 1 keeps the
// sliced key nonzero even when no mask is active.
uint64_t ShardSlicedFingerprint(uint64_t fp, int shards) {
  if (shards <= 1) return fp;
  uint64_t x = fp + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(shards);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x | 1;
}

}  // namespace

Result<QueryResult> Evaluator::Run(std::string_view text) {
  if (opts_.planner && opts_.plan_cache != nullptr) {
    // Masked plans are pruned against the session's visibility mask, so the
    // cache is sliced by mask fingerprint: tenants with different masks
    // never exchange entries (and the common unmasked case shares slice 0).
    // The shard count extends the slice key the same way.
    const uint64_t fp =
        ShardSlicedFingerprint(opts_.mask.Fingerprint(), db_->shard_count());
    std::string key(text);
    if (std::shared_ptr<const void> hit =
            opts_.plan_cache->LookupExact(key, opts_.cache_epoch, fp)) {
      auto cached = std::static_pointer_cast<const CachedStatement>(hit);
      // `cached` keeps the payload alive even if the cache is invalidated
      // mid-statement by a concurrent session.
      return RunPlanned(cached->query, &cached->plan);
    }
    MCT_ASSIGN_OR_RETURN(ParsedQuery q, Parse(text));
    auto cached = std::make_shared<CachedStatement>();
    const std::string norm = query::NormalizeStatement(text);
    if (!opts_.plan_cache->LookupSkeleton(norm, &cached->plan,
                                          opts_.cache_epoch, fp)) {
      cached->plan = PlanFor(q);
      opts_.plan_cache->InsertSkeleton(norm, cached->plan, opts_.cache_epoch,
                                       fp);
    }
    cached->query = std::move(q);
    opts_.plan_cache->InsertExact(key, cached, opts_.cache_epoch, fp);
    return RunPlanned(cached->query, &cached->plan);
  }
  MCT_ASSIGN_OR_RETURN(ParsedQuery q, Parse(text));
  return Run(q);
}

Status Evaluator::MaybeAnalyze(const ParsedQuery& q) {
  // An active mask forces the visibility analysis even when schema checking
  // is off: kStrict enforcement needs the MCX2xx findings before any side
  // effect, and even kWarn sessions want the diagnostics in EXPLAIN CHECK.
  const bool mask_on = opts_.mask.active;
  if (opts_.analyze == AnalyzeMode::kOff && !mask_on) return Status::OK();
  static Counter* runs =
      MetricsRegistry::Global().counter("mct.analysis.runs");
  static Counter* errors =
      MetricsRegistry::Global().counter("mct.analysis.errors");
  static Counter* warnings =
      MetricsRegistry::Global().counter("mct.analysis.warnings");
  static Counter* rejected =
      MetricsRegistry::Global().counter("mct.analysis.rejected");
  static Counter* vis_runs =
      MetricsRegistry::Global().counter("mct.analysis.visibility.runs");
  static Counter* vis_violations =
      MetricsRegistry::Global().counter("mct.analysis.visibility.violations");
  static Counter* vis_rejected =
      MetricsRegistry::Global().counter("mct.analysis.visibility.rejected");
  runs->Inc();

  const serialize::MctSchema* schema = opts_.schema;
  if (schema == nullptr) {
    if (inferred_schema_ == nullptr) {
      inferred_schema_ =
          std::make_unique<serialize::MctSchema>(serialize::InferSchema(*db_));
    }
    schema = inferred_schema_.get();
  }

  AnalyzeOptions ao;
  ao.schema = schema;
  ao.default_color = db_->ColorName(opts_.default_color);
  if (mask_on) {
    vis_runs->Inc();
    ao.mask.active = true;
    // Bits beyond the palette name no color in this database; dropping them
    // is harmless (they could never be read anyway).
    for (ColorId c : opts_.mask.read.ToVector()) {
      if (c < db_->num_colors()) ao.mask.read.push_back(db_->ColorName(c));
    }
    for (ColorId c : opts_.mask.write.ToVector()) {
      if (c < db_->num_colors()) ao.mask.write.push_back(db_->ColorName(c));
    }
  }
  AnalysisReport report = Analyze(q, ao);
  errors->Inc(report.num_errors());
  warnings->Inc(report.num_warnings());

  // MCX2xx (visibility) errors reject under mask_enforcement; MCX0xx
  // (schema) errors reject under analyze == kStrict. The two gates are
  // independent: a masked session with analyze == kOff still refuses
  // permission violations, and a strict-analysis session without a mask
  // behaves exactly as before.
  const bool schema_strict = opts_.analyze == AnalyzeMode::kStrict;
  const bool mask_strict =
      mask_on && opts_.mask_enforcement == AnalyzeMode::kStrict;
  auto is_visibility = [](const Diagnostic& d) {
    return d.code.size() == 6 && d.code.compare(0, 4, "MCX2") == 0;
  };
  std::string first_schema_error;
  std::string first_vis_error;
  size_t num_schema_errors = 0;
  size_t num_vis_errors = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (is_visibility(d)) {
      if (num_vis_errors++ == 0) first_vis_error = d.ToString();
    } else {
      if (num_schema_errors++ == 0) first_schema_error = d.ToString();
    }
  }
  if (num_vis_errors > 0) vis_violations->Inc(num_vis_errors);
  if (opts_.check != nullptr) *opts_.check = std::move(report);
  if (mask_strict && num_vis_errors > 0) {
    rejected->Inc();
    vis_rejected->Inc();
    std::string msg = first_vis_error;
    if (num_vis_errors > 1) {
      msg += StrFormat(" (and %zu more error(s))", num_vis_errors - 1);
    }
    return Status::PermissionDenied(std::move(msg));
  }
  if (schema_strict && num_schema_errors > 0) {
    rejected->Inc();
    std::string msg = first_schema_error;
    if (num_schema_errors > 1) {
      msg += StrFormat(" (and %zu more error(s))", num_schema_errors - 1);
    }
    return Status::StaticError(std::move(msg));
  }
  return Status::OK();
}

Status Evaluator::ForRows(size_t n, bool parallel_ok,
                          const std::function<Status(size_t)>& fn,
                          size_t morsel_override) {
  const size_t morsel =
      morsel_override != 0 ? morsel_override : opts_.morsel_size;
  ResourceGovernor* gov = exec_.governor;
  if (pool_ == nullptr || !parallel_ok || opts_.morsel_size == 0 ||
      n <= morsel) {
    if (pool_ != nullptr && opts_.morsel_size != 0 && !parallel_ok &&
        n > morsel) {
      // A pool exists and the input is large enough to fan out, but the
      // purity gate forced this loop serial.
      static Counter* fallbacks =
          MetricsRegistry::Global().counter("mct.eval.serial_fallbacks");
      fallbacks->Inc();
    }
    // Governed runs check at morsel granularity even on the serial path so
    // cancellation latency stays bounded by one morsel of row work.
    const size_t check_every = gov != nullptr && morsel != 0 ? morsel : n + 1;
    for (size_t i = 0; i < n; ++i) {
      if (gov != nullptr && i != 0 && i % check_every == 0) {
        MCT_RETURN_IF_ERROR(gov->Check());
      }
      MCT_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  const size_t num_morsels = (n + morsel - 1) / morsel;
  std::vector<Status> errors(num_morsels);
  ParallelFor(pool_.get(), num_morsels, [&](size_t m) {
    if (gov != nullptr) {
      Status s = gov->Check();
      if (!s.ok()) {
        errors[m] = std::move(s);
        return;
      }
    }
    const size_t begin = m * morsel;
    const size_t end = std::min(n, begin + morsel);
    for (size_t i = begin; i < end; ++i) {
      Status s = fn(i);
      if (!s.ok()) {
        errors[m] = std::move(s);
        return;  // abandon the rest of this morsel, as the serial run would
      }
    }
  });
  // First error in morsel order == lowest-indexed error == the error the
  // serial run would have reported.
  for (Status& s : errors) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

Result<QueryResult> Evaluator::Run(const ParsedQuery& q) {
  if (opts_.planner) {
    const query::StatementPlan plan = PlanFor(q);
    return RunPlanned(q, &plan);
  }
  return RunPlanned(q, nullptr);
}

Result<QueryResult> Evaluator::RunPlanned(const ParsedQuery& q,
                                          const query::StatementPlan* plan) {
  // Fail fast when the statement arrives already cancelled or past its
  // deadline (e.g. it sat in a commit queue): no work, no side effects.
  if (exec_.governor != nullptr) {
    MCT_RETURN_IF_ERROR(exec_.governor->Check());
  }
  MCT_RETURN_IF_ERROR(MaybeAnalyze(q));
  if (plan != nullptr) {
    Note("EXPLAIN PLAN\n" + plan->Describe());
    if (exec_.trace != nullptr) {
      exec_.trace->Leaf("PLAN",
                        StrFormat("cost %.1f baseline -> %.1f chosen",
                                  plan->cost_baseline, plan->cost_chosen));
    }
  }
  // Always (re)assign: a stale pointer from a prior statement must never
  // leak into this one. The first EvalFLWORBindings call consumes it.
  active_plan_ = plan;
  if (pool_ != nullptr) {
    // Interval relabeling is lazy-on-access; workers read labels through the
    // const accessors, which never relabel. Force every color's labels clean
    // before any operator fans out.
    for (size_t c = 0; c < db_->num_colors(); ++c) {
      db_->tree(static_cast<ColorId>(c))->EnsureLabels();
    }
  }
  if (q.is_update) {
    static Counter* updates =
        MetricsRegistry::Global().counter("mct.eval.updates");
    updates->Inc();
    Result<QueryResult> r = RunUpdate(q);
    active_plan_ = nullptr;
    if (r.ok() && r->updated_count > 0 && opts_.plan_cache != nullptr &&
        opts_.cache_epoch == 0) {
      // Statistics (and any cached candidate counts) are stale now; cached
      // plans stay *correct* (runtime guards re-validate), but re-planning
      // against fresh stats is the better bet. Epoch-stamped sessions skip
      // this: publishing the commit bumps the epoch, which retires old
      // entries on their next lookup with no invalidation window.
      opts_.plan_cache->Invalidate();
    }
    return r;
  }
  static Counter* queries =
      MetricsRegistry::Global().counter("mct.eval.queries");
  queries->Inc();
  const auto t0 = std::chrono::steady_clock::now();
  QueryResult out;
  Env env;
  if (q.root->kind == Expr::Kind::kFLWOR) {
    MCT_ASSIGN_OR_RETURN(out.items, EvalFLWOR(*q.root, env));
  } else {
    EvalCtx c;
    c.env = &env;
    c.ctx_node = db_->document();
    c.ctx_color = opts_.default_color;
    MCT_ASSIGN_OR_RETURN(out.items, EvalExpr(c, *q.root));
  }
  if (exec_.trace != nullptr) {
    query::OpTrace* root = exec_.trace->mutable_root();
    root->rows_out = out.items.size();
    root->seconds = SecondsSince(t0);
  }
  // Operators that return bare Tables cannot surface a governor trip
  // themselves — they stop emitting and the sticky status is checked here,
  // before any (truncated) result escapes to the caller.
  if (exec_.governor != nullptr && exec_.governor->tripped()) {
    return exec_.governor->status();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cost-based planning (query/planner.h)
// ---------------------------------------------------------------------------

namespace {

// Live statistics the cost model reads: per-(color, tag) element counts off
// the tag index and whole-color sizes.
class DbStatsProvider : public query::StatsProvider {
 public:
  explicit DbStatsProvider(const MctDatabase* db) : db_(db) {}
  double TagCount(ColorId color, const std::string& tag) const override {
    return static_cast<double>(db_->TagCount(color, tag));
  }
  double ColorSize(ColorId color) const override {
    const ColoredTree* t = db_->tree(color);
    return t != nullptr ? static_cast<double>(t->size()) : 0.0;
  }
  int ShardCount() const override { return db_->shard_count(); }

 private:
  const MctDatabase* db_;
};

}  // namespace

const ColorFlowGraph* Evaluator::flow_graph() {
  if (flow_graph_ == nullptr) {
    const serialize::MctSchema* schema = opts_.schema;
    if (schema == nullptr) {
      if (inferred_schema_ == nullptr) {
        inferred_schema_ = std::make_unique<serialize::MctSchema>(
            serialize::InferSchema(*db_));
      }
      schema = inferred_schema_.get();
    }
    flow_graph_ = std::make_unique<ColorFlowGraph>(schema);
  }
  return flow_graph_.get();
}

query::StatementPlan Evaluator::PlanFor(const ParsedQuery& q) {
  static Counter* planned =
      MetricsRegistry::Global().counter("mct.planner.statements");
  planned->Inc();
  const std::vector<Binding>* bindings = nullptr;
  if (q.is_update) {
    bindings = &q.bindings;
  } else if (q.root != nullptr && q.root->kind == Expr::Kind::kFLWOR) {
    bindings = &q.root->bindings;
  }
  if (bindings == nullptr || bindings->empty()) return query::StatementPlan{};
  DbStatsProvider stats(db_);
  return query::PlanStatement(BuildBindingDescs(*bindings), stats,
                              exec_.governor);
}

std::vector<query::BindingDesc> Evaluator::BuildBindingDescs(
    const std::vector<Binding>& bindings) {
  const ColorFlowGraph* fg = flow_graph();
  const std::set<std::string> all_colors = [&] {
    std::set<std::string> s;
    for (size_t c = 0; c < db_->num_colors(); ++c) {
      s.insert(db_->ColorName(static_cast<ColorId>(c)));
    }
    return s;
  }();

  std::vector<query::BindingDesc> out;
  out.reserve(bindings.size());
  // Final color / flow set of each bound variable, mirroring the pipeline's
  // column metadata. Absent entry = binding unplannable (plan baseline).
  std::unordered_map<std::string, ColorId> var_color;
  std::unordered_map<std::string, FlowSet> var_flow;
  std::unordered_set<std::string> bound;
  double acc_rows = 1;

  for (const Binding& binding : bindings) {
    query::BindingDesc d;
    const Expr* pe = binding.expr.get();
    if (pe != nullptr && pe->kind == Expr::Kind::kDistinctValues &&
        !pe->children.empty()) {
      pe = pe->children[0].get();
    }
    if (binding.is_let || pe == nullptr || pe->kind != Expr::Kind::kPath) {
      // Index-aligned placeholder: the binding runs the baseline pipeline.
      out.push_back(std::move(d));
      bound.insert(binding.var);
      var_color.erase(binding.var);
      continue;
    }
    const PathExpr& path = pe->path;

    ColorId cur_color = opts_.default_color;
    FlowSet flow;
    bool ok = true;
    if (!path.start_var.empty()) {
      auto it = var_color.find(path.start_var);
      if (it == var_color.end()) {
        ok = false;  // env var or unplannable source: no color known
      } else {
        cur_color = it->second;
        auto fit = var_flow.find(path.start_var);
        if (fit != var_flow.end()) flow = fit->second;
      }
      d.doc_context = false;
      d.single_row = false;
      d.in_rows = acc_rows;
    } else {
      // Mirrors the correlated-path detection in EvalFLWORBindings: a
      // predicate referencing an already-bound variable seeds the
      // accumulated table instead of a fresh one-row document base.
      bool correlated = false;
      if (!bound.empty()) {
        std::vector<std::string> pred_vars;
        for (const PathStep& step : path.steps) {
          for (const auto& pred : step.predicates) {
            CollectVars(*pred, &pred_vars);
          }
        }
        for (const std::string& v : pred_vars) {
          if (bound.contains(v)) {
            correlated = true;
            break;
          }
        }
      }
      d.doc_context = true;
      d.single_row = !correlated;
      d.in_rows = correlated ? acc_rows : 1;
      flow = FlowSet::Document(all_colors);
    }

    for (const PathStep& step : path.steps) {
      if (!ok) break;
      ColorId c = opts_.default_color;
      if (!step.color.empty()) {
        c = db_->LookupColor(step.color);
        if (c == kInvalidColorId) {
          ok = false;  // the pipeline will raise the error; don't plan
          break;
        }
      }
      query::StepDesc s;
      s.axis = static_cast<query::PlanAxis>(step.axis);
      s.color = c;
      s.tag = step.tag;
      s.masked = !opts_.mask.CanRead(c);
      const bool first = d.steps.empty();
      s.color_change = c != cur_color && !(first && d.doc_context);

      // Color-flow cardinality: recolor (the lattice's color transition)
      // then the axis transfer.
      if (!flow.empty()) {
        flow = fg->Recolor(flow, db_->ColorName(c));
        switch (step.axis) {
          case Axis::kChild:
            flow = fg->Child(flow, step.tag);
            break;
          case Axis::kDescendant:
            flow = fg->Descendant(flow, step.tag);
            break;
          case Axis::kDescendantOrSelf:
            flow = fg->DescendantOrSelf(flow, step.tag);
            break;
          case Axis::kParent:
            flow = fg->Parent(flow, step.tag);
            break;
          case Axis::kAncestor:
            flow = fg->Ancestor(flow, step.tag);
            break;
          case Axis::kSelf:
            flow = fg->Self(flow, step.tag);
            break;
          case Axis::kAttribute:
            break;  // row count carries over; keep the element flow
        }
        if (step.axis != Axis::kAttribute) {
          s.flow_out = flow.TotalEstimate();
        }
      }

      for (const auto& pred : step.predicates) {
        query::PredDesc p;
        if (pred->kind == Expr::Kind::kNumber) {
          p.positional = true;
        } else if (pred->kind == Expr::Kind::kCompare &&
                   pred->cmp == CmpOp::kEq && pred->children.size() == 2 &&
                   pred->children[1]->kind == Expr::Kind::kString &&
                   pred->children[0]->kind == Expr::Kind::kPath) {
          // Mirror of the INDEX PROBE eligibility test in EvalSteps.
          const PathExpr& lp = pred->children[0]->path;
          const std::string& lit = pred->children[1]->str;
          if (lp.start_var.empty() && !lp.from_document &&
              lp.steps.size() == 1 && lp.steps[0].predicates.empty()) {
            const PathStep& ps = lp.steps[0];
            if (ps.axis == Axis::kChild && !ps.tag.empty()) {
              p.seek = query::PredDesc::Seek::kChildContent;
              p.est_matches =
                  static_cast<double>(db_->ContentLookup(ps.tag, lit).size());
            } else if (ps.axis == Axis::kAttribute) {
              p.seek = query::PredDesc::Seek::kAttr;
              p.est_matches =
                  static_cast<double>(db_->AttrLookup(ps.tag, lit).size());
            } else if (ps.axis == Axis::kSelf && ps.tag.empty() &&
                       !step.tag.empty()) {
              p.seek = query::PredDesc::Seek::kSelfContent;
              p.est_matches =
                  static_cast<double>(db_->ContentLookup(step.tag, lit).size());
            }
          }
        }
        s.preds.push_back(p);
      }

      cur_color = c;
      d.steps.push_back(std::move(s));
    }
    if (!ok) d.steps.clear();  // unplannable: baseline every step

    bound.insert(binding.var);
    if (ok && !d.steps.empty()) {
      var_color[binding.var] = cur_color;
      var_flow[binding.var] = flow;
      const query::StepDesc& lastst = d.steps.back();
      double est = lastst.flow_out >= 0
                       ? lastst.flow_out
                       : static_cast<double>(
                             db_->TagCount(lastst.color, lastst.tag));
      for (const auto& p : lastst.preds) {
        est *= p.positional ? 0.2 : 0.5;
        (void)p;
      }
      acc_rows = std::max(1.0, est);
    } else {
      var_color.erase(binding.var);
      var_flow.erase(binding.var);
    }
    out.push_back(std::move(d));
  }
  return out;
}

// ---------------------------------------------------------------------------
// FLWOR evaluation
// ---------------------------------------------------------------------------

Result<std::vector<Item>> Evaluator::EvalFLWOR(const Expr& flwor,
                                               const Env& env) {
  MCT_ASSIGN_OR_RETURN(
      Bindings b, EvalFLWORBindings(flwor.bindings, flwor.where.get(), env));
  EvalCtx base;
  base.b = &b;
  base.env = &env;
  // order by: decorate-sort on the evaluated key. Key evaluation (the
  // expensive part) fans out per row when the key expression is pure; the
  // sort stays serial and stable.
  if (flwor.order_by != nullptr) {
    const auto sort_t0 = std::chrono::steady_clock::now();
    const size_t n_rows = b.table.num_rows();
    std::vector<std::pair<std::string, uint32_t>> keyed(n_rows);
    MCT_RETURN_IF_ERROR(ForRows(
        n_rows, IsPureExpr(*flwor.order_by), [&](size_t i) {
          EvalCtx c = base;
          c.row = i;
          std::vector<Item> items;
          MCT_ASSIGN_OR_RETURN(items, EvalExpr(c, *flwor.order_by));
          keyed[i] = {items.empty() ? "" : Atomize(items[0]),
                      static_cast<uint32_t>(i)};
          return Status::OK();
        }));
    bool desc = flwor.order_descending;
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& x, const auto& y) {
                       auto nx = ParseDouble(x.first);
                       auto ny = ParseDouble(y.first);
                       if (nx.has_value() && ny.has_value()) {
                         return desc ? *nx > *ny : *nx < *ny;
                       }
                       return desc ? x.first > y.first : x.first < y.first;
                     });
    std::vector<uint32_t> order;
    order.reserve(n_rows);
    for (const auto& [_, i] : keyed) order.push_back(i);
    if (exec_.batch) {
      // The permutation becomes the selection vector: an O(rows) reorder
      // with zero cell copies.
      b.table.KeepRows(std::move(order));
    } else {
      Table sorted = query::Table::WithVars(b.table.vars);
      sorted.Reserve(n_rows);
      for (uint32_t i : order) sorted.AppendRow(b.table.RowAt(i));
      b.table = std::move(sorted);
    }
    if (exec_.trace != nullptr) {
      query::OpTrace* n = exec_.trace->Leaf("ORDER BY");
      n->rows_in = n->rows_out = n_rows;
      n->seconds = SecondsSince(sort_t0);
    }
  }
  // Return clause: evaluate per row into per-row buffers (parallel when the
  // expression is pure), then concatenate in row order.
  const auto ret_t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<Item>> per_row(b.table.num_rows());
  MCT_RETURN_IF_ERROR(
      ForRows(b.table.num_rows(), IsPureExpr(*flwor.ret), [&](size_t i) {
        EvalCtx c = base;
        c.row = i;
        MCT_ASSIGN_OR_RETURN(per_row[i], EvalExpr(c, *flwor.ret));
        return Status::OK();
      }));
  size_t total = 0;
  for (const auto& items : per_row) total += items.size();
  std::vector<Item> out;
  out.reserve(total);
  for (auto& items : per_row) {
    for (auto& item : items) out.push_back(std::move(item));
  }
  if (exec_.trace != nullptr) {
    query::OpTrace* n = exec_.trace->Leaf("RETURN");
    n->rows_in = b.table.num_rows();
    n->rows_out = total;
    n->seconds = SecondsSince(ret_t0);
  }
  return out;
}

Result<Evaluator::Bindings> Evaluator::EvalFLWORBindings(
    const std::vector<Binding>& bindings, const Expr* where, const Env& env) {
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);
  std::vector<bool> used(conjuncts.size(), false);

  // Consume the statement plan (if any). Clearing it here means nested
  // per-row FLWORs — which re-enter this function — run the baseline
  // pipeline instead of misapplying the outer statement's plan.
  const query::StatementPlan* plan = active_plan_;
  active_plan_ = nullptr;
  if (plan != nullptr && plan->bindings.size() != bindings.size()) {
    plan = nullptr;
  }

  Bindings acc;
  for (size_t bi = 0; bi < bindings.size(); ++bi) {
    // Binding boundaries are the FLWOR loop's natural morsel edges: a
    // cancelled/expired statement stops before materializing the next
    // (possibly multiplicative) binding table.
    if (exec_.governor != nullptr) {
      MCT_RETURN_IF_ERROR(exec_.governor->Check());
    }
    const auto& binding = bindings[bi];
    const query::BindingPlan* bplan =
        plan != nullptr ? &plan->bindings[bi] : nullptr;
    const Expr& be = *binding.expr;
    bool distinct = be.kind == Expr::Kind::kDistinctValues;
    const Expr& pe = distinct ? *be.children[0] : be;
    if (distinct && pe.kind != Expr::Kind::kPath) {
      // distinct-values over a general expression (e.g. a nested FLWOR):
      // evaluate it, deduplicate by atomized value, and bind the surviving
      // node items as an atomic column.
      if (acc.table.num_cols() != 0) {
        return Status::NotSupported(
            "distinct-values(non-path) must be the first binding");
      }
      EvalCtx c;
      c.env = &env;
      c.ctx_node = db_->document();
      c.ctx_color = opts_.default_color;
      MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, pe));
      if (opts_.stats != nullptr) ++opts_.stats->dup_elims;
      std::unordered_set<std::string> seen;
      std::vector<NodeId> survivors;
      for (const Item& it : items) {
        if (!it.is_node) {
          return Status::NotSupported(
              "distinct-values over atomic items as a binding");
        }
        if (seen.insert(Atomize(it)).second) survivors.push_back(it.node);
      }
      acc.table = Table::FromNodes(binding.var, std::move(survivors));
      acc.cols = {ColumnInfo{opts_.default_color, true, ""}};
      if (exec_.trace != nullptr) {
        query::OpTrace* n =
            exec_.trace->Leaf("DISTINCT VALUES", binding.var);
        n->rows_in = items.size();
        n->rows_out = acc.table.num_rows();
      }
      continue;
    }
    if (pe.kind != Expr::Kind::kPath) {
      return Status::NotSupported(
          "for/let bindings must be path expressions in this subset");
    }
    const PathExpr& path = pe.path;

    if (!path.start_var.empty()) {
      int col = acc.table.ColumnOf(path.start_var);
      if (col >= 0) {
        if (acc.cols[static_cast<size_t>(col)].atomic) {
          return Status::InvalidArgument(
              "axis step from atomic-valued variable " + path.start_var);
        }
        TraceGroup g(exec_.trace, "FOR", binding.var);
        if (g.enabled() && bplan != nullptr && bplan->est_rows >= 0) {
          g.node()->est_rows = bplan->est_rows;
        }
        MCT_ASSIGN_OR_RETURN(
            acc, EvalSteps(std::move(acc), col, path.steps, binding.var, env,
                           bplan));
      } else if (env.contains(path.start_var)) {
        // Correlated with an *outer* FLWOR variable: seed from the env.
        const Item& outer = env.at(path.start_var);
        if (!outer.is_node) {
          return Status::NotSupported("path from an atomic outer variable");
        }
        Bindings base;
        base.table = Table::FromNodes(path.start_var, {outer.node});
        base.cols = {ColumnInfo{opts_.default_color, false, ""}};
        Bindings tb;
        {
          TraceGroup g(exec_.trace, "FOR", binding.var);
          MCT_ASSIGN_OR_RETURN(
              tb, EvalSteps(std::move(base), 0, path.steps, binding.var, env));
        }
        int keep = tb.table.ColumnOf(binding.var);
        tb.table = query::Project(tb.table, {keep});
        tb.cols = {tb.cols[static_cast<size_t>(keep)]};
        if (acc.table.num_cols() == 0) {
          acc = std::move(tb);
        } else {
          MCT_ASSIGN_OR_RETURN(
              acc, JoinIn(std::move(acc), std::move(tb), nullptr, env));
        }
      } else {
        return Status::InvalidArgument("unbound variable " + path.start_var);
      }
    } else {
      // Does a step predicate reference a variable already bound (the
      // paper Q3's `[. = $m]` correlation)? Then the path must be
      // evaluated against the accumulated bindings rather than standalone.
      bool correlated = false;
      if (acc.table.num_cols() > 0) {
        std::vector<std::string> pred_vars;
        for (const PathStep& step : path.steps) {
          for (const auto& pred : step.predicates) {
            CollectVars(*pred, &pred_vars);
          }
        }
        for (const std::string& v : pred_vars) {
          if (acc.table.ColumnOf(v) >= 0) {
            correlated = true;
            break;
          }
        }
      }
      if (correlated) {
        Bindings seeded = std::move(acc);
        int doc_col = static_cast<int>(seeded.table.num_cols());
        seeded.table.Flatten();
        seeded.table.AppendColumn(
            "#doc",
            std::vector<NodeId>(seeded.table.num_rows(), db_->document()));
        seeded.cols.push_back(ColumnInfo{opts_.default_color, false, ""});
        {
          TraceGroup g(exec_.trace, "FOR", binding.var);
          if (g.enabled() && bplan != nullptr && bplan->est_rows >= 0) {
            g.node()->est_rows = bplan->est_rows;
          }
          MCT_ASSIGN_OR_RETURN(
              acc,
              EvalSteps(std::move(seeded), doc_col, path.steps, binding.var,
                        env, bplan));
        }
        // Drop the #doc helper column.
        std::vector<int> keep_cols;
        for (size_t i = 0; i < acc.table.num_cols(); ++i) {
          if (acc.table.vars[i] != "#doc") {
            keep_cols.push_back(static_cast<int>(i));
          }
        }
        acc.table = query::Project(acc.table, keep_cols);
        std::vector<ColumnInfo> kept;
        for (int k : keep_cols) kept.push_back(acc.cols[static_cast<size_t>(k)]);
        acc.cols = std::move(kept);
        if (distinct) {
          return Status::NotSupported(
              "distinct-values over a correlated path binding");
        }
        continue;
      }
      Bindings base;
      base.table = Table::FromNodes("#doc", {db_->document()});
      base.cols = {ColumnInfo{opts_.default_color, false, ""}};
      Bindings tb;
      {
        TraceGroup g(exec_.trace, "FOR", binding.var);
        if (g.enabled() && bplan != nullptr && bplan->est_rows >= 0) {
          g.node()->est_rows = bplan->est_rows;
        }
        MCT_ASSIGN_OR_RETURN(
            tb, EvalSteps(std::move(base), 0, path.steps, binding.var, env,
                          bplan));
      }
      int keep = tb.table.ColumnOf(binding.var);
      tb.table = query::Project(tb.table, {keep});
      tb.cols = {tb.cols[static_cast<size_t>(keep)]};

      int existing = acc.table.ColumnOf(binding.var);
      if (existing >= 0) {
        // The paper's Figure 3 rebinds the same variable across for
        // clauses (Q2 binds $m over red then green paths): the bindings
        // must agree, i.e. a node-identity join between the two colored
        // trees.
        tb.table.vars[0] = binding.var + "#rebind";
        Note(StrFormat("IDENTITY JOIN on rebound %s  (%zu x %zu rows)",
                       binding.var.c_str(), acc.table.num_rows(),
                       tb.table.num_rows()));
        Table joined = query::IdentityJoin(db_, acc.table, existing, tb.table,
                                           0, exec_);
        std::vector<int> cols;
        for (size_t i = 0; i < acc.table.num_cols(); ++i) {
          cols.push_back(static_cast<int>(i));
        }
        acc.table = query::Project(joined, cols);
        // The rebound column's color context switches to the new path's.
        acc.cols[static_cast<size_t>(existing)] = tb.cols[0];
      } else if (acc.table.num_cols() == 0) {
        acc = std::move(tb);
      } else {
        const Expr* join_conjunct = nullptr;
        for (size_t i = 0; i < conjuncts.size(); ++i) {
          if (used[i]) continue;
          const Expr& c = *conjuncts[i];
          if (c.kind != Expr::Kind::kCompare &&
              c.kind != Expr::Kind::kContains) {
            continue;
          }
          std::string lv = SoleVar(*c.children[0]);
          std::string rv = SoleVar(*c.children[1]);
          bool connects = (lv == binding.var && !rv.empty() &&
                           acc.table.ColumnOf(rv) >= 0) ||
                          (rv == binding.var && !lv.empty() &&
                           acc.table.ColumnOf(lv) >= 0);
          if (connects) {
            join_conjunct = &c;
            used[i] = true;
            break;
          }
        }
        MCT_ASSIGN_OR_RETURN(
            acc, JoinIn(std::move(acc), std::move(tb), join_conjunct, env));
      }
    }
    if (distinct) {
      int col = acc.table.ColumnOf(binding.var);
      const size_t rows_in = acc.table.num_rows();
      std::unordered_set<std::string> seen;
      std::vector<uint32_t> keep;
      for (size_t i = 0; i < rows_in; ++i) {
        const std::string& v = db_->Content(acc.table.At(i, col));
        if (seen.insert(v).second) keep.push_back(static_cast<uint32_t>(i));
      }
      if (opts_.stats != nullptr) ++opts_.stats->dup_elims;
      if (exec_.trace != nullptr) {
        query::OpTrace* n =
            exec_.trace->Leaf("DISTINCT VALUES", binding.var);
        n->rows_in = rows_in;
        n->rows_out = keep.size();
      }
      if (exec_.batch) {
        acc.table.KeepRows(std::move(keep));
      } else {
        Table dedup = Table::WithVars(acc.table.vars);
        dedup.Reserve(keep.size());
        for (uint32_t i : keep) dedup.AppendRow(acc.table.RowAt(i));
        acc.table = std::move(dedup);
      }
      acc.cols[static_cast<size_t>(col)].atomic = true;
    }
  }

  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!used[i]) {
      MCT_RETURN_IF_ERROR(ApplyResidual(&acc, *conjuncts[i], env));
    }
  }
  return acc;
}

Result<Evaluator::Bindings> Evaluator::EvalSteps(
    Bindings in, int ctx_col, const std::vector<PathStep>& steps,
    const std::string& out_var, const Env& env,
    const query::BindingPlan* bplan) {
  const query::ExecContext& ctx = exec_;
  int cur = ctx_col;
  ColorId cur_color = in.cols[static_cast<size_t>(cur)].color;
  size_t original_cols = in.table.num_cols();

  if (bplan != nullptr && bplan->use_path_stack) {
    // The planner never chooses a spine over masked steps (and the plan
    // cache is fingerprint-sliced), but re-validate here: the holistic join
    // bypasses the per-step mask filter below.
    bool spine_masked = false;
    if (exec_.mask != nullptr) {
      for (const PathStep& st : steps) {
        MCT_ASSIGN_OR_RETURN(ColorId sc, ResolveColor(st.color));
        if (!exec_.mask->CanRead(sc)) {
          spine_masked = true;
          break;
        }
      }
    }
    if (!spine_masked) {
      MCT_ASSIGN_OR_RETURN(std::optional<Bindings> spine,
                           EvalSpine(in, ctx_col, steps, out_var));
      if (spine.has_value()) return *std::move(spine);
    }
  }

  for (size_t si = 0; si < steps.size(); ++si) {
    if (exec_.governor != nullptr) {
      MCT_RETURN_IF_ERROR(exec_.governor->Check());
    }
    const PathStep& step = steps[si];
    const query::StepPlan* sp =
        bplan != nullptr && si < bplan->steps.size() ? &bplan->steps[si]
                                                     : nullptr;
    MCT_ASSIGN_OR_RETURN(ColorId c, ResolveColor(step.color));
    // Hard evaluator guarantee (DESIGN.md §16): a step into a read-invisible
    // color binds nothing, regardless of enforcement mode or plan choice.
    // Emptying the context here covers the axes evaluated inline below
    // (self, attribute, the self-merge of descendant-or-self); the
    // color-parameterized operators also refuse masked colors themselves.
    if (exec_.mask != nullptr && !exec_.mask->CanRead(c)) {
      in.table.KeepRows({});
    }
    // Color transition on a bound column = the paper's color crossing,
    // implemented as the cross-tree join access method. Stepping off the
    // document node is free: the document carries every color.
    if (c != cur_color && in.table.vars[static_cast<size_t>(cur)] != "#doc") {
      if (sp != nullptr && sp->elide_cross_tree &&
          AxisSubsumesCrossTree(step.axis)) {
        // The upcoming axis operator only emits targets reached through
        // `c`-colored structure, so the identity join is pure overhead.
        // (Illegal before self/attribute/descendant-or-self: those pass
        // context nodes through without a color membership test.)
        in.cols[static_cast<size_t>(cur)].color = c;
        Note(StrFormat("CROSS-TREE ELIDED %s -> {%s}  (%zu rows)",
                       in.table.vars[static_cast<size_t>(cur)].c_str(),
                       db_->ColorName(c).c_str(), in.table.num_rows()));
        if (exec_.trace != nullptr) {
          query::OpTrace* n = exec_.trace->Leaf("CROSS-TREE ELIDED");
          n->rows_in = in.table.num_rows();
          n->rows_out = in.table.num_rows();
        }
      } else {
        in.table = query::CrossTreeJoin(db_, in.table, cur, c, ctx);
        in.cols[static_cast<size_t>(cur)].color = c;
        Note(StrFormat("CROSS-TREE JOIN %s -> {%s}  (%zu rows)",
                       in.table.vars[static_cast<size_t>(cur)].c_str(),
                       db_->ColorName(c).c_str(), in.table.num_rows()));
      }
    }
    cur_color = c;
    bool is_final = si + 1 == steps.size();
    std::string col_name =
        is_final ? out_var : "#s" + std::to_string(si) + out_var;
    bool has_positional = false;
    for (const auto& pred : step.predicates) {
      if (pred->kind == Expr::Kind::kNumber) has_positional = true;
    }
    // Predicate consumed by an index-seek pushdown (already enforced by the
    // candidate set); -1 = none, the full predicate list runs.
    int consumed_pred = -1;
    Table next;
    switch (step.axis) {
      case Axis::kChild:
        next = query::ExpandChildren(db_, in.table, cur, c, step.tag,
                                     col_name, ctx);
        break;
      case Axis::kDescendant: {
        // Planner-chosen access method, each guarded by a runtime
        // precondition re-check; any failure falls back to the baseline
        // structural join, so results never depend on the plan.
        bool done = false;
        if (sp != nullptr) {
          if (sp->access == query::StepAccess::kScanShortcut &&
              in.table.num_rows() == 1 &&
              in.table.At(0, cur) == db_->document()) {
            next = query::ExpandDescendantsRoot(db_, in.table, cur, c,
                                                step.tag, col_name, ctx);
            done = true;
          } else if (sp->access == query::StepAccess::kIndexSeek &&
                     !has_positional) {
            std::optional<std::vector<NodeId>> cands =
                SeekCandidates(step, sp->seek_pred, c);
            if (cands.has_value()) {
              next = query::ExpandDescendantsAmong(db_, in.table, cur, c,
                                                   step.tag, *cands, col_name,
                                                   ctx);
              consumed_pred = sp->seek_pred;
              done = true;
            }
          } else if (sp->access == query::StepAccess::kNavDescendant &&
                     in.table.num_rows() <= sp->nav_max_rows) {
            next = query::ExpandDescendantsNav(db_, in.table, cur, c,
                                               step.tag, col_name, ctx);
            done = true;
          }
        }
        if (!done) {
          next = query::ExpandDescendants(db_, in.table, cur, c, step.tag,
                                          col_name, ctx);
        }
        break;
      }
      case Axis::kDescendantOrSelf: {
        next = query::ExpandDescendants(db_, in.table, cur, c, step.tag,
                                        col_name, ctx);
        size_t desc_rows = next.num_rows();
        // Self rows append after the descendant block (`next` is dense —
        // expansion output).
        std::vector<uint32_t> self_idx;
        for (size_t i = 0; i < in.table.num_rows(); ++i) {
          NodeId n = in.table.At(i, cur);
          if (db_->Kind(n) == xml::NodeKind::kElement &&
              (step.tag.empty() || db_->Tag(n) == step.tag)) {
            self_idx.push_back(static_cast<uint32_t>(i));
          }
        }
        if (ctx.batch) {
          query::Table::GatherInto(in.table, self_idx, &next, 0);
          auto& node_col = next.cols.back();
          for (uint32_t i : self_idx) node_col.push_back(in.table.At(i, cur));
        } else {
          next.Reserve(next.num_rows() + self_idx.size());
          for (uint32_t i : self_idx) {
            std::vector<NodeId> copy = in.table.RowAt(i);
            copy.push_back(in.table.At(i, cur));
            next.AppendRow(copy);
          }
        }
        // The descendant expansion above already closed its trace record;
        // account for the self rows merged in afterwards so the per-group
        // row chain stays consistent.
        if (exec_.trace != nullptr) {
          query::OpTrace* n = exec_.trace->Leaf("SELF MERGE");
          n->rows_in = desc_rows;
          n->rows_out = next.num_rows();
        }
        break;
      }
      case Axis::kParent:
        next = query::ExpandParent(db_, in.table, cur, c, step.tag, col_name,
                                   ctx);
        break;
      case Axis::kAncestor:
        next = query::ExpandAncestors(db_, in.table, cur, c, step.tag,
                                      col_name, ctx);
        break;
      case Axis::kSelf: {
        next = in.table;
        next.Flatten();
        std::vector<NodeId> alias = next.cols[static_cast<size_t>(cur)];
        next.AppendColumn(col_name, std::move(alias));
        if (!step.tag.empty()) {
          const std::vector<NodeId>& nodes = next.cols.back();
          next = query::FilterRows(
              next,
              [&](size_t row) { return db_->Tag(nodes[row]) == step.tag; },
              ctx);
        }
        break;
      }
      case Axis::kAttribute: {
        if (!is_final) {
          return Status::NotSupported(
              "attribute steps are only supported as the final step");
        }
        next = in.table;
        next.Flatten();
        std::vector<NodeId> alias = next.cols[static_cast<size_t>(cur)];
        next.AppendColumn(col_name, std::move(alias));
        const std::vector<NodeId>& nodes = next.cols.back();
        next = query::FilterRows(
            next,
            [&](size_t row) {
              return db_->FindAttr(nodes[row], step.tag) != nullptr;
            },
            ctx);
        break;
      }
    }
    in.table = std::move(next);
    in.cols.push_back(step.axis == Axis::kAttribute
                          ? ColumnInfo{c, true, step.tag}
                          : ColumnInfo{c, false, ""});
    cur = static_cast<int>(in.table.num_cols()) - 1;
    if (opts_.plan != nullptr) {
      const char* axis_name =
          step.axis == Axis::kChild ? "child"
          : step.axis == Axis::kDescendant ? "descendant"
          : step.axis == Axis::kDescendantOrSelf ? "descendant-or-self"
          : step.axis == Axis::kParent ? "parent"
          : step.axis == Axis::kAncestor ? "ancestor"
          : step.axis == Axis::kSelf ? "self"
                                      : "attribute";
      Note(StrFormat("STRUCTURAL STEP {%s}%s::%s -> %s  (%zu rows)",
                     db_->ColorName(c).c_str(), axis_name,
                     step.tag.empty() ? "node()" : step.tag.c_str(),
                     col_name.c_str(), in.table.num_rows()));
    }
    if (exec_.trace != nullptr && sp != nullptr && sp->est_expand >= 0) {
      exec_.trace->last()->est_rows =
          consumed_pred >= 0 ? sp->est_out : sp->est_expand;
    }

    // Predicate evaluation order: the planner's cheapest-first permutation
    // when it validates against this step (full coverage, in range, no
    // duplicates); otherwise the syntactic order. Positional predicates pin
    // the syntactic order — their result depends on the rows that reach
    // them. An index-seek's consumed predicate is skipped (the candidate
    // set enforced it); if the seek did NOT fire, the planner's order
    // already lists seek_pred, or the natural order covers it.
    std::vector<int> pred_order;
    pred_order.reserve(step.predicates.size());
    for (int i = 0; i < static_cast<int>(step.predicates.size()); ++i) {
      pred_order.push_back(i);
    }
    if (sp != nullptr && !sp->pred_order.empty() && !has_positional) {
      std::vector<int> cand = sp->pred_order;
      if (consumed_pred < 0 && sp->seek_pred >= 0) {
        cand.insert(cand.begin(), sp->seek_pred);
      }
      const int n_preds = static_cast<int>(step.predicates.size());
      std::vector<char> seen(static_cast<size_t>(n_preds), 0);
      bool valid = static_cast<int>(cand.size()) ==
                   n_preds - (consumed_pred >= 0 ? 1 : 0);
      for (int pi : cand) {
        if (pi < 0 || pi >= n_preds || seen[static_cast<size_t>(pi)] ||
            pi == consumed_pred) {
          valid = false;
          break;
        }
        seen[static_cast<size_t>(pi)] = 1;
      }
      if (valid) pred_order = std::move(cand);
    }

    for (int pred_index : pred_order) {
      if (pred_index == consumed_pred) continue;
      const auto& pred = step.predicates[static_cast<size_t>(pred_index)];
      const auto pred_t0 = std::chrono::steady_clock::now();
      // Positional predicate [N]: keep the N-th (1-based) result of this
      // step per context row (rows grouped by every column but the new
      // one).
      if (pred->kind == Expr::Kind::kNumber) {
        int64_t want = static_cast<int64_t>(pred->num);
        const size_t rows_in = in.table.num_rows();
        const size_t ncols = in.table.num_cols();
        std::unordered_map<std::string, int64_t> counts;
        std::string key;
        std::vector<uint32_t> keep;
        for (size_t r = 0; r < rows_in; ++r) {
          key.clear();
          for (size_t i = 0; i + 1 < ncols; ++i) {
            NodeId v = in.table.At(r, static_cast<int>(i));
            key.append(reinterpret_cast<const char*>(&v), sizeof(NodeId));
          }
          if (++counts[key] == want) keep.push_back(static_cast<uint32_t>(r));
        }
        Note(StrFormat("POSITION [%lld]  (%zu -> %zu rows)",
                       static_cast<long long>(want), rows_in, keep.size()));
        if (exec_.trace != nullptr) {
          query::OpTrace* n = exec_.trace->Leaf(
              "POSITION", StrFormat("[%lld]", static_cast<long long>(want)));
          n->rows_in = rows_in;
          n->rows_out = keep.size();
          n->seconds = SecondsSince(pred_t0);
        }
        if (exec_.batch) {
          in.table.KeepRows(std::move(keep));
        } else {
          Table filtered = Table::WithVars(in.table.vars);
          filtered.Reserve(keep.size());
          for (uint32_t r : keep) filtered.AppendRow(in.table.RowAt(r));
          in.table = std::move(filtered);
        }
        continue;
      }
      // Index-backed fast path for string-literal equality predicates —
      // the paper built content and attribute-value indexes "where needed"
      // (Section 7): [child::x = "lit"], [@a = "lit"], [. = "lit"] probe
      // the index and semi-join instead of filtering row by row.
      std::unordered_set<NodeId> probe;
      bool use_probe = false;
      if (pred->kind == Expr::Kind::kCompare && pred->cmp == CmpOp::kEq &&
          pred->children[1]->kind == Expr::Kind::kString &&
          pred->children[0]->kind == Expr::Kind::kPath) {
        const PathExpr& lp = pred->children[0]->path;
        const std::string& lit = pred->children[1]->str;
        if (lp.start_var.empty() && !lp.from_document &&
            lp.steps.size() == 1 && lp.steps[0].predicates.empty()) {
          const PathStep& ps = lp.steps[0];
          if (ps.axis == Axis::kChild && !ps.tag.empty()) {
            MCT_ASSIGN_OR_RETURN(ColorId pc, [&]() -> Result<ColorId> {
              if (ps.color.empty()) return cur_color;
              return ResolveColor(ps.color);
            }());
            for (NodeId hit : db_->ContentLookup(ps.tag, lit)) {
              auto parent = db_->Parent(hit, pc);
              if (parent.has_value()) probe.insert(*parent);
            }
            use_probe = true;
          } else if (ps.axis == Axis::kAttribute) {
            for (NodeId hit : db_->AttrLookup(ps.tag, lit)) {
              probe.insert(hit);
            }
            use_probe = true;
          } else if (ps.axis == Axis::kSelf && ps.tag.empty() &&
                     !step.tag.empty()) {
            for (NodeId hit : db_->ContentLookup(step.tag, lit)) {
              probe.insert(hit);
            }
            use_probe = true;
          }
        }
      }
      const size_t pred_rows_in = in.table.num_rows();
      std::vector<uint32_t> keep;
      if (use_probe) {
        for (size_t i = 0; i < pred_rows_in; ++i) {
          if (probe.contains(in.table.At(i, cur))) {
            keep.push_back(static_cast<uint32_t>(i));
          }
        }
        Note(StrFormat("INDEX PROBE predicate  (%zu -> %zu rows)",
                       pred_rows_in, keep.size()));
        if (exec_.trace != nullptr) {
          query::OpTrace* n = exec_.trace->Leaf("INDEX PROBE", "predicate");
          n->rows_in = pred_rows_in;
          n->rows_out = keep.size();
          n->seconds = SecondsSince(pred_t0);
        }
      } else {
        // Per-row predicate evaluation: the hot path of scan-filter
        // queries. Pure predicates fan out across the pool; the keep mask
        // preserves row order exactly.
        std::vector<char> mask(pred_rows_in, 0);
        // Vectorized comparison: residuals of shape
        // [{c}child::tag <cmp> literal] and [@a <cmp> literal] compare one
        // extracted value per row against a constant. The interpreter
        // re-resolves the color, allocates candidate vectors, and atomizes
        // through the generic Item machinery on every row; this hoists all
        // of that out of the loop. Only exact interpreter equivalents
        // qualify (single relative step, no step predicates, atomic literal
        // rhs — the node-identity branch of EvalBool cannot trigger), and
        // the legacy arm keeps the interpreter, so the --batch A/B measures
        // the batch discipline.
        bool fast = false;
        if (exec_.batch && pred->kind == Expr::Kind::kCompare &&
            (pred->children[1]->kind == Expr::Kind::kString ||
             pred->children[1]->kind == Expr::Kind::kNumber) &&
            pred->children[0]->kind == Expr::Kind::kPath) {
          const PathExpr& lp = pred->children[0]->path;
          if (lp.start_var.empty() && !lp.from_document &&
              lp.steps.size() == 1 && lp.steps[0].predicates.empty()) {
            const PathStep& ps = lp.steps[0];
            const std::string lit =
                pred->children[1]->kind == Expr::Kind::kString
                    ? pred->children[1]->str
                    : FormatNumber(pred->children[1]->num);
            const CmpOp cmp = pred->cmp;
            if (ps.axis == Axis::kChild && !ps.tag.empty()) {
              ColorId pred_color = cur_color;
              bool color_ok = true;
              if (!ps.color.empty()) {
                auto rc = ResolveColor(ps.color);
                color_ok = rc.ok();
                if (color_ok) pred_color = *rc;
              }
              if (color_ok) {
                const size_t tag_count = db_->TagCount(pred_color, ps.tag);
                if (tag_count <= pred_rows_in * 8) {
                  // Selective tag: compare every tagged node once and
                  // semi-join the parents, instead of walking each context
                  // row's full child list (rows with many children — e.g.
                  // an issue with hundreds of articles — pay one tag-index
                  // pass instead of rows x fanout child visits).
                  std::unordered_set<NodeId> hit_parents;
                  for (NodeId v : db_->TagScan(pred_color, ps.tag)) {
                    if (!CompareValues(cmp, Atomize(Item::OfNode(v)), lit)) {
                      continue;
                    }
                    auto par = db_->Parent(v, pred_color);
                    if (par.has_value()) hit_parents.insert(*par);
                  }
                  for (size_t i = 0; i < pred_rows_in; ++i) {
                    mask[i] =
                        hit_parents.contains(in.table.At(i, cur)) ? 1 : 0;
                  }
                } else {
                  const ColoredTree* tree = db_->tree(pred_color);
                  MCT_RETURN_IF_ERROR(
                      ForRows(pred_rows_in, true, [&](size_t i) {
                        NodeId n = in.table.At(i, cur);
                        if (!db_->Colors(n).Has(pred_color)) {
                          return Status::OK();
                        }
                        bool hit = false;
                        tree->ForEachChild(n, [&](NodeId k) {
                          if (hit ||
                              db_->Kind(k) != xml::NodeKind::kElement ||
                              db_->Tag(k) != ps.tag) {
                            return;
                          }
                          if (CompareValues(cmp, Atomize(Item::OfNode(k)),
                                            lit)) {
                            hit = true;
                          }
                        });
                        mask[i] = hit ? 1 : 0;
                        return Status::OK();
                      }));
                }
                fast = true;
              }
            } else if (ps.axis == Axis::kAttribute) {
              MCT_RETURN_IF_ERROR(ForRows(pred_rows_in, true, [&](size_t i) {
                const std::string* v =
                    db_->FindAttr(in.table.At(i, cur), ps.tag);
                mask[i] =
                    v != nullptr && CompareValues(cmp, *v, lit) ? 1 : 0;
                return Status::OK();
              }));
              fast = true;
            }
          }
        }
        if (!fast) {
          MCT_RETURN_IF_ERROR(
              ForRows(pred_rows_in, IsPureExpr(*pred), [&](size_t i) {
                EvalCtx pc;
                pc.b = &in;
                pc.row = i;
                pc.env = &env;
                pc.ctx_node = in.table.At(i, cur);
                pc.ctx_color = cur_color;
                MCT_ASSIGN_OR_RETURN(bool k, EvalBool(pc, *pred));
                mask[i] = k ? 1 : 0;
                return Status::OK();
              }));
        }
        for (size_t i = 0; i < pred_rows_in; ++i) {
          if (mask[i]) keep.push_back(static_cast<uint32_t>(i));
        }
        Note(StrFormat("FILTER predicate  (%zu -> %zu rows)", pred_rows_in,
                       keep.size()));
        if (exec_.trace != nullptr) {
          query::OpTrace* tn = exec_.trace->Leaf("FILTER", "predicate");
          tn->rows_in = pred_rows_in;
          tn->rows_out = keep.size();
          tn->seconds = SecondsSince(pred_t0);
        }
      }
      if (exec_.batch) {
        in.table.KeepRows(std::move(keep));
      } else {
        Table filtered = Table::WithVars(in.table.vars);
        filtered.Reserve(keep.size());
        for (uint32_t i : keep) filtered.AppendRow(in.table.RowAt(i));
        in.table = std::move(filtered);
      }
    }
    if (exec_.trace != nullptr && sp != nullptr && sp->est_out >= 0 &&
        !step.predicates.empty()) {
      exec_.trace->last()->est_rows = sp->est_out;
    }
  }

  // Keep the original columns plus the final step column.
  std::vector<int> keep;
  for (size_t i = 0; i < original_cols; ++i) {
    keep.push_back(static_cast<int>(i));
  }
  if (cur >= static_cast<int>(original_cols)) keep.push_back(cur);
  Bindings out;
  out.table = query::Project(std::move(in.table), keep);
  for (int k : keep) out.cols.push_back(in.cols[static_cast<size_t>(k)]);
  if (steps.empty()) {
    // Zero steps: alias the context column under the new name (a column
    // copy, no per-row work).
    out.table.Flatten();
    std::vector<NodeId> alias = out.table.cols[static_cast<size_t>(ctx_col)];
    out.table.AppendColumn(out_var, std::move(alias));
    out.cols.push_back(out.cols[static_cast<size_t>(ctx_col)]);
  } else if (cur >= static_cast<int>(original_cols)) {
    out.table.vars.back() = out_var;
  }
  return out;
}

Result<std::optional<Evaluator::Bindings>> Evaluator::EvalSpine(
    const Bindings& in, int ctx_col, const std::vector<PathStep>& steps,
    const std::string& out_var) {
  // Runtime re-validation of the spine shape the planner saw: a lone
  // document-root row and >= 2 predicate-free descendant steps in one
  // color. Anything else -> nullopt, the caller runs the step loop.
  if (in.table.num_rows() != 1 || in.table.num_cols() != 1 ||
      ctx_col != 0 || in.table.vars[0] != "#doc" ||
      in.table.At(0, 0) != db_->document() || steps.size() < 2) {
    return std::optional<Bindings>();
  }
  ColorId spine_color = kInvalidColorId;
  for (const PathStep& step : steps) {
    if (step.axis != Axis::kDescendant || step.tag.empty() ||
        !step.predicates.empty()) {
      return std::optional<Bindings>();
    }
    MCT_ASSIGN_OR_RETURN(ColorId c, ResolveColor(step.color));
    if (spine_color == kInvalidColorId) {
      spine_color = c;
    } else if (c != spine_color) {
      return std::optional<Bindings>();
    }
  }

  query::TwigPattern pattern;
  int parent = -1;
  for (const PathStep& step : steps) {
    parent = pattern.Add(parent, step.tag, /*child_axis=*/false);
  }
  MCT_ASSIGN_OR_RETURN(Table matched,
                       query::PathStackJoin(db_, spine_color, pattern, exec_));
  ColoredTree* tree = db_->tree(spine_color);
  tree->EnsureLabels();
  const ColoredTree& ct = *tree;

  // Restore the baseline pipeline's row order. Chaining k descendant
  // expansions from the single document row orders rows lexicographically
  // by (start(d_k), start(d_{k-1}), ..., start(d_1)) — the stack-tree merge
  // emits (descendant, ancestor) pairs by descendant start, and each later
  // expansion re-sorts by its own column with the previous order as the
  // tie-break. Sorting the twig matches on the reversed tuple is exact.
  const auto spine_t0 = std::chrono::steady_clock::now();
  const size_t n_matches = matched.num_rows();
  const size_t n_spine_cols = matched.num_cols();
  if (exec_.governor != nullptr) {
    // The order-restore permutation and the projected output are the
    // spine's remaining materializations; charge them before allocating.
    MCT_RETURN_IF_ERROR(exec_.governor->Charge(
        static_cast<uint64_t>(n_matches) *
        (sizeof(uint32_t) + 2 * sizeof(NodeId))));
  }
  std::vector<uint32_t> order(n_matches);
  for (size_t i = 0; i < n_matches; ++i) order[i] = static_cast<uint32_t>(i);
  // `matched` is dense (PathStackJoin output), so the comparator reads the
  // label columns directly.
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = n_spine_cols; k-- > 0;) {
      uint64_t sa = ct.Start(matched.cols[k][a]);
      uint64_t sb = ct.Start(matched.cols[k][b]);
      if (sa != sb) return sa < sb;
    }
    return false;
  });

  // Project straight to the step loop's final layout: the original #doc
  // column plus the last spine node, one row per twig match (duplicates
  // preserved, exactly as the baseline projection keeps them). Two column
  // fills: a constant #doc column and a gather of the leaf label column.
  Bindings out;
  out.table.vars = in.table.vars;
  out.table.vars.push_back(out_var);
  out.cols = in.cols;
  out.cols.push_back(ColumnInfo{spine_color, false, ""});
  out.table.cols.resize(2);
  out.table.cols[0].assign(n_matches, in.table.At(0, 0));
  const std::vector<NodeId>& leaf = matched.cols.back();
  out.table.cols[1].reserve(n_matches);
  for (uint32_t i : order) out.table.cols[1].push_back(leaf[i]);
  Note(StrFormat("PATH-STACK SPINE {%s} %zu steps -> %s  (%zu rows)",
                 db_->ColorName(spine_color).c_str(), steps.size(),
                 out_var.c_str(), out.table.num_rows()));
  if (exec_.trace != nullptr) {
    query::OpTrace* n = exec_.trace->Leaf("SPINE ORDER RESTORE");
    n->rows_in = matched.num_rows();
    n->rows_out = out.table.num_rows();
    n->seconds = SecondsSince(spine_t0);
  }
  return std::optional<Bindings>(std::move(out));
}

std::optional<std::vector<NodeId>> Evaluator::SeekCandidates(
    const PathStep& step, int seek_pred, ColorId step_color) {
  if (seek_pred < 0 ||
      seek_pred >= static_cast<int>(step.predicates.size())) {
    return std::nullopt;
  }
  const Expr& pred = *step.predicates[static_cast<size_t>(seek_pred)];
  if (pred.kind != Expr::Kind::kCompare || pred.cmp != CmpOp::kEq ||
      pred.children.size() != 2 ||
      pred.children[1]->kind != Expr::Kind::kString ||
      pred.children[0]->kind != Expr::Kind::kPath) {
    return std::nullopt;
  }
  const PathExpr& lp = pred.children[0]->path;
  const std::string& lit = pred.children[1]->str;
  if (!lp.start_var.empty() || lp.from_document || lp.steps.size() != 1 ||
      !lp.steps[0].predicates.empty()) {
    return std::nullopt;
  }
  const PathStep& ps = lp.steps[0];
  std::vector<NodeId> cands;
  if (ps.axis == Axis::kChild && !ps.tag.empty()) {
    ColorId pc = step_color;
    if (!ps.color.empty()) {
      pc = db_->LookupColor(ps.color);
      // Unknown color: fall back so the baseline probe raises the same
      // error the unplanned pipeline would.
      if (pc == kInvalidColorId) return std::nullopt;
    }
    for (NodeId hit : db_->ContentLookup(ps.tag, lit)) {
      std::optional<NodeId> par = db_->Parent(hit, pc);
      if (par.has_value()) cands.push_back(*par);
    }
  } else if (ps.axis == Axis::kAttribute) {
    cands = db_->AttrLookup(ps.tag, lit);
  } else if (ps.axis == Axis::kSelf && ps.tag.empty() && !step.tag.empty()) {
    cands = db_->ContentLookup(step.tag, lit);
  } else {
    return std::nullopt;
  }
  return cands;
}

Result<Evaluator::Bindings> Evaluator::JoinIn(Bindings left, Bindings right,
                                              const Expr* conjunct,
                                              const Env& env) {
  ExecStats* stats = opts_.stats;
  const auto join_t0 = std::chrono::steady_clock::now();
  Bindings out;
  std::vector<std::string> out_vars = left.table.vars;
  out_vars.insert(out_vars.end(), right.table.vars.begin(),
                  right.table.vars.end());
  out.table = query::Table::WithVars(std::move(out_vars));
  out.cols = left.cols;
  out.cols.insert(out.cols.end(), right.cols.begin(), right.cols.end());

  // Per-row key evaluation against one side's bindings.
  auto key_fn = [&](const Bindings& b, size_t row,
                    const Expr& e) -> Result<std::optional<std::string>> {
    EvalCtx c;
    c.b = &b;
    c.row = row;
    c.env = &env;
    MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, e));
    if (items.empty()) return std::optional<std::string>();
    return std::optional<std::string>(Atomize(items[0]));
  };

  auto side_of = [&](const Expr& e) -> const Bindings* {
    std::string v = SoleVar(e);
    if (!v.empty() && left.table.ColumnOf(v) >= 0) return &left;
    if (!v.empty() && right.table.ColumnOf(v) >= 0) return &right;
    return nullptr;
  };

  // Matching (left row, right row) index pairs in emission order; the
  // output is materialized once at the end — per-column gathers under
  // vectorized execution, per-row copies in legacy mode.
  std::vector<uint32_t> li, ri;
  auto emit = [&](size_t l, size_t r) {
    li.push_back(static_cast<uint32_t>(l));
    ri.push_back(static_cast<uint32_t>(r));
  };
  auto materialize = [&]() -> Status {
    if (exec_.governor != nullptr) {
      // The joined table is this statement's dominant materialization:
      // charge it (plus the pair-index scratch) before the column fills.
      MCT_RETURN_IF_ERROR(exec_.governor->Charge(
          static_cast<uint64_t>(li.size()) *
          ((left.table.num_cols() + right.table.num_cols()) * sizeof(NodeId) +
           2 * sizeof(uint32_t))));
    }
    if (exec_.batch) {
      query::Table::GatherInto(left.table, li, &out.table, 0);
      query::Table::GatherInto(right.table, ri, &out.table,
                               left.table.num_cols());
    } else {
      const size_t rc = right.table.num_cols();
      out.table.Reserve(li.size());
      for (size_t k = 0; k < li.size(); ++k) {
        std::vector<NodeId> row = left.table.RowAt(li[k]);
        for (size_t j = 0; j < rc; ++j) {
          row.push_back(right.table.At(ri[k], static_cast<int>(j)));
        }
        out.table.AppendRow(row);
      }
    }
    return Status::OK();
  };

  // Records the chosen join strategy as one trace leaf; rows_in counts both
  // inputs, mirroring the physical join operators.
  auto trace_join = [&](const char* op) {
    if (exec_.trace == nullptr) return;
    query::OpTrace* n = exec_.trace->Leaf(op);
    n->rows_in = left.table.num_rows() + right.table.num_rows();
    n->rows_out = out.table.num_rows();
    n->seconds = SecondsSince(join_t0);
  };

  if (conjunct == nullptr) {
    // No connecting condition: Cartesian product. Poll the governor per
    // left row (each covers one full right-side sweep) so an exploding
    // product is cancellable long before materialization.
    if (stats != nullptr) ++stats->nested_loop_joins;
    const size_t cart_rn = right.table.num_rows();
    for (size_t i = 0; i < left.table.num_rows(); ++i) {
      if (exec_.governor != nullptr && cart_rn > 256) {
        MCT_RETURN_IF_ERROR(exec_.governor->Check());
      }
      for (size_t j = 0; j < cart_rn; ++j) emit(i, j);
    }
    MCT_RETURN_IF_ERROR(materialize());
    Note(StrFormat("CARTESIAN PRODUCT  (%zu x %zu -> %zu rows)",
                   left.table.num_rows(), right.table.num_rows(),
                   out.table.num_rows()));
    trace_join("CARTESIAN PRODUCT");
    return out;
  }

  const Expr& a = *conjunct->children[0];
  const Expr& b2 = *conjunct->children[1];
  const Bindings* sa = side_of(a);
  const Bindings* sb = side_of(b2);
  if (sa == nullptr || sb == nullptr || sa == sb) {
    return Status::Internal("join conjunct does not connect the two sides");
  }

  if (conjunct->kind == Expr::Kind::kContains) {
    // contains(list, id): IDREFS-style containment join; the first argument
    // is the whitespace-separated list.
    if (stats != nullptr) ++stats->value_joins;
    // Hash the id side.
    const Bindings& id_side = *sb;
    const Bindings& list_side = *sa;
    const bool list_is_left = (&list_side == &left);
    std::unordered_map<std::string, std::vector<uint32_t>> ht;
    if (exec_.governor != nullptr) {
      MCT_RETURN_IF_ERROR(
          exec_.governor->Charge(id_side.table.num_rows() * 64));
    }
    for (size_t i = 0; i < id_side.table.num_rows(); ++i) {
      MCT_ASSIGN_OR_RETURN(auto k, key_fn(id_side, i, b2));
      if (k.has_value() && !k->empty()) {
        ht[*k].push_back(static_cast<uint32_t>(i));
      }
    }
    for (size_t lrow = 0; lrow < list_side.table.num_rows(); ++lrow) {
      MCT_ASSIGN_OR_RETURN(auto list, key_fn(list_side, lrow, a));
      if (!list.has_value()) continue;
      for (const std::string& token : SplitWhitespace(*list)) {
        auto it = ht.find(token);
        if (it == ht.end()) continue;
        for (uint32_t id_row : it->second) {
          if (list_is_left) {
            emit(lrow, id_row);
          } else {
            emit(id_row, lrow);
          }
        }
      }
    }
    MCT_RETURN_IF_ERROR(materialize());
    Note(StrFormat("IDREFS VALUE JOIN  (%zu x %zu -> %zu rows)",
                   left.table.num_rows(), right.table.num_rows(),
                   out.table.num_rows()));
    trace_join("IDREFS VALUE JOIN");
    return out;
  }

  if (conjunct->cmp == CmpOp::kEq) {
    // Hash equality join; build on the smaller side. Key extraction (the
    // expensive per-row expression evaluation) fans out when the key
    // expressions are pure; the hash build and the ordered emit stay serial.
    if (stats != nullptr) ++stats->value_joins;
    const Bindings* build = sa;
    const Expr* build_key = &a;
    const Bindings* probe = sb;
    const Expr* probe_key = &b2;
    if (probe->table.num_rows() < build->table.num_rows()) {
      std::swap(build, probe);
      std::swap(build_key, probe_key);
    }
    const size_t bn = build->table.num_rows();
    if (exec_.governor != nullptr) {
      // Hash-table scratch: same per-entry estimate as HashJoinProbe.
      MCT_RETURN_IF_ERROR(exec_.governor->Charge(bn * 64));
    }
    std::vector<std::optional<std::string>> bkeys(bn);
    MCT_RETURN_IF_ERROR(ForRows(bn, IsPureExpr(*build_key), [&](size_t i) {
      MCT_ASSIGN_OR_RETURN(bkeys[i], key_fn(*build, i, *build_key));
      return Status::OK();
    }));
    std::unordered_map<std::string, std::vector<uint32_t>> ht;
    for (size_t i = 0; i < bn; ++i) {
      if (bkeys[i].has_value()) {
        ht[*bkeys[i]].push_back(static_cast<uint32_t>(i));
      }
    }
    const size_t pn = probe->table.num_rows();
    std::vector<std::optional<std::string>> pkeys(pn);
    MCT_RETURN_IF_ERROR(ForRows(pn, IsPureExpr(*probe_key), [&](size_t i) {
      MCT_ASSIGN_OR_RETURN(pkeys[i], key_fn(*probe, i, *probe_key));
      return Status::OK();
    }));
    const bool build_left = (build == &left);
    for (size_t pi = 0; pi < pn; ++pi) {
      if (!pkeys[pi].has_value()) continue;
      auto it = ht.find(*pkeys[pi]);
      if (it == ht.end()) continue;
      for (uint32_t bi : it->second) {
        if (build_left) {
          emit(bi, pi);
        } else {
          emit(pi, bi);
        }
      }
    }
    MCT_RETURN_IF_ERROR(materialize());
    Note(StrFormat("HASH VALUE JOIN  (%zu x %zu -> %zu rows)",
                   left.table.num_rows(), right.table.num_rows(),
                   out.table.num_rows()));
    trace_join("HASH VALUE JOIN");
    return out;
  }

  // Inequality: nested loop (the quadratic case the paper calls out).
  // Keys are extracted once per row; the loop itself is the quadratic part,
  // exactly as in the paper's plans.
  if (stats != nullptr) ++stats->nested_loop_joins;
  CmpOp op = conjunct->cmp;
  bool a_is_left = (sa == &left);
  const Expr& lkey_expr = a_is_left ? a : b2;
  const Expr& rkey_expr = a_is_left ? b2 : a;
  const size_t ln = left.table.num_rows();
  const size_t rn = right.table.num_rows();
  std::vector<std::optional<std::string>> lkeys(ln);
  MCT_RETURN_IF_ERROR(ForRows(ln, IsPureExpr(lkey_expr), [&](size_t i) {
    MCT_ASSIGN_OR_RETURN(lkeys[i], key_fn(left, i, lkey_expr));
    return Status::OK();
  }));
  std::vector<std::optional<std::string>> rkeys(rn);
  MCT_RETURN_IF_ERROR(ForRows(rn, IsPureExpr(rkey_expr), [&](size_t i) {
    MCT_ASSIGN_OR_RETURN(rkeys[i], key_fn(right, i, rkey_expr));
    return Status::OK();
  }));
  // The quadratic compare scans pre-extracted keys only, so it is always
  // safe to fan out. Each left row records its match indexes; the ordered
  // emit below reproduces the serial output exactly. A left-row morsel
  // covers O(rn) compares, so shrink it to keep ~morsel_size compares per
  // claim.
  std::vector<std::vector<uint32_t>> matches(ln);
  const size_t compare_morsel = std::max<size_t>(
      1, opts_.morsel_size / std::max<size_t>(1, rn));
  MCT_RETURN_IF_ERROR(ForRows(
      ln, true,
      [&](size_t i) {
        if (!lkeys[i].has_value()) return Status::OK();
        for (size_t j = 0; j < rn; ++j) {
          if (!rkeys[j].has_value()) continue;
          bool ok = a_is_left ? CompareValues(op, *lkeys[i], *rkeys[j])
                              : CompareValues(op, *rkeys[j], *lkeys[i]);
          if (ok) matches[i].push_back(static_cast<uint32_t>(j));
        }
        return Status::OK();
      },
      compare_morsel));
  for (size_t i = 0; i < ln; ++i) {
    for (uint32_t j : matches[i]) emit(i, j);
  }
  MCT_RETURN_IF_ERROR(materialize());
  Note(StrFormat("NESTED-LOOP INEQUALITY JOIN  (%zu x %zu -> %zu rows)",
                 left.table.num_rows(), right.table.num_rows(),
                 out.table.num_rows()));
  trace_join("NESTED-LOOP INEQUALITY JOIN");
  return out;
}

Status Evaluator::ApplyResidual(Bindings* b, const Expr& conjunct,
                                const Env& env) {
  // Residual where-conjuncts filter row by row; pure conjuncts fan out
  // across the pool with an order-preserving keep mask.
  const auto t0 = std::chrono::steady_clock::now();
  const size_t n = b->table.num_rows();
  std::vector<char> mask(n, 0);
  MCT_RETURN_IF_ERROR(ForRows(n, IsPureExpr(conjunct), [&](size_t i) {
    EvalCtx c;
    c.b = b;
    c.row = i;
    c.env = &env;
    MCT_ASSIGN_OR_RETURN(bool k, EvalBool(c, conjunct));
    mask[i] = k ? 1 : 0;
    return Status::OK();
  }));
  std::vector<uint32_t> keep;
  for (size_t i = 0; i < n; ++i) {
    if (mask[i]) keep.push_back(static_cast<uint32_t>(i));
  }
  if (exec_.trace != nullptr) {
    query::OpTrace* tn = exec_.trace->Leaf("FILTER", "residual");
    tn->rows_in = n;
    tn->rows_out = keep.size();
    tn->seconds = SecondsSince(t0);
  }
  if (exec_.batch) {
    b->table.KeepRows(std::move(keep));
  } else {
    Table filtered = Table::WithVars(b->table.vars);
    filtered.Reserve(keep.size());
    for (uint32_t i : keep) filtered.AppendRow(b->table.RowAt(i));
    b->table = std::move(filtered);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scalar / constructor evaluation
// ---------------------------------------------------------------------------

Item Evaluator::ColumnItem(const Bindings& b, size_t row, int col) const {
  const ColumnInfo& info = b.cols[static_cast<size_t>(col)];
  NodeId n = b.table.At(row, col);
  if (!info.atomic) return Item::OfNode(n);
  if (!info.attr.empty()) {
    const std::string* v = db_->FindAttr(n, info.attr);
    return Item::OfAtomic(v != nullptr ? *v : "");
  }
  return Item::OfAtomic(db_->Content(n));
}

std::string Evaluator::Atomize(const Item& item) const {
  if (!item.is_node) return item.atomic;
  // Atomize a node: its own content when present, else its string value in
  // its first color.
  if (db_->store().HasContent(item.node)) return db_->Content(item.node);
  ColorSet colors = db_->Colors(item.node);
  if (colors.empty()) return "";
  return db_->StringValue(item.node, colors.ToVector().front()).value_or("");
}

Result<std::vector<Item>> Evaluator::EvalRelPath(NodeId ctx,
                                                 ColorId default_color,
                                                 const PathExpr& p,
                                                 const EvalCtx& outer) {
  std::vector<NodeId> cur{ctx};
  ColorId color = default_color;
  for (size_t si = 0; si < p.steps.size(); ++si) {
    const PathStep& step = p.steps[si];
    MCT_ASSIGN_OR_RETURN(color, [&]() -> Result<ColorId> {
      if (step.color.empty()) return color;
      return ResolveColor(step.color);
    }());
    // Same hard guarantee as EvalSteps: navigation into a read-invisible
    // color yields nothing (this is the row-at-a-time path predicates and
    // update selectors run through).
    if (exec_.mask != nullptr && !exec_.mask->CanRead(color)) {
      cur.clear();
      break;
    }
    std::vector<NodeId> next;
    // Start offset of each context node's results in `next` (positional
    // predicates are per context, XPath semantics).
    std::vector<size_t> group_start;
    auto mark = [&]() { group_start.push_back(next.size()); };
    switch (step.axis) {
      case Axis::kChild:
        for (NodeId n : cur) {
          mark();
          if (!db_->Colors(n).Has(color)) continue;
          db_->tree(color)->ForEachChild(n, [&](NodeId k) {
            if (db_->Kind(k) == xml::NodeKind::kElement &&
                (step.tag.empty() || db_->Tag(k) == step.tag)) {
              next.push_back(k);
            }
          });
        }
        break;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        for (NodeId n : cur) {
          mark();
          if (!db_->tree(color)->Contains(n)) continue;
          for (NodeId d : db_->tree(color)->PreOrder(n)) {
            if (d == n && step.axis == Axis::kDescendant) continue;
            if (db_->Kind(d) == xml::NodeKind::kElement &&
                (step.tag.empty() || db_->Tag(d) == step.tag)) {
              next.push_back(d);
            }
          }
        }
        break;
      case Axis::kParent:
        for (NodeId n : cur) {
          mark();
          auto par = db_->Parent(n, color);
          if (par.has_value() && db_->Kind(*par) == xml::NodeKind::kElement &&
              (step.tag.empty() || db_->Tag(*par) == step.tag)) {
            next.push_back(*par);
          }
        }
        break;
      case Axis::kAncestor:
        for (NodeId n : cur) {
          mark();
          const ColoredTree* t = db_->tree(color);
          for (NodeId a = t->Parent(n); a != kInvalidNodeId;
               a = t->Parent(a)) {
            if (db_->Kind(a) == xml::NodeKind::kElement &&
                (step.tag.empty() || db_->Tag(a) == step.tag)) {
              next.push_back(a);
            }
          }
        }
        break;
      case Axis::kSelf:
        for (NodeId n : cur) {
          mark();
          if (step.tag.empty() || db_->Tag(n) == step.tag) next.push_back(n);
        }
        break;
      case Axis::kAttribute: {
        // Final step: produce atomic items.
        std::vector<Item> items;
        for (NodeId n : cur) {
          const std::string* v = db_->FindAttr(n, step.tag);
          if (v != nullptr) items.push_back(Item::OfAtomic(*v));
        }
        if (si + 1 != p.steps.size()) {
          return Status::NotSupported("attribute step must be final");
        }
        return items;
      }
    }
    // Step predicates. Positional [N] keeps the N-th candidate *per
    // context node* (XPath semantics), using the group offsets recorded
    // above; value predicates filter within groups so later positional
    // predicates see re-indexed groups.
    group_start.push_back(next.size());
    for (const auto& pred : step.predicates) {
      std::vector<NodeId> kept;
      std::vector<size_t> kept_starts;
      for (size_t g = 0; g + 1 < group_start.size(); ++g) {
        kept_starts.push_back(kept.size());
        size_t lo = group_start[g], hi = group_start[g + 1];
        if (pred->kind == Expr::Kind::kNumber) {
          int64_t want = static_cast<int64_t>(pred->num);
          if (want >= 1 && lo + static_cast<size_t>(want) - 1 < hi) {
            kept.push_back(next[lo + static_cast<size_t>(want) - 1]);
          }
        } else {
          for (size_t i = lo; i < hi; ++i) {
            EvalCtx pc = outer;
            pc.ctx_node = next[i];
            pc.ctx_color = color;
            MCT_ASSIGN_OR_RETURN(bool keep, EvalBool(pc, *pred));
            if (keep) kept.push_back(next[i]);
          }
        }
      }
      kept_starts.push_back(kept.size());
      next = std::move(kept);
      group_start = std::move(kept_starts);
    }
    cur = std::move(next);
    if (cur.empty()) break;
  }
  std::vector<Item> out;
  out.reserve(cur.size());
  for (NodeId n : cur) out.push_back(Item::OfNode(n));
  return out;
}

Result<std::vector<Item>> Evaluator::EvalExpr(const EvalCtx& c,
                                              const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kString:
    case Expr::Kind::kText:
      return std::vector<Item>{Item::OfAtomic(e.str)};
    case Expr::Kind::kNumber:
      return std::vector<Item>{Item::OfAtomic(FormatNumber(e.num))};
    case Expr::Kind::kVarRef: {
      if (c.b != nullptr) {
        int col = c.b->table.ColumnOf(e.str);
        if (col >= 0) {
          return std::vector<Item>{ColumnItem(*c.b, c.row, col)};
        }
      }
      if (c.env != nullptr && c.env->contains(e.str)) {
        return std::vector<Item>{c.env->at(e.str)};
      }
      return Status::InvalidArgument("unbound variable " + e.str);
    }
    case Expr::Kind::kPath: {
      const PathExpr& p = e.path;
      NodeId start;
      ColorId start_color;
      if (!p.start_var.empty()) {
        Item base;
        // Single column lookup (hot per-row path — no repeated scans).
        const int col =
            c.b != nullptr ? c.b->table.ColumnOf(p.start_var) : -1;
        if (col >= 0) {
          base = ColumnItem(*c.b, c.row, col);
          start_color = c.b->cols[static_cast<size_t>(col)].color;
        } else if (c.env != nullptr && c.env->contains(p.start_var)) {
          base = c.env->at(p.start_var);
          start_color = opts_.default_color;
        } else {
          return Status::InvalidArgument("unbound variable " + p.start_var);
        }
        if (!base.is_node) {
          return Status::InvalidArgument("path from atomic value");
        }
        start = base.node;
      } else if (p.from_document) {
        start = db_->document();
        start_color = opts_.default_color;
      } else {
        // Relative path: needs a context node (predicate evaluation).
        if (c.ctx_node == kInvalidNodeId) {
          return Status::InvalidArgument("relative path without context");
        }
        start = c.ctx_node;
        start_color = c.ctx_color;
      }
      return EvalRelPath(start, start_color, p, c);
    }
    case Expr::Kind::kCompare:
    case Expr::Kind::kContains:
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      MCT_ASSIGN_OR_RETURN(bool v, EvalBool(c, e));
      return std::vector<Item>{Item::OfAtomic(v ? "true" : "false")};
    }
    case Expr::Kind::kDistinctValues: {
      MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, *e.children[0]));
      std::unordered_set<std::string> seen;
      std::vector<Item> out;
      for (const Item& it : items) {
        std::string v = Atomize(it);
        if (seen.insert(v).second) out.push_back(Item::OfAtomic(v));
      }
      if (opts_.stats != nullptr) ++opts_.stats->dup_elims;
      return out;
    }
    case Expr::Kind::kCount: {
      MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, *e.children[0]));
      return std::vector<Item>{
          Item::OfAtomic(std::to_string(items.size()))};
    }
    case Expr::Kind::kFLWOR: {
      // Correlated nested FLWOR: current row variables become the outer
      // environment.
      Env child_env = c.env != nullptr ? *c.env : Env{};
      if (c.b != nullptr) {
        for (size_t i = 0; i < c.b->table.vars.size(); ++i) {
          child_env[c.b->table.vars[i]] =
              ColumnItem(*c.b, c.row, static_cast<int>(i));
        }
      }
      // A nested FLWOR runs once per outer row; recording every per-row
      // subplan would bloat the trace by the outer cardinality, so its
      // physical operators record into the discard sink instead.
      TracePause pause(exec_.trace);
      return EvalFLWOR(e, child_env);
    }
    case Expr::Kind::kSequence: {
      std::vector<Item> out;
      for (const auto& ch : e.children) {
        MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, *ch));
        out.insert(out.end(), items.begin(), items.end());
      }
      return out;
    }
    case Expr::Kind::kElement: {
      // Constructor: fresh identity; enclosed expressions keep identity and
      // become pending children.
      MCT_ASSIGN_OR_RETURN(NodeId node, db_->CreateFreeElement(e.tag));
      for (const auto& attr : e.attrs) {
        MCT_RETURN_IF_ERROR(db_->SetAttr(node, attr.name, attr.value));
      }
      std::string text;
      std::vector<NodeId>& kids = pending_children_[node];
      for (const auto& ch : e.children) {
        MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, *ch));
        for (const Item& it : items) {
          if (it.is_node) {
            kids.push_back(it.node);
          } else {
            if (!text.empty()) text += " ";
            text += it.atomic;
          }
        }
      }
      if (!text.empty()) MCT_RETURN_IF_ERROR(db_->SetContent(node, text));
      return std::vector<Item>{Item::OfNode(node)};
    }
    case Expr::Kind::kCreateColor: {
      // Write gate: a masked session may only mint or extend colors inside
      // its write set (checked before RegisterColor can grow the palette).
      if (exec_.mask != nullptr) {
        ColorId existing = db_->LookupColor(e.str);
        if (existing == kInvalidColorId || !exec_.mask->CanWrite(existing)) {
          return Status::PermissionDenied("createColor targets color '" +
                                          e.str +
                                          "' outside the session write set");
        }
      }
      MCT_ASSIGN_OR_RETURN(ColorId color, [&]() -> Result<ColorId> {
        ColorId existing = db_->LookupColor(e.str);
        if (existing != kInvalidColorId) return existing;
        return db_->RegisterColor(e.str);
      }());
      MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, *e.children[0]));
      for (const Item& it : items) {
        if (!it.is_node) continue;
        MCT_RETURN_IF_ERROR(AttachPending(it.node, color, db_->document()));
      }
      return items;
    }
    case Expr::Kind::kCreateCopy: {
      MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, *e.children[0]));
      std::vector<Item> out;
      for (const Item& it : items) {
        if (!it.is_node) {
          out.push_back(it);
          continue;
        }
        MCT_ASSIGN_OR_RETURN(NodeId copy, DeepCopy(it.node));
        out.push_back(Item::OfNode(copy));
      }
      return out;
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> Evaluator::EvalBool(const EvalCtx& c, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kAnd: {
      MCT_ASSIGN_OR_RETURN(bool a, EvalBool(c, *e.children[0]));
      if (!a) return false;
      return EvalBool(c, *e.children[1]);
    }
    case Expr::Kind::kOr: {
      MCT_ASSIGN_OR_RETURN(bool a, EvalBool(c, *e.children[0]));
      if (a) return true;
      return EvalBool(c, *e.children[1]);
    }
    case Expr::Kind::kCompare: {
      MCT_ASSIGN_OR_RETURN(auto lhs, EvalExpr(c, *e.children[0]));
      MCT_ASSIGN_OR_RETURN(auto rhs, EvalExpr(c, *e.children[1]));
      // Node-vs-node equality is identity (the `[. = $m]` correlation of
      // Figure 3's Q3); otherwise existential comparison on atomized
      // values.
      for (const Item& l : lhs) {
        for (const Item& r : rhs) {
          bool match;
          if (l.is_node && r.is_node &&
              (e.cmp == CmpOp::kEq || e.cmp == CmpOp::kNe)) {
            match = (e.cmp == CmpOp::kEq) ? l.node == r.node
                                          : l.node != r.node;
          } else {
            match = CompareValues(e.cmp, Atomize(l), Atomize(r));
          }
          if (match) return true;
        }
      }
      return false;
    }
    case Expr::Kind::kContains: {
      MCT_ASSIGN_OR_RETURN(auto lhs, EvalExpr(c, *e.children[0]));
      MCT_ASSIGN_OR_RETURN(auto rhs, EvalExpr(c, *e.children[1]));
      for (const Item& l : lhs) {
        for (const Item& r : rhs) {
          if (Contains(Atomize(l), Atomize(r))) return true;
        }
      }
      return false;
    }
    default: {
      MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, e));
      if (items.empty()) return false;
      if (items.size() == 1 && !items[0].is_node) {
        const std::string& v = items[0].atomic;
        return !v.empty() && v != "false";
      }
      return true;  // non-empty node sequence
    }
  }
}

Result<NodeId> Evaluator::DeepCopy(NodeId n) {
  MCT_ASSIGN_OR_RETURN(NodeId copy, db_->CreateFreeElement(db_->Tag(n)));
  for (const NodeAttr& a : db_->Attrs(n)) {
    MCT_RETURN_IF_ERROR(
        db_->SetAttr(copy, db_->store().names().Name(a.name), a.value));
  }
  if (db_->store().HasContent(n)) {
    MCT_RETURN_IF_ERROR(db_->SetContent(copy, db_->Content(n)));
  }
  // Copy structure: pending children for constructed nodes; otherwise the
  // subtree in the node's first color.
  auto pit = pending_children_.find(n);
  if (pit != pending_children_.end()) {
    for (NodeId ch : pit->second) {
      MCT_ASSIGN_OR_RETURN(NodeId ch_copy, DeepCopy(ch));
      pending_children_[copy].push_back(ch_copy);
    }
  } else {
    ColorSet colors = db_->Colors(n);
    if (!colors.empty()) {
      ColorId c0 = colors.ToVector().front();
      for (NodeId ch : db_->Children(n, c0)) {
        if (db_->Kind(ch) != xml::NodeKind::kElement) continue;
        MCT_ASSIGN_OR_RETURN(NodeId ch_copy, DeepCopy(ch));
        pending_children_[copy].push_back(ch_copy);
      }
    }
  }
  return copy;
}

Status Evaluator::AttachPending(NodeId node, ColorId color, NodeId parent) {
  Status s = db_->AddNodeColor(node, color, parent);
  if (s.IsAlreadyExists()) {
    // Section 4.2: a node may occur at most once in any colored tree.
    return Status::DynamicError(
        "node occurs more than once in colored tree '" +
        db_->ColorName(color) + "' — use createCopy to duplicate content");
  }
  MCT_RETURN_IF_ERROR(s);
  auto it = pending_children_.find(node);
  if (it == pending_children_.end()) return Status::OK();
  // Detach the pending list before recursing (children may themselves have
  // pending lists).
  std::vector<NodeId> kids = it->second;
  pending_children_.erase(it);
  for (NodeId ch : kids) {
    MCT_RETURN_IF_ERROR(AttachPending(ch, color, node));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

Result<QueryResult> Evaluator::RunUpdate(const ParsedQuery& q) {
  Env env;
  MCT_ASSIGN_OR_RETURN(Bindings b,
                       EvalFLWORBindings(q.bindings, q.where.get(), env));
  int target = b.table.ColumnOf(q.target_var);
  if (target < 0) {
    return Status::InvalidArgument("update target " + q.target_var +
                                   " is not bound");
  }
  ColorId target_color = b.cols[static_cast<size_t>(target)].color;

  // Deduplicate target nodes (a node may be bound by several rows).
  std::vector<NodeId> targets;
  std::unordered_set<NodeId> seen;
  for (size_t i = 0; i < b.table.num_rows(); ++i) {
    NodeId n = b.table.At(i, target);
    if (seen.insert(n).second) targets.push_back(n);
  }

  // Last governed no-side-effects point: every read (binding evaluation,
  // target dedup) is done and no mutation has been applied yet. A statement
  // cancelled or expired by here returns with the database untouched and
  // nothing in the WAL. No further checks are inserted below — aborting
  // between mutations and the WAL append would leave applied changes
  // unlogged. (A trip inside a nested action expression follows the
  // engine's existing mid-update error semantics; serve sessions get
  // whole-statement atomicity from their trial clones, DESIGN.md §14.)
  if (exec_.governor != nullptr) {
    MCT_RETURN_IF_ERROR(exec_.governor->Check());
  }

  // Write-visibility gate (DESIGN.md §16): resolve every action's color up
  // front and refuse before the first mutation, so a kWarn session that was
  // admitted past the analyzer still cannot touch a write-invisible color —
  // the database stays untouched and nothing reaches the WAL.
  if (exec_.mask != nullptr) {
    for (const UpdateAction& action : q.actions) {
      ColorId color = target_color;
      if (!action.color.empty()) {
        MCT_ASSIGN_OR_RETURN(color, ResolveColor(action.color));
      }
      if (!exec_.mask->CanWrite(color)) {
        return Status::PermissionDenied("update targets write-invisible "
                                        "color '" +
                                        db_->ColorName(color) + "'");
      }
    }
  }

  QueryResult result;
  ColorSet touched;
  for (NodeId t : targets) {
    for (const UpdateAction& action : q.actions) {
      ColorId color = target_color;
      if (!action.color.empty()) {
        MCT_ASSIGN_OR_RETURN(color, ResolveColor(action.color));
      }
      switch (action.kind) {
        case UpdateAction::Kind::kInsert: {
          EvalCtx c;
          c.env = &env;
          c.ctx_node = t;
          c.ctx_color = color;
          MCT_ASSIGN_OR_RETURN(auto items, EvalExpr(c, *action.constructor));
          for (const Item& it : items) {
            if (!it.is_node) continue;
            MCT_RETURN_IF_ERROR(AttachPending(it.node, color, t));
            ++result.updated_count;
          }
          touched.Add(color);
          break;
        }
        case UpdateAction::Kind::kDelete: {
          std::vector<NodeId> victims;
          if (action.selector.steps.empty()) {
            victims.push_back(t);
          } else {
            EvalCtx c;
            c.env = &env;
            MCT_ASSIGN_OR_RETURN(auto items,
                                 EvalRelPath(t, color, action.selector, c));
            for (const Item& it : items) {
              if (it.is_node) victims.push_back(it.node);
            }
          }
          for (NodeId v : victims) {
            Status s = db_->RemoveNodeColor(v, color);
            if (s.ok()) {
              ++result.updated_count;
            } else if (!s.IsNotFound()) {
              return s;
            }
          }
          touched.Add(color);
          break;
        }
        case UpdateAction::Kind::kReplace: {
          EvalCtx c;
          c.env = &env;
          MCT_ASSIGN_OR_RETURN(auto items,
                               EvalRelPath(t, color, action.selector, c));
          for (const Item& it : items) {
            if (!it.is_node) continue;
            MCT_RETURN_IF_ERROR(db_->SetContent(it.node, action.new_value));
            ++result.updated_count;
          }
          break;
        }
      }
    }
  }
  // Fold any relabeling cost into the update, as a real engine would.
  touched.ForEach([&](ColorId c) { db_->tree(c)->EnsureLabels(); });
  // Durability: one logical redo record per effectful statement. The
  // canonical text (Print/Parse round-trips structurally, and evaluation is
  // deterministic) replayed against the covering checkpoint reproduces this
  // exact mutation, so statement granularity is the finest level at which
  // node identities stay stable across a snapshot reload.
  if (opts_.wal != nullptr && result.updated_count > 0) {
    std::string payload;
    uint32_t dc = opts_.default_color;
    payload.append(reinterpret_cast<const char*>(&dc), sizeof(dc));
    payload += Print(q);
    MCT_RETURN_IF_ERROR(
        opts_.wal->Append(WalRecordType::kUpdateStatement, payload).status());
    if (opts_.wal_sync_each) MCT_RETURN_IF_ERROR(opts_.wal->Sync());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Result serialization
// ---------------------------------------------------------------------------

void Evaluator::ToXmlRec(NodeId n, ColorId color, std::string* out) {
  out->push_back('<');
  out->append(db_->Tag(n));
  for (const NodeAttr& a : db_->Attrs(n)) {
    out->push_back(' ');
    out->append(db_->store().names().Name(a.name));
    out->append("=\"");
    out->append(xml::EscapeAttr(a.value));
    out->push_back('"');
  }
  auto children = db_->Children(n, color);
  bool has_content = db_->store().HasContent(n);
  if (children.empty() && !has_content) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  if (has_content) out->append(xml::EscapeText(db_->Content(n)));
  for (NodeId ch : children) {
    if (db_->Kind(ch) == xml::NodeKind::kElement) ToXmlRec(ch, color, out);
  }
  out->append("</");
  out->append(db_->Tag(n));
  out->push_back('>');
}

std::string Evaluator::ToXml(const QueryResult& r, ColorId color) {
  // Serialization walks the subtree in `color`; a read-invisible render
  // color would leak the structural context of a masked hierarchy, so node
  // items are dropped entirely (atomic items carry no structure and pass).
  const bool color_blocked =
      exec_.mask != nullptr && !exec_.mask->CanRead(color);
  std::string out;
  for (const Item& it : r.items) {
    if (it.is_node) {
      if (color_blocked) continue;
      ToXmlRec(it.node, color, &out);
    } else {
      out.append(xml::EscapeText(it.atomic));
    }
    out.push_back('\n');
  }
  return out;
}

// ---------------------------------------------------------------------------
// Specification complexity (Figures 11 / 12)
// ---------------------------------------------------------------------------

namespace {

void CountExpr(const Expr& e, QueryComplexity* out);

void CountPath(const PathExpr& p, QueryComplexity* out) {
  ++out->num_path_exprs;
  for (const auto& step : p.steps) {
    for (const auto& pred : step.predicates) CountExpr(*pred, out);
  }
}

void CountExpr(const Expr& e, QueryComplexity* out) {
  if (e.kind == Expr::Kind::kPath) {
    CountPath(e.path, out);
  }
  if (e.kind == Expr::Kind::kFLWOR) {
    out->num_variable_bindings += static_cast<int>(e.bindings.size());
    for (const auto& b : e.bindings) CountExpr(*b.expr, out);
    if (e.where) CountExpr(*e.where, out);
    if (e.order_by) CountExpr(*e.order_by, out);
    if (e.ret) CountExpr(*e.ret, out);
    return;
  }
  for (const auto& c : e.children) CountExpr(*c, out);
  if (e.where) CountExpr(*e.where, out);
  if (e.ret) CountExpr(*e.ret, out);
}

}  // namespace

QueryComplexity AnalyzeComplexity(const ParsedQuery& q) {
  QueryComplexity out;
  if (q.root) CountExpr(*q.root, &out);
  out.num_variable_bindings += static_cast<int>(q.bindings.size());
  for (const auto& b : q.bindings) CountExpr(*b.expr, &out);
  if (q.where) CountExpr(*q.where, &out);
  for (const auto& a : q.actions) {
    if (a.constructor) CountExpr(*a.constructor, &out);
    if (!a.selector.steps.empty()) CountPath(a.selector, &out);
  }
  return out;
}

}  // namespace mct::mcx

#include "mcx/printer.h"

#include "common/strings.h"

namespace mct::mcx {

namespace {

const char* AxisName(Axis a) {
  switch (a) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kSelf:
      return "self";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

const char* CmpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

void PrintExprTo(const Expr& e, std::string* out);

void PrintPathTo(const PathExpr& p, std::string* out) {
  bool first_bare = false;
  if (p.from_document) {
    *out += "document(\"" + p.doc_arg + "\")";
  } else if (!p.start_var.empty()) {
    *out += p.start_var;
  } else {
    first_bare = true;  // relative path: first step without a slash
  }
  for (size_t i = 0; i < p.steps.size(); ++i) {
    const PathStep& s = p.steps[i];
    if (!(first_bare && i == 0)) *out += "/";
    if (!s.color.empty()) *out += "{" + s.color + "}";
    if (s.axis == Axis::kAttribute) {
      *out += "@" + s.tag;
    } else {
      *out += AxisName(s.axis);
      *out += "::";
      *out += s.tag.empty() ? "node()" : s.tag;
    }
    for (const auto& pred : s.predicates) {
      *out += "[";
      PrintExprTo(*pred, out);
      *out += "]";
    }
  }
}

void PrintBindingsTo(const std::vector<Binding>& bindings, std::string* out) {
  for (size_t i = 0; i < bindings.size(); ++i) {
    const Binding& b = bindings[i];
    *out += (i == 0 ? (b.is_let ? "let " : "for ") : ", ");
    *out += b.var;
    *out += b.is_let ? " := " : " in ";
    PrintExprTo(*b.expr, out);
  }
}

void PrintFlworTo(const Expr& e, std::string* out) {
  PrintBindingsTo(e.bindings, out);
  if (e.where != nullptr) {
    *out += " where ";
    PrintExprTo(*e.where, out);
  }
  if (e.order_by != nullptr) {
    *out += " order by ";
    PrintExprTo(*e.order_by, out);
    if (e.order_descending) *out += " descending";
  }
  *out += " return ";
  PrintExprTo(*e.ret, out);
}

void PrintExprTo(const Expr& e, std::string* out) {
  switch (e.kind) {
    case Expr::Kind::kPath:
      PrintPathTo(e.path, out);
      return;
    case Expr::Kind::kString:
      *out += "\"" + e.str + "\"";
      return;
    case Expr::Kind::kText:
      *out += e.str;
      return;
    case Expr::Kind::kNumber:
      if (e.num == static_cast<double>(static_cast<int64_t>(e.num))) {
        *out += std::to_string(static_cast<int64_t>(e.num));
      } else {
        *out += StrFormat("%g", e.num);
      }
      return;
    case Expr::Kind::kVarRef:
      *out += e.str;
      return;
    case Expr::Kind::kCompare:
      PrintExprTo(*e.children[0], out);
      *out += " ";
      *out += CmpName(e.cmp);
      *out += " ";
      PrintExprTo(*e.children[1], out);
      return;
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      // "or" binds looser than "and": parenthesize an or-operand under an
      // and so the reparse keeps the association.
      auto operand = [&](const Expr& c) {
        bool paren = e.kind == Expr::Kind::kAnd && c.kind == Expr::Kind::kOr;
        if (paren) *out += "(";
        PrintExprTo(c, out);
        if (paren) *out += ")";
      };
      operand(*e.children[0]);
      *out += e.kind == Expr::Kind::kAnd ? " and " : " or ";
      operand(*e.children[1]);
      return;
    }
    case Expr::Kind::kContains:
      *out += "contains(";
      PrintExprTo(*e.children[0], out);
      *out += ", ";
      PrintExprTo(*e.children[1], out);
      *out += ")";
      return;
    case Expr::Kind::kDistinctValues:
      *out += "distinct-values(";
      PrintExprTo(*e.children[0], out);
      *out += ")";
      return;
    case Expr::Kind::kCount:
      *out += "count(";
      PrintExprTo(*e.children[0], out);
      *out += ")";
      return;
    case Expr::Kind::kFLWOR:
      PrintFlworTo(e, out);
      return;
    case Expr::Kind::kSequence:
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) *out += ", ";
        PrintExprTo(*e.children[i], out);
      }
      return;
    case Expr::Kind::kElement: {
      *out += "<" + e.tag;
      for (const ConstructorAttr& a : e.attrs) {
        *out += " " + a.name + "=\"" + a.value + "\"";
      }
      if (e.children.empty()) {
        *out += "/>";
        return;
      }
      *out += ">";
      for (const auto& c : e.children) {
        if (c->kind == Expr::Kind::kElement) {
          PrintExprTo(*c, out);
        } else if (c->kind == Expr::Kind::kText) {
          *out += c->str;
        } else {
          *out += "{ ";
          PrintExprTo(*c, out);
          *out += " }";
        }
      }
      *out += "</" + e.tag + ">";
      return;
    }
    case Expr::Kind::kCreateColor:
      *out += "createColor(" + e.str + ", ";
      PrintExprTo(*e.children[0], out);
      *out += ")";
      return;
    case Expr::Kind::kCreateCopy:
      *out += "createCopy(";
      PrintExprTo(*e.children[0], out);
      *out += ")";
      return;
  }
}

}  // namespace

std::string Print(const Expr& e) {
  std::string out;
  PrintExprTo(e, &out);
  return out;
}

std::string Print(const PathExpr& p) {
  std::string out;
  PrintPathTo(p, &out);
  return out;
}

std::string Print(const ParsedQuery& q) {
  std::string out;
  if (!q.is_update) {
    PrintExprTo(*q.root, &out);
    return out;
  }
  PrintBindingsTo(q.bindings, &out);
  if (q.where != nullptr) {
    out += " where ";
    PrintExprTo(*q.where, &out);
  }
  out += " update " + q.target_var + " { ";
  for (size_t i = 0; i < q.actions.size(); ++i) {
    const UpdateAction& a = q.actions[i];
    if (i > 0) out += ", ";
    switch (a.kind) {
      case UpdateAction::Kind::kInsert:
        out += "insert ";
        PrintExprTo(*a.constructor, &out);
        if (!a.color.empty()) out += " into {" + a.color + "}";
        break;
      case UpdateAction::Kind::kDelete:
        out += "delete";
        if (!a.color.empty()) out += " {" + a.color + "}";
        if (!a.selector.steps.empty()) {
          out += " ";
          out += Print(a.selector);
        }
        break;
      case UpdateAction::Kind::kReplace:
        out += "replace " + Print(a.selector) + " with \"" + a.new_value +
               "\"";
        break;
    }
  }
  out += " }";
  return out;
}

}  // namespace mct::mcx

#include "mcx/analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/strings.h"

namespace mct::mcx {

namespace {

const char* AxisName(Axis a) {
  switch (a) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kSelf:
      return "self";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

std::string RenderStep(const PathStep& step, const std::string& color) {
  std::string s = color.empty() ? "" : "{" + color + "}";
  s += AxisName(step.axis);
  s += "::";
  s += step.tag.empty() ? "*" : step.tag;
  return s;
}

std::string RenderFlow(const FlowSet& f) {
  if (f.empty()) return "{}";
  std::string s = "{";
  bool first = true;
  for (const std::string& p : f.Render()) {
    if (!first) s += ", ";
    first = false;
    s += p;
  }
  s += "}";
  return s;
}

/// Three-valued truth for predicate / where folding (MCX102).
enum class Truth { kFalse, kTrue, kUnknown };

/// The value category the analyzer tracks for an expression: a node flow
/// (possibly tainted by an earlier diagnostic) or an atomic value.
///
/// With an active visibility mask the analyzer runs two lattices in
/// lockstep: `flow` is filtered to mask-visible colors after every step
/// (mirroring the evaluator's per-step enforcement), while `unmasked`
/// ignores the mask. Divergence between the two is exactly the MCX2xx
/// signal: masked-empty + unmasked-nonempty = MCX201; shared colors of a
/// join all invisible = MCX203. Without a mask the two are identical.
struct AbstractValue {
  FlowSet flow;
  FlowSet unmasked;
  bool atomic = false;
  bool tainted = false;
};

class Analyzer {
 public:
  Analyzer(const ParsedQuery& q, const AnalyzeOptions& opts)
      : q_(q), opts_(opts), graph_(opts.schema) {
    report_.default_color = opts.default_color;
  }

  AnalysisReport Run() {
    if (q_.is_update) {
      AnalyzeUpdate();
    } else if (q_.root != nullptr) {
      AbstractValue v = AnalyzeExpr(*q_.root, DocumentValue());
      MaybeWarnStructuralLeak(v, q_.root->span);
    }
    return std::move(report_);
  }

 private:
  struct VarInfo {
    AbstractValue value;
  };

  AbstractValue DocumentValue() const {
    AbstractValue v;
    // The shared document node carries every color and is visible to every
    // session, so the mask does not filter it.
    v.flow = FlowSet::Document(graph_.schema().colors());
    v.unmasked = v.flow;
    return v;
  }

  /// Drops lattice points whose color is outside the read mask (the
  /// document node is exempt: it is shared across all sessions). Identity
  /// when no mask is active.
  FlowSet FilterVisible(const FlowSet& in) const {
    if (!opts_.mask.active) return in;
    FlowSet out;
    for (const auto& [tc, est] : in.points()) {
      if (tc.type == kDocumentType || opts_.mask.CanRead(tc.color)) {
        out.Add(tc, est);
      }
    }
    return out;
  }

  void Diag(const std::string& code, Severity sev, const SourceSpan& span,
            std::string message) {
    Diagnostic d;
    d.code = code;
    d.severity = sev;
    d.span = span;
    if (!q_.source.empty() && span.valid()) {
      LineCol lc = ResolveLineCol(q_.source, span.begin);
      d.line = lc.line;
      d.col = lc.col;
    }
    d.message = std::move(message);
    report_.diagnostics.push_back(std::move(d));
  }

  std::string ResolveColor(const std::string& c) const {
    return c.empty() ? opts_.default_color : c;
  }

  // ---- paths -------------------------------------------------------------

  AbstractValue AnalyzePath(const PathExpr& path, const AbstractValue& ctx,
                            const SourceSpan& path_span) {
    AbstractValue cur;
    if (path.from_document) {
      cur = DocumentValue();
    } else if (!path.start_var.empty()) {
      const VarInfo* vi = Lookup(path.start_var);
      if (vi == nullptr) {
        Diag("MCX005", Severity::kError, path_span,
             "unbound variable " + path.start_var);
        cur.tainted = true;
      } else {
        cur = vi->value;
      }
    } else {
      cur = ctx;  // context-relative path (inside a predicate)
    }

    for (const PathStep& step : path.steps) {
      cur = AnalyzeStep(step, cur);
    }
    return cur;
  }

  FlowSet Transfer(Axis axis, const FlowSet& in, const std::string& tag) const {
    switch (axis) {
      case Axis::kChild:
        return graph_.Child(in, tag);
      case Axis::kDescendant:
        return graph_.Descendant(in, tag);
      case Axis::kDescendantOrSelf:
        return graph_.DescendantOrSelf(in, tag);
      case Axis::kParent:
        return graph_.Parent(in, tag);
      case Axis::kAncestor:
        return graph_.Ancestor(in, tag);
      case Axis::kSelf:
        return graph_.Self(in, tag);
      case Axis::kAttribute:
        break;  // handled by the caller
    }
    return FlowSet();
  }

  AbstractValue AnalyzeStep(const PathStep& step, AbstractValue in) {
    const SourceSpan& span = step.span;

    if (step.axis == Axis::kAttribute) {
      // Attributes are not part of the schema's color grammar: the step
      // yields an atomic value; the node flow ends here.
      AnalyzePredicates(step, in);
      AbstractValue out;
      out.atomic = true;
      out.tainted = in.tainted;
      report_.flow.push_back("@" + step.tag + " -> (atomic)");
      return out;
    }

    // Color resolution mirrors the evaluator: an explicit {color} forces a
    // cross-tree transition; an uncolored step inherits the color(s) the
    // flow is already in (EvalRelPath semantics), except off the document
    // node, where the statement default applies. Resolution consults the
    // unmasked flow so that masked and unmasked lattices agree on it.
    std::string color = step.color;
    if (color.empty() && in.unmasked.IsDocumentOnly()) {
      color = opts_.default_color;
    }

    if (!color.empty() && !graph_.KnownColor(color)) {
      Diag("MCX001", Severity::kError, span,
           "unknown color '" + color + "' (schema colors: " + ColorList() +
               ")");
      in.flow = FlowSet();
      in.unmasked = FlowSet();
      in.tainted = true;
      return in;
    }
    if (!step.tag.empty() && !graph_.KnownType(step.tag)) {
      Diag("MCX002", Severity::kError, span,
           "unknown element name '" + step.tag +
               "' in node test: no element type with that name in the "
               "schema");
      in.flow = FlowSet();
      in.unmasked = FlowSet();
      in.tainted = true;
      return in;
    }

    // MCX200: the statement *names* a color the session cannot read.
    // MCX201: the step never names one, but the only color it can resolve
    // to (the statement default, inherited off the document) is invisible —
    // the mask-filtered lattice state is empty before the step runs.
    // Either way the flow is dead; taint so downstream steps don't cascade.
    if (opts_.mask.active && !color.empty() && !opts_.mask.CanRead(color)) {
      if (!step.color.empty()) {
        Diag("MCX200", Severity::kError, span,
             "color '" + color +
                 "' is outside the session's visibility mask");
      } else {
        Diag("MCX201", Severity::kError, span,
             "step " + RenderStep(step, color) +
                 " is reachable only through the statement default color '" +
                 color + "', which is outside the visibility mask");
      }
      in.flow = FlowSet();
      in.unmasked = FlowSet();
      in.tainted = true;
      return in;
    }

    const bool had_input = !in.unmasked.empty();
    FlowSet shifted_u =
        color.empty() ? in.unmasked : graph_.Recolor(in.unmasked, color);
    FlowSet out_unmasked = Transfer(step.axis, shifted_u, step.tag);

    FlowSet out;
    if (opts_.mask.active) {
      FlowSet shifted =
          color.empty() ? in.flow : graph_.Recolor(in.flow, color);
      out = FilterVisible(Transfer(step.axis, shifted, step.tag));
    } else {
      out = out_unmasked;
    }

    report_.flow.push_back(
        StrFormat("%s -> %s est~%.4g", RenderStep(step, color).c_str(),
                  RenderFlow(out).c_str(), out.TotalEstimate()));

    AbstractValue result;
    result.flow = out;
    result.unmasked = out_unmasked;
    result.tainted = in.tainted;

    if (out_unmasked.empty() && had_input && !in.tainted) {
      std::string why;
      if (shifted_u.empty()) {
        why = ": no element type reaching this step carries color '" + color +
              "'";
      }
      Diag("MCX003", Severity::kError, span,
           "statically empty step " + RenderStep(step, color) +
               ": the schema admits no matching (type, color) pair" + why);
      result.tainted = true;  // suppress cascading MCX003 downstream
      return result;
    }

    // MCX201: the schema reaches this step, but only through colors the
    // mask hides — at runtime the enforcement layer filters every binding,
    // so the step is empty for this session.
    if (opts_.mask.active && out.empty() && !out_unmasked.empty() &&
        !in.tainted && !in.flow.empty()) {
      Diag("MCX201", Severity::kError, span,
           "step " + RenderStep(step, color) +
               " is reachable only through colors outside the visibility "
               "mask (unmasked flow " +
               RenderFlow(out_unmasked) + ")");
      result.tainted = true;
      return result;
    }

    if (!result.tainted &&
        out.TotalEstimate() > opts_.blowup_threshold) {
      Diag("MCX103", Severity::kWarning, span,
           StrFormat("step %s has estimated cardinality %.3g (threshold "
                     "%.3g): quant(e,c) statistics imply a blowup",
                     RenderStep(step, color).c_str(), out.TotalEstimate(),
                     opts_.blowup_threshold));
    }

    AnalyzePredicates(step, result);
    return result;
  }

  void AnalyzePredicates(const PathStep& step, const AbstractValue& ctx) {
    for (const ExprPtr& pred : step.predicates) {
      if (pred == nullptr) continue;
      // Positional predicate: a bare number literal [N].
      if (pred->kind == Expr::Kind::kNumber) {
        const double n = pred->num;
        if (!ctx.tainted && n >= 2 && std::floor(n) == n &&
            step.axis != Axis::kAttribute) {
          int bound = graph_.MaxOccurs(ctx.flow);
          if (bound == 1) {
            Diag("MCX104", Severity::kWarning, pred->span,
                 StrFormat("positional predicate [%d] exceeds the schema's "
                           "quantifier bound (at most 1 occurrence per "
                           "parent)",
                           static_cast<int>(n)));
          }
        }
        continue;
      }
      Truth t = AnalyzeBool(*pred, ctx);
      if (t == Truth::kFalse && !ctx.tainted) {
        Diag("MCX102", Severity::kWarning, pred->span,
             "predicate always evaluates to false");
      }
    }
  }

  // ---- boolean / comparison folding --------------------------------------

  /// Literal constant of an expression, if it has one.
  struct Constant {
    bool is_string = false;
    bool is_number = false;
    std::string str;
    double num = 0;
  };

  static Constant ConstOf(const Expr& e) {
    Constant c;
    if (e.kind == Expr::Kind::kString) {
      c.is_string = true;
      c.str = e.str;
    } else if (e.kind == Expr::Kind::kNumber) {
      c.is_number = true;
      c.num = e.num;
    }
    return c;
  }

  static Truth FoldCompare(CmpOp op, double a, double b) {
    bool r = false;
    switch (op) {
      case CmpOp::kEq:
        r = a == b;
        break;
      case CmpOp::kNe:
        r = a != b;
        break;
      case CmpOp::kLt:
        r = a < b;
        break;
      case CmpOp::kLe:
        r = a <= b;
        break;
      case CmpOp::kGt:
        r = a > b;
        break;
      case CmpOp::kGe:
        r = a >= b;
        break;
    }
    return r ? Truth::kTrue : Truth::kFalse;
  }

  Truth AnalyzeBool(const Expr& e, const AbstractValue& ctx) {
    switch (e.kind) {
      case Expr::Kind::kAnd: {
        Truth out = Truth::kTrue;
        for (const ExprPtr& c : e.children) {
          Truth t = AnalyzeBool(*c, ctx);
          if (t == Truth::kFalse) out = Truth::kFalse;
          if (t == Truth::kUnknown && out != Truth::kFalse)
            out = Truth::kUnknown;
        }
        return out;
      }
      case Expr::Kind::kOr: {
        Truth out = Truth::kFalse;
        for (const ExprPtr& c : e.children) {
          Truth t = AnalyzeBool(*c, ctx);
          if (t == Truth::kTrue) out = Truth::kTrue;
          if (t == Truth::kUnknown && out != Truth::kTrue)
            out = Truth::kUnknown;
        }
        return out;
      }
      case Expr::Kind::kCompare: {
        if (e.children.size() != 2) return Truth::kUnknown;
        const Expr& lhs = *e.children[0];
        const Expr& rhs = *e.children[1];
        AbstractValue lv = AnalyzeOperand(lhs, ctx);
        AbstractValue rv = AnalyzeOperand(rhs, ctx);
        CheckCrossTreeJoin(lhs, lv, rhs, rv, e.span);
        Constant lc = ConstOf(lhs);
        Constant rc = ConstOf(rhs);
        if (lc.is_number && rc.is_number) {
          return FoldCompare(e.cmp, lc.num, rc.num);
        }
        if (lc.is_string && rc.is_string) {
          int c = lc.str.compare(rc.str);
          return FoldCompare(e.cmp, static_cast<double>(c), 0.0);
        }
        return Truth::kUnknown;
      }
      case Expr::Kind::kContains: {
        if (e.children.size() == 2) {
          AnalyzeOperand(*e.children[0], ctx);
          AnalyzeOperand(*e.children[1], ctx);
          Constant a = ConstOf(*e.children[0]);
          Constant b = ConstOf(*e.children[1]);
          if (a.is_string && b.is_string) {
            return a.str.find(b.str) != std::string::npos ? Truth::kTrue
                                                          : Truth::kFalse;
          }
        }
        return Truth::kUnknown;
      }
      default:
        AnalyzeOperand(e, ctx);
        return Truth::kUnknown;
    }
  }

  AbstractValue AnalyzeOperand(const Expr& e, const AbstractValue& ctx) {
    switch (e.kind) {
      case Expr::Kind::kPath:
        return AnalyzePath(e.path, ctx, e.span);
      case Expr::Kind::kVarRef: {
        const VarInfo* vi = Lookup(e.str);
        if (vi == nullptr) {
          Diag("MCX005", Severity::kError, e.span,
               "unbound variable " + e.str);
          AbstractValue v;
          v.tainted = true;
          return v;
        }
        return vi->value;
      }
      case Expr::Kind::kCount:
      case Expr::Kind::kDistinctValues: {
        for (const ExprPtr& c : e.children) {
          if (c != nullptr) AnalyzeOperand(*c, ctx);
        }
        AbstractValue v;
        v.atomic = true;
        return v;
      }
      default:
        return AnalyzeExpr(e, ctx);
    }
  }

  /// MCX101: a comparison whose two operands are node flows in disjoint
  /// color sets is a cross-tree join the engine cannot satisfy from shared
  /// subtrees (and, with value semantics, very likely unintended).
  /// MCX203: the join's only bridges are invisible — either the operands
  /// share colors but every shared color is masked, or they share none and
  /// the sole color both operand types also carry is masked. Both cases
  /// reveal correlations through a hierarchy the session must not see.
  void CheckCrossTreeJoin(const Expr& lhs, const AbstractValue& lv,
                          const Expr& rhs, const AbstractValue& rv,
                          const SourceSpan& span) {
    if (lv.tainted || rv.tainted || lv.atomic || rv.atomic) return;
    if (lhs.kind != Expr::Kind::kPath || rhs.kind != Expr::Kind::kPath)
      return;
    if (lv.unmasked.empty() || rv.unmasked.empty()) return;
    bool share_visible = false;
    bool share_any = false;
    for (const auto& [tc, _] : lv.unmasked.points()) {
      if (!rv.unmasked.ContainsColor(tc.color)) continue;
      share_any = true;
      if (opts_.mask.CanRead(tc.color)) {
        share_visible = true;
        break;
      }
    }
    if (share_visible) return;
    if (share_any) {
      // Only reachable with an active mask: without one CanRead is
      // always true, so any shared color sets share_visible.
      Diag("MCX203", Severity::kError, span,
           "cross-tree join bridges only through colors outside the "
           "visibility mask: " +
               RenderFlow(lv.unmasked) + " vs " + RenderFlow(rv.unmasked));
      return;
    }
    // No shared color at all — but with a mask, check whether a *hidden*
    // color bridges the join: both operand types also carry some masked
    // color, so the rows satisfying the join at runtime may be exactly the
    // shared nodes of that masked hierarchy. Evaluating it would reveal
    // correlations through structure the session must not see — an error,
    // where the plain disjoint case is only the MCX101 warning.
    if (opts_.mask.active) {
      for (const std::string& c : graph_.schema().colors()) {
        if (opts_.mask.CanRead(c)) continue;
        if (!graph_.Recolor(lv.unmasked, c).empty() &&
            !graph_.Recolor(rv.unmasked, c).empty()) {
          Diag("MCX203", Severity::kError, span,
               "cross-tree join " + RenderFlow(lv.unmasked) + " vs " +
                   RenderFlow(rv.unmasked) +
                   " bridges only through the masked color '" + c + "'");
          return;
        }
      }
    }
    Diag("MCX101", Severity::kWarning, span,
         "comparison joins across colored trees with no shared color: " +
             RenderFlow(lv.unmasked) + " vs " + RenderFlow(rv.unmasked));
  }

  /// MCX204 (warn): some element type in the result also carries a color
  /// outside the mask — the returned nodes may be the very nodes a masked
  /// sibling hierarchy is built from, so their existence, identity, and
  /// content leak structural context of that hierarchy.
  void MaybeWarnStructuralLeak(const AbstractValue& v, const SourceSpan& span) {
    if (!opts_.mask.active || v.tainted || v.atomic) return;
    if (v.flow.empty() || v.flow.IsDocumentOnly()) return;
    for (const std::string& c : graph_.schema().colors()) {
      if (opts_.mask.CanRead(c)) continue;
      FlowSet shared = graph_.Recolor(v.flow, c);
      if (!shared.empty() && !shared.IsDocumentOnly()) {
        Diag("MCX204", Severity::kWarning, span,
             "result nodes of flow " + RenderFlow(v.flow) +
                 " are shared with the masked color '" + c +
                 "': node identity may leak structural context of that "
                 "hierarchy");
        return;
      }
    }
  }

  // ---- expressions -------------------------------------------------------

  AbstractValue AnalyzeExpr(const Expr& e, const AbstractValue& ctx) {
    switch (e.kind) {
      case Expr::Kind::kPath:
        return AnalyzePath(e.path, ctx, e.span);
      case Expr::Kind::kString:
      case Expr::Kind::kNumber:
      case Expr::Kind::kText: {
        AbstractValue v;
        v.atomic = true;
        return v;
      }
      case Expr::Kind::kVarRef:
        return AnalyzeOperand(e, ctx);
      case Expr::Kind::kCompare:
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
      case Expr::Kind::kContains: {
        AnalyzeBool(e, ctx);
        AbstractValue v;
        v.atomic = true;
        return v;
      }
      case Expr::Kind::kDistinctValues:
      case Expr::Kind::kCount:
        return AnalyzeOperand(e, ctx);
      case Expr::Kind::kFLWOR:
        return AnalyzeFlwor(e, ctx);
      case Expr::Kind::kElement: {
        for (const ExprPtr& c : e.children) {
          if (c != nullptr) AnalyzeExpr(*c, ctx);
        }
        // A constructor yields a fresh node outside any schema color.
        AbstractValue v;
        return v;
      }
      case Expr::Kind::kCreateColor: {
        // createColor writes a (possibly new) color: an allow-list mask
        // that does not name it refuses the write.
        if (opts_.mask.active && !opts_.mask.CanWrite(e.str)) {
          Diag("MCX202", Severity::kError, e.span,
               "createColor targets color '" + e.str +
                   "', which is outside the session's write mask");
        }
        if (e.children.size() == 1 && e.children[0] != nullptr) {
          AnalyzeExpr(*e.children[0], ctx);
          CheckDuplicateIdentity(*e.children[0], e.str, e.span);
        }
        return AbstractValue{};
      }
      case Expr::Kind::kCreateCopy:
      case Expr::Kind::kSequence: {
        for (const ExprPtr& c : e.children) {
          if (c != nullptr) AnalyzeExpr(*c, ctx);
        }
        return AbstractValue{};
      }
    }
    return AbstractValue{};
  }

  AbstractValue AnalyzeFlwor(const Expr& e, const AbstractValue& ctx) {
    const size_t scope_mark = scopes_.size();
    for (const Binding& b : e.bindings) {
      AnalyzeBinding(b, ctx);
    }
    if (e.where != nullptr) {
      Truth t = AnalyzeBool(*e.where, ctx);
      if (t == Truth::kFalse) {
        Diag("MCX102", Severity::kWarning, e.where->span,
             "where clause always evaluates to false");
      }
    }
    if (e.order_by != nullptr) AnalyzeOperand(*e.order_by, ctx);
    AbstractValue ret;
    if (e.ret != nullptr) ret = AnalyzeExpr(*e.ret, ctx);
    scopes_.resize(scope_mark);
    return ret;
  }

  void AnalyzeBinding(const Binding& b, const AbstractValue& ctx) {
    AbstractValue v;
    if (b.expr != nullptr) v = AnalyzeOperand(*b.expr, ctx);
    scopes_.emplace_back(b.var, VarInfo{std::move(v)});
  }

  // ---- duplicate-node detection (MCX004) ---------------------------------

  /// Collects the identity-preserving sources attached by a constructor
  /// tree: bare variable references and variable-rooted paths, keyed by a
  /// canonical rendering. Two occurrences of the same key in one
  /// createColor / insert provably attach the same node twice into one
  /// colored tree — the paper's Section 4.2 duplicate-node dynamic error.
  void CollectIdentitySources(const Expr& e,
                              std::map<std::string, int>* counts) const {
    switch (e.kind) {
      case Expr::Kind::kVarRef:
        ++(*counts)[e.str];
        return;
      case Expr::Kind::kPath:
        if (!e.path.start_var.empty()) {
          std::string key = e.path.start_var;
          for (const PathStep& s : e.path.steps) {
            if (s.axis == Axis::kAttribute) return;  // atomic, not a node
            key += "/" + std::string(AxisName(s.axis)) + "::" +
                   (s.tag.empty() ? "*" : s.tag);
            if (!s.color.empty()) key += "{" + s.color + "}";
            if (!s.predicates.empty()) return;  // may select disjoint sets
          }
          ++(*counts)[key];
        }
        return;
      case Expr::Kind::kElement:
      case Expr::Kind::kSequence:
        for (const ExprPtr& c : e.children) {
          if (c != nullptr) CollectIdentitySources(*c, counts);
        }
        return;
      case Expr::Kind::kFLWOR:      // per-iteration nodes differ
      case Expr::Kind::kCreateCopy:  // fresh copies, identity broken
      default:
        return;
    }
  }

  void CheckDuplicateIdentity(const Expr& content, const std::string& color,
                              const SourceSpan& span) {
    std::map<std::string, int> counts;
    CollectIdentitySources(content, &counts);
    for (const auto& [key, n] : counts) {
      if (n > 1) {
        Diag("MCX004", Severity::kError, span,
             StrFormat("duplicate-node error: %s occurs %d times in content "
                       "attached to color '%s' — the same node cannot appear "
                       "twice in one colored tree (Section 4.2)",
                       key.c_str(), n, color.c_str()));
      }
    }
  }

  // ---- updates -----------------------------------------------------------

  void AnalyzeUpdate() {
    AbstractValue doc = DocumentValue();
    for (const Binding& b : q_.bindings) {
      AnalyzeBinding(b, doc);
    }
    if (q_.where != nullptr) {
      Truth t = AnalyzeBool(*q_.where, doc);
      if (t == Truth::kFalse) {
        Diag("MCX102", Severity::kWarning, q_.where->span,
             "where clause always evaluates to false");
      }
    }

    const VarInfo* target = Lookup(q_.target_var);
    AbstractValue tv;
    if (target == nullptr) {
      Diag("MCX005", Severity::kError, q_.target_span,
           "unbound update target variable " + q_.target_var);
      tv.tainted = true;
    } else {
      tv = target->value;
    }

    for (const UpdateAction& a : q_.actions) {
      AnalyzeAction(a, tv);
    }
  }

  void AnalyzeAction(const UpdateAction& a, const AbstractValue& target) {
    const std::string color = ResolveColor(a.color);
    if (!graph_.KnownColor(color)) {
      Diag("MCX001", Severity::kError, a.span,
           "unknown color '" + color + "' in update action (schema colors: " +
               ColorList() + ")");
      return;
    }

    // MCX202: every update action (insert / delete / replace) mutates the
    // named colored tree, so it needs that color in the write mask.
    if (opts_.mask.active && !opts_.mask.CanWrite(color)) {
      Diag("MCX202", Severity::kError, a.span,
           "update action targets color '" + color +
               "', which is outside the session's write mask");
      return;
    }

    FlowSet in_color = graph_.Recolor(target.unmasked, color);
    const bool target_reaches_color =
        target.tainted || target.unmasked.empty() || !in_color.empty();

    switch (a.kind) {
      case UpdateAction::Kind::kInsert: {
        if (!target_reaches_color) {
          Diag("MCX006", Severity::kError, a.span,
               "insert into color '" + color + "': target flow " +
                   RenderFlow(target.flow) +
                   " can never carry that color, so the insert must fail at "
                   "runtime");
        }
        if (a.constructor != nullptr) {
          AbstractValue ctx = target;
          AnalyzeExpr(*a.constructor, ctx);
          CheckDuplicateIdentity(*a.constructor, color, a.span);
        }
        break;
      }
      case UpdateAction::Kind::kDelete:
      case UpdateAction::Kind::kReplace: {
        // Deletes of nodes not in the tree are tolerated at runtime, so an
        // unreachable color is not an error; skip selector analysis when
        // the abstract context is empty to avoid a spurious MCX003.
        if (!target_reaches_color) break;
        AbstractValue ctx = target;
        ctx.unmasked = in_color;
        ctx.flow = FilterVisible(in_color);
        if (!a.selector.steps.empty()) {
          AnalyzePath(a.selector, ctx, a.span);
        }
        break;
      }
    }
  }

  // ---- environment -------------------------------------------------------

  const VarInfo* Lookup(const std::string& var) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->first == var) return &it->second;
    }
    return nullptr;
  }

  std::string ColorList() const {
    std::string s;
    for (const std::string& c : graph_.schema().colors()) {
      if (!s.empty()) s += ", ";
      s += c;
    }
    return s.empty() ? "<none>" : s;
  }

  const ParsedQuery& q_;
  const AnalyzeOptions& opts_;
  ColorFlowGraph graph_;
  AnalysisReport report_;
  std::vector<std::pair<std::string, VarInfo>> scopes_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Diagnostic / AnalysisReport rendering
// ---------------------------------------------------------------------------

std::string Diagnostic::ToString() const {
  std::string s = severity == Severity::kError ? "error " : "warning ";
  s += code;
  if (line > 0) {
    s += StrFormat(" at %zu:%zu", line, col);
  }
  s += ": ";
  s += message;
  return s;
}

size_t AnalysisReport::num_errors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t AnalysisReport::num_warnings() const {
  return diagnostics.size() - num_errors();
}

std::string AnalysisReport::ToText() const {
  std::string out = "EXPLAIN CHECK (default color '" + default_color + "')\n";
  out += "flow:\n";
  if (flow.empty()) {
    out += "  (no location steps)\n";
  } else {
    for (const std::string& line : flow) {
      out += "  " + line + "\n";
    }
  }
  if (diagnostics.empty()) {
    out += "check: clean\n";
  } else {
    out += StrFormat("check: %zu error(s), %zu warning(s)\n", num_errors(),
                     num_warnings());
    for (const Diagnostic& d : diagnostics) {
      out += "  " + d.ToString() + "\n";
    }
  }
  return out;
}

std::string AnalysisReport::ToJson() const {
  std::string out = "{\"default_color\":\"" + EscapeJson(default_color) +
                    "\",\"flow\":[";
  for (size_t i = 0; i < flow.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + EscapeJson(flow[i]) + "\"";
  }
  out += StrFormat("],\"errors\":%zu,\"warnings\":%zu,\"diagnostics\":[",
                   num_errors(), num_warnings());
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"code\":\"" + EscapeJson(d.code) + "\",\"severity\":\"";
    out += d.severity == Severity::kError ? "error" : "warning";
    out += StrFormat("\",\"line\":%zu,\"col\":%zu,\"begin\":%u,\"end\":%u,",
                     d.line, d.col, d.span.begin, d.span.end);
    out += "\"message\":\"" + EscapeJson(d.message) + "\"}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

AnalysisReport Analyze(const ParsedQuery& q, const AnalyzeOptions& opts) {
  if (opts.schema == nullptr) {
    AnalysisReport r;
    r.default_color = opts.default_color;
    Diagnostic d;
    d.code = "MCX000";
    d.severity = Severity::kError;
    d.message = "no schema available for analysis";
    r.diagnostics.push_back(std::move(d));
    return r;
  }
  Analyzer a(q, opts);
  AnalysisReport r = a.Run();
  // Deterministic rendering: diagnostics in (byte offset, code) order
  // regardless of traversal order, stable for ties so equal-position
  // duplicates keep their emission order.
  std::stable_sort(r.diagnostics.begin(), r.diagnostics.end(),
                   [](const Diagnostic& lhs, const Diagnostic& rhs) {
                     if (lhs.span.begin != rhs.span.begin) {
                       return lhs.span.begin < rhs.span.begin;
                     }
                     return lhs.code < rhs.code;
                   });
  return r;
}

}  // namespace mct::mcx

#include "mcx/parser.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace mct::mcx {

LineCol ResolveLineCol(std::string_view text, size_t pos) {
  LineCol lc;
  for (size_t i = 0; i < pos && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++lc.line;
      lc.col = 1;
    } else {
      ++lc.col;
    }
  }
  return lc;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  static SourceSpan Union(const SourceSpan& a, const SourceSpan& b) {
    if (!a.valid()) return b;
    if (!b.valid()) return a;
    return SourceSpan{std::min(a.begin, b.begin), std::max(a.end, b.end)};
  }

  Result<ParsedQuery> ParseStatement() {
    SkipWs();
    ParsedQuery q;
    q.source = std::string(in_);
    const size_t stmt_start = pos_;
    if (LookKeyword("for") || LookKeyword("let")) {
      // Could be a query FLWOR or an update statement; parse the prefix and
      // decide at the 'return' / 'update' keyword.
      std::vector<Binding> bindings;
      MCT_RETURN_IF_ERROR(ParseBindings(&bindings));
      ExprPtr where;
      if (ConsumeKeyword("where")) {
        MCT_ASSIGN_OR_RETURN(where, ParseExpr());
      }
      SkipWs();
      if (ConsumeKeyword("update")) {
        q.is_update = true;
        q.bindings = std::move(bindings);
        q.where = std::move(where);
        MCT_RETURN_IF_ERROR(ParseUpdateTail(&q));
        SkipWs();
        if (pos_ != in_.size()) return Err("trailing input after update");
        return q;
      }
      auto flwor = std::make_unique<Expr>(Expr::Kind::kFLWOR);
      flwor->bindings = std::move(bindings);
      flwor->where = std::move(where);
      if (ConsumeKeyword("order")) {
        if (!ConsumeKeyword("by")) return Err("expected 'by' after 'order'");
        MCT_ASSIGN_OR_RETURN(flwor->order_by, ParseExpr());
        if (ConsumeKeyword("descending")) flwor->order_descending = true;
        ConsumeKeyword("ascending");
      }
      if (!ConsumeKeyword("return")) return Err("expected 'return'");
      MCT_ASSIGN_OR_RETURN(flwor->ret, ParseExpr());
      flwor->span = SpanFrom(stmt_start);
      q.root = std::move(flwor);
    } else {
      MCT_ASSIGN_OR_RETURN(q.root, ParseExpr());
    }
    SkipWs();
    if (pos_ != in_.size()) return Err("trailing input after expression");
    return q;
  }

 private:
  Status Err(const std::string& what) const {
    LineCol lc = ResolveLineCol(in_, pos_);
    // Excerpt the upcoming input (up to the line end, clipped) so the
    // message carries the offending token, not just coordinates.
    std::string_view rest = in_.substr(pos_);
    size_t cut = rest.find('\n');
    if (cut == std::string_view::npos || cut > 24) cut = std::min<size_t>(rest.size(), 24);
    std::string near(rest.substr(0, cut));
    if (near.empty()) near = "<end of input>";
    return Status::ParseError(StrFormat("%s at line %zu col %zu near '%s'",
                                        what.c_str(), lc.line, lc.col,
                                        near.c_str()));
  }

  /// Span from `start` to the current cursor, trailing whitespace excluded.
  SourceSpan SpanFrom(size_t start) const {
    size_t end = pos_;
    while (end > start &&
           std::isspace(static_cast<unsigned char>(in_[end - 1]))) {
      --end;
    }
    return SourceSpan{static_cast<uint32_t>(start),
                      static_cast<uint32_t>(end)};
  }

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek(size_t off = 0) const {
    return pos_ + off < in_.size() ? in_[pos_ + off] : '\0';
  }
  void SkipWs() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }
  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsNameChar(char c) {
    // ':' is excluded so axis specifiers (descendant::movie) lex as
    // name, "::", name; MCXQuery names in this subset are NCNames.
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  }

  /// Does the input at the cursor start with keyword `kw` (word boundary)?
  bool LookKeyword(std::string_view kw) {
    SkipWs();
    if (in_.substr(pos_, kw.size()) != kw) return false;
    char next = pos_ + kw.size() < in_.size() ? in_[pos_ + kw.size()] : '\0';
    return !IsNameChar(next);
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (!LookKeyword(kw)) return false;
    pos_ += kw.size();
    return true;
  }

  bool ConsumeSymbol(std::string_view sym) {
    SkipWs();
    if (in_.substr(pos_, sym.size()) != sym) return false;
    pos_ += sym.size();
    return true;
  }

  bool LookSymbol(std::string_view sym) {
    SkipWs();
    return in_.substr(pos_, sym.size()) == sym;
  }

  Result<std::string> ParseName() {
    SkipWs();
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected a name");
    size_t start = pos_;
    ++pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> ParseVar() {
    SkipWs();
    if (Peek() != '$') return Err("expected '$variable'");
    ++pos_;
    MCT_ASSIGN_OR_RETURN(std::string name, ParseName());
    return "$" + name;
  }

  Result<std::string> ParseStringLiteral() {
    SkipWs();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Err("expected string literal");
    ++pos_;
    std::string out;
    while (!AtEnd() && Peek() != quote) {
      out.push_back(Peek());
      ++pos_;
    }
    if (AtEnd()) return Err("unterminated string literal");
    ++pos_;
    return out;
  }

  // ---- Bindings ----

  Status ParseBindings(std::vector<Binding>* out) {
    // One or more "for $v in expr, $v2 in expr" / "let $v := expr" groups.
    while (true) {
      bool is_for = ConsumeKeyword("for");
      bool is_let = !is_for && ConsumeKeyword("let");
      if (!is_for && !is_let) break;
      do {
        SkipWs();
        const size_t bind_start = pos_;
        Binding b;
        b.is_let = is_let;
        MCT_ASSIGN_OR_RETURN(b.var, ParseVar());
        if (is_for) {
          if (!ConsumeKeyword("in")) return Err("expected 'in'");
        } else {
          if (!ConsumeSymbol(":=")) return Err("expected ':='");
        }
        MCT_ASSIGN_OR_RETURN(b.expr, ParseExpr());
        b.span = SpanFrom(bind_start);
        out->push_back(std::move(b));
      } while (ConsumeSymbol(","));
    }
    if (out->empty()) return Err("expected bindings");
    return Status::OK();
  }

  // ---- Expressions ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    MCT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("or")) {
      MCT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      auto node = std::make_unique<Expr>(Expr::Kind::kOr);
      node->span = Union(lhs->span, rhs->span);
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    MCT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (ConsumeKeyword("and")) {
      MCT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      auto node = std::make_unique<Expr>(Expr::Kind::kAnd);
      node->span = Union(lhs->span, rhs->span);
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    MCT_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
    SkipWs();
    CmpOp op;
    if (ConsumeSymbol("!=")) {
      op = CmpOp::kNe;
    } else if (ConsumeSymbol("<=")) {
      op = CmpOp::kLe;
    } else if (ConsumeSymbol(">=")) {
      op = CmpOp::kGe;
    } else if (LookSymbol("<") && Peek(1) != '/' && !IsNameStart(Peek(1))) {
      // "<" starts a comparison only when not an element constructor.
      ConsumeSymbol("<");
      op = CmpOp::kLt;
    } else if (ConsumeSymbol(">")) {
      op = CmpOp::kGt;
    } else if (ConsumeSymbol("=")) {
      op = CmpOp::kEq;
    } else {
      return lhs;
    }
    MCT_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
    auto node = std::make_unique<Expr>(Expr::Kind::kCompare);
    node->cmp = op;
    node->span = Union(lhs->span, rhs->span);
    node->children.push_back(std::move(lhs));
    node->children.push_back(std::move(rhs));
    return node;
  }

  /// Wrapper stamping the source span of whatever primary was parsed; the
  /// grammar dispatch lives in ParsePrimaryInner.
  Result<ExprPtr> ParsePrimary() {
    SkipWs();
    const size_t start = pos_;
    MCT_ASSIGN_OR_RETURN(ExprPtr node, ParsePrimaryInner());
    if (node != nullptr && !node->span.valid()) node->span = SpanFrom(start);
    return node;
  }

  Result<ExprPtr> ParsePrimaryInner() {
    SkipWs();
    if (AtEnd()) return Err("unexpected end of input");
    char c = Peek();
    if (c == '"' || c == '\'') {
      MCT_ASSIGN_OR_RETURN(std::string s, ParseStringLiteral());
      auto node = std::make_unique<Expr>(Expr::Kind::kString);
      node->str = std::move(s);
      return node;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                          Peek() == '.')) {
        ++pos_;
      }
      auto node = std::make_unique<Expr>(Expr::Kind::kNumber);
      auto v = ParseDouble(in_.substr(start, pos_ - start));
      if (!v.has_value()) return Err("malformed number");
      node->num = *v;
      return node;
    }
    if (c == '<') return ParseElementConstructor();
    if (c == '(') {
      ++pos_;
      MCT_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      if (!ConsumeSymbol(")")) return Err("expected ')'");
      // A parenthesized expression may still be a path start: ($x)/...
      return inner;
    }
    if (LookKeyword("for") || LookKeyword("let")) {
      // Nested FLWOR.
      auto flwor = std::make_unique<Expr>(Expr::Kind::kFLWOR);
      MCT_RETURN_IF_ERROR(ParseBindings(&flwor->bindings));
      if (ConsumeKeyword("where")) {
        MCT_ASSIGN_OR_RETURN(flwor->where, ParseExpr());
      }
      if (ConsumeKeyword("order")) {
        if (!ConsumeKeyword("by")) return Err("expected 'by'");
        MCT_ASSIGN_OR_RETURN(flwor->order_by, ParseExpr());
        if (ConsumeKeyword("descending")) flwor->order_descending = true;
        ConsumeKeyword("ascending");
      }
      if (!ConsumeKeyword("return")) return Err("expected 'return'");
      MCT_ASSIGN_OR_RETURN(flwor->ret, ParseExpr());
      return flwor;
    }
    if (LookKeyword("contains")) {
      ConsumeKeyword("contains");
      if (!ConsumeSymbol("(")) return Err("expected '(' after contains");
      auto node = std::make_unique<Expr>(Expr::Kind::kContains);
      MCT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      if (!ConsumeSymbol(",")) return Err("expected ',' in contains");
      MCT_ASSIGN_OR_RETURN(ExprPtr b, ParseExpr());
      if (!ConsumeSymbol(")")) return Err("expected ')'");
      node->children.push_back(std::move(a));
      node->children.push_back(std::move(b));
      return node;
    }
    if (LookKeyword("distinct-values")) {
      ConsumeKeyword("distinct-values");
      if (!ConsumeSymbol("(")) return Err("expected '('");
      auto node = std::make_unique<Expr>(Expr::Kind::kDistinctValues);
      MCT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      if (!ConsumeSymbol(")")) return Err("expected ')'");
      node->children.push_back(std::move(a));
      return node;
    }
    if (LookKeyword("count")) {
      ConsumeKeyword("count");
      if (!ConsumeSymbol("(")) return Err("expected '('");
      auto node = std::make_unique<Expr>(Expr::Kind::kCount);
      MCT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      if (!ConsumeSymbol(")")) return Err("expected ')'");
      node->children.push_back(std::move(a));
      return node;
    }
    if (LookKeyword("createColor")) {
      ConsumeKeyword("createColor");
      if (!ConsumeSymbol("(")) return Err("expected '('");
      auto node = std::make_unique<Expr>(Expr::Kind::kCreateColor);
      MCT_ASSIGN_OR_RETURN(node->str, ParseName());  // color literal
      if (!ConsumeSymbol(",")) return Err("expected ',' in createColor");
      MCT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      if (!ConsumeSymbol(")")) return Err("expected ')'");
      node->children.push_back(std::move(a));
      return node;
    }
    if (LookKeyword("createCopy")) {
      ConsumeKeyword("createCopy");
      if (!ConsumeSymbol("(")) return Err("expected '('");
      auto node = std::make_unique<Expr>(Expr::Kind::kCreateCopy);
      MCT_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      if (!ConsumeSymbol(")")) return Err("expected ')'");
      node->children.push_back(std::move(a));
      return node;
    }
    // Path expression: document(...), $var[/steps], or a relative step
    // (used inside predicates: name = "Comedy", {red}child::name, @attr).
    return ParsePathExpr();
  }

  // ---- Paths ----

  Result<ExprPtr> ParsePathExpr() {
    auto node = std::make_unique<Expr>(Expr::Kind::kPath);
    PathExpr& p = node->path;
    SkipWs();
    if (LookKeyword("document")) {
      ConsumeKeyword("document");
      if (!ConsumeSymbol("(")) return Err("expected '(' after document");
      MCT_ASSIGN_OR_RETURN(p.doc_arg, ParseStringLiteral());
      if (!ConsumeSymbol(")")) return Err("expected ')'");
      p.from_document = true;
    } else if (Peek() == '$') {
      MCT_ASSIGN_OR_RETURN(p.start_var, ParseVar());
      // Bare variable reference (no steps)?
      SkipWs();
      if (Peek() != '/' && Peek() != '[') {
        auto ref = std::make_unique<Expr>(Expr::Kind::kVarRef);
        ref->str = p.start_var;
        return ref;
      }
      // Predicate directly on the variable: $m[...]: model as self step.
      if (Peek() == '[') {
        const size_t step_start = pos_;
        PathStep self;
        self.axis = Axis::kSelf;
        MCT_RETURN_IF_ERROR(ParsePredicates(&self));
        self.span = SpanFrom(step_start);
        p.steps.push_back(std::move(self));
      }
    } else if (Peek() == '.') {
      // Context item ".": a self step path (predicates like [. = $m]).
      PathStep self;
      self.span = SourceSpan{static_cast<uint32_t>(pos_),
                             static_cast<uint32_t>(pos_ + 1)};
      ++pos_;
      self.axis = Axis::kSelf;
      p.steps.push_back(std::move(self));
      SkipWs();
      if (Peek() != '/') return node;
    } else if (Peek() == '{' || Peek() == '@' || IsNameStart(Peek())) {
      // Relative step(s) inside a predicate: name, {red}child::name, @id.
      MCT_RETURN_IF_ERROR(ParseSteps(&p, /*allow_bare_first=*/true));
      return node;
    } else {
      return Err("expected a path expression");
    }
    MCT_RETURN_IF_ERROR(ParseSteps(&p, /*allow_bare_first=*/false));
    if (p.from_document && p.steps.empty()) {
      return Err("document() must be followed by steps");
    }
    return node;
  }

  /// Parses zero or more location steps. Every step starts with '/' or
  /// '//'; when `allow_bare_first` is set, the first step may appear
  /// without a slash (relative paths inside predicates: name = "Comedy").
  Status ParseSteps(PathExpr* p, bool allow_bare_first) {
    bool first = true;
    while (true) {
      SkipWs();
      bool descendant_slash = false;
      if (LookSymbol("//")) {
        ConsumeSymbol("//");
        descendant_slash = true;
      } else if (LookSymbol("/")) {
        ConsumeSymbol("/");
      } else if (first && allow_bare_first &&
                 (Peek() == '{' || Peek() == '@' || Peek() == '*' ||
                  IsNameStart(Peek()))) {
        // Bare relative first step.
      } else {
        return Status::OK();
      }
      first = false;
      SkipWs();
      const size_t step_start = pos_;
      PathStep step;
      MCT_RETURN_IF_ERROR(ParseOneStep(&step, descendant_slash));
      step.span = SpanFrom(step_start);
      p->steps.push_back(std::move(step));
    }
  }

  Status ParseOneStep(PathStep* step, bool descendant_slash) {
    SkipWs();
    // Optional {color}.
    if (Peek() == '{') {
      ++pos_;
      MCT_ASSIGN_OR_RETURN(step->color, ParseName());
      if (!ConsumeSymbol("}")) return Err("expected '}' after color");
      SkipWs();
      // `{c}//tag` abbreviation: color before the double slash.
      if (LookSymbol("//")) {
        ConsumeSymbol("//");
        descendant_slash = true;
      } else if (LookSymbol("/")) {
        // `{c}/tag` — color before single slash.
        ConsumeSymbol("/");
      }
      SkipWs();
    }
    if (Peek() == '@') {
      ++pos_;
      step->axis = Axis::kAttribute;
      MCT_ASSIGN_OR_RETURN(step->tag, ParseName());
      return Status::OK();
    }
    if (Peek() == '.') {
      ++pos_;
      step->axis = Axis::kSelf;
      MCT_RETURN_IF_ERROR(ParsePredicates(step));
      return Status::OK();
    }
    // Axis name?
    size_t save = pos_;
    MCT_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWs();
    if (ConsumeSymbol("::")) {
      if (name == "child") {
        step->axis = Axis::kChild;
      } else if (name == "descendant") {
        step->axis = Axis::kDescendant;
      } else if (name == "descendant-or-self") {
        step->axis = Axis::kDescendantOrSelf;
      } else if (name == "parent") {
        step->axis = Axis::kParent;
      } else if (name == "ancestor") {
        step->axis = Axis::kAncestor;
      } else if (name == "self") {
        step->axis = Axis::kSelf;
      } else if (name == "attribute") {
        step->axis = Axis::kAttribute;
      } else {
        return Err("unknown axis '" + name + "'");
      }
      SkipWs();
      if (Peek() == '*') {
        ++pos_;
        step->tag.clear();
      } else if (LookKeyword("node")) {
        ConsumeKeyword("node");
        if (!ConsumeSymbol("(") || !ConsumeSymbol(")")) {
          return Err("expected node()");
        }
        step->tag.clear();
      } else {
        MCT_ASSIGN_OR_RETURN(step->tag, ParseName());
      }
    } else {
      // Abbreviated: plain tag; axis from the slash form.
      pos_ = save;
      SkipWs();
      if (Peek() == '*') {
        ++pos_;
        step->tag.clear();
      } else {
        MCT_ASSIGN_OR_RETURN(step->tag, ParseName());
      }
      step->axis = descendant_slash ? Axis::kDescendant : Axis::kChild;
      descendant_slash = false;
    }
    if (descendant_slash && step->axis == Axis::kChild) {
      // `//child::x` means descendant-or-self::node()/child::x == descendant.
      step->axis = Axis::kDescendant;
    }
    return ParsePredicates(step);
  }

  Status ParsePredicates(PathStep* step) {
    while (true) {
      SkipWs();
      if (Peek() != '[') return Status::OK();
      ++pos_;
      MCT_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      if (!ConsumeSymbol("]")) return Err("expected ']'");
      step->predicates.push_back(std::move(pred));
    }
  }

  // ---- Element constructors ----

  Result<ExprPtr> ParseElementConstructor() {
    // At '<'.
    if (Peek() != '<') return Err("expected '<'");
    const size_t ctor_start = pos_;
    ++pos_;
    auto node = std::make_unique<Expr>(Expr::Kind::kElement);
    MCT_ASSIGN_OR_RETURN(node->tag, ParseName());
    // Attributes (string literals only in this subset).
    while (true) {
      SkipWs();
      if (LookSymbol("/>")) {
        ConsumeSymbol("/>");
        node->span = SpanFrom(ctor_start);
        return node;
      }
      if (LookSymbol(">")) {
        ConsumeSymbol(">");
        break;
      }
      ConstructorAttr attr;
      MCT_ASSIGN_OR_RETURN(attr.name, ParseName());
      if (!ConsumeSymbol("=")) return Err("expected '=' in constructor attr");
      MCT_ASSIGN_OR_RETURN(attr.value, ParseStringLiteral());
      node->attrs.push_back(std::move(attr));
    }
    // Content: literal text, nested constructors, enclosed expressions.
    std::string text;
    auto flush_text = [&]() {
      std::string trimmed(StripWhitespace(text));
      if (!trimmed.empty()) {
        auto t = std::make_unique<Expr>(Expr::Kind::kText);
        t->str = trimmed;
        node->children.push_back(std::move(t));
      }
      text.clear();
    };
    while (true) {
      if (AtEnd()) return Err("unterminated constructor <" + node->tag + ">");
      if (Peek() == '<' && Peek(1) == '/') {
        flush_text();
        pos_ += 2;
        MCT_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != node->tag) {
          return Err("mismatched </" + close + "> for <" + node->tag + ">");
        }
        if (!ConsumeSymbol(">")) return Err("expected '>'");
        node->span = SpanFrom(ctor_start);
        return node;
      }
      if (Peek() == '<') {
        flush_text();
        MCT_ASSIGN_OR_RETURN(ExprPtr child, ParseElementConstructor());
        node->children.push_back(std::move(child));
        continue;
      }
      if (Peek() == '{') {
        flush_text();
        ++pos_;
        MCT_ASSIGN_OR_RETURN(ExprPtr enclosed, ParseEnclosedSequence());
        if (!ConsumeSymbol("}")) return Err("expected '}'");
        node->children.push_back(std::move(enclosed));
        continue;
      }
      text.push_back(Peek());
      ++pos_;
    }
  }

  Result<ExprPtr> ParseEnclosedSequence() {
    MCT_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    SkipWs();
    if (!LookSymbol(",")) return first;
    auto seq = std::make_unique<Expr>(Expr::Kind::kSequence);
    seq->children.push_back(std::move(first));
    while (ConsumeSymbol(",")) {
      MCT_ASSIGN_OR_RETURN(ExprPtr next, ParseExpr());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  // ---- Updates ----

  Status ParseUpdateTail(ParsedQuery* q) {
    SkipWs();
    const size_t target_start = pos_;
    MCT_ASSIGN_OR_RETURN(q->target_var, ParseVar());
    q->target_span = SpanFrom(target_start);
    if (!ConsumeSymbol("{")) return Err("expected '{' after update target");
    do {
      SkipWs();
      const size_t action_start = pos_;
      UpdateAction action;
      if (ConsumeKeyword("insert")) {
        action.kind = UpdateAction::Kind::kInsert;
        SkipWs();
        MCT_ASSIGN_OR_RETURN(action.constructor, ParseElementConstructor());
        if (ConsumeKeyword("into")) {
          if (!ConsumeSymbol("{")) return Err("expected '{color}'");
          MCT_ASSIGN_OR_RETURN(action.color, ParseName());
          if (!ConsumeSymbol("}")) return Err("expected '}'");
        }
      } else if (ConsumeKeyword("delete")) {
        action.kind = UpdateAction::Kind::kDelete;
        SkipWs();
        if (Peek() == '{') {
          ++pos_;
          MCT_ASSIGN_OR_RETURN(action.color, ParseName());
          if (!ConsumeSymbol("}")) return Err("expected '}'");
          SkipWs();
        }
        if (Peek() != ',' && Peek() != '}') {
          MCT_RETURN_IF_ERROR(
              ParseSteps(&action.selector, /*allow_bare_first=*/true));
        }
      } else if (ConsumeKeyword("replace")) {
        action.kind = UpdateAction::Kind::kReplace;
        MCT_RETURN_IF_ERROR(
            ParseSteps(&action.selector, /*allow_bare_first=*/true));
        if (!ConsumeKeyword("with")) return Err("expected 'with'");
        MCT_ASSIGN_OR_RETURN(action.new_value, ParseStringLiteral());
      } else {
        return Err("expected insert/delete/replace");
      }
      action.span = SpanFrom(action_start);
      q->actions.push_back(std::move(action));
    } while (ConsumeSymbol(","));
    if (!ConsumeSymbol("}")) return Err("expected '}' after update actions");
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> Parse(std::string_view text) {
  Parser p(text);
  return p.ParseStatement();
}

}  // namespace mct::mcx

// MCXQuery evaluator.
//
// Executes parsed MCXQuery statements against an MctDatabase through the
// physical operators of src/query. Planning follows the paper's methodology
// (Section 6.2: plans were chosen by hand to be the best; ours uses the
// equivalent deterministic heuristics):
//
//  * each for-binding's colored path compiles to TagScan + structural
//    join steps, with a CrossTreeJoin inserted at every color transition
//    between consecutive steps;
//  * where-clause conjuncts that equate values across two bound variables
//    become hash value joins (IdrefsJoin for contains(list, id) shapes);
//    inequality conjuncts become nested-loop joins; conjuncts over a single
//    variable become selections;
//  * `[. = $x]` correlations become node-identity joins.
//
// Constructor expressions create new free nodes whose parent/child edges
// stay *pending* until createColor attaches the fragment to a colored tree
// — at which point a node occurring twice in one tree raises the paper's
// dynamic error. Enclosed expressions preserve node identity; createCopy
// makes fresh deep copies.

#ifndef COLORFUL_XML_MCX_EVALUATOR_H_
#define COLORFUL_XML_MCX_EVALUATOR_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/governor.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "mct/database.h"
#include "mcx/analysis.h"
#include "mcx/ast.h"
#include "mcx/color_flow.h"
#include "query/ops.h"
#include "query/planner.h"
#include "query/table.h"

namespace mct {
class WalWriter;
}

namespace mct::mcx {

/// One item of an XQuery result sequence: a node or an atomic value.
struct Item {
  bool is_node = false;
  NodeId node = kInvalidNodeId;
  std::string atomic;

  static Item OfNode(NodeId n) {
    Item i;
    i.is_node = true;
    i.node = n;
    return i;
  }
  static Item OfAtomic(std::string v) {
    Item i;
    i.atomic = std::move(v);
    return i;
  }
};

struct QueryResult {
  std::vector<Item> items;
  /// For update statements: number of nodes inserted/deleted/replaced.
  uint64_t updated_count = 0;
};

/// Static-analysis gate applied by Evaluator::Run before execution.
enum class AnalyzeMode {
  kOff,     // no analysis
  kWarn,    // analyze, report via EvalOptions::check, never block
  kStrict,  // additionally reject statements with errors (StaticError)
};

struct EvalOptions {
  /// Color used by steps without an explicit {color} — the single color of
  /// a shallow/deep database, or any default for MCT dialect queries (which
  /// normally specify every color).
  ColorId default_color = 0;
  /// Schema-aware static analysis (analysis.h) between parse and
  /// evaluation.
  AnalyzeMode analyze = AnalyzeMode::kOff;
  /// Schema the analyzer checks against. Null infers one from the database
  /// on first analyzed statement and caches it for the Evaluator's lifetime
  /// (re-create the Evaluator, or pass a schema, after bulk loads).
  const serialize::MctSchema* schema = nullptr;
  /// When set, each analyzed statement's report (the EXPLAIN CHECK payload)
  /// is stored here, including when strict mode rejects the statement.
  AnalysisReport* check = nullptr;
  query::ExecStats* stats = nullptr;
  /// When set, the evaluator appends one line per physical operator it
  /// executes (EXPLAIN ANALYZE-style plan trace).
  std::vector<std::string>* plan = nullptr;
  /// When set, the evaluator records a structured per-operator trace tree
  /// (rows, morsels, wall time, color transitions) into this sink; render
  /// it with QueryTrace::ToText()/ToJson(). Null disables recording at one
  /// branch per operator.
  query::QueryTrace* trace = nullptr;
  /// Total execution threads: 1 = serial (default, no pool is created),
  /// 0 = hardware concurrency, N = exactly N including the caller.
  int num_threads = 1;
  /// Rows per morsel for parallel operators; inputs at or below this size
  /// run serially regardless of num_threads.
  size_t morsel_size = 1024;
  /// Vectorized (batch) operator execution (ExecContext::batch). false
  /// routes the physical operators through their retained row-at-a-time
  /// paths — the pre-columnar cost profile — for A/B measurement; results
  /// are identical either way.
  bool vectorized = true;
  /// When set, every successfully applied update statement is appended to
  /// this write-ahead log as a logical redo record (canonical statement
  /// text, replayable by RecoverDatabase) before Run returns.
  WalWriter* wal = nullptr;
  /// Fsync the WAL after each logged statement. Batch loaders set this
  /// false and call WalWriter::Sync() once per batch (group commit); the
  /// statements in the unsynced window are then atomically all-or-prefix
  /// on a crash.
  bool wal_sync_each = true;
  /// Cost-based physical planning (query/planner.h). Each statement is
  /// compiled to a logical plan IR, costed against live statistics plus
  /// color-flow cardinality estimates, and the chosen access methods
  /// (scan shortcut / index seek pushdown / navigational descendant /
  /// path-stack spine / predicate reordering / cross-tree elision) are
  /// applied. Every planned execution is result-identical to the fixed
  /// pipeline: each alternative re-validates its preconditions at runtime
  /// and falls back to the baseline operator otherwise.
  bool planner = false;
  /// Normalized-statement plan cache consulted by Run(text) when `planner`
  /// is set: exact-text hits skip parse + plan, literal-normalized hits
  /// skip planning. Share one cache across evaluators over the same
  /// database; it is invalidated automatically after any applied update.
  query::PlanCache* plan_cache = nullptr;
  /// Epoch stamp for plan-cache entries (MVCC snapshot sessions). 0 = the
  /// embedded single-version mode: entries are unstamped and any applied
  /// update blanket-invalidates the cache. Non-zero = the session's pinned
  /// epoch: entries are stamped with it for recency-based pruning and
  /// updates do NOT invalidate — sharing plans across epochs is sound
  /// because plans are result-identical by construction, so commit
  /// publication needs no cache barrier.
  uint64_t cache_epoch = 0;
  /// Resource governor inputs (common/governor.h, DESIGN.md §15). When any
  /// is set the Evaluator constructs a per-statement ResourceGovernor and
  /// carries it on ExecContext: every physical operator and evaluator loop
  /// checks it at morsel/batch boundaries, and large materializations are
  /// charged to the budget. All unset (the default) costs one null check
  /// per operator — the QueryTrace discipline.
  ///
  /// Cross-thread cancellation flag; may be raised at any time by another
  /// thread (e.g. serve::Session::Cancel). Checked cooperatively; a trip
  /// surfaces as Status::Cancelled with no side effects for updates.
  CancelToken* cancel_token = nullptr;
  /// Monotonic wall-clock deadline; execution past it fails with
  /// Status::DeadlineExceeded within roughly one morsel of work.
  std::optional<std::chrono::steady_clock::time_point> deadline = std::nullopt;
  /// Byte budget for this statement's materializations (columnar emit
  /// buffers, join scratch); refusal fails with Status::ResourceExhausted.
  /// Chain the budget to a process-wide parent to cap total pressure.
  MemoryBudget* memory_budget = nullptr;
  /// Session color visibility mask (secure color views, DESIGN.md §16).
  /// Inactive (the default) costs nothing. Active masks are enforced at
  /// three layers: the MCX2xx visibility analysis runs on every statement
  /// (even with analyze == kOff), the planner prunes masked steps, and the
  /// evaluator empties every step, navigation, serialization and update
  /// that would touch a read-invisible color.
  ColorMask mask = {};
  /// Gate for MCX2xx findings when `mask` is active: kStrict (default)
  /// rejects violating statements with Status::PermissionDenied before any
  /// side effect; kWarn (or kOff) admits them and relies on the evaluator
  /// layer to filter — results then silently exclude invisible nodes.
  AnalyzeMode mask_enforcement = AnalyzeMode::kStrict;
};

class Evaluator {
 public:
  Evaluator(MctDatabase* db, EvalOptions opts)
      : db_(db),
        opts_(opts),
        pool_(opts.num_threads != 1
                  ? std::make_unique<ThreadPool>(opts.num_threads)
                  : nullptr),
        exec_(opts.stats, pool_.get(), opts.morsel_size, opts.trace) {
    exec_.batch = opts.vectorized;
    if (opts_.cancel_token != nullptr || opts_.deadline.has_value() ||
        opts_.memory_budget != nullptr) {
      governor_ = std::make_unique<ResourceGovernor>(
          opts_.cancel_token, opts_.deadline, opts_.memory_budget);
      exec_.governor = governor_.get();
    }
    if (opts_.mask.active) exec_.mask = &opts_.mask;
  }

  /// Runs a query or update.
  Result<QueryResult> Run(const ParsedQuery& q);

  /// Convenience: parse + run. With EvalOptions::planner and a plan_cache,
  /// repeated statement texts skip parse + plan entirely.
  Result<QueryResult> Run(std::string_view text);

  /// What PlanCache stores per exact statement text: the parsed form and
  /// the chosen plan, reusable as long as the database is not updated.
  struct CachedStatement {
    ParsedQuery query;
    query::StatementPlan plan;
  };

  /// Plans `q` against live database statistics and color-flow estimates.
  /// Pure (does not execute); returns an empty plan for statements with no
  /// FLWOR bindings.
  query::StatementPlan PlanFor(const ParsedQuery& q);

  /// Serializes result items to XML text; node items are rendered with
  /// their subtree in `color`.
  std::string ToXml(const QueryResult& r, ColorId color);

 private:
  // Column metadata alongside query::Table.
  struct ColumnInfo {
    ColorId color = 0;    // color the node was reached in
    bool atomic = false;  // column carries values, not node identity
                          // (distinct-values bindings, attribute steps)
    std::string attr;     // when set, the value reads through this attribute
                          // of the stored node; else through its content
  };
  struct Bindings {
    query::Table table;
    std::vector<ColumnInfo> cols;
  };
  // Outer variable environment for correlated nested FLWORs.
  using Env = std::unordered_map<std::string, Item>;

  Result<ColorId> ResolveColor(const std::string& name) const;

  /// Runs static analysis per opts_.analyze; returns StaticError when
  /// strict mode rejects the statement.
  Status MaybeAnalyze(const ParsedQuery& q);

  // FLWOR machinery. `bplan` (when non-null) carries the planner's chosen
  // access methods for this binding's steps; every application re-validates
  // its preconditions and falls back to the baseline pipeline, so a stale
  // or mismatched plan can change performance but never results.
  Result<Bindings> EvalFLWORBindings(const std::vector<Binding>& bindings,
                                     const Expr* where, const Env& env);
  Result<Bindings> EvalSteps(Bindings in, int ctx_col,
                             const std::vector<PathStep>& steps,
                             const std::string& out_var, const Env& env,
                             const query::BindingPlan* bplan = nullptr);
  /// Whole-binding descendant spine via PathStackJoin, with the baseline
  /// row order restored by sorting on the reversed start-label tuple.
  /// Returns nullopt when the runtime shape check fails (caller runs the
  /// step loop as usual).
  Result<std::optional<Bindings>> EvalSpine(const Bindings& in, int ctx_col,
                                            const std::vector<PathStep>& steps,
                                            const std::string& out_var);
  /// Builds the candidate node set for an index-seek pushdown by probing
  /// the content/attribute index with predicate `seek_pred` of `step`.
  /// nullopt when the predicate no longer matches a probe-eligible shape.
  std::optional<std::vector<NodeId>> SeekCandidates(const PathStep& step,
                                                    int seek_pred,
                                                    ColorId step_color);
  Result<Bindings> JoinIn(Bindings left, Bindings right, const Expr* conjunct,
                          const Env& env);
  Status ApplyResidual(Bindings* b, const Expr& conjunct, const Env& env);

  // Scalar/per-row evaluation context: the current binding row (if any),
  // the outer variable environment, and a context node for relative paths.
  struct EvalCtx {
    const Bindings* b = nullptr;
    /// Logical row index into b->table (meaningful only when b != nullptr).
    /// An index, not a materialized row vector: the columnar table resolves
    /// cells through At(), so per-row evaluation never copies a row.
    size_t row = 0;
    const Env* env = nullptr;
    NodeId ctx_node = kInvalidNodeId;
    ColorId ctx_color = 0;
  };

  /// Evaluates any expression to an item sequence (constructors included).
  Result<std::vector<Item>> EvalExpr(const EvalCtx& c, const Expr& e);
  /// Effective boolean value (existential comparison semantics).
  Result<bool> EvalBool(const EvalCtx& c, const Expr& e);
  Result<std::vector<Item>> EvalRelPath(NodeId ctx, ColorId default_color,
                                        const PathExpr& p, const EvalCtx& c);
  /// Reads the value of a bound variable column for a logical row.
  Item ColumnItem(const Bindings& b, size_t row, int col) const;
  std::string Atomize(const Item& item) const;

  Result<std::vector<Item>> EvalFLWOR(const Expr& flwor, const Env& env);

  /// Runs fn(i) for every i in [0, n). Fans out across the worker pool when
  /// one exists, `parallel_ok` holds (the caller proved fn only performs
  /// const reads — see IsPureExpr), and n exceeds one morsel; otherwise runs
  /// serially. fn(i) must write only to its own index's output slot. On
  /// error, the lowest-indexed failure is returned, matching the serial run.
  /// `morsel_override` (when nonzero) replaces opts_.morsel_size — used by
  /// loops whose per-index cost is itself O(rows), like the quadratic
  /// nested-loop compare, where a row-count morsel would be far too coarse.
  Status ForRows(size_t n, bool parallel_ok,
                 const std::function<Status(size_t)>& fn,
                 size_t morsel_override = 0);
  Result<NodeId> DeepCopy(NodeId n);
  Status AttachPending(NodeId node, ColorId color, NodeId parent);

  // Updates.
  Result<QueryResult> RunUpdate(const ParsedQuery& q);

  /// Shared execution body of Run(ParsedQuery): analysis, plan
  /// announcement, dispatch, trace stamping, update-side plan-cache
  /// invalidation. `plan` may be null (baseline pipeline).
  Result<QueryResult> RunPlanned(const ParsedQuery& q,
                                 const query::StatementPlan* plan);
  /// Mirrors the evaluator's per-binding step pipeline into the planner IR
  /// (colors resolved, cross-tree joins, probe-eligible predicates,
  /// color-flow cardinalities).
  std::vector<query::BindingDesc> BuildBindingDescs(
      const std::vector<Binding>& bindings);
  /// Color-flow graph over opts_.schema (or a schema inferred on first
  /// use), cached for the Evaluator's lifetime.
  const ColorFlowGraph* flow_graph();

  /// Appends a plan-trace line when opts_.plan is set.
  void Note(std::string line) {
    if (opts_.plan != nullptr) opts_.plan->push_back(std::move(line));
  }

  void ToXmlRec(NodeId n, ColorId color, std::string* out);

  MctDatabase* db_;
  EvalOptions opts_;
  // Schema inferred from db_ on first analyzed statement (opts_.schema
  // null); cached for the Evaluator's lifetime.
  std::unique_ptr<serialize::MctSchema> inferred_schema_;
  // Color-flow graph for planner cardinality estimates; built lazily over
  // opts_.schema or inferred_schema_.
  std::unique_ptr<ColorFlowGraph> flow_graph_;
  // Plan for the statement currently entering execution; consumed (cleared)
  // by the first EvalFLWORBindings call so nested per-row FLWORs never see
  // the outer statement's plan.
  const query::StatementPlan* active_plan_ = nullptr;
  // Worker pool for morsel-driven execution (null when num_threads == 1);
  // exec_ is the ExecContext handed to every physical operator.
  std::unique_ptr<ThreadPool> pool_;
  // Per-statement resource governor (null when no cancel token, deadline
  // or memory budget was supplied); exec_.governor points at it.
  std::unique_ptr<ResourceGovernor> governor_;
  query::ExecContext exec_;
  // Pending constructed edges: parent -> ordered children, waiting for
  // createColor.
  std::unordered_map<NodeId, std::vector<NodeId>> pending_children_;
};

/// Specification-complexity metrics of Figures 11 and 12.
struct QueryComplexity {
  int num_path_exprs = 0;
  int num_variable_bindings = 0;
};
QueryComplexity AnalyzeComplexity(const ParsedQuery& q);

}  // namespace mct::mcx

#endif  // COLORFUL_XML_MCX_EVALUATOR_H_

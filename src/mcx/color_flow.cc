#include "mcx/color_flow.h"

#include <algorithm>

#include "common/strings.h"

namespace mct::mcx {

namespace {

// Depth cap for transitive closures: recursive productions (movie-genre
// inside movie-genre) would otherwise iterate forever. 64 levels is far
// deeper than any real document hierarchy.
constexpr int kClosureDepth = 64;

double CapEst(double v) {
  return std::min(v, FlowSet::kEstCap);
}

}  // namespace

// ---------------------------------------------------------------------------
// FlowSet
// ---------------------------------------------------------------------------

FlowSet FlowSet::Document(const std::set<std::string>& colors) {
  FlowSet f;
  for (const std::string& c : colors) f.Add(TypeColor{kDocumentType, c}, 1.0);
  return f;
}

void FlowSet::Add(const TypeColor& tc, double est) {
  double& slot = points_[tc];
  slot = CapEst(slot + est);
}

void FlowSet::Join(const FlowSet& other) {
  for (const auto& [tc, est] : other.points_) Add(tc, est);
}

bool FlowSet::ContainsType(const std::string& type) const {
  for (const auto& [tc, _] : points_) {
    if (tc.type == type) return true;
  }
  return false;
}

bool FlowSet::ContainsColor(const std::string& color) const {
  for (const auto& [tc, _] : points_) {
    if (tc.color == color) return true;
  }
  return false;
}

bool FlowSet::IsDocumentOnly() const {
  if (points_.empty()) return false;
  for (const auto& [tc, _] : points_) {
    if (tc.type != kDocumentType) return false;
  }
  return true;
}

double FlowSet::TotalEstimate() const {
  double total = 0;
  for (const auto& [_, est] : points_) total = CapEst(total + est);
  return total;
}

std::vector<std::string> FlowSet::Render() const {
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [tc, _] : points_) {
    out.push_back(tc.type + "@" + tc.color);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ColorFlowGraph
// ---------------------------------------------------------------------------

ColorFlowGraph::ColorFlowGraph(const serialize::MctSchema* schema)
    : schema_(schema) {
  for (const std::string& color : schema->colors()) per_color_[color];
  for (const auto& [name, elem] : schema->elements()) {
    all_types_.insert(name);
    for (const std::string& color : elem.colors) {
      per_color_[color].types.insert(name);
    }
    for (const auto& [color, prod] : elem.productions) {
      Edges& e = per_color_[color];
      for (const serialize::ProductionChild& pc : prod.children) {
        e.children[name].push_back(pc);
        e.parents[pc.elem].push_back(name);
      }
    }
  }
  // Roots: real-colored types never produced as a child in that color. A
  // fully recursive color (every type also appears as a child, e.g. the
  // Figure 8 movie-genre hierarchy) leaves the set empty; fall back to
  // every type of the color rather than declaring the whole color
  // unreachable — the analyzer must over-approximate, never under.
  for (auto& [color, e] : per_color_) {
    for (const std::string& t : e.types) {
      if (!e.parents.contains(t)) e.roots.insert(t);
    }
    if (e.roots.empty()) e.roots = e.types;
  }
}

const ColorFlowGraph::Edges* ColorFlowGraph::EdgesFor(
    const std::string& color) const {
  auto it = per_color_.find(color);
  return it == per_color_.end() ? nullptr : &it->second;
}

bool ColorFlowGraph::KnownColor(const std::string& color) const {
  return per_color_.contains(color);
}

bool ColorFlowGraph::KnownType(const std::string& tag) const {
  return all_types_.contains(tag);
}

FlowSet ColorFlowGraph::Child(const FlowSet& in, const std::string& tag) const {
  FlowSet out;
  for (const auto& [tc, est] : in.points()) {
    const Edges* e = EdgesFor(tc.color);
    if (e == nullptr) continue;
    if (tc.type == kDocumentType) {
      // The document's children in a color are the color's root types.
      for (const std::string& r : e->roots) {
        if (tag.empty() || r == tag) {
          out.Add(TypeColor{r, tc.color},
                  CapEst(est * schema_->Quant(r, tc.color)));
        }
      }
      continue;
    }
    auto cit = e->children.find(tc.type);
    if (cit == e->children.end()) continue;
    for (const serialize::ProductionChild& pc : cit->second) {
      if (tag.empty() || pc.elem == tag) {
        out.Add(TypeColor{pc.elem, tc.color},
                CapEst(est * schema_->Quant(pc.elem, tc.color)));
      }
    }
  }
  return out;
}

FlowSet ColorFlowGraph::Descendant(const FlowSet& in,
                                   const std::string& tag) const {
  // Iterated child expansion: frontier holds every depth's types; matches
  // accumulate at every level. The depth cap bounds recursive productions.
  FlowSet out;
  FlowSet frontier = in;
  for (int depth = 0; depth < kClosureDepth && !frontier.empty(); ++depth) {
    FlowSet next = Child(frontier, "");
    if (!tag.empty()) {
      for (const auto& [tc, est] : next.points()) {
        if (tc.type == tag) out.Add(tc, est);
      }
    } else {
      out.Join(next);
    }
    // Fixpoint check: stop when the frontier no longer discovers new types
    // and estimates have saturated (all capped or stable).
    bool progressed = false;
    for (const auto& [tc, est] : next.points()) {
      auto it = frontier.points().find(tc);
      if (it == frontier.points().end() || it->second < est) {
        progressed = true;
        break;
      }
    }
    frontier = std::move(next);
    if (!progressed && depth > 0) break;
  }
  return out;
}

FlowSet ColorFlowGraph::DescendantOrSelf(const FlowSet& in,
                                         const std::string& tag) const {
  FlowSet out = Descendant(in, tag);
  out.Join(Self(in, tag));
  return out;
}

FlowSet ColorFlowGraph::Parent(const FlowSet& in,
                               const std::string& tag) const {
  FlowSet out;
  for (const auto& [tc, est] : in.points()) {
    if (tc.type == kDocumentType) continue;
    const Edges* e = EdgesFor(tc.color);
    if (e == nullptr) continue;
    // Every node has at most one parent per color, so the parent estimate
    // shrinks by the child slot's quant (expected children per parent).
    double q = std::max(1.0, schema_->Quant(tc.type, tc.color));
    auto pit = e->parents.find(tc.type);
    if (pit == e->parents.end()) continue;
    for (const std::string& p : pit->second) {
      if (tag.empty() || p == tag) out.Add(TypeColor{p, tc.color}, est / q);
    }
  }
  return out;
}

FlowSet ColorFlowGraph::Ancestor(const FlowSet& in,
                                 const std::string& tag) const {
  FlowSet out;
  FlowSet frontier = in;
  for (int depth = 0; depth < kClosureDepth && !frontier.empty(); ++depth) {
    FlowSet next = Parent(frontier, "");
    if (!tag.empty()) {
      for (const auto& [tc, est] : next.points()) {
        if (tc.type == tag) out.Add(tc, est);
      }
    } else {
      out.Join(next);
    }
    bool progressed = false;
    for (const auto& [tc, _] : next.points()) {
      if (!frontier.points().contains(tc)) {
        progressed = true;
        break;
      }
    }
    frontier = std::move(next);
    if (!progressed && depth > 0) break;
  }
  return out;
}

FlowSet ColorFlowGraph::Self(const FlowSet& in, const std::string& tag) const {
  if (tag.empty()) return in;
  FlowSet out;
  for (const auto& [tc, est] : in.points()) {
    if (tc.type == tag) out.Add(tc, est);
  }
  return out;
}

FlowSet ColorFlowGraph::Recolor(const FlowSet& in,
                                const std::string& color) const {
  FlowSet out;
  for (const auto& [tc, est] : in.points()) {
    if (tc.color == color) {
      out.Add(tc, est);
      continue;
    }
    if (tc.type == kDocumentType) {
      // The document carries every color: free transition.
      if (KnownColor(color)) out.Add(TypeColor{kDocumentType, color}, est);
      continue;
    }
    const serialize::ElementType* et = schema_->Find(tc.type);
    if (et != nullptr && et->colors.contains(color)) {
      out.Add(TypeColor{tc.type, color}, est);
    }
  }
  return out;
}

int ColorFlowGraph::MaxOccurs(const FlowSet& in) const {
  int max_occurs = 1;
  for (const auto& [tc, _] : in.points()) {
    const Edges* e = EdgesFor(tc.color);
    if (e == nullptr || tc.type == kDocumentType) return 0;
    auto pit = e->parents.find(tc.type);
    if (pit == e->parents.end()) return 0;  // root type: count unknown
    for (const std::string& p : pit->second) {
      auto cit = e->children.find(p);
      if (cit == e->children.end()) continue;
      for (const serialize::ProductionChild& pc : cit->second) {
        if (pc.elem != tc.type) continue;
        if (pc.quant == '+' || pc.quant == '*') return 0;  // unbounded
      }
    }
  }
  return max_occurs;
}

}  // namespace mct::mcx

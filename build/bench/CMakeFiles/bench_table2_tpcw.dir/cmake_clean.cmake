file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tpcw.dir/bench_table2_tpcw.cc.o"
  "CMakeFiles/bench_table2_tpcw.dir/bench_table2_tpcw.cc.o.d"
  "bench_table2_tpcw"
  "bench_table2_tpcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tpcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

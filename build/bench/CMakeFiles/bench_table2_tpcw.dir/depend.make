# Empty dependencies file for bench_table2_tpcw.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_serialize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_serialize.dir/bench_serialize.cc.o"
  "CMakeFiles/bench_serialize.dir/bench_serialize.cc.o.d"
  "bench_serialize"
  "bench_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig11_fig12_complexity.
# This may be replaced when dependencies are built.

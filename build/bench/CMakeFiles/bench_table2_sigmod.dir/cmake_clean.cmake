file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sigmod.dir/bench_table2_sigmod.cc.o"
  "CMakeFiles/bench_table2_sigmod.dir/bench_table2_sigmod.cc.o.d"
  "bench_table2_sigmod"
  "bench_table2_sigmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sigmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mcx_more_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mcx_more_test.dir/mcx_more_test.cc.o"
  "CMakeFiles/mcx_more_test.dir/mcx_more_test.cc.o.d"
  "mcx_more_test"
  "mcx_more_test.pdb"
  "mcx_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcx_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

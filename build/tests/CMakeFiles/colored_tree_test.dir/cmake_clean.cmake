file(REMOVE_RECURSE
  "CMakeFiles/colored_tree_test.dir/colored_tree_test.cc.o"
  "CMakeFiles/colored_tree_test.dir/colored_tree_test.cc.o.d"
  "colored_tree_test"
  "colored_tree_test.pdb"
  "colored_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colored_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for colored_tree_test.
# This may be replaced when dependencies are built.

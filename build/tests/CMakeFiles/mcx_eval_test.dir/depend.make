# Empty dependencies file for mcx_eval_test.
# This may be replaced when dependencies are built.

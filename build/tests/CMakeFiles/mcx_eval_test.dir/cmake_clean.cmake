file(REMOVE_RECURSE
  "CMakeFiles/mcx_eval_test.dir/mcx_eval_test.cc.o"
  "CMakeFiles/mcx_eval_test.dir/mcx_eval_test.cc.o.d"
  "mcx_eval_test"
  "mcx_eval_test.pdb"
  "mcx_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcx_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

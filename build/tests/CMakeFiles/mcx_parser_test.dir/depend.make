# Empty dependencies file for mcx_parser_test.
# This may be replaced when dependencies are built.

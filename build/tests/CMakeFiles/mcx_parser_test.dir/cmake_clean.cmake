file(REMOVE_RECURSE
  "CMakeFiles/mcx_parser_test.dir/mcx_parser_test.cc.o"
  "CMakeFiles/mcx_parser_test.dir/mcx_parser_test.cc.o.d"
  "mcx_parser_test"
  "mcx_parser_test.pdb"
  "mcx_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcx_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/query_ops_test.dir/query_ops_test.cc.o"
  "CMakeFiles/query_ops_test.dir/query_ops_test.cc.o.d"
  "query_ops_test"
  "query_ops_test.pdb"
  "query_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for query_ops_test.
# This may be replaced when dependencies are built.

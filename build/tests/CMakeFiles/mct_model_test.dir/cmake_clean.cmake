file(REMOVE_RECURSE
  "CMakeFiles/mct_model_test.dir/mct_model_test.cc.o"
  "CMakeFiles/mct_model_test.dir/mct_model_test.cc.o.d"
  "mct_model_test"
  "mct_model_test.pdb"
  "mct_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mct_model_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/bptree_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/mct_model_test[1]_include.cmake")
include("/root/repo/build/tests/query_ops_test[1]_include.cmake")
include("/root/repo/build/tests/mcx_parser_test[1]_include.cmake")
include("/root/repo/build/tests/mcx_eval_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/twig_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_test[1]_include.cmake")
include("/root/repo/build/tests/colored_tree_test[1]_include.cmake")
include("/root/repo/build/tests/mcx_more_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")

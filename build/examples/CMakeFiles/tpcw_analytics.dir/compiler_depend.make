# Empty compiler generated dependencies file for tpcw_analytics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tpcw_analytics.dir/tpcw_analytics.cpp.o"
  "CMakeFiles/tpcw_analytics.dir/tpcw_analytics.cpp.o.d"
  "tpcw_analytics"
  "tpcw_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcw_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

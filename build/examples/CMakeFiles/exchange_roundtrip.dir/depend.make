# Empty dependencies file for exchange_roundtrip.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exchange_roundtrip.dir/exchange_roundtrip.cpp.o"
  "CMakeFiles/exchange_roundtrip.dir/exchange_roundtrip.cpp.o.d"
  "exchange_roundtrip"
  "exchange_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mct/colored_tree.cc" "src/mct/CMakeFiles/mct_core.dir/colored_tree.cc.o" "gcc" "src/mct/CMakeFiles/mct_core.dir/colored_tree.cc.o.d"
  "/root/repo/src/mct/database.cc" "src/mct/CMakeFiles/mct_core.dir/database.cc.o" "gcc" "src/mct/CMakeFiles/mct_core.dir/database.cc.o.d"
  "/root/repo/src/mct/node_store.cc" "src/mct/CMakeFiles/mct_core.dir/node_store.cc.o" "gcc" "src/mct/CMakeFiles/mct_core.dir/node_store.cc.o.d"
  "/root/repo/src/mct/snapshot.cc" "src/mct/CMakeFiles/mct_core.dir/snapshot.cc.o" "gcc" "src/mct/CMakeFiles/mct_core.dir/snapshot.cc.o.d"
  "/root/repo/src/mct/validate.cc" "src/mct/CMakeFiles/mct_core.dir/validate.cc.o" "gcc" "src/mct/CMakeFiles/mct_core.dir/validate.cc.o.d"
  "/root/repo/src/mct/xml_load.cc" "src/mct/CMakeFiles/mct_core.dir/xml_load.cc.o" "gcc" "src/mct/CMakeFiles/mct_core.dir/xml_load.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mct_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mct_index.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mct_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mct_core.
# This may be replaced when dependencies are built.

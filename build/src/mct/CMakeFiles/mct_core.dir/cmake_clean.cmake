file(REMOVE_RECURSE
  "CMakeFiles/mct_core.dir/colored_tree.cc.o"
  "CMakeFiles/mct_core.dir/colored_tree.cc.o.d"
  "CMakeFiles/mct_core.dir/database.cc.o"
  "CMakeFiles/mct_core.dir/database.cc.o.d"
  "CMakeFiles/mct_core.dir/node_store.cc.o"
  "CMakeFiles/mct_core.dir/node_store.cc.o.d"
  "CMakeFiles/mct_core.dir/snapshot.cc.o"
  "CMakeFiles/mct_core.dir/snapshot.cc.o.d"
  "CMakeFiles/mct_core.dir/validate.cc.o"
  "CMakeFiles/mct_core.dir/validate.cc.o.d"
  "CMakeFiles/mct_core.dir/xml_load.cc.o"
  "CMakeFiles/mct_core.dir/xml_load.cc.o.d"
  "libmct_core.a"
  "libmct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmct_core.a"
)

file(REMOVE_RECURSE
  "libmct_query.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mct_query.dir/ops.cc.o"
  "CMakeFiles/mct_query.dir/ops.cc.o.d"
  "CMakeFiles/mct_query.dir/twig.cc.o"
  "CMakeFiles/mct_query.dir/twig.cc.o.d"
  "libmct_query.a"
  "libmct_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

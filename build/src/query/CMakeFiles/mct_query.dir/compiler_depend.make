# Empty compiler generated dependencies file for mct_query.
# This may be replaced when dependencies are built.

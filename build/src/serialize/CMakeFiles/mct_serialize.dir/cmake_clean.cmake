file(REMOVE_RECURSE
  "CMakeFiles/mct_serialize.dir/exchange.cc.o"
  "CMakeFiles/mct_serialize.dir/exchange.cc.o.d"
  "CMakeFiles/mct_serialize.dir/opt_serialize.cc.o"
  "CMakeFiles/mct_serialize.dir/opt_serialize.cc.o.d"
  "CMakeFiles/mct_serialize.dir/schema.cc.o"
  "CMakeFiles/mct_serialize.dir/schema.cc.o.d"
  "libmct_serialize.a"
  "libmct_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

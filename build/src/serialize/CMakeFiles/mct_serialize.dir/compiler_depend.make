# Empty compiler generated dependencies file for mct_serialize.
# This may be replaced when dependencies are built.

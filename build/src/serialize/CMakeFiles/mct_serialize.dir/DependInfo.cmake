
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serialize/exchange.cc" "src/serialize/CMakeFiles/mct_serialize.dir/exchange.cc.o" "gcc" "src/serialize/CMakeFiles/mct_serialize.dir/exchange.cc.o.d"
  "/root/repo/src/serialize/opt_serialize.cc" "src/serialize/CMakeFiles/mct_serialize.dir/opt_serialize.cc.o" "gcc" "src/serialize/CMakeFiles/mct_serialize.dir/opt_serialize.cc.o.d"
  "/root/repo/src/serialize/schema.cc" "src/serialize/CMakeFiles/mct_serialize.dir/schema.cc.o" "gcc" "src/serialize/CMakeFiles/mct_serialize.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mct/CMakeFiles/mct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mct_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mct_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mct_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmct_serialize.a"
)

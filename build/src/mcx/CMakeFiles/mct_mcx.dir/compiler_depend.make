# Empty compiler generated dependencies file for mct_mcx.
# This may be replaced when dependencies are built.

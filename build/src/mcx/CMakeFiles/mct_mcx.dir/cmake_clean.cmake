file(REMOVE_RECURSE
  "CMakeFiles/mct_mcx.dir/evaluator.cc.o"
  "CMakeFiles/mct_mcx.dir/evaluator.cc.o.d"
  "CMakeFiles/mct_mcx.dir/parser.cc.o"
  "CMakeFiles/mct_mcx.dir/parser.cc.o.d"
  "CMakeFiles/mct_mcx.dir/printer.cc.o"
  "CMakeFiles/mct_mcx.dir/printer.cc.o.d"
  "libmct_mcx.a"
  "libmct_mcx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_mcx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

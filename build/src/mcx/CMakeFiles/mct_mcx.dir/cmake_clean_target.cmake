file(REMOVE_RECURSE
  "libmct_mcx.a"
)

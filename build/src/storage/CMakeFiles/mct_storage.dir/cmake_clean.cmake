file(REMOVE_RECURSE
  "CMakeFiles/mct_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/mct_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/mct_storage.dir/disk_manager.cc.o"
  "CMakeFiles/mct_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/mct_storage.dir/record_file.cc.o"
  "CMakeFiles/mct_storage.dir/record_file.cc.o.d"
  "CMakeFiles/mct_storage.dir/slotted_file.cc.o"
  "CMakeFiles/mct_storage.dir/slotted_file.cc.o.d"
  "libmct_storage.a"
  "libmct_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

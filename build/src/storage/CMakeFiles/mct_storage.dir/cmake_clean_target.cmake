file(REMOVE_RECURSE
  "libmct_storage.a"
)

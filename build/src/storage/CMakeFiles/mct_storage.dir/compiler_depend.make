# Empty compiler generated dependencies file for mct_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mct_xml.dir/dom.cc.o"
  "CMakeFiles/mct_xml.dir/dom.cc.o.d"
  "CMakeFiles/mct_xml.dir/escape.cc.o"
  "CMakeFiles/mct_xml.dir/escape.cc.o.d"
  "CMakeFiles/mct_xml.dir/parser.cc.o"
  "CMakeFiles/mct_xml.dir/parser.cc.o.d"
  "CMakeFiles/mct_xml.dir/writer.cc.o"
  "CMakeFiles/mct_xml.dir/writer.cc.o.d"
  "libmct_xml.a"
  "libmct_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

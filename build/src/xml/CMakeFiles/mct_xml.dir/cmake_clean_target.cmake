file(REMOVE_RECURSE
  "libmct_xml.a"
)

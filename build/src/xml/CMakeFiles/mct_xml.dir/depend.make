# Empty dependencies file for mct_xml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mct_common.dir/rng.cc.o"
  "CMakeFiles/mct_common.dir/rng.cc.o.d"
  "CMakeFiles/mct_common.dir/status.cc.o"
  "CMakeFiles/mct_common.dir/status.cc.o.d"
  "CMakeFiles/mct_common.dir/strings.cc.o"
  "CMakeFiles/mct_common.dir/strings.cc.o.d"
  "libmct_common.a"
  "libmct_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mct_index.dir/bptree.cc.o"
  "CMakeFiles/mct_index.dir/bptree.cc.o.d"
  "libmct_index.a"
  "libmct_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

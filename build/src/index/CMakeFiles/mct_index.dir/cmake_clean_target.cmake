file(REMOVE_RECURSE
  "libmct_index.a"
)

# Empty dependencies file for mct_index.
# This may be replaced when dependencies are built.

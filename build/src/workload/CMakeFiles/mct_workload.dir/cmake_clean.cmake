file(REMOVE_RECURSE
  "CMakeFiles/mct_workload.dir/runner.cc.o"
  "CMakeFiles/mct_workload.dir/runner.cc.o.d"
  "CMakeFiles/mct_workload.dir/sigmod_catalog.cc.o"
  "CMakeFiles/mct_workload.dir/sigmod_catalog.cc.o.d"
  "CMakeFiles/mct_workload.dir/sigmodr_db.cc.o"
  "CMakeFiles/mct_workload.dir/sigmodr_db.cc.o.d"
  "CMakeFiles/mct_workload.dir/tpcw_catalog.cc.o"
  "CMakeFiles/mct_workload.dir/tpcw_catalog.cc.o.d"
  "CMakeFiles/mct_workload.dir/tpcw_data.cc.o"
  "CMakeFiles/mct_workload.dir/tpcw_data.cc.o.d"
  "CMakeFiles/mct_workload.dir/tpcw_db.cc.o"
  "CMakeFiles/mct_workload.dir/tpcw_db.cc.o.d"
  "libmct_workload.a"
  "libmct_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mct_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

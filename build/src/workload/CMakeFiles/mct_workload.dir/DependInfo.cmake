
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/runner.cc" "src/workload/CMakeFiles/mct_workload.dir/runner.cc.o" "gcc" "src/workload/CMakeFiles/mct_workload.dir/runner.cc.o.d"
  "/root/repo/src/workload/sigmod_catalog.cc" "src/workload/CMakeFiles/mct_workload.dir/sigmod_catalog.cc.o" "gcc" "src/workload/CMakeFiles/mct_workload.dir/sigmod_catalog.cc.o.d"
  "/root/repo/src/workload/sigmodr_db.cc" "src/workload/CMakeFiles/mct_workload.dir/sigmodr_db.cc.o" "gcc" "src/workload/CMakeFiles/mct_workload.dir/sigmodr_db.cc.o.d"
  "/root/repo/src/workload/tpcw_catalog.cc" "src/workload/CMakeFiles/mct_workload.dir/tpcw_catalog.cc.o" "gcc" "src/workload/CMakeFiles/mct_workload.dir/tpcw_catalog.cc.o.d"
  "/root/repo/src/workload/tpcw_data.cc" "src/workload/CMakeFiles/mct_workload.dir/tpcw_data.cc.o" "gcc" "src/workload/CMakeFiles/mct_workload.dir/tpcw_data.cc.o.d"
  "/root/repo/src/workload/tpcw_db.cc" "src/workload/CMakeFiles/mct_workload.dir/tpcw_db.cc.o" "gcc" "src/workload/CMakeFiles/mct_workload.dir/tpcw_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mct/CMakeFiles/mct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/mct_query.dir/DependInfo.cmake"
  "/root/repo/build/src/mcx/CMakeFiles/mct_mcx.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mct_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mct_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/mct_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

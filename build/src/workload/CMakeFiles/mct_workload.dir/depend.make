# Empty dependencies file for mct_workload.
# This may be replaced when dependencies are built.

// Evaluator tests: the paper's Figure 3 queries Q1-Q5 run verbatim against
// the Figure 2 movie database fixture.

#include <gtest/gtest.h>

#include <set>

#include "mcx/evaluator.h"
#include "mcx/parser.h"
#include "movie_fixture.h"

namespace mct::mcx {
namespace {

using testfix::BuildMovieDb;
using testfix::MovieDb;

QueryResult MustRun(Evaluator& ev, const std::string& text) {
  auto r = ev.Run(text);
  EXPECT_TRUE(r.ok()) << r.status() << "\nquery: " << text;
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

std::set<NodeId> NodeSet(const QueryResult& r) {
  std::set<NodeId> out;
  for (const Item& i : r.items) {
    if (i.is_node) out.insert(i.node);
  }
  return out;
}

TEST(EvalTest, SimplePathQuery) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev, "for $m in document(\"mdb.xml\")/{red}descendant::movie return $m");
  EXPECT_EQ(NodeSet(r),
            (std::set<NodeId>{f.movie_eve, f.movie_lights, f.movie_sunset}));
}

TEST(EvalTest, PredicateOnChildContent) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $g in document(\"mdb.xml\")/{red}descendant::movie-genre"
      "[{red}child::name = \"Comedy\"] return $g");
  EXPECT_EQ(NodeSet(r), (std::set<NodeId>{f.genre_comedy}));
}

// ---- Figure 3, Q1: comedy movies whose title contains "Eve". ----
TEST(EvalTest, PaperQ1) {
  MovieDb f = BuildMovieDb();
  query::ExecStats stats;
  Evaluator ev(f.db.get(), EvalOptions{.default_color = 0, .stats = &stats});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"mdb.xml\")/{red}descendant::movie-genre"
      "[{red}child::name = \"Comedy\"]/"
      "{red}descendant::movie[contains({red}child::name, \"Eve\")] "
      "return createColor(black, <m-name> { $m/{red}child::name } "
      "</m-name>)");
  ASSERT_EQ(r.items.size(), 1u);
  NodeId mname = r.items[0].node;
  EXPECT_EQ(f.db->Tag(mname), "m-name");
  // The enclosed expression retained the identity of Eve's name node
  // (paper: "the result ... would contain the node with identity RG015").
  ColorId black = f.db->LookupColor("black");
  ASSERT_NE(black, kInvalidColorId);
  auto kids = f.db->Children(mname, black);
  ASSERT_EQ(kids.size(), 1u);
  NodeId eve_name = f.db->Children(f.movie_eve, f.red)[0];
  EXPECT_EQ(kids[0], eve_name);
  EXPECT_TRUE(f.db->Colors(eve_name).Has(black));
  EXPECT_TRUE(f.db->Colors(eve_name).Has(f.red));    // keeps old colors
  EXPECT_TRUE(f.db->Colors(eve_name).Has(f.green));
  // Q1 is single-colored: no cross-tree joins.
  EXPECT_EQ(stats.cross_tree_joins, 0u);
}

// ---- Figure 3, Q2: comedy movies with "Eve" nominated for an Oscar. ----
TEST(EvalTest, PaperQ2) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"mdb.xml\")/{red}descendant::movie-genre"
      "[{red}child::name = \"Comedy\"]/"
      "{red}descendant::movie[contains({red}child::name, \"Eve\")], "
      "$m in document(\"mdb.xml\")/{green}descendant::movie-award"
      "[contains({green}child::name, \"Oscar\")]/"
      "{green}descendant::movie "
      "return createColor(black, <m-name> { $m/{red}child::name } "
      "</m-name>)");
  ASSERT_EQ(r.items.size(), 1u);
  Evaluator ev2(f.db.get(), EvalOptions{});
  std::string xml = ev2.ToXml(r, f.db->LookupColor("black"));
  EXPECT_EQ(xml, "<m-name><name>All About Eve</name></m-name>\n");
}

// Q2 with a non-Oscar-nominated pattern: Lights is a comedy but not green.
TEST(EvalTest, PaperQ2NoNominationNoResult) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"mdb.xml\")/{red}descendant::movie-genre"
      "[{red}child::name = \"Comedy\"]/"
      "{red}descendant::movie[contains({red}child::name, \"Lights\")], "
      "$m in document(\"mdb.xml\")/{green}descendant::movie-award"
      "[contains({green}child::name, \"Oscar\")]/"
      "{green}descendant::movie "
      "return $m");
  EXPECT_TRUE(r.items.empty());
}

// ---- Figure 3, Q3: comedy movies nominated for an Oscar, with Bette
// Davis. ----
TEST(EvalTest, PaperQ3) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"mdb.xml\")/{green}descendant::movie-award"
      "[contains({green}child::name, \"Oscar\")]/"
      "{green}descendant::movie, "
      "$r in document(\"mdb.xml\")/{red}descendant::movie-genre"
      "[{red}child::name = \"Comedy\"]/"
      "{red}descendant::movie[. = $m]/{red}child::movie-role, "
      "$r in document(\"mdb.xml\")/{blue}descendant::actor"
      "[{blue}child::name = \"Bette Davis\"]/{blue}child::movie-role "
      "return createColor(black, <m-name> { $m/{red}child::name } "
      "</m-name>)");
  ASSERT_EQ(r.items.size(), 1u);
  ColorId black = f.db->LookupColor("black");
  NodeId eve_name = f.db->Children(f.movie_eve, f.red)[0];
  EXPECT_EQ(f.db->Children(r.items[0].node, black)[0], eve_name);
}

// ---- Figure 3, Q4: actors in Oscar-nominated movies with > 10 votes. ----
TEST(EvalTest, PaperQ4) {
  MovieDb f = BuildMovieDb();
  query::ExecStats stats;
  Evaluator ev(f.db.get(), EvalOptions{.default_color = 0, .stats = &stats});
  QueryResult r = MustRun(
      ev,
      "for $a in document(\"mdb.xml\")/{green}descendant::movie-award"
      "[contains({green}child::name, \"Oscar\")]/"
      "{green}descendant::movie[{green}child::votes > 10]/"
      "{red}child::movie-role/{blue}parent::actor "
      "return createColor(black, <a-name> { $a/{blue}child::name } "
      "</a-name>)");
  ASSERT_EQ(r.items.size(), 1u);
  ColorId black = f.db->LookupColor("black");
  NodeId davis_name = f.db->Children(f.actor_davis, f.blue)[0];
  EXPECT_EQ(f.db->Children(r.items[0].node, black)[0], davis_name);
  // Q4's path crosses green->red and red->blue: two color transitions.
  EXPECT_EQ(stats.cross_tree_joins, 2u);
}

// ---- Figure 3, Q5: Oscar movies grouped by votes. ----
TEST(EvalTest, PaperQ5) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "createColor(black, <byvotes> {"
      " for $v in distinct-values(document(\"mdb.xml\")/"
      "{green}descendant::votes)"
      " order by $v"
      " return <award-byvotes> {"
      "   for $m in document(\"mdb.xml\")/{green}descendant::movie"
      "     [{green}child::votes = $v]"
      "   return $m }"
      "   <votes> { $v } </votes>"
      " </award-byvotes>"
      "} </byvotes>)");
  ASSERT_EQ(r.items.size(), 1u);
  ColorId black = f.db->LookupColor("black");
  NodeId byvotes = r.items[0].node;
  EXPECT_EQ(f.db->Tag(byvotes), "byvotes");
  auto groups = f.db->Children(byvotes, black);
  ASSERT_EQ(groups.size(), 2u);  // votes 8 and 14
  // Ascending vote order: Sunset (8) then Eve (14).
  auto g0 = f.db->Children(groups[0], black);
  ASSERT_EQ(g0.size(), 2u);  // movie + votes
  EXPECT_EQ(g0[0], f.movie_sunset);
  EXPECT_EQ(f.db->Tag(g0[1]), "votes");
  EXPECT_EQ(f.db->Content(g0[1]), "8");
  auto g1 = f.db->Children(groups[1], black);
  EXPECT_EQ(g1[0], f.movie_eve);
  EXPECT_EQ(f.db->Content(g1[1]), "14");
  // Paper: "movie nodes now have three colors"; the new votes nodes are
  // black only.
  EXPECT_EQ(f.db->Colors(f.movie_eve).count(), 3);
  EXPECT_EQ(f.db->Colors(g1[1]).count(), 1);
  // The movies' original votes children were NOT recolored.
  NodeId orig_votes = f.db->Children(f.movie_eve, f.green)[1];
  EXPECT_NE(orig_votes, g1[1]);
  EXPECT_FALSE(f.db->Colors(orig_votes).Has(black));
}

// ---- Section 4.2: duplicate node in one colored tree is a dynamic
// error. ----
TEST(EvalTest, DuplicateNodeDynamicError) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  auto r = ev.Run(
      "for $m in document(\"mdb.xml\")/{red}descendant::movie"
      "[contains({red}child::name, \"Eve\")] "
      "return createColor(black, <dupl-problem>"
      "<m1> { $m/{red}child::name } </m1>"
      "<m2> { $m/{red}child::name } </m2>"
      "</dupl-problem>)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDynamicError()) << r.status();
}

TEST(EvalTest, CreateCopyAvoidsDynamicError) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"mdb.xml\")/{red}descendant::movie"
      "[contains({red}child::name, \"Eve\")] "
      "return createColor(black, <dupl-problem>"
      "<m1> { createCopy($m/{red}child::name) } </m1>"
      "<m2> { createCopy($m/{red}child::name) } </m2>"
      "</dupl-problem>)");
  ASSERT_EQ(r.items.size(), 1u);
  ColorId black = f.db->LookupColor("black");
  auto kids = f.db->Children(r.items[0].node, black);
  ASSERT_EQ(kids.size(), 2u);
  NodeId c1 = f.db->Children(kids[0], black)[0];
  NodeId c2 = f.db->Children(kids[1], black)[0];
  EXPECT_NE(c1, c2);  // fresh identities
  EXPECT_EQ(f.db->Content(c1), "All About Eve");
  EXPECT_EQ(f.db->Content(c2), "All About Eve");
  NodeId eve_name = f.db->Children(f.movie_eve, f.red)[0];
  EXPECT_NE(c1, eve_name);
  EXPECT_FALSE(f.db->Colors(eve_name).Has(black));
}

// ---- Value joins (shallow dialect) ----
TEST(EvalTest, ShallowStyleValueJoin) {
  // Single-color database with ID/IDREF links.
  MctDatabase db;
  ColorId doc = *db.RegisterColor("doc");
  NodeId root = *db.CreateElement(doc, db.document(), "db");
  NodeId g1 = *db.CreateElement(doc, root, "genre");
  ASSERT_TRUE(db.SetAttr(g1, "id", "g1").ok());
  ASSERT_TRUE(db.SetContent(*db.CreateElement(doc, g1, "name"), "Comedy").ok());
  NodeId g2 = *db.CreateElement(doc, root, "genre");
  ASSERT_TRUE(db.SetAttr(g2, "id", "g2").ok());
  ASSERT_TRUE(db.SetContent(*db.CreateElement(doc, g2, "name"), "Drama").ok());
  for (int i = 0; i < 6; ++i) {
    NodeId m = *db.CreateElement(doc, root, "movie");
    ASSERT_TRUE(db.SetAttr(m, "genreIdRef", i % 2 == 0 ? "g1" : "g2").ok());
    ASSERT_TRUE(db.SetContent(*db.CreateElement(doc, m, "name"),
                              "m" + std::to_string(i))
                    .ok());
  }
  query::ExecStats stats;
  Evaluator ev(&db, EvalOptions{.default_color = doc, .stats = &stats});
  QueryResult r = MustRun(
      ev,
      "for $g in document(\"d\")//genre[name = \"Comedy\"], "
      "$m in document(\"d\")//movie "
      "where $g/@id = $m/@genreIdRef "
      "return $m");
  EXPECT_EQ(r.items.size(), 3u);
  EXPECT_EQ(stats.value_joins, 1u);  // planner picked the hash join
}

TEST(EvalTest, IdrefsListJoin) {
  MctDatabase db;
  ColorId doc = *db.RegisterColor("doc");
  NodeId root = *db.CreateElement(doc, db.document(), "db");
  NodeId m = *db.CreateElement(doc, root, "movie");
  ASSERT_TRUE(db.SetAttr(m, "roleIdRefs", "r1 r3").ok());
  for (const char* rid : {"r1", "r2", "r3"}) {
    NodeId r = *db.CreateElement(doc, root, "movie-role");
    ASSERT_TRUE(db.SetAttr(r, "id", rid).ok());
  }
  Evaluator ev(&db, EvalOptions{.default_color = doc});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"d\")//movie, $r in document(\"d\")//movie-role "
      "where contains($m/@roleIdRefs, $r/@id) "
      "return $r");
  EXPECT_EQ(r.items.size(), 2u);
}

TEST(EvalTest, InequalityJoinNestedLoop) {
  MovieDb f = BuildMovieDb();
  query::ExecStats stats;
  Evaluator ev(f.db.get(), EvalOptions{.default_color = 0, .stats = &stats});
  QueryResult r = MustRun(
      ev,
      "for $a in document(\"d\")/{green}descendant::movie, "
      "$b in document(\"d\")/{green}descendant::movie "
      "where $a/{green}child::votes > $b/{green}child::votes "
      "return $a");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0].node, f.movie_eve);
  EXPECT_EQ(stats.nested_loop_joins, 1u);
}

TEST(EvalTest, DeepStyleNavigationWithPredicates) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});  // default color red
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"mdb.xml\")//movie-genre[name = \"Comedy\"]"
      "//movie[.//movie-role/name = \"Margo\"] return $m");
  EXPECT_EQ(NodeSet(r), (std::set<NodeId>{f.movie_eve}));
}

TEST(EvalTest, WhereResidualFilter) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"d\")/{green}descendant::movie "
      "where $m/{green}child::votes > 10 "
      "return $m");
  EXPECT_EQ(NodeSet(r), (std::set<NodeId>{f.movie_eve}));
}

TEST(EvalTest, OrderByNameDescending) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"d\")/{red}descendant::movie "
      "order by $m/{red}child::name descending return $m");
  ASSERT_EQ(r.items.size(), 3u);
  EXPECT_EQ(r.items[0].node, f.movie_sunset);  // Sunset > City > All
  EXPECT_EQ(r.items[2].node, f.movie_eve);
}

TEST(EvalTest, CountFunction) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $g in document(\"d\")/{red}descendant::movie-genre"
      "[{red}child::name = \"Comedy\"] "
      "return <c> { count($g/{red}descendant::movie) } </c>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(f.db->Content(r.items[0].node), "2");
}

// ---- Updates ----

TEST(UpdateTest, InsertSubelement) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $a in document(\"d\")/{blue}descendant::actor"
      "[{blue}child::name = \"Bette Davis\"] "
      "update $a { insert <birthDate>1908-04-05</birthDate> into {blue} }");
  EXPECT_EQ(r.updated_count, 1u);
  auto kids = f.db->Children(f.actor_davis, f.blue);
  ASSERT_EQ(kids.size(), 3u);  // name, movie-role, birthDate
  EXPECT_EQ(f.db->Tag(kids.back()), "birthDate");
  EXPECT_EQ(f.db->Content(kids.back()), "1908-04-05");
  // The new node carries only blue.
  EXPECT_EQ(f.db->Colors(kids.back()).count(), 1);
}

TEST(UpdateTest, DeleteSubelement) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"d\")/{green}descendant::movie"
      "[{green}child::votes > 10] "
      "update $m { delete {green} votes }");
  EXPECT_EQ(r.updated_count, 1u);
  auto kids = f.db->Children(f.movie_eve, f.green);
  ASSERT_EQ(kids.size(), 1u);  // name only
  // Sunset (8 votes) untouched.
  EXPECT_EQ(f.db->Children(f.movie_sunset, f.green).size(), 2u);
}

TEST(UpdateTest, ReplaceContent) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"d\")/{green}descendant::movie"
      "[{green}child::name = \"Sunset Boulevard\"] "
      "update $m { replace {green}child::votes with \"9\" }");
  EXPECT_EQ(r.updated_count, 1u);
  NodeId votes = f.db->Children(f.movie_sunset, f.green)[1];
  EXPECT_EQ(f.db->Content(votes), "9");
}

TEST(UpdateTest, UpdateManyTargets) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"d\")/{red}descendant::movie "
      "update $m { insert <reviewed>yes</reviewed> into {red} }");
  EXPECT_EQ(r.updated_count, 3u);
  for (NodeId m : {f.movie_eve, f.movie_lights, f.movie_sunset}) {
    auto kids = f.db->Children(m, f.red);
    EXPECT_EQ(f.db->Tag(kids.back()), "reviewed");
  }
}

TEST(UpdateTest, DeleteNodeEntirelyWhenLastColor) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  NodeId lights_name = f.db->Children(f.movie_lights, f.red)[0];
  QueryResult r = MustRun(
      ev,
      "for $m in document(\"d\")/{red}descendant::movie"
      "[{red}child::name = \"City Lights\"] "
      "update $m { delete }");
  EXPECT_EQ(r.updated_count, 1u);
  EXPECT_FALSE(f.db->store().Exists(f.movie_lights));
  EXPECT_FALSE(f.db->store().Exists(lights_name));
  EXPECT_EQ(f.db->TagScan(f.red, "movie").size(), 2u);
}

TEST(EvalTest, UnknownColorFails) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  auto r = ev.Run(
      "for $m in document(\"d\")/{mauve}descendant::movie return $m");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(EvalTest, UnboundVariableFails) {
  MovieDb f = BuildMovieDb();
  Evaluator ev(f.db.get(), EvalOptions{});
  auto r = ev.Run("for $m in $nope/{red}child::movie return $m");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace mct::mcx

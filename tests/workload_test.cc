// Workload integration tests: the generators produce consistent logical
// data in all three physical schemas, and — the central correctness
// property of the reproduction — every catalog read query returns the same
// multiset of values on the MCT, shallow and deep databases.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workload/catalog.h"
#include "workload/runner.h"
#include "workload/sigmodr_db.h"
#include "workload/tpcw_db.h"

namespace mct::workload {
namespace {

TEST(TpcwDataTest, DeterministicAndConsistent) {
  TpcwScale scale = TpcwScale::Tiny();
  TpcwData a = GenerateTpcw(scale);
  TpcwData b = GenerateTpcw(scale);
  ASSERT_EQ(a.orderlines.size(), b.orderlines.size());
  for (size_t i = 0; i < a.orderlines.size(); ++i) {
    EXPECT_EQ(a.orderlines[i].item_id, b.orderlines[i].item_id);
  }
  EXPECT_EQ(a.customers.size(), static_cast<size_t>(scale.num_customers));
  EXPECT_EQ(a.orders.size(), static_cast<size_t>(scale.num_orders));
  // Every order has between min and max orderlines... plus coverage extras.
  EXPECT_GE(a.orderlines.size(),
            static_cast<size_t>(scale.num_orders * scale.min_orderlines));
  // Referential integrity.
  for (const TpcwOrder& o : a.orders) {
    ASSERT_LT(static_cast<size_t>(o.customer_id), a.customers.size());
    ASSERT_LT(static_cast<size_t>(o.bill_addr_id), a.addresses.size());
    ASSERT_LT(static_cast<size_t>(o.ship_addr_id), a.addresses.size());
    ASSERT_LT(static_cast<size_t>(o.date_id), a.dates.size());
  }
  // Every item ordered at least once (deep-schema equivalence invariant).
  std::vector<bool> ordered(a.items.size(), false);
  for (const TpcwOrderLine& ol : a.orderlines) {
    ordered[static_cast<size_t>(ol.item_id)] = true;
  }
  for (bool b2 : ordered) EXPECT_TRUE(b2);
}

TEST(TpcwDataTest, ScaledByGrowsCounts) {
  TpcwScale base = TpcwScale::Tiny();
  TpcwScale big = base.ScaledBy(2.0);
  EXPECT_EQ(big.num_orders, base.num_orders * 2);
  EXPECT_EQ(big.num_items, base.num_items * 2);
}

TEST(TpcwBuildTest, SchemasShareLogicalCounts) {
  TpcwData data = GenerateTpcw(TpcwScale::Tiny());
  auto m = BuildTpcw(data, SchemaKind::kMct);
  auto s = BuildTpcw(data, SchemaKind::kShallow);
  auto dp = BuildTpcw(data, SchemaKind::kDeep);
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(dp.ok()) << dp.status();

  DatabaseStats ms = m->db->Stats();
  DatabaseStats ss = s->db->Stats();
  DatabaseStats ds = dp->db->Stats();
  // Table 1 shape: deep has many more elements than MCT; MCT and shallow
  // are close (paper: identical); MCT stores more structural nodes than
  // elements, deep stores exactly one per element.
  EXPECT_GT(ds.num_elements, ms.num_elements);
  EXPECT_NEAR(static_cast<double>(ms.num_elements),
              static_cast<double>(ss.num_elements),
              static_cast<double>(ss.num_elements) * 0.02);
  EXPECT_GT(ms.num_struct_nodes, ms.num_elements);
  // Data bytes: shallow < MCT < deep (Table 1's ordering).
  EXPECT_LT(ss.data_bytes, ms.data_bytes);
  EXPECT_LT(ms.data_bytes, ds.data_bytes);

  // MCT color sanity: orders in 4 trees, orderlines in 5.
  EXPECT_EQ(m->db->TagScan(m->cust, "order").size(), data.orders.size());
  EXPECT_EQ(m->db->TagScan(m->bill, "order").size(), data.orders.size());
  EXPECT_EQ(m->db->TagScan(m->ship, "order").size(), data.orders.size());
  EXPECT_EQ(m->db->TagScan(m->date, "order").size(), data.orders.size());
  EXPECT_EQ(m->db->TagScan(m->auth, "orderline").size(),
            data.orderlines.size());
  EXPECT_EQ(m->db->TagScan(m->cust, "orderline").size(),
            data.orderlines.size());
}

TEST(SigmodBuildTest, SchemasShareLogicalCounts) {
  SigmodData data = GenerateSigmod(SigmodScale::Tiny());
  auto m = BuildSigmod(data, SchemaKind::kMct);
  auto s = BuildSigmod(data, SchemaKind::kShallow);
  auto dp = BuildSigmod(data, SchemaKind::kDeep);
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(dp.ok()) << dp.status();
  EXPECT_EQ(m->db->TagScan(m->time, "article").size(), data.articles.size());
  EXPECT_EQ(m->db->TagScan(m->topic, "article").size(), data.articles.size());
  EXPECT_EQ(m->db->TagScan(m->topic, "editor").size(), data.editors.size());
  // Deep replicates editors per article.
  EXPECT_EQ(dp->db->TagScan(dp->doc, "editor").size(), data.articles.size());
  DatabaseStats ms = m->db->Stats();
  DatabaseStats ds = dp->db->Stats();
  EXPECT_GT(ds.num_elements, ms.num_elements);
}

// ---- Cross-schema result equivalence: the load-bearing integration test.

std::multiset<std::string> SortedValues(const QueryRun& run) {
  return std::multiset<std::string>(run.values.begin(), run.values.end());
}

class TpcwEquivalence : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new TpcwData(GenerateTpcw(TpcwScale::Tiny()));
    mct_ = new TpcwDb(std::move(BuildTpcw(*data_, SchemaKind::kMct)).value());
    shallow_ = new TpcwDb(std::move(BuildTpcw(*data_, SchemaKind::kShallow)).value());
    deep_ = new TpcwDb(std::move(BuildTpcw(*data_, SchemaKind::kDeep)).value());
  }
  static void TearDownTestSuite() {
    delete mct_;
    delete shallow_;
    delete deep_;
    delete data_;
    mct_ = shallow_ = deep_ = nullptr;
    data_ = nullptr;
  }
  static TpcwData* data_;
  static TpcwDb* mct_;
  static TpcwDb* shallow_;
  static TpcwDb* deep_;
};

TpcwData* TpcwEquivalence::data_ = nullptr;
TpcwDb* TpcwEquivalence::mct_ = nullptr;
TpcwDb* TpcwEquivalence::shallow_ = nullptr;
TpcwDb* TpcwEquivalence::deep_ = nullptr;

TEST_F(TpcwEquivalence, AllReadQueriesAgreeAcrossSchemas) {
  auto catalog = TpcwCatalog(*data_);
  ASSERT_EQ(catalog.size(), 20u);  // 16 reads + 4 updates
  for (const CatalogQuery& q : catalog) {
    if (q.is_update) continue;
    SCOPED_TRACE(q.id + ": " + q.description);
    auto rm = RunQuery(mct_->db.get(), mct_->default_color(), q.mct, true);
    ASSERT_TRUE(rm.ok()) << "MCT: " << rm.status() << "\n" << q.mct;
    auto rs = RunQuery(shallow_->db.get(), shallow_->default_color(),
                       q.shallow, true);
    ASSERT_TRUE(rs.ok()) << "shallow: " << rs.status() << "\n" << q.shallow;
    auto rd = RunQuery(deep_->db.get(), deep_->default_color(), q.deep, true);
    ASSERT_TRUE(rd.ok()) << "deep: " << rd.status() << "\n" << q.deep;
    EXPECT_GT(rm->result_count, 0u) << "query should be satisfiable";
    EXPECT_EQ(SortedValues(*rm), SortedValues(*rs)) << "MCT vs shallow";
    EXPECT_EQ(SortedValues(*rm), SortedValues(*rd)) << "MCT vs deep";
    if (!q.deep_nodup.empty()) {
      auto rdn = RunQuery(deep_->db.get(), deep_->default_color(),
                          q.deep_nodup, true);
      ASSERT_TRUE(rdn.ok()) << rdn.status();
      // The duplicate-free variant returns at least as many rows, and its
      // distinct values match.
      EXPECT_GE(rdn->result_count, rd->result_count);
      std::set<std::string> dn(rdn->values.begin(), rdn->values.end());
      std::set<std::string> dd(rd->values.begin(), rd->values.end());
      EXPECT_EQ(dn, dd);
    }
  }
}

TEST_F(TpcwEquivalence, JoinAnatomyMatchesAnnotations) {
  auto catalog = TpcwCatalog(*data_);
  for (const CatalogQuery& q : catalog) {
    if (q.is_update) continue;
    SCOPED_TRACE(q.id);
    auto rm = RunQuery(mct_->db.get(), mct_->default_color(), q.mct, false);
    ASSERT_TRUE(rm.ok());
    auto rs = RunQuery(shallow_->db.get(), shallow_->default_color(),
                       q.shallow, false);
    ASSERT_TRUE(rs.ok());
    // MCT color crossings = colors - 1 (on the main path; predicates may
    // navigate extra colors without a bulk crossing).
    EXPECT_LE(rm->stats.cross_tree_joins,
              static_cast<uint64_t>(q.colors - 1) + 1)
        << "unexpected crossings";
    // MCT never needs a value join; shallow needs them exactly when the
    // query spans multiple trees.
    EXPECT_EQ(rm->stats.value_joins, 0u);
    if (q.trees > 1) {
      EXPECT_GE(rs->stats.value_joins + rs->stats.nested_loop_joins, 1u)
          << "shallow should have joined";
    } else {
      EXPECT_EQ(rs->stats.value_joins + rs->stats.nested_loop_joins, 0u);
    }
  }
}

TEST_F(TpcwEquivalence, UpdatesAffectSameLogicalElements) {
  // Updates mutate; build fresh databases for this test.
  auto catalog = TpcwCatalog(*data_);
  auto m = BuildTpcw(*data_, SchemaKind::kMct);
  auto s = BuildTpcw(*data_, SchemaKind::kShallow);
  auto dp = BuildTpcw(*data_, SchemaKind::kDeep);
  ASSERT_TRUE(m.ok() && s.ok() && dp.ok());
  for (const CatalogQuery& q : catalog) {
    if (!q.is_update) continue;
    SCOPED_TRACE(q.id + ": " + q.description);
    auto rm = RunQuery(m->db.get(), m->default_color(), q.mct, false);
    ASSERT_TRUE(rm.ok()) << "MCT: " << rm.status() << "\n" << q.mct;
    auto rs = RunQuery(s->db.get(), s->default_color(), q.shallow, false);
    ASSERT_TRUE(rs.ok()) << "shallow: " << rs.status();
    auto rd = RunQuery(dp->db.get(), dp->default_color(), q.deep, false);
    ASSERT_TRUE(rd.ok()) << "deep: " << rd.status();
    EXPECT_GT(rm->result_count, 0u);
    // MCT and shallow store each element once: identical counts. Deep pays
    // one update per replica: at least as many.
    EXPECT_EQ(rm->result_count, rs->result_count);
    EXPECT_GE(rd->result_count, rm->result_count);
  }
}

class SigmodEquivalence : public testing::Test {
 protected:
  void SetUp() override {
    data_ = GenerateSigmod(SigmodScale::Tiny());
    mct_ = std::move(BuildSigmod(data_, SchemaKind::kMct)).value();
    shallow_ = std::move(BuildSigmod(data_, SchemaKind::kShallow)).value();
    deep_ = std::move(BuildSigmod(data_, SchemaKind::kDeep)).value();
  }
  SigmodData data_;
  SigmodDb mct_, shallow_, deep_;
};

TEST_F(SigmodEquivalence, AllReadQueriesAgreeAcrossSchemas) {
  auto catalog = SigmodCatalog(data_);
  ASSERT_EQ(catalog.size(), 7u);  // 5 reads + 2 updates
  for (const CatalogQuery& q : catalog) {
    if (q.is_update) continue;
    SCOPED_TRACE(q.id + ": " + q.description);
    auto rm = RunQuery(mct_.db.get(), mct_.default_color(), q.mct, true);
    ASSERT_TRUE(rm.ok()) << "MCT: " << rm.status() << "\n" << q.mct;
    auto rs =
        RunQuery(shallow_.db.get(), shallow_.default_color(), q.shallow, true);
    ASSERT_TRUE(rs.ok()) << "shallow: " << rs.status();
    auto rd = RunQuery(deep_.db.get(), deep_.default_color(), q.deep, true);
    ASSERT_TRUE(rd.ok()) << "deep: " << rd.status();
    EXPECT_GT(rm->result_count, 0u);
    EXPECT_EQ(SortedValues(*rm), SortedValues(*rs)) << "MCT vs shallow";
    EXPECT_EQ(SortedValues(*rm), SortedValues(*rd)) << "MCT vs deep";
  }
}

TEST_F(SigmodEquivalence, UpdatesAffectSameLogicalElements) {
  auto catalog = SigmodCatalog(data_);
  for (const CatalogQuery& q : catalog) {
    if (!q.is_update) continue;
    SCOPED_TRACE(q.id);
    auto rm = RunQuery(mct_.db.get(), mct_.default_color(), q.mct, false);
    ASSERT_TRUE(rm.ok()) << rm.status() << "\n" << q.mct;
    auto rs =
        RunQuery(shallow_.db.get(), shallow_.default_color(), q.shallow, false);
    ASSERT_TRUE(rs.ok()) << rs.status();
    auto rd = RunQuery(deep_.db.get(), deep_.default_color(), q.deep, false);
    ASSERT_TRUE(rd.ok()) << rd.status();
    EXPECT_EQ(rm->result_count, rs->result_count);
    EXPECT_GE(rd->result_count, rm->result_count);
  }
}

}  // namespace
}  // namespace mct::workload

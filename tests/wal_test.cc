// WAL record format, group fsync, torn-tail repair, the FaultInjectionEnv
// crash model, and the EINTR/short-transfer retry loops under the real
// DiskManager.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "storage/disk_manager.h"
#include "storage/fault_env.h"
#include "storage/file_env.h"
#include "storage/io_util.h"
#include "storage/wal.h"

namespace mct {
namespace {

// ---- CRC32C ----

TEST(Crc32cTest, KnownVectors) {
  // Published Castagnoli vectors (RFC 3720 appendix / LevelDB tests).
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  char zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, 32), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendIsStreaming) {
  const std::string data = "colorful xml one hierarchy isn't enough";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t part = Crc32c(data.data(), split);
    uint32_t whole =
        Crc32cExtend(part, data.data() + split, data.size() - split);
    EXPECT_EQ(whole, Crc32c(data.data(), data.size())) << "split " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipsChangeTheSum) {
  std::string data(256, '\x5A');
  uint32_t good = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size() * 8; i += 13) {
    std::string bad = data;
    bad[i / 8] = static_cast<char>(bad[i / 8] ^ (1 << (i % 8)));
    EXPECT_NE(Crc32c(bad.data(), bad.size()), good) << "bit " << i;
  }
}

// ---- io_util retry loops through the real DiskManager ----

struct HookGuard {
  ~HookGuard() { ClearIoSyscallHooksForTest(); }
};

TEST(IoRetryTest, DiskManagerRetriesEintrAndShortTransfers) {
  std::string path = testing::TempDir() + "/io_retry.db";
  std::filesystem::remove(path);
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::OpenFile(path, &dm).ok());
  PageId p = dm->AllocatePage();

  int eintrs = 0, shorts = 0;
  HookGuard guard;
  IoSyscallHooks hooks;
  // Every call: first two attempts get EINTR, then transfers are capped at
  // 1000 bytes, so an 8K page needs many resumed calls.
  int eintr_budget = 2;
  hooks.pwrite = [&](int fd, const void* buf, size_t n, off_t off) -> ssize_t {
    if (eintr_budget > 0) {
      --eintr_budget;
      ++eintrs;
      errno = EINTR;
      return -1;
    }
    if (n > 1000) {
      ++shorts;
      n = 1000;
    }
    return ::pwrite(fd, buf, n, off);
  };
  hooks.pread = [&](int fd, void* buf, size_t n, off_t off) -> ssize_t {
    if (n > 1000) {
      ++shorts;
      n = 1000;
    }
    return ::pread(fd, buf, n, off);
  };
  SetIoSyscallHooksForTest(std::move(hooks));

  char page[kPageSize];
  for (uint32_t i = 0; i < kPageSize; ++i) page[i] = static_cast<char>(i * 7);
  ASSERT_TRUE(dm->WritePage(p, page).ok());
  char out[kPageSize];
  ASSERT_TRUE(dm->ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(page, out, kPageSize), 0);
  EXPECT_EQ(eintrs, 2);
  EXPECT_GT(shorts, 10);  // both directions really went through the loop

  ClearIoSyscallHooksForTest();
  dm.reset();
  std::filesystem::remove(path);
}

TEST(IoRetryTest, RealErrorsSurfaceErrnoText) {
  std::string path = testing::TempDir() + "/io_err.db";
  std::filesystem::remove(path);
  std::unique_ptr<DiskManager> dm;
  ASSERT_TRUE(DiskManager::OpenFile(path, &dm).ok());
  PageId p = dm->AllocatePage();

  HookGuard guard;
  IoSyscallHooks hooks;
  hooks.pwrite = [](int, const void*, size_t, off_t) -> ssize_t {
    errno = ENOSPC;
    return -1;
  };
  SetIoSyscallHooksForTest(std::move(hooks));
  char page[kPageSize] = {};
  Status s = dm->WritePage(p, page);
  ASSERT_TRUE(s.IsIOError());
  EXPECT_NE(s.message().find(std::strerror(ENOSPC)), std::string::npos) << s;

  ClearIoSyscallHooksForTest();
  dm.reset();
  std::filesystem::remove(path);
}

TEST(IoRetryTest, OpenErrorsIncludeErrnoText) {
  std::unique_ptr<DiskManager> dm;
  // A directory cannot be opened O_RDWR as a storage file.
  Status s = DiskManager::OpenFile(testing::TempDir(), &dm);
  ASSERT_TRUE(s.IsIOError());
  EXPECT_NE(s.message().find(std::strerror(EISDIR)), std::string::npos) << s;
}

// ---- FaultInjectionEnv crash model ----

TEST(FaultEnvTest, UnsyncedDataIsVisibleButLostOnCrash) {
  FaultInjectionEnv env;
  auto f = env.NewWritableFile("/d/x", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("durable").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE((*f)->Append("volatile").ok());
  EXPECT_EQ(*env.ReadFileToString("/d/x"), "durablevolatile");
  EXPECT_EQ(env.UnsyncedBytes("/d/x"), 8u);
  env.SimulateCrash();
  EXPECT_EQ(*env.ReadFileToString("/d/x"), "durable");
  // The pre-crash handle is dead.
  EXPECT_TRUE((*f)->Append("zombie").IsIOError());
  EXPECT_TRUE((*f)->Sync().IsIOError());
}

TEST(FaultEnvTest, CrashKeepsRequestedPrefixOfOneFile) {
  FaultInjectionEnv env;
  auto f = env.NewWritableFile("/d/wal.log", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("base|").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE((*f)->Append("abcdef").ok());
  env.SimulateCrashKeepingPrefix("wal", 3);
  EXPECT_EQ(*env.ReadFileToString("/d/wal.log"), "base|abc");
}

TEST(FaultEnvTest, NthAppendFaultIsOneShotAndPathFiltered) {
  FaultInjectionEnv env;
  auto wal = env.NewWritableFile("/d/wal.log", true);
  auto other = env.NewWritableFile("/d/other", true);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(other.ok());
  env.FailNthAppend("wal.log", 2);
  EXPECT_TRUE((*other)->Append("not counted").ok());
  EXPECT_TRUE((*wal)->Append("first").ok());
  EXPECT_TRUE((*wal)->Append("second").IsIOError());
  EXPECT_TRUE((*wal)->Append("third").ok());  // one-shot: disarmed
  EXPECT_EQ(*env.ReadFileToString("/d/wal.log"), "firstthird");
}

TEST(FaultEnvTest, RenameListAndRemove) {
  FaultInjectionEnv env;
  auto f = env.NewWritableFile("/d/a.tmp", true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("payload").ok());
  ASSERT_TRUE((*f)->Sync().ok());
  ASSERT_TRUE(env.RenameFile("/d/a.tmp", "/d/a").ok());
  EXPECT_FALSE(*env.FileExists("/d/a.tmp"));
  EXPECT_EQ(*env.ReadFileToString("/d/a"), "payload");
  auto names = env.ListDir("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "a");
  env.FailNextRename();
  EXPECT_TRUE(env.RenameFile("/d/a", "/d/b").IsIOError());
  EXPECT_TRUE(*env.FileExists("/d/a"));  // failed rename did nothing
  env.FailNextRemove();
  EXPECT_TRUE(env.RemoveFile("/d/a").IsIOError());
  EXPECT_TRUE(env.RemoveFile("/d/a").ok());
}

// ---- WAL ----

std::string WalBytes(FaultInjectionEnv* env, const std::string& path) {
  auto r = env->ReadFileToString(path);
  EXPECT_TRUE(r.ok());
  return r.ok() ? *r : std::string();
}

TEST(WalTest, AppendSyncReadBackRoundTrip) {
  FaultInjectionEnv env;
  auto w = WalWriter::Open(&env, "/d/wal.log", 1, true);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*(*w)->Append(WalRecordType::kUpdateStatement, "alpha"), 1u);
  EXPECT_EQ(*(*w)->Append(WalRecordType::kUpdateStatement, ""), 2u);
  EXPECT_EQ(*(*w)->Append(WalRecordType::kUpdateStatement, "gamma"), 3u);
  ASSERT_TRUE((*w)->Sync().ok());

  auto contents = ReadWal(&env, "/d/wal.log");
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_FALSE(contents->torn_tail);
  EXPECT_EQ(contents->max_lsn, 3u);
  EXPECT_EQ(contents->records[0].payload, "alpha");
  EXPECT_EQ(contents->records[1].payload, "");
  EXPECT_EQ(contents->records[2].payload, "gamma");
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(contents->records[i].lsn, i + 1);
    EXPECT_EQ(contents->records[i].type, WalRecordType::kUpdateStatement);
  }
}

TEST(WalTest, PosixBackedRoundTripAndReopenAppend) {
  std::string path = testing::TempDir() + "/mct_wal_test.log";
  std::filesystem::remove(path);
  FileEnv* env = FileEnv::Default();
  {
    auto w = WalWriter::Open(env, path, 1, true);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "one").ok());
    ASSERT_TRUE((*w)->Sync().ok());
  }
  {
    auto contents = ReadWal(env, path);
    ASSERT_TRUE(contents.ok());
    ASSERT_EQ(contents->records.size(), 1u);
    auto w = WalWriter::Open(env, path, contents->max_lsn + 1, false);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "two").ok());
    ASSERT_TRUE((*w)->Sync().ok());
  }
  auto contents = ReadWal(env, path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[1].payload, "two");
  EXPECT_EQ(contents->records[1].lsn, 2u);
  std::filesystem::remove(path);
}

TEST(WalTest, GroupCommitIsOneFsyncPerBatch) {
  MetricsRegistry::Global().ResetForTest();
  FaultInjectionEnv env;
  auto w = WalWriter::Open(&env, "/d/wal.log", 1, true);
  ASSERT_TRUE(w.ok());
  uint64_t syncs_before = env.num_syncs();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "x").ok());
  }
  ASSERT_TRUE((*w)->Sync().ok());
  EXPECT_EQ(env.num_syncs(), syncs_before + 1);
  // A clean writer does not fsync again.
  ASSERT_TRUE((*w)->Sync().ok());
  EXPECT_EQ(env.num_syncs(), syncs_before + 1);
  EXPECT_EQ(MetricsRegistry::Global().counter("mct.wal.appends")->value(),
            10u);
  EXPECT_EQ(MetricsRegistry::Global().counter("mct.wal.fsyncs")->value(), 1u);
}

TEST(WalTest, EveryTruncationPointYieldsTheValidPrefix) {
  FaultInjectionEnv env;
  auto w = WalWriter::Open(&env, "/d/wal.log", 1, true);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "record-A").ok());
  ASSERT_TRUE(
      (*w)->Append(WalRecordType::kUpdateStatement, "record-BB").ok());
  ASSERT_TRUE((*w)->Sync().ok());
  std::string good = WalBytes(&env, "/d/wal.log");
  size_t rec_a_end = 8 + 17 + 8;  // magic + header + payload

  for (size_t len = 0; len <= good.size(); ++len) {
    FaultInjectionEnv env2;
    auto f = env2.NewWritableFile("/d/wal.log", true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(good.substr(0, len)).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    auto contents = ReadWal(&env2, "/d/wal.log");
    ASSERT_TRUE(contents.ok()) << "len " << len;
    size_t expect_records =
        len >= good.size() ? 2 : (len >= rec_a_end ? 1 : 0);
    EXPECT_EQ(contents->records.size(), expect_records) << "len " << len;
    // Torn exactly when some non-durable suffix exists past the valid
    // prefix (which is 0 while even the magic is incomplete).
    EXPECT_EQ(contents->torn_tail, contents->valid_bytes != len)
        << "len " << len;
    EXPECT_LE(contents->valid_bytes, len);
  }
}

TEST(WalTest, BitFlipsStopTheScanAtTheCorruptRecord) {
  FaultInjectionEnv env;
  auto w = WalWriter::Open(&env, "/d/wal.log", 1, true);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "first").ok());
  ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "second").ok());
  ASSERT_TRUE((*w)->Sync().ok());
  std::string good = WalBytes(&env, "/d/wal.log");
  size_t rec2_start = 8 + 17 + 5;

  for (size_t off = rec2_start; off < good.size(); ++off) {
    std::string bad = good;
    bad[off] = static_cast<char>(bad[off] ^ 0x40);
    FaultInjectionEnv env2;
    auto f = env2.NewWritableFile("/d/wal.log", true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(bad).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    auto contents = ReadWal(&env2, "/d/wal.log");
    ASSERT_TRUE(contents.ok());
    ASSERT_EQ(contents->records.size(), 1u) << "flip at " << off;
    EXPECT_EQ(contents->records[0].payload, "first");
    EXPECT_TRUE(contents->torn_tail);
    EXPECT_EQ(contents->valid_bytes, rec2_start);
  }
}

TEST(WalTest, MissingEmptyAndForeignFiles) {
  FaultInjectionEnv env;
  auto missing = ReadWal(&env, "/d/nope.log");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());

  auto f = env.NewWritableFile("/d/empty.log", true);
  ASSERT_TRUE((*f)->Sync().ok());
  auto empty = ReadWal(&env, "/d/empty.log");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->records.empty());
  EXPECT_FALSE(empty->torn_tail);

  auto g = env.NewWritableFile("/d/foreign.log", true);
  ASSERT_TRUE((*g)->Append("DEFINITELY NOT A WAL FILE").ok());
  ASSERT_TRUE((*g)->Sync().ok());
  auto foreign = ReadWal(&env, "/d/foreign.log");
  ASSERT_FALSE(foreign.ok());
  EXPECT_TRUE(foreign.status().IsCorruption());

  auto h = env.NewWritableFile("/d/partial.log", true);
  ASSERT_TRUE((*h)->Append("MCTW").ok());  // crash mid-magic
  ASSERT_TRUE((*h)->Sync().ok());
  auto partial = ReadWal(&env, "/d/partial.log");
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->records.empty());
  EXPECT_TRUE(partial->torn_tail);
}

TEST(WalTest, NonMonotonicLsnIsTreatedAsTail) {
  FaultInjectionEnv env;
  {
    auto w = WalWriter::Open(&env, "/d/wal.log", 5, true);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "lsn5").ok());
    ASSERT_TRUE((*w)->Sync().ok());
  }
  {
    // A buggy reopen that reuses a lower LSN.
    auto w = WalWriter::Open(&env, "/d/wal.log", 3, false);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(WalRecordType::kUpdateStatement, "lsn3").ok());
    ASSERT_TRUE((*w)->Sync().ok());
  }
  auto contents = ReadWal(&env, "/d/wal.log");
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 1u);
  EXPECT_EQ(contents->records[0].lsn, 5u);
  EXPECT_TRUE(contents->torn_tail);
}

}  // namespace
}  // namespace mct

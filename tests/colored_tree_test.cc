// Direct unit tests of ColoredTree: ordered insertion, detach, labels and
// their maintenance under mutation.

#include <gtest/gtest.h>

#include "mct/colored_tree.h"
#include "storage/storage_env.h"

namespace mct {
namespace {

struct Fixture {
  std::unique_ptr<StorageEnv> env = StorageEnv::CreateInMemory();
  ColoredTree tree{0, env.get()};
};

TEST(ColoredTreeTest, SetRootOnlyOnce) {
  Fixture f;
  EXPECT_TRUE(f.tree.SetRoot(0).ok());
  EXPECT_TRUE(f.tree.SetRoot(1).IsAlreadyExists());
  EXPECT_EQ(f.tree.root(), 0u);
  EXPECT_TRUE(f.tree.Contains(0));
  EXPECT_EQ(f.tree.size(), 1u);
}

TEST(ColoredTreeTest, AppendAndSiblingOrder) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  for (NodeId n : {10u, 11u, 12u}) {
    ASSERT_TRUE(f.tree.AppendChild(0, n).ok());
  }
  EXPECT_EQ(f.tree.Children(0), (std::vector<NodeId>{10, 11, 12}));
  EXPECT_EQ(f.tree.FirstChild(0), 10u);
  EXPECT_EQ(f.tree.NextSibling(10), 11u);
  EXPECT_EQ(f.tree.PrevSibling(11), 10u);
  EXPECT_EQ(f.tree.NextSibling(12), kInvalidNodeId);
  EXPECT_EQ(f.tree.Parent(10), 0u);
  EXPECT_EQ(f.tree.Parent(0), kInvalidNodeId);
}

TEST(ColoredTreeTest, InsertBefore) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  ASSERT_TRUE(f.tree.AppendChild(0, 10).ok());
  ASSERT_TRUE(f.tree.AppendChild(0, 12).ok());
  // Middle.
  ASSERT_TRUE(f.tree.InsertChild(0, 11, 12).ok());
  // Front.
  ASSERT_TRUE(f.tree.InsertChild(0, 9, 10).ok());
  EXPECT_EQ(f.tree.Children(0), (std::vector<NodeId>{9, 10, 11, 12}));
  // 'before' not a child of parent.
  ASSERT_TRUE(f.tree.AppendChild(10, 20).ok());
  EXPECT_TRUE(f.tree.InsertChild(0, 30, 20).IsInvalidArgument());
}

TEST(ColoredTreeTest, InsertErrors) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  EXPECT_TRUE(f.tree.AppendChild(99, 1).IsNotFound());  // unknown parent
  ASSERT_TRUE(f.tree.AppendChild(0, 1).ok());
  EXPECT_TRUE(f.tree.AppendChild(0, 1).IsAlreadyExists());  // duplicate
  EXPECT_TRUE(f.tree.AppendChild(1, 0).IsAlreadyExists());  // root reinsert
}

TEST(ColoredTreeTest, DetachMiddleChildRelinksSiblings) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  for (NodeId n : {10u, 11u, 12u}) {
    ASSERT_TRUE(f.tree.AppendChild(0, n).ok());
  }
  std::vector<NodeId> removed;
  ASSERT_TRUE(f.tree.DetachSubtree(11, &removed).ok());
  EXPECT_EQ(removed, (std::vector<NodeId>{11}));
  EXPECT_EQ(f.tree.Children(0), (std::vector<NodeId>{10, 12}));
  EXPECT_EQ(f.tree.NextSibling(10), 12u);
  EXPECT_EQ(f.tree.PrevSibling(12), 10u);
  EXPECT_FALSE(f.tree.Contains(11));
}

TEST(ColoredTreeTest, DetachSubtreeRemovesDescendants) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  ASSERT_TRUE(f.tree.AppendChild(0, 1).ok());
  ASSERT_TRUE(f.tree.AppendChild(1, 2).ok());
  ASSERT_TRUE(f.tree.AppendChild(2, 3).ok());
  ASSERT_TRUE(f.tree.AppendChild(1, 4).ok());
  std::vector<NodeId> removed;
  ASSERT_TRUE(f.tree.DetachSubtree(1, &removed).ok());
  EXPECT_EQ(removed.size(), 4u);
  EXPECT_EQ(f.tree.size(), 1u);
  EXPECT_TRUE(f.tree.Children(0).empty());
  // Detach errors.
  EXPECT_TRUE(f.tree.DetachSubtree(1, &removed).IsNotFound());
  EXPECT_TRUE(f.tree.DetachSubtree(0, &removed).IsInvalidArgument());
}

TEST(ColoredTreeTest, LabelsSurviveDetachWithoutRelabel) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  for (NodeId n : {1u, 2u, 3u}) ASSERT_TRUE(f.tree.AppendChild(0, n).ok());
  ASSERT_TRUE(f.tree.AppendChild(2, 20).ok());
  f.tree.EnsureLabels();
  uint64_t s1 = f.tree.Start(1);
  uint64_t s3 = f.tree.Start(3);
  std::vector<NodeId> removed;
  ASSERT_TRUE(f.tree.DetachSubtree(2, &removed).ok());
  EXPECT_FALSE(f.tree.labels_dirty());
  EXPECT_EQ(f.tree.Start(1), s1);
  EXPECT_EQ(f.tree.Start(3), s3);
  EXPECT_TRUE(f.tree.IsAncestor(0, 3));
}

TEST(ColoredTreeTest, PreOrderOfSubtree) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  ASSERT_TRUE(f.tree.AppendChild(0, 1).ok());
  ASSERT_TRUE(f.tree.AppendChild(1, 2).ok());
  ASSERT_TRUE(f.tree.AppendChild(1, 3).ok());
  ASSERT_TRUE(f.tree.AppendChild(3, 4).ok());
  ASSERT_TRUE(f.tree.AppendChild(0, 5).ok());
  EXPECT_EQ(f.tree.PreOrder(1), (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(f.tree.PreOrder(), (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
  EXPECT_TRUE(f.tree.PreOrder(99).empty());
}

TEST(ColoredTreeTest, ForEachChildMatchesChildren) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  for (NodeId n : {7u, 8u, 9u}) ASSERT_TRUE(f.tree.AppendChild(0, n).ok());
  std::vector<NodeId> seen;
  f.tree.ForEachChild(0, [&](NodeId c) { seen.push_back(c); });
  EXPECT_EQ(seen, f.tree.Children(0));
  f.tree.ForEachChild(12345, [&](NodeId) { FAIL(); });
}

TEST(ColoredTreeTest, GapInsertBetweenSiblingsKeepsOrder) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  ASSERT_TRUE(f.tree.AppendChild(0, 1).ok());
  ASSERT_TRUE(f.tree.AppendChild(0, 3).ok());
  f.tree.EnsureLabels();
  ASSERT_FALSE(f.tree.labels_dirty());
  ASSERT_TRUE(f.tree.InsertChild(0, 2, 3).ok());
  EXPECT_FALSE(f.tree.labels_dirty());  // gap labeling succeeded
  EXPECT_LT(f.tree.Start(1), f.tree.Start(2));
  EXPECT_LT(f.tree.Start(2), f.tree.Start(3));
  EXPECT_TRUE(f.tree.IsAncestor(0, 2));
  EXPECT_EQ(f.tree.Level(2), 1u);
}

TEST(ColoredTreeTest, DeepChainLevelsAndIntervals) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  NodeId prev = 0;
  for (NodeId n = 1; n <= 200; ++n) {
    ASSERT_TRUE(f.tree.AppendChild(prev, n).ok());
    prev = n;
  }
  f.tree.EnsureLabels();
  for (NodeId n = 1; n <= 200; ++n) {
    EXPECT_EQ(f.tree.Level(n), n);
    EXPECT_TRUE(f.tree.IsAncestor(n - 1, n));
    EXPECT_TRUE(f.tree.IsAncestor(0, n));
  }
  EXPECT_FALSE(f.tree.IsAncestor(200, 0));
}

TEST(ColoredTreeTest, StructFileGrowsWithMembers) {
  Fixture f;
  ASSERT_TRUE(f.tree.SetRoot(0).ok());
  uint64_t before = f.tree.FileBytes();
  for (NodeId n = 1; n <= 1000; ++n) {
    ASSERT_TRUE(f.tree.AppendChild(0, n).ok());
  }
  EXPECT_GT(f.tree.FileBytes(), before);
  // 48-byte records, 170 per 8K page: 1001 records -> >= 6 pages.
  EXPECT_GE(f.tree.FileBytes(), 6u * kPageSize);
}

}  // namespace
}  // namespace mct

// Trace-consistency tests: re-runs the read-only query corpus from
// mcx_eval_test / mcx_more_test with EXPLAIN ANALYZE tracing on, at 1 and 8
// threads, and asserts
//   * the query results are identical regardless of thread count,
//   * the trace root accounts for every result item,
//   * within each FOR group, consecutive operators chain (rows_in of one
//     equals rows_out of the previous),
//   * morsel counts are consistent with the fan-out size and morsel size,
//   * the trace structure (ops, details, row counts) is identical at 1 and
//     8 threads — only wall times and morsel counts (serial runs claim one
//     morsel) may differ.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "mcx/evaluator.h"
#include "movie_fixture.h"
#include "query/trace.h"
#include "workload/runner.h"
#include "workload/tpcw_db.h"

namespace mct::mcx {
namespace {

using query::OpTrace;
using query::QueryTrace;
using testfix::BuildMovieDb;
using testfix::MovieDb;

// Read-only queries lifted from mcx_eval_test / mcx_more_test (mutating
// returns stripped where needed): paths, predicates, color crossings, value
// joins, nested loops, distinct-values, order by.
const char* kMovieQueries[] = {
    // Simple descendant path.
    "for $m in document(\"mdb.xml\")/{red}descendant::movie return $m",
    // Predicate on child content.
    "for $g in document(\"mdb.xml\")/{red}descendant::movie-genre"
    "[{red}child::name = \"Comedy\"] return $g",
    // Paper Q4's path: two color transitions (green->red, red->blue).
    "for $a in document(\"mdb.xml\")/{green}descendant::movie-award"
    "[contains({green}child::name, \"Oscar\")]/"
    "{green}descendant::movie[{green}child::votes > 10]/"
    "{red}child::movie-role/{blue}parent::actor return $a",
    // Where residual filter.
    "for $m in document(\"d\")/{green}descendant::movie "
    "where $m/{green}child::votes > 10 return $m",
    // Inequality value join: nested loop.
    "for $a in document(\"d\")/{green}descendant::movie, "
    "$b in document(\"d\")/{green}descendant::movie "
    "where $a/{green}child::votes > $b/{green}child::votes return $a",
    // Order by, descending.
    "for $m in document(\"d\")/{red}descendant::movie "
    "order by $m/{red}child::name descending return $m",
    // Distinct-values over a content path.
    "for $v in distinct-values(document(\"d\")/{green}descendant::votes) "
    "order by $v return $v",
    // Descendant-or-self with a relative predicate (deep dialect).
    "for $m in document(\"mdb.xml\")//movie-genre[name = \"Comedy\"]"
    "//movie[.//movie-role/name = \"Margo\"] return $m",
};

QueryResult RunTraced(MctDatabase* db, const std::string& text,
                      int num_threads, size_t morsel_size, QueryTrace* trace) {
  EvalOptions opts;
  opts.trace = trace;
  opts.num_threads = num_threads;
  opts.morsel_size = morsel_size;
  Evaluator ev(db, opts);
  auto r = ev.Run(text);
  EXPECT_TRUE(r.ok()) << r.status() << "\nquery: " << text;
  if (!r.ok()) std::abort();
  return std::move(r).value();
}

// Results compare by node identity for node items, by value otherwise.
std::vector<std::string> ResultKeys(const QueryResult& r) {
  std::vector<std::string> keys;
  for (const Item& i : r.items) {
    keys.push_back(i.is_node ? "node:" + std::to_string(i.node)
                             : "val:" + i.atomic);
  }
  return keys;
}

void CheckMorselInvariant(const QueryTrace& trace, size_t morsel_size,
                          const std::string& text) {
  trace.root().Visit([&](const OpTrace& n) {
    if (n.morsels <= 1) return;  // serial or empty: nothing to check
    EXPECT_EQ(n.morsels, (n.fanout_rows + morsel_size - 1) / morsel_size)
        << n.op << " fanned out " << n.fanout_rows << " rows\nquery: " << text;
  });
}

void CheckChainInvariant(const QueryTrace& trace, const std::string& text) {
  trace.root().Visit([&](const OpTrace& g) {
    if (g.op != "FOR") return;
    for (size_t i = 1; i < g.children.size(); ++i) {
      EXPECT_EQ(g.children[i]->rows_in, g.children[i - 1]->rows_out)
          << g.children[i]->op << " after " << g.children[i - 1]->op
          << "\nquery: " << text;
    }
  });
}

// Structural equality, ignoring wall times (nondeterministic) and morsel
// counts (a serial run claims one morsel where a parallel run claims
// ceil(n / morsel_size)).
void ExpectSameStructure(const OpTrace& a, const OpTrace& b,
                         const std::string& text) {
  EXPECT_EQ(a.op, b.op) << "query: " << text;
  EXPECT_EQ(a.detail, b.detail) << a.op << "\nquery: " << text;
  EXPECT_EQ(a.rows_in, b.rows_in) << a.op << "\nquery: " << text;
  EXPECT_EQ(a.rows_out, b.rows_out) << a.op << "\nquery: " << text;
  EXPECT_EQ(a.fanout_rows, b.fanout_rows) << a.op << "\nquery: " << text;
  EXPECT_EQ(a.color_transitions, b.color_transitions)
      << a.op << "\nquery: " << text;
  ASSERT_EQ(a.children.size(), b.children.size())
      << a.op << "\nquery: " << text;
  for (size_t i = 0; i < a.children.size(); ++i) {
    ExpectSameStructure(*a.children[i], *b.children[i], text);
  }
}

TEST(TraceDifferentialTest, MovieCorpusSerialVsEightThreads) {
  for (const char* text : kMovieQueries) {
    // Fresh fixtures per run: tracing must not depend on shared state.
    MovieDb f1 = BuildMovieDb();
    MovieDb f8 = BuildMovieDb();
    QueryTrace t1;
    QueryTrace t8;
    // Morsel size 2 forces real fan-outs even on the small fixture.
    QueryResult r1 = RunTraced(f1.db.get(), text, 1, 2, &t1);
    QueryResult r8 = RunTraced(f8.db.get(), text, 8, 2, &t8);

    EXPECT_EQ(ResultKeys(r1), ResultKeys(r8)) << "query: " << text;
    EXPECT_EQ(t1.root().rows_out, r1.items.size()) << "query: " << text;
    EXPECT_EQ(t8.root().rows_out, r8.items.size()) << "query: " << text;
    EXPECT_GT(t1.NodeCount(), 0u) << "query: " << text;

    CheckChainInvariant(t1, text);
    CheckChainInvariant(t8, text);
    CheckMorselInvariant(t1, 2, text);
    CheckMorselInvariant(t8, 2, text);
    ExpectSameStructure(t1.root(), t8.root(), text);
  }
}

TEST(TraceDifferentialTest, PaperQ4CountsTwoColorTransitions) {
  MovieDb f = BuildMovieDb();
  QueryTrace trace;
  RunTraced(f.db.get(), kMovieQueries[2], 1, 1024, &trace);
  EXPECT_EQ(trace.TotalColorTransitions(), 2u);
  // The crossings are attributed to CROSS-TREE JOIN operators.
  uint64_t join_crossings = 0;
  trace.root().Visit([&](const OpTrace& n) {
    if (n.op == "CROSS-TREE JOIN") join_crossings += n.color_transitions;
  });
  EXPECT_EQ(join_crossings, 2u);
}

TEST(TraceDifferentialTest, RenderersCoverEveryNode) {
  MovieDb f = BuildMovieDb();
  QueryTrace trace;
  RunTraced(f.db.get(), kMovieQueries[2], 1, 1024, &trace);
  std::string text = trace.ToText();
  std::string json = trace.ToJson();
  trace.root().Visit([&](const OpTrace& n) {
    EXPECT_NE(text.find(n.op), std::string::npos) << n.op;
    EXPECT_NE(json.find("\"op\": \"" + n.op + "\""), std::string::npos)
        << n.op;
  });
  // JSON braces balance (cheap well-formedness check; full parsing happens
  // in the bench tooling).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// A database big enough that 8-thread runs actually claim several morsels:
// the trace must stay consistent under the real morsel pool, and the
// parallel run's morsel counts must match ceil(fanout / morsel_size).
TEST(TraceDifferentialTest, TpcwMorselCountsUnderParallelPool) {
  using namespace mct::workload;
  TpcwData data = GenerateTpcw(TpcwScale::Default().ScaledBy(0.02));
  auto db1 = BuildTpcw(data, SchemaKind::kMct);
  auto db8 = BuildTpcw(data, SchemaKind::kMct);
  ASSERT_TRUE(db1.ok());
  ASSERT_TRUE(db8.ok());
  const std::string text =
      "for $l in document(\"tpcw.xml\")/{cust}descendant::orderline"
      "[{cust}child::discount >= 0.25] return $l";

  QueryTrace t1;
  QueryTrace t8;
  auto r1 = RunQuery(db1->db.get(), db1->default_color(), text, false, 1, 64,
                     &t1);
  auto r8 = RunQuery(db8->db.get(), db8->default_color(), text, false, 8, 64,
                     &t8);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_TRUE(r8.ok()) << r8.status();
  EXPECT_EQ(r1->result_count, r8->result_count);
  EXPECT_GT(r1->result_count, 0u);

  CheckChainInvariant(t1, text);
  CheckChainInvariant(t8, text);
  CheckMorselInvariant(t1, 64, text);
  CheckMorselInvariant(t8, 64, text);
  ExpectSameStructure(t1.root(), t8.root(), text);

  // The parallel run drove the descendant scan through several morsels.
  bool multi_morsel = false;
  t8.root().Visit([&](const OpTrace& n) {
    if (n.morsels > 1) multi_morsel = true;
  });
  EXPECT_TRUE(multi_morsel) << t8.ToText();
  // The serial run never fans out.
  t1.root().Visit(
      [&](const OpTrace& n) { EXPECT_LE(n.morsels, 1u) << n.op; });
}

TEST(TraceDifferentialTest, PausedNestedFlworStaysOutOfTrace) {
  // The per-row nested FLWOR in the return clause must not multiply the
  // trace by the outer cardinality.
  MovieDb f = BuildMovieDb();
  QueryTrace trace;
  RunTraced(f.db.get(),
            "for $g in document(\"d\")/{red}descendant::movie-genre "
            "return count(for $m in $g/{red}descendant::movie return $m)",
            1, 1024, &trace);
  uint64_t for_groups = 0;
  trace.root().Visit([&](const OpTrace& n) {
    if (n.op == "FOR") ++for_groups;
  });
  EXPECT_EQ(for_groups, 1u) << trace.ToText();
}

TEST(TraceDifferentialTest, DisabledTraceRecordsNothing) {
  MovieDb f = BuildMovieDb();
  EvalOptions opts;  // no trace sink
  Evaluator ev(f.db.get(), opts);
  auto r = ev.Run(kMovieQueries[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->items.size(), 3u);
}

}  // namespace
}  // namespace mct::mcx

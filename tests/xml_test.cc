#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/name_pool.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace mct::xml {
namespace {

TEST(NamePoolTest, InternIsIdempotent) {
  NamePool pool;
  NameId a = pool.Intern("movie");
  NameId b = pool.Intern("actor");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("movie"), a);
  EXPECT_EQ(pool.Name(a), "movie");
  EXPECT_EQ(pool.Lookup("actor"), b);
  EXPECT_EQ(pool.Lookup("nope"), kInvalidNameId);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(EscapeTest, TextRoundTrip) {
  std::string raw = "a < b && c > d";
  auto back = Unescape(EscapeText(raw));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(EscapeTest, AttrRoundTrip) {
  std::string raw = "say \"hi\" & <bye>\n";
  auto back = Unescape(EscapeAttr(raw));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, raw);
}

TEST(EscapeTest, NumericReferences) {
  EXPECT_EQ(*Unescape("&#65;&#x42;"), "AB");
  EXPECT_EQ(*Unescape("&#233;"), "\xC3\xA9");  // e-acute, 2-byte UTF-8
  EXPECT_EQ(*Unescape("&#x20AC;"), "\xE2\x82\xAC");  // euro, 3-byte
  EXPECT_EQ(*Unescape("&apos;"), "'");
}

TEST(EscapeTest, MalformedEntitiesError) {
  EXPECT_TRUE(Unescape("&bogus;").status().IsParseError());
  EXPECT_TRUE(Unescape("&#xz;").status().IsParseError());
  EXPECT_TRUE(Unescape("&#;").status().IsParseError());
  EXPECT_TRUE(Unescape("a & b").status().IsParseError());
  EXPECT_TRUE(Unescape("&#1114112;").status().IsParseError());  // > 0x10FFFF
}

TEST(DomTest, StringValueConcatenatesDescendants) {
  Element root("movie");
  root.AddTextElement("name", "All About ");
  root.children()[0]->AddChild([] {
    auto e = std::make_unique<Element>("em");
    e->AddText("Eve");
    return e;
  }());
  EXPECT_EQ(root.StringValue(), "All About Eve");
}

TEST(DomTest, FindAttrAndChild) {
  Element e("movie");
  e.SetAttr("id", "m1");
  e.SetAttr("id", "m2");  // overwrite
  ASSERT_NE(e.FindAttr("id"), nullptr);
  EXPECT_EQ(*e.FindAttr("id"), "m2");
  EXPECT_EQ(e.FindAttr("missing"), nullptr);
  e.AddElement("name");
  e.AddElement("votes");
  EXPECT_NE(e.FindChild("votes"), nullptr);
  EXPECT_EQ(e.FindChild("zzz"), nullptr);
  EXPECT_EQ(e.SubtreeSize(), 3u);
}

TEST(ParserTest, SimpleDocument) {
  auto doc = Parse("<movie id='m1'><name>Eve</name><votes>12</votes></movie>");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc->root;
  EXPECT_EQ(root.name(), "movie");
  EXPECT_EQ(*root.FindAttr("id"), "m1");
  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_EQ(root.FindChild("name")->StringValue(), "Eve");
  EXPECT_EQ(root.FindChild("votes")->StringValue(), "12");
}

TEST(ParserTest, DeclarationDoctypeCommentsPIs) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE mdb>\n"
      "<!-- prologue comment -->\n"
      "<mdb><!-- inner --><?proc data?><x/></mdb>\n"
      "<!-- epilogue -->");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc->root;
  ASSERT_EQ(root.children().size(), 3u);
  EXPECT_EQ(root.children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(root.children()[0]->text(), " inner ");
  EXPECT_EQ(root.children()[1]->kind(), NodeKind::kProcessingInstruction);
  EXPECT_EQ(root.children()[1]->name(), "proc");
  EXPECT_EQ(root.children()[1]->text(), "data");
  EXPECT_EQ(root.children()[2]->name(), "x");
}

TEST(ParserTest, CdataAndEntities) {
  auto doc = Parse("<t>&lt;tag&gt; &amp; <![CDATA[raw <stuff> & more]]></t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->StringValue(), "<tag> & raw <stuff> & more");
}

TEST(ParserTest, SelfClosingAndNesting) {
  auto doc = Parse("<a><b/><c><d x=\"1\"/></c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->SubtreeSize(), 4u);
  EXPECT_EQ(*doc->root->FindChild("c")->FindChild("d")->FindAttr("x"), "1");
}

TEST(ParserTest, WhitespaceBetweenElementsDropped) {
  auto doc = Parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->children().size(), 2u);
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(Parse("").status().IsParseError());
  EXPECT_TRUE(Parse("<a>").status().IsParseError());
  EXPECT_TRUE(Parse("<a></b>").status().IsParseError());
  EXPECT_TRUE(Parse("<a x=1></a>").status().IsParseError());
  EXPECT_TRUE(Parse("<a x='1' x='2'></a>").status().IsParseError());
  EXPECT_TRUE(Parse("<a></a><b></b>").status().IsParseError());
  EXPECT_TRUE(Parse("<1tag/>").status().IsParseError());
  EXPECT_TRUE(Parse("<a>&nosuch;</a>").status().IsParseError());
}

TEST(WriterTest, CompactRoundTrip) {
  std::string src =
      "<mdb><movie id=\"m1\" genre=\"comedy\"><name>All About Eve</name>"
      "<votes>12</votes></movie><movie id=\"m2\"/></mdb>";
  auto doc = Parse(src);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Write(*doc), src);
}

TEST(WriterTest, EscapingRoundTrip) {
  Element e("t");
  e.SetAttr("a", "x \"y\" & <z>");
  e.AddText("1 < 2 & 3 > 2");
  std::string out = Write(e);
  auto doc = Parse(out);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root->FindAttr("a"), "x \"y\" & <z>");
  EXPECT_EQ(doc->root->StringValue(), "1 < 2 & 3 > 2");
}

TEST(WriterTest, PrettyPrintingParsesBack) {
  auto doc = Parse("<a><b><c>text</c></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions opt;
  opt.pretty = true;
  opt.declaration = true;
  std::string pretty = Write(*doc, opt);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto re = Parse(pretty);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re->root->FindChild("b")->FindChild("c")->StringValue(), "text");
}

// Parse(Write(Parse(x))) == Parse(x) over a corpus of tricky documents.
class XmlRoundTrip : public testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTrip, WriteThenParseIsIdentity) {
  auto doc1 = Parse(GetParam());
  ASSERT_TRUE(doc1.ok()) << doc1.status();
  std::string text = Write(*doc1);
  auto doc2 = Parse(text);
  ASSERT_TRUE(doc2.ok()) << doc2.status();
  EXPECT_EQ(Write(*doc2), text);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, XmlRoundTrip,
    testing::Values(
        "<a/>",
        "<a b=\"c\"/>",
        "<a>text</a>",
        "<a>x<b/>y</a>",
        "<a><![CDATA[<raw>]]></a>",
        "<ns:a xmlns:ns=\"http://x\"><ns:b/></ns:a>",
        "<a att=\"&quot;q&quot;\">&amp;</a>",
        "<deep><l1><l2><l3><l4>v</l4></l3></l2></l1></deep>",
        "<mixed>one<e1/>two<e2/>three</mixed>"));

}  // namespace
}  // namespace mct::xml

// Interval-range sharding tests (DESIGN.md §17).
//
// Layers under test:
//  1. ShardMap mechanics: boundary exact cover, ShardOf/Range/CutRuns
//     agreement, and the conservative RangeDisjoint pruning rule checked
//     against a brute-force oracle;
//  2. map lifecycle: shard_count=1 means *no* map, structural mutations
//     invalidate only the mutating MVCC version, clones share the pointer;
//  3. differential identity: every movie-fixture query — unmasked and
//     masked — is item- and ExecStats-identical across shard counts
//     {1, 2, 4, 8}, threads {1, 8}, planner on/off;
//  4. the mct.shard.* metrics family: pruning actually fires on a
//     selective descendant expansion and never changes its result;
//  5. plan-cache isolation: entries planned under different shard counts
//     never cross (the shard-sliced fingerprint).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "mct/database.h"
#include "mct/shard.h"
#include "mcx/evaluator.h"
#include "movie_fixture.h"
#include "query/planner.h"

namespace mct {
namespace {

using testfix::BuildMovieDb;
using testfix::MovieDb;
using testfix::MustCreate;

// ---------------------------------------------------------------------------
// 1. ShardMap mechanics.
// ---------------------------------------------------------------------------

TEST(ShardMapTest, BoundariesCoverExactlyAndShardOfAgrees) {
  MovieDb m = BuildMovieDb();
  m.db->SetShardCount(4);
  const ShardMap* sm = m.db->EnsureShardMap();
  ASSERT_NE(sm, nullptr);
  EXPECT_EQ(sm->shard_count(), 4);
  EXPECT_EQ(sm->color_count(), m.db->num_colors());

  for (ColorId c : {m.red, m.green, m.blue}) {
    ColoredTree* t = m.db->tree(c);
    const uint64_t lo = t->Start(t->root());
    const uint64_t hi = t->End(t->root()) + 1;  // half-open
    // Exact cover: first range starts at the root's start, last ends one
    // past the root's end, ranges tile without gaps.
    EXPECT_EQ(sm->Range(c, 0).first, lo);
    EXPECT_EQ(sm->Range(c, 3).second, hi);
    for (int s = 0; s + 1 < 4; ++s) {
      EXPECT_EQ(sm->Range(c, s).second, sm->Range(c, s + 1).first);
      EXPECT_LE(sm->Range(c, s).first, sm->Range(c, s).second);
    }
    // ShardOf maps every range endpoint (and midpoint) into its range.
    for (int s = 0; s < 4; ++s) {
      auto [a, b] = sm->Range(c, s);
      if (a < b) {
        EXPECT_EQ(sm->ShardOf(c, a), s);
        EXPECT_EQ(sm->ShardOf(c, a + (b - a) / 2), s);
        EXPECT_EQ(sm->ShardOf(c, b - 1), s);
      }
    }
  }
}

TEST(ShardMapTest, CutRunsMatchesShardOfPartition) {
  MovieDb m = BuildMovieDb();
  m.db->SetShardCount(4);
  const ShardMap* sm = m.db->EnsureShardMap();
  ASSERT_NE(sm, nullptr);

  // All red "name" elements in document order (TagScan is start-sorted).
  std::vector<NodeId> names = m.db->TagScan(m.red, "name");
  ASSERT_GT(names.size(), 4u);
  ColoredTree* t = m.db->tree(m.red);
  std::vector<size_t> cuts = sm->CutRuns(
      m.red, names.size(), [&](size_t i) { return t->Start(names[i]); });
  ASSERT_EQ(cuts.size(), 5u);
  EXPECT_EQ(cuts[0], 0u);
  EXPECT_EQ(cuts[4], names.size());
  for (int s = 0; s < 4; ++s) {
    ASSERT_LE(cuts[s], cuts[s + 1]);
    for (size_t i = cuts[s]; i < cuts[s + 1]; ++i) {
      EXPECT_EQ(sm->ShardOf(m.red, t->Start(names[i])), s)
          << "element " << i << " cut into the wrong shard run";
    }
  }
}

TEST(ShardMapTest, RangeDisjointMatchesBruteForce) {
  Rng rng(0x5a4d);
  for (int trial = 0; trial < 200; ++trial) {
    // Random ancestor intervals, sorted by start.
    const size_t n = 1 + rng.Next() % 12;
    std::vector<std::pair<uint64_t, uint64_t>> ivs;
    for (size_t i = 0; i < n; ++i) {
      uint64_t a = rng.Next() % 1000;
      uint64_t b = a + 1 + rng.Next() % 200;
      ivs.push_back({a, b});
    }
    std::sort(ivs.begin(), ivs.end());
    std::vector<uint64_t> starts, pmax;
    uint64_t run = 0;
    for (auto& [a, b] : ivs) {
      starts.push_back(a);
      run = std::max(run, b);
      pmax.push_back(run);
    }
    for (int probe = 0; probe < 20; ++probe) {
      uint64_t lo = rng.Next() % 1200;
      uint64_t hi = lo + rng.Next() % 300;
      bool brute_intersects = false;
      for (auto& [a, b] : ivs) {
        if (a < hi && b > lo) brute_intersects = true;
      }
      EXPECT_EQ(ShardMap::RangeDisjoint(starts, pmax, lo, hi),
                !brute_intersects)
          << "lo=" << lo << " hi=" << hi;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Map lifecycle: null at 1 shard, shard-local invalidation, COW sharing.
// ---------------------------------------------------------------------------

TEST(ShardLifecycleTest, SingleShardMeansNoMap) {
  MovieDb m = BuildMovieDb();
  EXPECT_EQ(m.db->shard_count(), 1);
  EXPECT_EQ(m.db->EnsureShardMap(), nullptr);
  EXPECT_EQ(m.db->shard_map(), nullptr);
  // Going sharded and back drops the map again.
  m.db->SetShardCount(4);
  EXPECT_NE(m.db->EnsureShardMap(), nullptr);
  m.db->SetShardCount(1);
  EXPECT_EQ(m.db->EnsureShardMap(), nullptr);
  EXPECT_EQ(m.db->shard_map(), nullptr);
}

TEST(ShardLifecycleTest, StructuralMutationInvalidatesAndRebuilds) {
  MovieDb m = BuildMovieDb();
  m.db->SetShardCount(4);
  const ShardMap* sm1 = m.db->EnsureShardMap();
  ASSERT_NE(sm1, nullptr);
  // Idempotent while nothing changes.
  EXPECT_EQ(m.db->EnsureShardMap(), sm1);
  // A structural mutation drops the map; the next Ensure rebuilds it.
  MustCreate(*m.db, m.red, m.genre_drama, "movie");
  EXPECT_EQ(m.db->shard_map(), nullptr);
  const ShardMap* sm2 = m.db->EnsureShardMap();
  ASSERT_NE(sm2, nullptr);
  EXPECT_EQ(sm2->color_count(), m.db->num_colors());
}

TEST(ShardLifecycleTest, CowClonesShareTheMapAndInvalidateLocally) {
  MovieDb m = BuildMovieDb();
  m.db->SetShardCount(4);
  const ShardMap* sm = m.db->EnsureShardMap();
  ASSERT_NE(sm, nullptr);

  std::unique_ptr<MctDatabase> clone = m.db->CowClone(/*write_through=*/false);
  // The clone shares the immutable map — no rebuild on the reader path.
  EXPECT_EQ(clone->shard_map(), sm);
  EXPECT_EQ(clone->shard_count(), 4);

  // Mutating the clone invalidates only the clone's pointer.
  MustCreate(*clone, m.red, m.genre_drama, "movie");
  EXPECT_EQ(clone->shard_map(), nullptr);
  EXPECT_EQ(m.db->shard_map(), sm) << "clone mutation leaked to the parent";
  EXPECT_NE(clone->EnsureShardMap(), nullptr);
  EXPECT_EQ(m.db->shard_map(), sm);
}

// ---------------------------------------------------------------------------
// 3. Differential identity across shard counts, threads, planner, masks.
// ---------------------------------------------------------------------------

struct RunOutput {
  mcx::QueryResult result;
  query::ExecStats stats;
};

RunOutput MustRun(MctDatabase* db, ColorId default_color,
                  const std::string& text, int threads, bool planner,
                  const ColorMask* mask = nullptr) {
  RunOutput out;
  mcx::EvalOptions o;
  o.default_color = default_color;
  o.num_threads = threads;
  o.planner = planner;
  o.stats = &out.stats;
  if (mask != nullptr) {
    o.mask = *mask;
    // Admit statements naming masked colors; the evaluator filters.
    o.mask_enforcement = mcx::AnalyzeMode::kWarn;
  }
  mcx::Evaluator ev(db, o);
  auto r = ev.Run(text);
  EXPECT_TRUE(r.ok()) << r.status() << " running: " << text;
  if (r.ok()) out.result = std::move(*r);
  return out;
}

void ExpectSameOutput(const RunOutput& oracle, const RunOutput& sharded,
                      const std::string& label) {
  ASSERT_EQ(oracle.result.items.size(), sharded.result.items.size()) << label;
  for (size_t i = 0; i < oracle.result.items.size(); ++i) {
    EXPECT_EQ(oracle.result.items[i].is_node, sharded.result.items[i].is_node)
        << label << " item " << i;
    EXPECT_EQ(oracle.result.items[i].node, sharded.result.items[i].node)
        << label << " item " << i;
    EXPECT_EQ(oracle.result.items[i].atomic, sharded.result.items[i].atomic)
        << label << " item " << i;
  }
  // The determinism contract extends to the cost anatomy: sharding may
  // reorder work but never changes what was counted.
  EXPECT_EQ(oracle.stats, sharded.stats) << label << " ExecStats diverged";
}

// A larger fixture than Figure 2: enough fan-out that 4 and 8 shards all
// own nodes and the parallel arms (shard sort, shard-parallel stack join)
// actually engage.
MovieDb BuildWideMovieDb() {
  MovieDb m = BuildMovieDb();
  for (int i = 0; i < 300; ++i) {
    NodeId mv = MustCreate(*m.db, m.red, m.genre_drama, "movie");
    MustCreate(*m.db, m.red, mv, "name", "bulk-" + std::to_string(i));
    MustCreate(*m.db, m.red, mv, "movie-role");
  }
  return m;
}

TEST(ShardDifferentialTest, QueriesIdenticalAcrossShardCounts) {
  const std::vector<std::string> queries = {
      "for $m in document(\"d\")/{red}descendant::movie return $m",
      "for $n in document(\"d\")/{red}descendant::movie/{red}child::name "
      "return $n",
      "for $m in document(\"d\")/{red}descendant::movie"
      "[{red}child::name = \"City Lights\"] return $m",
      "for $a in document(\"d\")/{blue}descendant::actor/{blue}child::name "
      "return $a",
      // Multi-step descendant spine: the PathStackJoin shard arm.
      "for $n in document(\"d\")/{red}descendant::movie"
      "/{red}descendant::name return $n",
  };
  MovieDb oracle_db = BuildWideMovieDb();
  for (int shards : {2, 4, 8}) {
    MovieDb sharded_db = BuildWideMovieDb();
    sharded_db.db->SetShardCount(shards);
    for (const std::string& q : queries) {
      for (int threads : {1, 8}) {
        for (bool planner : {false, true}) {
          std::string label = "shards=" + std::to_string(shards) +
                              "/t" + std::to_string(threads) +
                              (planner ? "/planned" : "/base") + " " + q;
          RunOutput want =
              MustRun(oracle_db.db.get(), oracle_db.red, q, threads, planner);
          RunOutput got =
              MustRun(sharded_db.db.get(), sharded_db.red, q, threads, planner);
          ExpectSameOutput(want, got, label);
        }
      }
    }
  }
}

// Masked-tenant sweep: shard pruning runs strictly after mask filtering, so
// a masked session's (filtered) results are identical at every shard count
// — sharding can never resurrect an invisible color's nodes.
TEST(ShardDifferentialTest, MaskedResultsIdenticalAcrossShardCounts) {
  MovieDb oracle_db = BuildWideMovieDb();
  const std::vector<std::string> queries = {
      // In-mask: full results, shard-invariant.
      "for $m in document(\"d\")/{red}descendant::movie return $m",
      // Out-of-mask: empty at every shard count.
      "for $a in document(\"d\")/{blue}descendant::actor return $a",
      // Mixed path crossing into a masked color: filtered identically.
      "for $n in document(\"d\")/{blue}descendant::actor/{blue}child::name "
      "return $n",
  };
  const ColorMask red_only = ColorMask::AllowOnly(ColorSet::Of(oracle_db.red));
  for (int shards : {2, 4, 8}) {
    MovieDb sharded_db = BuildWideMovieDb();
    sharded_db.db->SetShardCount(shards);
    for (const std::string& q : queries) {
      for (int threads : {1, 8}) {
        for (bool planner : {false, true}) {
          std::string label = "masked/shards=" + std::to_string(shards) +
                              "/t" + std::to_string(threads) +
                              (planner ? "/planned" : "/base") + " " + q;
          RunOutput want = MustRun(oracle_db.db.get(), oracle_db.red, q,
                                   threads, planner, &red_only);
          RunOutput got = MustRun(sharded_db.db.get(), sharded_db.red, q,
                                  threads, planner, &red_only);
          ExpectSameOutput(want, got, label);
        }
      }
    }
  }
  // Sanity: the out-of-mask query really was filtered, not just equal.
  MovieDb check = BuildWideMovieDb();
  check.db->SetShardCount(4);
  RunOutput masked = MustRun(check.db.get(), check.red, queries[1], 1, false,
                             &red_only);
  EXPECT_EQ(masked.result.items.size(), 0u);
}

// ---------------------------------------------------------------------------
// 4. mct.shard.* metrics: pruning fires on a selective expansion.
// ---------------------------------------------------------------------------

TEST(ShardMetricsTest, SelectiveDescendantPrunesShardsWithoutChangingResults) {
  // 64 branches x 8 items; the context anchors on one branch, so at 4
  // shards at least two shards' item runs are provably disjoint from the
  // lone context interval.
  auto build = [] {
    auto db = std::make_unique<MctDatabase>();
    ColorId red = std::move(db->RegisterColor("red")).value();
    NodeId doc = db->document();
    for (int b = 0; b < 64; ++b) {
      NodeId br = MustCreate(*db, red, doc, "branch");
      MustCreate(*db, red, br, "name", "b" + std::to_string(b));
      for (int i = 0; i < 8; ++i) {
        MustCreate(*db, red, br, "item", std::to_string(b * 8 + i));
      }
    }
    return std::make_pair(std::move(db), red);
  };
  const std::string q =
      "for $b in document(\"d\")/{red}descendant::branch"
      "[{red}child::name = \"b0\"] "
      "for $i in $b/{red}descendant::item return $i";

  auto [oracle_db, oracle_red] = build();
  RunOutput want = MustRun(oracle_db.get(), oracle_red, q, 1, false);
  ASSERT_EQ(want.result.items.size(), 8u);

  auto [sharded_db, red] = build();
  sharded_db->SetShardCount(4);
  const uint64_t pruned0 = ShardPrunedCounter()->value();
  const uint64_t tasks0 = ShardTasksCounter()->value();
  const uint64_t merged0 = ShardMergeRowsCounter()->value();
  RunOutput got = MustRun(sharded_db.get(), red, q, 1, false);
  ExpectSameOutput(want, got, "pruned-descendant");
  EXPECT_GT(ShardPrunedCounter()->value(), pruned0)
      << "no shard was pruned on a single-branch context";
  EXPECT_GT(ShardTasksCounter()->value(), tasks0);
  EXPECT_GT(ShardMergeRowsCounter()->value(), merged0);
}

// ---------------------------------------------------------------------------
// 5. Plan-cache slices: shard counts never share entries.
// ---------------------------------------------------------------------------

TEST(ShardPlanCacheTest, EntriesNeverCrossShardCounts) {
  MovieDb db1 = BuildMovieDb();
  MovieDb db4 = BuildMovieDb();
  db4.db->SetShardCount(4);
  query::PlanCache cache;
  const std::string q =
      "for $m in document(\"d\")/{red}descendant::movie return $m";

  auto run = [&](MovieDb& m) {
    mcx::EvalOptions o;
    o.default_color = m.red;
    o.planner = true;
    o.plan_cache = &cache;
    mcx::Evaluator ev(m.db.get(), o);
    auto r = ev.Run(q);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->items.size(), 3u);
  };

  run(db1);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Same text under 4 shards: the shard-sliced fingerprint must miss the
  // unsharded slice — a hit would replay a plan costed for the wrong
  // fan-out.
  run(db4);
  EXPECT_EQ(cache.stats().hits, 0u) << "plan crossed shard-count slices";
  EXPECT_EQ(cache.stats().misses, 2u);
  // Each slice hits itself on re-run.
  run(db1);
  EXPECT_EQ(cache.stats().hits, 1u);
  run(db4);
  EXPECT_EQ(cache.stats().hits, 2u);
}

}  // namespace
}  // namespace mct

// Metrics registry tests: instrument correctness under concurrency (run
// under the tsan preset too), registry semantics (create-on-first-use,
// stable pointers, reset keeps registrations), and the BufferPool's
// hit/miss/eviction wiring against a scripted access pattern.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "common/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace mct {
namespace {

TEST(MetricsTest, CountersSumAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIncs);
}

TEST(MetricsTest, HistogramConcurrentObservationsAreComplete) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kSamples = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kSamples; ++i) h.Observe(i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kSamples);
  // Sum of 0..4999 per thread.
  EXPECT_EQ(h.sum(), kThreads * (kSamples * (kSamples - 1) / 2));
  EXPECT_EQ(h.max(), kSamples - 1);
  uint64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) bucket_total += h.BucketCount(b);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(MetricsTest, HistogramBucketsAndPercentiles) {
  Histogram h;
  // Bucket 0 holds 0; bucket b holds [2^(b-1), 2^b).
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.BucketCount(0), 1u);  // 0
  EXPECT_EQ(h.BucketCount(1), 1u);  // 1
  EXPECT_EQ(h.BucketCount(2), 2u);  // 2, 3
  EXPECT_EQ(h.BucketCount(10), 1u);  // 1000 in [512, 1024)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1006.0 / 5);
  // The median lands in bucket 2 (upper edge 3); the top of the
  // distribution reaches 1000's bucket (upper edge 1023).
  EXPECT_EQ(h.ApproxPercentile(0.5), 3u);
  EXPECT_GE(h.ApproxPercentile(1.0), 512u);
}

TEST(MetricsTest, GaugeSetMaxIsMonotone) {
  Gauge g;
  g.SetMax(10);
  EXPECT_EQ(g.value(), 10);
  g.SetMax(5);  // lower: no effect
  EXPECT_EQ(g.value(), 10);
  g.SetMax(12);
  EXPECT_EQ(g.value(), 12);
  // Interacts with Set as a plain write: SetMax only ever raises.
  g.Set(3);
  g.SetMax(2);
  EXPECT_EQ(g.value(), 3);
}

TEST(MetricsTest, GaugeSetMaxConcurrentKeepsGlobalMax) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      // Interleaved ranges; the global max is kThreads * kPerThread - 1.
      for (int64_t i = 0; i < kPerThread; ++i) {
        g.SetMax(i * kThreads + t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), static_cast<int64_t>(kThreads) * kPerThread - 1);
}

TEST(MetricsTest, RegistryCreatesOnFirstUseAndKeepsPointersAcrossReset) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.counter("mct.test.some_counter");
  Counter* b = reg.counter("mct.test.some_counter");
  EXPECT_EQ(a, b);  // same name, same instrument
  a->Inc(5);
  EXPECT_EQ(b->value(), 5u);

  Gauge* g = reg.gauge("mct.test.some_gauge");
  g->Set(-3);
  Histogram* h = reg.histogram("mct.test.some_hist");
  h->Observe(7);

  reg.ResetForTest();
  // Registrations and cached pointers survive; values are zeroed.
  EXPECT_EQ(reg.counter("mct.test.some_counter"), a);
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
}

TEST(MetricsTest, RegistryConcurrentLookupsOfSameNameAgree) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter* c = reg.counter("mct.test.racy_counter");
      c->Inc();
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
  seen[0]->Reset();
}

TEST(MetricsTest, DumpsContainRegisteredInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.counter("mct.test.dumped")->Inc(3);
  reg.histogram("mct.test.dumped_hist")->Observe(64);
  std::string text = reg.ToText();
  EXPECT_NE(text.find("mct.test.dumped"), std::string::npos);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"mct.test.dumped\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"mct.test.dumped_hist\""), std::string::npos);
  reg.ResetForTest();
}

TEST(MetricsTest, GovernorInstrumentsCountTripsOnce) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* cancels = reg.counter("mct.governor.cancels");
  Counter* deadline_hits = reg.counter("mct.governor.deadline_hits");
  Counter* rejections = reg.counter("mct.governor.budget_rejections");
  const uint64_t cancels0 = cancels->value();
  const uint64_t deadline0 = deadline_hits->value();
  const uint64_t reject0 = rejections->value();

  // Cancel trip: counted once even though the governor is checked twice
  // (the sticky flag short-circuits).
  CancelToken token;
  token.RequestCancel();
  {
    ResourceGovernor gov(&token, std::nullopt, nullptr);
    EXPECT_TRUE(gov.ShouldStop());
    EXPECT_TRUE(gov.ShouldStop());
    EXPECT_TRUE(gov.status().IsCancelled());
  }
  EXPECT_EQ(cancels->value() - cancels0, 1u);

  // Deadline trip.
  {
    ResourceGovernor gov(
        nullptr,
        std::chrono::steady_clock::now() - std::chrono::milliseconds(1),
        nullptr);
    EXPECT_TRUE(gov.ShouldStop());
    EXPECT_TRUE(gov.ShouldStop());
    EXPECT_TRUE(gov.status().IsDeadlineExceeded());
  }
  EXPECT_EQ(deadline_hits->value() - deadline0, 1u);

  // Budget rejection.
  {
    MemoryBudget budget(1024);
    ResourceGovernor gov(nullptr, std::nullopt, &budget);
    EXPECT_FALSE(gov.ChargeOrStop(512));
    EXPECT_TRUE(gov.ChargeOrStop(4096));
    EXPECT_TRUE(gov.ChargeOrStop(1));  // already tripped
    EXPECT_TRUE(gov.status().IsResourceExhausted());
  }
  EXPECT_EQ(rejections->value() - reject0, 1u);
}

TEST(MetricsTest, GovernorPeakBytesGaugeIsHighWatermark) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Gauge* peak = reg.gauge("mct.governor.peak_bytes");
  peak->Set(0);
  {
    MemoryBudget budget(1 << 20);
    ASSERT_TRUE(budget.TryCharge(4096).ok());
    budget.Release(4096);
    ASSERT_TRUE(budget.TryCharge(100).ok());
  }  // dtor publishes peak (4096, not the final 100)
  EXPECT_EQ(peak->value(), 4096);
  {
    MemoryBudget budget(1 << 20);
    ASSERT_TRUE(budget.TryCharge(64).ok());
  }  // smaller peak must not lower the gauge
  EXPECT_EQ(peak->value(), 4096);
}

TEST(MetricsTest, BufferPoolScriptedPatternCountsHitsMissesEvictions) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* hits = reg.counter("mct.buffer_pool.hits");
  Counter* misses = reg.counter("mct.buffer_pool.misses");
  Counter* evictions = reg.counter("mct.buffer_pool.evictions");
  const uint64_t hits0 = hits->value();
  const uint64_t misses0 = misses->value();
  const uint64_t evictions0 = evictions->value();

  auto dm = DiskManager::CreateInMemory();
  BufferPool pool(dm.get(), 2);  // two frames force eviction on the third page
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    ids.push_back(g->page_id());
  }
  // NewPage pins fresh frames without going through hit/miss accounting;
  // page 3's frame evicted one of the first two.
  EXPECT_EQ(pool.evictions(), 1u);

  // Re-fetch all three, most-recent first so the still-resident page 3 is
  // touched before the misses below evict it.
  for (PageId id : {ids[2], ids[0], ids[1]}) {
    auto g = pool.FetchPage(id);
    ASSERT_TRUE(g.ok());
  }
  // Deterministic totals for this script: page 3 is resident (1 hit); pages
  // 1 and 2 must be read back (2 misses), each evicting an LRU frame.
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(pool.evictions(), 3u);

  // The registry instruments advanced in lockstep with the pool's own
  // counters (deltas, since other tests share the process-wide registry).
  EXPECT_EQ(hits->value() - hits0, pool.hits());
  EXPECT_EQ(misses->value() - misses0, pool.misses());
  EXPECT_EQ(evictions->value() - evictions0, pool.evictions());
}

}  // namespace
}  // namespace mct

// Resource-governor battery (DESIGN.md §15): cancellation, deadlines and
// memory budgets from the primitive level up through the serve layer.
//
// Four attack angles:
//  1. primitives: CancelToken / MemoryBudget (parent chains, rollback) /
//     ResourceGovernor trip semantics, and the status-code retryability
//     contract (ResourceExhausted is the only retryable code);
//  2. embedded evaluator: governed statements are killed by cancel,
//     deadline and budget; a killed update leaves no side effects and
//     appends nothing to the WAL; a governed-but-untripped run returns
//     results identical to an ungoverned run (serial and parallel);
//  3. cancellation timing: a deliberately explosive cross-tree cartesian
//     query dies within 2x its deadline while a concurrent reader on the
//     same server completes normally;
//  4. chaos battery ({2,8} sessions, run under the tsan and asan presets
//     in CI): randomized cancel / timeout / memory-pressure injection
//     across concurrent sessions. The server must keep committing after
//     every kill, killed updates must never reach the commit history or
//     the final state while successful ones always do, and session
//     teardown must retire every MVCC version and COW chunk (the PR 7
//     census), so governor kills leak nothing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cow.h"
#include "common/governor.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "mct/database.h"
#include "movie_fixture.h"
#include "serve/server.h"
#include "storage/fault_env.h"
#include "storage/wal.h"
#include "workload/runner.h"

namespace mct {
namespace {

using serve::ColorServer;
using serve::CommittedStatement;
using serve::ServerOptions;
using serve::Session;
using testfix::BuildMovieDb;
using testfix::MovieDb;
using testfix::MustCreate;
using workload::RunQuery;

constexpr char kDir[] = "/db";

// ---------------------------------------------------------------------------
// 1. Primitives.
// ---------------------------------------------------------------------------

TEST(StatusCodeTest, GovernorCodesAndRetryabilityContract) {
  Status cancelled = Status::Cancelled("c");
  Status deadline = Status::DeadlineExceeded("d");
  Status exhausted = Status::ResourceExhausted("r");
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_TRUE(exhausted.IsResourceExhausted());
  EXPECT_NE(cancelled.ToString().find("Cancelled"), std::string::npos);
  EXPECT_NE(deadline.ToString().find("DeadlineExceeded"), std::string::npos);
  EXPECT_NE(exhausted.ToString().find("ResourceExhausted"),
            std::string::npos);

  // The retryability contract: ResourceExhausted is transient capacity
  // (retry with backoff may succeed); Cancelled was chosen by the caller
  // and DeadlineExceeded cannot un-expire — retrying cannot help either.
  EXPECT_TRUE(exhausted.IsRetryable());
  EXPECT_FALSE(cancelled.IsRetryable());
  EXPECT_FALSE(deadline.IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::OutOfRange("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
}

TEST(CancelTokenTest, StickyUntilCleared) {
  CancelToken token;
  EXPECT_FALSE(token.cancel_requested());
  token.RequestCancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_TRUE(token.cancel_requested());  // sticky
  token.Clear();
  EXPECT_FALSE(token.cancel_requested());
}

TEST(MemoryBudgetTest, ChargesReleasesAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.TryCharge(600).ok());
  EXPECT_EQ(budget.used(), 600u);
  Status refused = budget.TryCharge(500);  // 1100 > 1000
  EXPECT_TRUE(refused.IsResourceExhausted());
  EXPECT_EQ(budget.used(), 600u) << "refused charge must roll back";
  budget.Release(200);
  EXPECT_EQ(budget.used(), 400u);
  EXPECT_TRUE(budget.TryCharge(500).ok());
  EXPECT_EQ(budget.used(), 900u);
  EXPECT_EQ(budget.peak(), 900u);
  budget.Release(900);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), 900u) << "peak is a high watermark";
}

TEST(MemoryBudgetTest, ParentChainRefusalRollsBackChild) {
  MemoryBudget parent(1000);
  MemoryBudget child(0, &parent);  // child itself unlimited
  EXPECT_TRUE(child.TryCharge(800).ok());
  EXPECT_EQ(parent.used(), 800u);
  // Child would accept, parent refuses: nothing stays charged anywhere.
  EXPECT_TRUE(child.TryCharge(300).IsResourceExhausted());
  EXPECT_EQ(child.used(), 800u);
  EXPECT_EQ(parent.used(), 800u);
  // Destroying the child returns its outstanding bytes to the parent.
  { MemoryBudget scoped(0, &parent); ASSERT_TRUE(scoped.TryCharge(100).ok()); }
  EXPECT_EQ(parent.used(), 800u);
}

TEST(ResourceGovernorTest, TripsAreStickyAndFirstWins) {
  // Deadline already passed: the first check trips DeadlineExceeded and
  // every later check (and charge) reports the same sticky status.
  MemoryBudget budget(10);
  ResourceGovernor gov(
      nullptr,
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1),
      &budget);
  EXPECT_FALSE(gov.tripped());
  EXPECT_TRUE(gov.ShouldStop());
  EXPECT_TRUE(gov.tripped());
  EXPECT_TRUE(gov.Check().IsDeadlineExceeded());
  EXPECT_TRUE(gov.Charge(1 << 20).IsDeadlineExceeded())
      << "post-trip charges report the first violation, not a new one";
}

TEST(ResourceGovernorTest, UntrippedGovernorPassesChecksAndCharges) {
  CancelToken token;
  MemoryBudget budget(1 << 20);
  ResourceGovernor gov(&token, std::nullopt, &budget);
  EXPECT_FALSE(gov.ShouldStop());
  EXPECT_TRUE(gov.Check().ok());
  EXPECT_TRUE(gov.Charge(1024).ok());
  EXPECT_EQ(budget.used(), 1024u);
  EXPECT_FALSE(gov.tripped());
}

// ---------------------------------------------------------------------------
// 2. Embedded evaluator: governed execution end to end.
// ---------------------------------------------------------------------------

/// Movie fixture plus `n` extra tick rows (content = index) under "All
/// About Eve" — raw material for combinatorial cartesian products.
MovieDb BuildMovieDbWithTicks(int n) {
  MovieDb f = BuildMovieDb();
  for (int i = 0; i < n; ++i) {
    MustCreate(*f.db, f.red, f.movie_eve, "tick", std::to_string(i));
  }
  return f;
}

/// Cross-tree cartesian product: red ticks x blue actors x red ticks x
/// red ticks — with t ticks, t^3 * |actors| output rows, far beyond any
/// deadline or budget used below.
const char kExplosive[] =
    "for $a in document(\"d\")/{red}descendant::tick, "
    "$b in document(\"d\")/{blue}descendant::actor, "
    "$c in document(\"d\")/{red}descendant::tick, "
    "$d in document(\"d\")/{red}descendant::tick "
    "return $a";

const char kCountTicks[] =
    "for $t in document(\"d\")/{red}descendant::tick return $t";

TEST(GovernedEvalTest, PreCancelledQueryFailsWithNoWork) {
  MovieDb f = BuildMovieDbWithTicks(4);
  CancelToken token;
  token.RequestCancel();
  auto r = RunQuery(f.db.get(), f.red, kCountTicks,
                    /*collect_values=*/false, /*num_threads=*/1,
                    /*morsel_size=*/1024, nullptr, nullptr,
                    mcx::AnalyzeMode::kOff, nullptr, /*planner=*/false,
                    nullptr, /*vectorized=*/true, &token);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
}

TEST(GovernedEvalTest, MidFlightCancelKillsExplosiveQuery) {
  MovieDb f = BuildMovieDbWithTicks(300);
  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.RequestCancel();
  });
  auto r = RunQuery(f.db.get(), f.red, kExplosive,
                    /*collect_values=*/false, /*num_threads=*/1,
                    /*morsel_size=*/1024, nullptr, nullptr,
                    mcx::AnalyzeMode::kOff, nullptr, /*planner=*/false,
                    nullptr, /*vectorized=*/true, &token);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
}

TEST(GovernedEvalTest, DeadlineKillsExplosiveQuery) {
  MovieDb f = BuildMovieDbWithTicks(300);
  auto r = RunQuery(f.db.get(), f.red, kExplosive,
                    /*collect_values=*/false, /*num_threads=*/1,
                    /*morsel_size=*/1024, nullptr, nullptr,
                    mcx::AnalyzeMode::kOff, nullptr, /*planner=*/false,
                    nullptr, /*vectorized=*/true, nullptr,
                    /*deadline_ms=*/100);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
}

TEST(GovernedEvalTest, MemoryBudgetKillsExplosiveQuery) {
  MovieDb f = BuildMovieDbWithTicks(300);
  auto r = RunQuery(f.db.get(), f.red, kExplosive,
                    /*collect_values=*/false, /*num_threads=*/1,
                    /*morsel_size=*/1024, nullptr, nullptr,
                    mcx::AnalyzeMode::kOff, nullptr, /*planner=*/false,
                    nullptr, /*vectorized=*/true, nullptr,
                    /*deadline_ms=*/0, /*memory_limit_bytes=*/1 << 20);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
}

TEST(GovernedEvalTest, UntrippedGovernedRunMatchesUngoverned) {
  // The governed code paths (chunked serial loops, per-morsel checks,
  // budget charges) must not change any answer. Exercise serial, parallel
  // and row-at-a-time execution with a generous deadline and budget.
  const char* queries[] = {
      kCountTicks,
      "for $g in document(\"d\")/{red}descendant::movie-genre"
      "[{red}child::name = \"Comedy\"] return $g",
      "for $a in document(\"d\")/{red}descendant::movie, "
      "$b in document(\"d\")/{blue}descendant::actor return $b",
  };
  for (bool vectorized : {true, false}) {
    for (int threads : {1, 2}) {
      for (const char* q : queries) {
        MovieDb f = BuildMovieDbWithTicks(50);
        CancelToken token;  // never raised
        auto plain = RunQuery(f.db.get(), f.red, q, true, threads, 16);
        ASSERT_TRUE(plain.ok()) << plain.status();
        auto governed = RunQuery(f.db.get(), f.red, q, true, threads, 16,
                                 nullptr, nullptr, mcx::AnalyzeMode::kOff,
                                 nullptr, false, nullptr, vectorized, &token,
                                 /*deadline_ms=*/60000,
                                 /*memory_limit_bytes=*/256u << 20);
        ASSERT_TRUE(governed.ok()) << governed.status();
        EXPECT_EQ(governed->result_count, plain->result_count) << q;
        EXPECT_EQ(governed->values, plain->values) << q;
      }
    }
  }
}

TEST(GovernedEvalTest, CancelledUpdateHasNoSideEffectsAndNoWalRecord) {
  MovieDb f = BuildMovieDbWithTicks(8);
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("/w").ok());
  auto wal = WalWriter::Open(&env, "/w/wal.log", 1, true);
  ASSERT_TRUE(wal.ok()) << wal.status();

  auto count = [&] {
    auto r = RunQuery(f.db.get(), f.red, kCountTicks);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->result_count : 0;
  };
  const uint64_t ticks0 = count();
  const uint64_t lsn0 = (*wal)->next_lsn();

  const std::string update =
      "for $m in document(\"d\")/{red}descendant::movie"
      "[{red}child::name = \"All About Eve\"] "
      "update $m { insert <tick>governed</tick> into {red} }";

  // Killed update: no new tick, no WAL record.
  CancelToken token;
  token.RequestCancel();
  auto killed = RunQuery(f.db.get(), f.red, update, false, 1, 1024, nullptr,
                         wal->get(), mcx::AnalyzeMode::kOff, nullptr, false,
                         nullptr, true, &token);
  ASSERT_FALSE(killed.ok());
  EXPECT_TRUE(killed.status().IsCancelled()) << killed.status();
  EXPECT_EQ(count(), ticks0) << "cancelled update must leave no side effects";
  EXPECT_EQ((*wal)->next_lsn(), lsn0)
      << "cancelled update must append nothing to the WAL";

  // Same statement, token cleared: applies and logs exactly once.
  token.Clear();
  auto applied = RunQuery(f.db.get(), f.red, update, false, 1, 1024, nullptr,
                          wal->get(), mcx::AnalyzeMode::kOff, nullptr, false,
                          nullptr, true, &token);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(count(), ticks0 + 1);
  EXPECT_GT((*wal)->next_lsn(), lsn0);
}

// ---------------------------------------------------------------------------
// 3. Serve layer: contracts and cancellation timing.
// ---------------------------------------------------------------------------

std::unique_ptr<ColorServer> OpenServer(FaultInjectionEnv* env,
                                        ServerOptions opts = {},
                                        int ticks = 0) {
  auto server = ColorServer::Open(kDir, opts, env);
  EXPECT_TRUE(server.ok()) << server.status();
  MovieDb f = BuildMovieDbWithTicks(ticks);
  Status s = (*server)->Bootstrap(std::move(f.db));
  EXPECT_TRUE(s.ok()) << s;
  return std::move(*server);
}

std::string InsertTick(const std::string& label) {
  return "for $m in document(\"d\")/{red}descendant::movie"
         "[{red}child::name = \"All About Eve\"] update $m { insert <tick>" +
         label + "</tick> into {red} }";
}

TEST(ServeGovernorTest, SessionCapIsRetryableResourceExhausted) {
  FaultInjectionEnv env;
  ServerOptions opts;
  opts.max_sessions = 1;
  auto server = OpenServer(&env, opts);
  auto s1 = server->Connect();
  ASSERT_TRUE(s1.ok());
  auto s2 = server->Connect();
  ASSERT_FALSE(s2.ok());
  // The error-code contract: capacity limits are ResourceExhausted and
  // retryable (a slot frees when a session closes) — not OutOfRange.
  EXPECT_TRUE(s2.status().IsResourceExhausted()) << s2.status();
  EXPECT_TRUE(s2.status().IsRetryable());
  EXPECT_FALSE(s2.status().IsOutOfRange());
  s1->reset();
  EXPECT_TRUE(server->Connect().ok());
}

TEST(ServeGovernorTest, StatementTimeoutKillsRunawayWithinTwiceDeadline) {
  // The cancellation-timing contract: a deliberately explosive cross-tree
  // query (cartesian over 300 ticks: ~10^7-row joins and beyond) dies
  // within 2x its statement timeout, while a concurrent reader session on
  // the same server completes every read normally.
  FaultInjectionEnv env;
  ServerOptions opts;
  opts.statement_timeout_ms = 400;
  auto server = OpenServer(&env, opts, /*ticks=*/300);

  std::atomic<bool> runaway_done{false};
  std::atomic<uint64_t> reads_ok{0};
  std::thread reader([&] {
    auto session = server->Connect();
    ASSERT_TRUE(session.ok());
    while (!runaway_done.load()) {
      auto r = (*session)->Run(
          "for $m in document(\"d\")/{red}descendant::movie"
          "[{red}child::name = \"City Lights\"] return $m");
      ASSERT_TRUE(r.ok()) << "reader must be unaffected: " << r.status();
      ASSERT_EQ(r->items.size(), 1u);
      reads_ok.fetch_add(1);
    }
  });

  auto session = server->Connect();
  ASSERT_TRUE(session.ok());
  const auto t0 = std::chrono::steady_clock::now();
  auto r = (*session)->Run(kExplosive);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  runaway_done.store(true);
  reader.join();

  ASSERT_FALSE(r.ok()) << "the runaway must not complete";
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  EXPECT_LT(elapsed_ms, 2.0 * static_cast<double>(opts.statement_timeout_ms))
      << "kill latency must stay within one morsel of the deadline";
  EXPECT_GT(reads_ok.load(), 0u);

  // The session survives its killed statement.
  auto after = (*session)->Run(InsertTick("post-kill"));
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST(ServeGovernorTest, BoundedQueueShedsUnderBurstAndServerKeepsCommitting) {
  FaultInjectionEnv env;
  ServerOptions opts;
  opts.max_concurrent_writers = 1;
  opts.max_queue_depth = 1;
  opts.statement_timeout_ms = 300;
  auto server = OpenServer(&env, opts, /*ticks=*/300);
  Counter* sheds =
      MetricsRegistry::Global().counter("mct.governor.queue_sheds");
  const uint64_t sheds0 = sheds->value();

  // A hog occupies the single writer slot: an update whose binding
  // evaluation is an explosive cartesian, killed by the statement deadline
  // ~300ms in — before any mutation, so it commits nothing. While it holds
  // the slot, quick inserts from 7 other sessions arrive: one may wait
  // (queue depth 1), the rest must fast-fail with a retryable
  // ResourceExhausted instead of queueing without bound.
  std::thread hog([&] {
    auto session = server->Connect();
    ASSERT_TRUE(session.ok());
    auto r = (*session)->Run(
        "for $a in document(\"d\")/{red}descendant::tick, "
        "$b in document(\"d\")/{red}descendant::tick, "
        "$c in document(\"d\")/{red}descendant::tick "
        "update $a { insert <note>hog</note> into {red} }");
    ASSERT_FALSE(r.ok()) << "the hog must not finish 300^3 binding rows";
    EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  constexpr int kBurst = 7;
  constexpr int kOpsEach = 5;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kBurst; ++w) {
    threads.emplace_back([&, w] {
      auto session = server->Connect();
      ASSERT_TRUE(session.ok());
      for (int k = 0; k < kOpsEach; ++k) {
        auto r = (*session)->Run(
            InsertTick("b" + std::to_string(w) + "." + std::to_string(k)));
        if (r.ok()) {
          ok.fetch_add(1);
        } else if (r.status().IsResourceExhausted()) {
          ASSERT_TRUE(r.status().IsRetryable());
          shed.fetch_add(1);
        } else {
          // A waiter that outlives its own deadline in the queue is shed
          // by expiry rather than admission.
          ASSERT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  hog.join();

  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(shed.load(), 0u) << "an overloaded bounded queue must shed";
  EXPECT_EQ(sheds->value() - sheds0, shed.load())
      << "every shed is counted by mct.governor.queue_sheds";
  // Sheds (and the killed hog) left no trace: the history holds exactly
  // the served statements.
  EXPECT_EQ(server->CommitHistory().size(), ok.load());

  // The server keeps committing after the burst.
  auto session = server->Connect();
  ASSERT_TRUE(session.ok());
  auto r = (*session)->Run(InsertTick("post-burst"));
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(ServeGovernorTest, AdmissionRetriesAbsorbBurst) {
  FaultInjectionEnv env;
  ServerOptions opts;
  opts.max_concurrent_writers = 1;
  opts.max_queue_depth = 2;
  opts.admission_retries = 100;  // backoff makes eventual admission certain
  auto server = OpenServer(&env, opts);

  constexpr int kBurst = 6;
  constexpr int kOpsEach = 5;
  std::vector<std::thread> threads;
  for (int w = 0; w < kBurst; ++w) {
    threads.emplace_back([&, w] {
      auto session = server->Connect();
      ASSERT_TRUE(session.ok());
      for (int k = 0; k < kOpsEach; ++k) {
        auto r = (*session)->Run(
            InsertTick("r" + std::to_string(w) + "." + std::to_string(k)));
        ASSERT_TRUE(r.ok()) << "retries must absorb the burst: " << r.status();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(server->CommitHistory().size(),
            static_cast<size_t>(kBurst) * kOpsEach);
}

// ---------------------------------------------------------------------------
// 4. Chaos battery: randomized cancel / timeout / memory pressure across
//    {2,8} concurrent sessions, with the PR 7 MVCC leak census.
// ---------------------------------------------------------------------------

class GovernorChaosTest : public ::testing::TestWithParam<int> {};

TEST_P(GovernorChaosTest, KillsLeakNothingAndServerKeepsCommitting) {
  const int kSessions = GetParam();
  const int kOpsPerSession = 25;

  FaultInjectionEnv env;
  ServerOptions opts;
  opts.max_concurrent_writers = 2;
  opts.max_queue_depth = 2;
  opts.admission_retries = 200;
  opts.statement_timeout_ms = 150;
  opts.statement_memory_limit = 4u << 20;
  opts.total_memory_limit = 64u << 20;
  auto server = OpenServer(&env, opts, /*ticks=*/120);

  const size_t head0 = server->mvcc().Head()->ResidentChunks();
  const int64_t live0 = CowLiveChunks();

  std::vector<std::string> committed_labels;   // per worker, merged below
  std::vector<std::string> killed_labels;
  std::mutex labels_mu;
  std::atomic<uint64_t> kills{0};

  {
    // Sessions live in a shared array so the chaos thread can aim
    // Cancel() — the one cross-thread-safe Session entry point — at
    // random victims while their owner threads keep running statements.
    std::vector<std::unique_ptr<Session>> sessions(
        static_cast<size_t>(kSessions));
    for (int i = 0; i < kSessions; ++i) {
      auto s = server->Connect();
      ASSERT_TRUE(s.ok()) << s.status();
      sessions[static_cast<size_t>(i)] = std::move(*s);
    }

    std::atomic<bool> stop_chaos{false};
    std::thread chaos([&] {
      Rng rng(0xc4a05u);
      while (!stop_chaos.load()) {
        sessions[rng.Uniform(static_cast<uint64_t>(kSessions))]->Cancel();
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.UniformInt(200, 2000)));
      }
    });

    std::vector<std::thread> workers;
    for (int w = 0; w < kSessions; ++w) {
      workers.emplace_back([&, w] {
        Session& session = *sessions[static_cast<size_t>(w)];
        Rng rng(0x5eed0 + static_cast<uint64_t>(w));
        std::vector<std::string> ok_labels;
        std::vector<std::string> bad_labels;
        for (int k = 0; k < kOpsPerSession; ++k) {
          // The chaos thread may have flagged this session between
          // statements; re-arm so this iteration's statement runs (it can
          // still be cancelled mid-flight).
          session.ClearCancel();
          const uint64_t dice = rng.Uniform(100);
          if (dice < 50) {
            // Normal read: succeeds unless chaos kills it.
            auto r = session.Run(kCountTicks);
            if (!r.ok()) {
              ASSERT_TRUE(r.status().IsCancelled() ||
                          r.status().IsDeadlineExceeded() ||
                          r.status().IsResourceExhausted())
                  << r.status();
              kills.fetch_add(1);
            }
          } else if (dice < 80) {
            // Update with a unique label; remember which side it landed on.
            std::string label =
                "w" + std::to_string(w) + "." + std::to_string(k);
            auto r = session.Run(InsertTick(label));
            if (r.ok()) {
              ok_labels.push_back(label);
            } else {
              ASSERT_TRUE(r.status().IsCancelled() ||
                          r.status().IsDeadlineExceeded() ||
                          r.status().IsResourceExhausted())
                  << r.status();
              bad_labels.push_back(label);
              kills.fetch_add(1);
            }
          } else {
            // Explosive read: the tick^3 cartesian product far exceeds
            // both the 150ms deadline and the 4MB budget, so this dies by
            // deadline, budget or a raced cancel.
            auto r = session.Run(kExplosive);
            if (!r.ok()) {
              ASSERT_TRUE(r.status().IsCancelled() ||
                          r.status().IsDeadlineExceeded() ||
                          r.status().IsResourceExhausted())
                  << r.status();
              kills.fetch_add(1);
            }
          }
        }
        // The session must still work after everything chaos did to it.
        session.ClearCancel();
        std::string final_label = "final-w" + std::to_string(w);
        for (int attempt = 0;; ++attempt) {
          auto r = session.Run(InsertTick(final_label));
          if (r.ok()) break;
          // Chaos may still race one more Cancel() in before we notice;
          // governor kills are the only acceptable failures.
          ASSERT_TRUE(r.status().IsCancelled() ||
                      r.status().IsDeadlineExceeded() ||
                      r.status().IsResourceExhausted())
              << r.status();
          ASSERT_LT(attempt, 100) << "server stopped committing";
          session.ClearCancel();
        }
        ok_labels.push_back(final_label);
        std::lock_guard<std::mutex> lock(labels_mu);
        committed_labels.insert(committed_labels.end(), ok_labels.begin(),
                                ok_labels.end());
        killed_labels.insert(killed_labels.end(), bad_labels.begin(),
                             bad_labels.end());
      });
    }
    for (auto& t : workers) t.join();
    stop_chaos.store(true);
    chaos.join();

    // Commit-history atomicity: killed updates never became commits,
    // successful updates always did (exactly once).
    std::multiset<std::string> history_labels;
    for (const CommittedStatement& c : server->CommitHistory()) {
      size_t open = c.text.find("<tick>");
      size_t close = c.text.find("</tick>");
      ASSERT_NE(open, std::string::npos);
      history_labels.insert(
          c.text.substr(open + 6, close - open - 6));
    }
    for (const std::string& label : committed_labels) {
      EXPECT_EQ(history_labels.count(label), 1u) << label;
    }
    for (const std::string& label : killed_labels) {
      EXPECT_EQ(history_labels.count(label), 0u)
          << "killed update leaked into the commit history: " << label;
    }

    // Final-state atomicity: a fresh session sees every committed label
    // in the ticks and none of the killed ones.
    auto verify = server->Connect();
    ASSERT_TRUE(verify.ok());
    auto ticks = (*verify)->Run(kCountTicks);
    ASSERT_TRUE(ticks.ok()) << ticks.status();
    std::multiset<std::string> tick_contents;
    const MctDatabase* view = (*verify)->snapshot_db();
    for (const mcx::Item& it : ticks->items) {
      if (view->store().HasContent(it.node)) {
        tick_contents.insert(view->Content(it.node));
      }
    }
    for (const std::string& label : committed_labels) {
      EXPECT_EQ(tick_contents.count(label), 1u) << label;
    }
    for (const std::string& label : killed_labels) {
      EXPECT_EQ(tick_contents.count(label), 0u)
          << "killed update mutated the database: " << label;
    }
  }  // every session (and its pin) destroyed here

  // MVCC leak census (PR 7): after all sessions drop, only the head
  // version survives, and the chunk census matches the head's own growth —
  // no version, chunk or budget leak from any governor kill.
  EXPECT_EQ(server->mvcc().live_versions(), 1u);
  EXPECT_EQ(server->mvcc().pinned_snapshots(), 0);
  const size_t head1 = server->mvcc().Head()->ResidentChunks();
  EXPECT_EQ(CowLiveChunks() - live0,
            static_cast<int64_t>(head1) - static_cast<int64_t>(head0));
}

INSTANTIATE_TEST_SUITE_P(Sessions, GovernorChaosTest, ::testing::Values(2, 8));

}  // namespace
}  // namespace mct

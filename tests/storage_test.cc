#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/record_file.h"
#include "storage/slotted_file.h"
#include "storage/storage_env.h"

namespace mct {
namespace {

TEST(DiskManagerTest, InMemoryReadWriteRoundTrip) {
  auto dm = DiskManager::CreateInMemory();
  PageId p0 = dm->AllocatePage();
  PageId p1 = dm->AllocatePage();
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(dm->num_pages(), 2u);
  EXPECT_EQ(dm->SizeBytes(), 2u * kPageSize);

  char buf[kPageSize];
  std::memset(buf, 0xAB, kPageSize);
  ASSERT_TRUE(dm->WritePage(p1, buf).ok());
  char out[kPageSize];
  ASSERT_TRUE(dm->ReadPage(p1, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, kPageSize), 0);

  // Fresh page is zeroed.
  ASSERT_TRUE(dm->ReadPage(p0, out).ok());
  for (uint32_t i = 0; i < kPageSize; ++i) ASSERT_EQ(out[i], 0);
}

TEST(DiskManagerTest, OutOfRangeAccessFails) {
  auto dm = DiskManager::CreateInMemory();
  char buf[kPageSize] = {};
  EXPECT_TRUE(dm->ReadPage(0, buf).IsOutOfRange());
  EXPECT_TRUE(dm->WritePage(5, buf).IsOutOfRange());
}

TEST(DiskManagerTest, FileBackedPersistsAcrossReopen) {
  std::string path = testing::TempDir() + "/mct_dm_test.db";
  std::filesystem::remove(path);
  {
    std::unique_ptr<DiskManager> dm;
    ASSERT_TRUE(DiskManager::OpenFile(path, &dm).ok());
    PageId p = dm->AllocatePage();
    char buf[kPageSize];
    std::memset(buf, 0x5C, kPageSize);
    ASSERT_TRUE(dm->WritePage(p, buf).ok());
    ASSERT_TRUE(dm->Sync().ok());
  }
  {
    std::unique_ptr<DiskManager> dm;
    ASSERT_TRUE(DiskManager::OpenFile(path, &dm).ok());
    EXPECT_EQ(dm->num_pages(), 1u);
    char out[kPageSize];
    ASSERT_TRUE(dm->ReadPage(0, out).ok());
    EXPECT_EQ(out[100], 0x5C);
  }
  std::filesystem::remove(path);
}

TEST(StorageEnvTest, DestructorFlushesAndSyncsWithoutExplicitFlushAll) {
  // Regression: dropping a file-backed StorageEnv without calling FlushAll
  // must not lose dirty frames — the destructor flushes and syncs.
  std::string path = testing::TempDir() + "/mct_env_dtor.db";
  std::filesystem::remove(path);
  PageId id;
  {
    auto env = StorageEnv::OpenFile(path, 16);
    ASSERT_TRUE(env.ok());
    auto g = (*env)->pool()->NewPage();
    ASSERT_TRUE(g.ok());
    id = g->page_id();
    g->MutableData()[123] = 77;
    g->Release();
    // No FlushAll, no Sync: the env is simply destroyed.
  }
  {
    auto env = StorageEnv::OpenFile(path, 16);
    ASSERT_TRUE(env.ok());
    auto g = (*env)->pool()->FetchPage(id);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->Data()[123], 77);
  }
  std::filesystem::remove(path);
}

TEST(BufferPoolTest, FetchHitsAfterFirstMiss) {
  auto dm = DiskManager::CreateInMemory();
  BufferPool pool(dm.get(), 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  PageId id = page->page_id();
  page->MutableData()[0] = 42;
  page->Release();

  auto g1 = pool.FetchPage(id);
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(g1->Data()[0], 42);
  uint64_t h = pool.hits();
  g1->Release();
  auto g2 = pool.FetchPage(id);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(pool.hits(), h + 1);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  auto dm = DiskManager::CreateInMemory();
  BufferPool pool(dm.get(), 2);  // tiny pool forces eviction
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    g->MutableData()[0] = static_cast<char>(i + 1);
    ids.push_back(g->page_id());
  }
  // All pages round-trip through eviction.
  for (int i = 0; i < 8; ++i) {
    auto g = pool.FetchPage(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g->Data()[0], static_cast<char>(i + 1));
  }
}

TEST(BufferPoolTest, AllFramesPinnedFails) {
  auto dm = DiskManager::CreateInMemory();
  BufferPool pool(dm.get(), 2);
  auto g1 = pool.NewPage();
  auto g2 = pool.NewPage();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.NewPage();
  EXPECT_FALSE(g3.ok());
  EXPECT_TRUE(g3.status().IsInternal());
  // Releasing a pin makes room again.
  g1->Release();
  auto g4 = pool.NewPage();
  EXPECT_TRUE(g4.ok());
}

TEST(BufferPoolTest, FlushAllThenEvictAllKeepsData) {
  auto dm = DiskManager::CreateInMemory();
  BufferPool pool(dm.get(), 8);
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
  PageId id = g->page_id();
  g->MutableData()[7] = 99;
  g->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  uint64_t misses_before = pool.misses();
  auto g2 = pool.FetchPage(id);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(pool.misses(), misses_before + 1);  // truly evicted
  EXPECT_EQ(g2->Data()[7], 99);
}

TEST(BufferPoolTest, MoveGuardTransfersPin) {
  auto dm = DiskManager::CreateInMemory();
  BufferPool pool(dm.get(), 2);
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
  PageGuard moved = std::move(*g);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
}

TEST(RecordFileTest, AppendReadWrite) {
  auto env = StorageEnv::CreateInMemory();
  struct Rec {
    uint32_t a;
    uint32_t b;
  };
  RecordFile rf(env->pool(), sizeof(Rec));
  for (uint32_t i = 0; i < 10000; ++i) {
    Rec r{i, i * 2};
    auto idx = rf.Append(&r);
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*idx, i);
  }
  EXPECT_EQ(rf.num_records(), 10000u);
  for (uint32_t i = 0; i < 10000; i += 37) {
    Rec r;
    ASSERT_TRUE(rf.Read(i, &r).ok());
    EXPECT_EQ(r.a, i);
    EXPECT_EQ(r.b, i * 2);
  }
  Rec upd{7, 7};
  ASSERT_TRUE(rf.Write(5000, &upd).ok());
  Rec r;
  ASSERT_TRUE(rf.Read(5000, &r).ok());
  EXPECT_EQ(r.a, 7u);
  // Footprint: 1024 records of 8 bytes per 8K page -> 10 pages.
  EXPECT_EQ(rf.num_pages(), 10u);
}

TEST(RecordFileTest, OutOfRange) {
  auto env = StorageEnv::CreateInMemory();
  RecordFile rf(env->pool(), 16);
  char rec[16] = {};
  EXPECT_TRUE(rf.Read(0, rec).IsOutOfRange());
  ASSERT_TRUE(rf.Append(rec).ok());
  EXPECT_TRUE(rf.Read(1, rec).IsOutOfRange());
  EXPECT_TRUE(rf.Write(1, rec).IsOutOfRange());
}

TEST(SlottedFileTest, AppendAndReadVariableSizes) {
  auto env = StorageEnv::CreateInMemory();
  SlottedFile sf(env->pool());
  std::vector<SlotId> ids;
  std::vector<std::string> values;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.Word(1, 200));
    auto id = sf.Append(values.back());
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_EQ(sf.num_records(), 5000u);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto v = sf.Read(ids[i]);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, values[i]);
  }
}

TEST(SlottedFileTest, EmptyRecord) {
  auto env = StorageEnv::CreateInMemory();
  SlottedFile sf(env->pool());
  auto id = sf.Append("");
  ASSERT_TRUE(id.ok());
  auto v = sf.Read(*id);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "");
}

TEST(SlottedFileTest, OversizeRecordRejected) {
  auto env = StorageEnv::CreateInMemory();
  SlottedFile sf(env->pool());
  std::string big(SlottedFile::kMaxRecordSize + 1, 'x');
  EXPECT_TRUE(sf.Append(big).status().IsInvalidArgument());
  std::string max(SlottedFile::kMaxRecordSize, 'x');
  auto id = sf.Append(max);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(sf.Read(*id)->size(), max.size());
}

TEST(SlottedFileTest, UpdateInPlaceWhenSmaller) {
  auto env = StorageEnv::CreateInMemory();
  SlottedFile sf(env->pool());
  auto id = sf.Append("hello world");
  ASSERT_TRUE(id.ok());
  auto id2 = sf.Update(*id, "hi");
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id);  // in place
  EXPECT_EQ(*sf.Read(*id2), "hi");
}

TEST(SlottedFileTest, UpdateRelocatesWhenLarger) {
  auto env = StorageEnv::CreateInMemory();
  SlottedFile sf(env->pool());
  auto id = sf.Append("ab");
  ASSERT_TRUE(id.ok());
  auto id2 = sf.Update(*id, "a considerably longer value");
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id2, *id);
  EXPECT_EQ(*sf.Read(*id2), "a considerably longer value");
  EXPECT_TRUE(sf.Read(*id).status().IsNotFound());  // tombstoned
}

TEST(SlottedFileTest, DeleteTombstones) {
  auto env = StorageEnv::CreateInMemory();
  SlottedFile sf(env->pool());
  auto id = sf.Append("doomed");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(sf.Delete(*id).ok());
  EXPECT_TRUE(sf.Read(*id).status().IsNotFound());
  EXPECT_TRUE(sf.Delete(*id).IsNotFound());
  EXPECT_EQ(sf.num_records(), 0u);
}

TEST(SlottedFileTest, RandomizedAgainstReferenceMap) {
  auto env = StorageEnv::CreateInMemory();
  SlottedFile sf(env->pool());
  Rng rng(42);
  std::map<SlotId, std::string> ref;
  std::vector<SlotId> live;
  for (int op = 0; op < 20000; ++op) {
    uint64_t dice = rng.Uniform(10);
    if (dice < 6 || live.empty()) {
      std::string v = rng.Word(0, 300);
      auto id = sf.Append(v);
      ASSERT_TRUE(id.ok());
      ref[*id] = v;
      live.push_back(*id);
    } else if (dice < 8) {
      size_t pick = rng.Uniform(live.size());
      SlotId id = live[pick];
      std::string v = rng.Word(0, 300);
      auto nid = sf.Update(id, v);
      ASSERT_TRUE(nid.ok());
      if (*nid != id) {
        ref.erase(id);
        live[pick] = *nid;
      }
      ref[*nid] = v;
    } else {
      size_t pick = rng.Uniform(live.size());
      SlotId id = live[pick];
      ASSERT_TRUE(sf.Delete(id).ok());
      ref.erase(id);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(sf.num_records(), ref.size());
  for (const auto& [id, v] : ref) {
    auto got = sf.Read(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

}  // namespace
}  // namespace mct
